(* Streaming dataset ingestion: the committed malformed-fixture corpus
   maps to stable E021x codes with line numbers, write->read round-trips
   preserve values, faults inject cleanly, budgets bite, and the
   out-of-core tiling rung reproduces the untiled reference. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Tio = Stardust_tensor.Tensor_io
module Stats_cache = Stardust_tensor.Stats_cache
module D = Stardust_workloads.Datasets
module C = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Resources = Stardust_capstan.Resources
module Imp = Stardust_vonneumann.Imp_interp
module Fallback = Stardust_driver.Fallback
module Diag = Stardust_diag.Diag
module Metrics = Stardust_obs.Metrics
module Ingest = Stardust_ingest.Ingest
module Tile = Stardust_ingest.Tile
module Ingest_fuzz = Stardust_ingest.Ingest_fuzz

let fx name = Filename.concat "fixtures/ingest" name

let context_line (d : Diag.t) =
  match List.assoc_opt "line" d.Diag.context with
  | Some l -> int_of_string l
  | None -> Alcotest.failf "diagnostic %s carries no line context" d.Diag.code

(* Read a fixture expecting a structured reject; returns the diagnostic. *)
let expect_reject ?dims ?budget ?faults ~format ~code ?line path =
  match Ingest.read_file_result ?dims ?budget ?faults ~format path with
  | Ok t ->
      Alcotest.failf "%s parsed (%d nnz) but should reject with %s" path
        (T.nnz t) code
  | Error [] -> Alcotest.failf "%s rejected with an empty diagnostic list" path
  | Error (d :: _) ->
      Alcotest.(check string) (path ^ " code") code d.Diag.code;
      Alcotest.(check string)
        (path ^ " stage") "ingest" (Diag.stage_name d.Diag.stage);
      (match line with
      | Some l -> Alcotest.(check int) (path ^ " line") l (context_line d)
      | None -> ());
      d

(* ------------------------------------------------------------------ *)
(* The malformed corpus                                                *)
(* ------------------------------------------------------------------ *)

let test_corpus_codes () =
  let mtx = F.csr () and tns = F.ucc () in
  ignore (expect_reject ~format:mtx ~code:"E0211" ~line:1 (fx "bad_header.mtx"));
  ignore (expect_reject ~format:mtx ~code:"E0215" ~line:4 (fx "truncated.mtx"));
  ignore
    (expect_reject ~format:mtx ~code:"E0212" ~line:4 (fx "out_of_range.mtx"));
  ignore (expect_reject ~format:mtx ~code:"E0213" ~line:5 (fx "duplicate.mtx"));
  ignore
    (expect_reject ~format:mtx ~code:"E0213" ~line:5 (fx "symmetric_dup.mtx"));
  ignore
    (expect_reject ~format:mtx ~code:"E0212" ~line:4 (fx "pattern_value.mtx"));
  ignore (expect_reject ~format:mtx ~code:"E0212" ~line:5 (fx "trailing.mtx"));
  ignore (expect_reject ~format:mtx ~code:"E0212" ~line:4 (fx "bad_value.mtx"));
  ignore (expect_reject ~format:(F.csf 2) ~code:"E0212" ~line:2 (fx "ragged.tns"));
  ignore (expect_reject ~format:(F.csf 2) ~code:"E0213" (fx "dup.tns"));
  ignore (expect_reject ~format:tns ~code:"E0215" (fx "empty.tns"));
  ignore
    (expect_reject ~format:mtx ~code:"E0210" (fx "does_not_exist.mtx"));
  ignore (expect_reject ~format:mtx ~code:"E0210" (fx "good.tnsx"))

let test_corpus_messages () =
  let d =
    expect_reject ~format:(F.csr ()) ~code:"E0215" (fx "truncated.mtx")
  in
  Alcotest.(check string)
    "truncation names the deficit" "truncated file: 2 of 5 entries"
    d.Diag.message;
  let d = expect_reject ~format:(F.csr ()) ~code:"E0213" (fx "duplicate.mtx") in
  Alcotest.(check string)
    "duplicate names the coordinate" "duplicate entry (1, 1)" d.Diag.message

(* every reject carries a file context and a char-offset span pointing at
   the offending line *)
let test_spans () =
  match
    Ingest.read_file_result ~format:(F.csr ()) (fx "out_of_range.mtx")
  with
  | Ok _ -> Alcotest.fail "out_of_range parsed"
  | Error [] -> Alcotest.fail "empty diagnostics"
  | Error (d :: _) ->
      Alcotest.(check bool)
        "file context present" true
        (List.mem_assoc "file" d.Diag.context);
      (match d.Diag.span with
      | None -> Alcotest.fail "no span"
      | Some s ->
          Alcotest.(check bool) "span is ordered" true (s.Diag.stop > s.Diag.start);
          (* line 4 is "9 1 2.0": starts after header+size+first entry *)
          Alcotest.(check bool) "span is inside the file" true (s.Diag.start > 0))

(* ------------------------------------------------------------------ *)
(* Healthy files: equivalence with the legacy readers, determinism      *)
(* ------------------------------------------------------------------ *)

let test_good_mtx () =
  match Ingest.read_file_result ~format:(F.csr ()) (fx "good.mtx") with
  | Error _ -> Alcotest.fail "good.mtx rejected"
  | Ok t ->
      Alcotest.(check int) "nnz" 5 (T.nnz t);
      let legacy = Tio.read_matrix_market ~format:(F.csr ()) (fx "good.mtx") in
      Alcotest.(check bool)
        "streaming reader agrees with the legacy reader" true
        (T.approx_equal t legacy)

let test_good_tns () =
  match Ingest.read_file_result ~format:(F.ucc ()) (fx "good.tns") with
  | Error _ -> Alcotest.fail "good.tns rejected"
  | Ok t ->
      Alcotest.(check int) "nnz" 4 (T.nnz t);
      Alcotest.(check (array int)) "inferred dims" [| 3; 2; 3 |] (T.dims t);
      let legacy = Tio.read_tns ~format:(F.ucc ()) (fx "good.tns") in
      Alcotest.(check bool)
        "streaming reader agrees with the legacy reader" true
        (T.approx_equal t legacy)

(* the same bytes always produce the same tensor, hence the same
   plan-cache fingerprint — ingestion is deterministic *)
let test_fingerprint_stable () =
  let read () =
    match Ingest.read_file_result ~format:(F.csr ()) (fx "good.mtx") with
    | Ok t -> Stats_cache.fingerprint t
    | Error _ -> Alcotest.fail "good.mtx rejected"
  in
  Alcotest.(check string) "fingerprints agree" (read ()) (read ())

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

let test_budgets () =
  let format = F.csr () in
  ignore
    (expect_reject ~format
       ~budget:(Ingest.budget ~max_nnz:2 ())
       ~code:"E0214" (fx "good.mtx"));
  ignore
    (expect_reject ~format
       ~budget:(Ingest.budget ~max_bytes:40 ())
       ~code:"E0214" (fx "good.mtx"));
  (* generous budgets admit the file *)
  match
    Ingest.read_file_result ~format
      ~budget:(Ingest.budget ~max_nnz:1000 ~max_bytes:100_000 ())
      (fx "good.mtx")
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "good.mtx rejected under generous budgets"

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_faults () =
  let format = F.csr () in
  ignore
    (expect_reject ~format ~faults:[ Ingest.Deny_open ] ~code:"E0210"
       (fx "good.mtx"));
  (* cutting the file at an entry boundary (byte 86 ends "1 1 2.0") is
     a truncation; cutting mid-entry leaves a malformed partial line *)
  ignore
    (expect_reject ~format
       ~faults:[ Ingest.Truncate_at 86 ]
       ~code:"E0215" (fx "good.mtx"));
  ignore
    (expect_reject ~format
       ~faults:[ Ingest.Truncate_at 80 ]
       ~code:"E0212" (fx "good.mtx"));
  (* corrupting a value digit (byte 82 is the '2' of "2.0") into garbage
     is an entry error *)
  let d =
    expect_reject ~format
      ~faults:[ Ingest.Corrupt_byte { at = 82; value = 'z' } ]
      ~code:"E0212" (fx "good.mtx")
  in
  Alcotest.(check bool)
    "corruption is a parse reject, not a crash" true
    (String.length d.Diag.message > 0)

(* after every path — success, reject, injected fault — no fd is held *)
let test_fd_balance () =
  let format = F.csr () in
  ignore (Ingest.read_file_result ~format (fx "good.mtx"));
  ignore (Ingest.read_file_result ~format (fx "truncated.mtx"));
  ignore (Ingest.read_file_result ~format (fx "does_not_exist.mtx"));
  ignore
    (Ingest.read_file_result ~format ~faults:[ Ingest.Deny_open ]
       (fx "good.mtx"));
  Alcotest.(check int) "no fds held" 0 (Ingest.open_fds ())

(* a short burst of the byte-mutation fuzzer runs clean in-tree *)
let test_fuzz_burst () =
  let stats = Ingest_fuzz.run ~cases:60 ~seed:2026 () in
  Alcotest.(check (list string)) "no envelope escapes" [] stats.Ingest_fuzz.failures;
  Alcotest.(check int) "all cases ran" 60 stats.Ingest_fuzz.cases

(* ------------------------------------------------------------------ *)
(* Write -> read round-trips (QCheck)                                  *)
(* ------------------------------------------------------------------ *)

let with_tmp ext f =
  let path = Filename.temp_file "stardust-ingest-test" ext in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let random_tensor ~seed ~order =
  let dims = List.init order (fun i -> 3 + ((seed + i) mod 5)) in
  let density = 0.2 +. (float_of_int (seed mod 5) /. 10.0) in
  let format = if order = 2 then F.csr () else F.csf order in
  D.small_random ~seed ~name:"t" ~format ~dims ~density ()

let prop_mtx_roundtrip =
  QCheck.Test.make ~name:"mtx write -> streaming read round-trips" ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let t = random_tensor ~seed ~order:2 in
      QCheck.assume (T.nnz t > 0);
      with_tmp ".mtx" (fun path ->
          Tio.write_matrix_market t path;
          match
            Ingest.read_matrix_market_result ~format:(F.csr ()) path
          with
          | Error _ -> false
          | Ok back ->
              (* writer drops trailing empty rows/cols from nothing — dims
                 come from the size line, which the writer preserves *)
              T.approx_equal t back))

let prop_tns_roundtrip =
  QCheck.Test.make ~name:"tns write -> streaming read round-trips" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 1 3))
    (fun (seed, order) ->
      let t = random_tensor ~seed ~order in
      QCheck.assume (T.nnz t > 0);
      with_tmp ".tns" (fun path ->
          Tio.write_tns t path;
          match
            Ingest.read_tns_result
              ~dims:(Array.to_list (T.dims t))
              ~format:(T.format t) path
          with
          | Error _ -> false
          | Ok back -> T.approx_equal t back))

(* ------------------------------------------------------------------ *)
(* Out-of-core tiling                                                  *)
(* ------------------------------------------------------------------ *)

let spmv_expr = "y(i) = A(i,j) * x(j)"
let spmv_formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]

let spmv_compiled ?(n = 1024) ?(density = 0.02) () =
  let a =
    D.small_random ~seed:7 ~name:"A" ~format:(F.csr ()) ~dims:[ n; n ]
      ~density ()
  in
  let x = D.dense_vector ~seed:8 ~name:"x" ~dim:n () in
  C.compile_string ~formats:spmv_formats
    ~inputs:[ ("A", a); ("x", x) ]
    spmv_expr

(* a chip whose total SRAM (12 PMUs of 4 x 64 words = 3072 words) is far
   under the ~40k-word spmv operand footprint: the dense result and the
   on-chip x gather alone exceed the PMU count untiled, while a
   coordinate slice of the rows fits *)
let cramped_config =
  {
    Sim.default_config with
    Sim.arch =
      {
        Arch.default with
        Arch.num_pmu = 12;
        pmu_banks = 4;
        pmu_words_per_bank = 64;
      };
  }

let test_tile_restrict () =
  let coo = Coo.create [| 4; 3 |] in
  Coo.add coo [| 0; 0 |] 1.0;
  Coo.add coo [| 1; 2 |] 2.0;
  Coo.add coo [| 2; 1 |] 3.0;
  Coo.add coo [| 3; 0 |] 4.0;
  let t = T.of_coo ~name:"t" ~format:(F.csr ()) coo in
  let s = Tile.restrict t ~modes:[ 0 ] ~lo:1 ~hi:3 in
  Alcotest.(check (array int)) "sliced dims" [| 2; 3 |] (T.dims s);
  Alcotest.(check int) "sliced nnz" 2 (T.nnz s)

let test_tile_plan_structural () =
  (* on the default chip the operands fit: tiling must refuse, so the
     fallback ladder keeps its pinned retile/cpu behavior *)
  let c = spmv_compiled ~n:16 ~density:0.3 () in
  match Tile.plan Arch.default c with
  | Error reason ->
      Alcotest.(check bool)
        "refusal says structural" true
        (String.length reason > 0)
  | Ok _ -> Alcotest.fail "tiling planned although the data fits on chip"

let test_tile_plan_capacity () =
  let c = spmv_compiled () in
  match Tile.plan cramped_config.Sim.arch c with
  | Error reason -> Alcotest.failf "no plan on the cramped chip: %s" reason
  | Ok (shard, ranges) ->
      Alcotest.(check string) "shards the row variable" "i" shard.Tile.var;
      Alcotest.(check bool) "at least two tiles" true (List.length ranges >= 2);
      (* ranges partition [0, extent) *)
      let covered =
        List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges
      in
      Alcotest.(check int) "ranges cover the extent" shard.Tile.extent covered

let test_tiled_fallback_end_to_end () =
  Metrics.reset ();
  let c = spmv_compiled () in
  (* the untiled kernel must really not fit this chip *)
  let u = Resources.count cramped_config.Sim.arch c in
  Alcotest.(check bool) "untiled spmv is infeasible" false u.Resources.feasible;
  match Fallback.run ~policy:Fallback.Tiled ~config:cramped_config c with
  | Error ds ->
      Alcotest.failf "tiled fallback failed: %a"
        Fmt.(list ~sep:(any "; ") Diag.pp)
        ds
  | Ok o ->
      (match o.Fallback.backend with
      | Fallback.Capstan_tiled _ -> ()
      | b -> Alcotest.failf "expected capstan-tiled, got %s" (Fallback.backend_name b));
      Alcotest.(check bool)
        "W0105 warning in the trail" true
        (List.exists
           (fun (d : Diag.t) -> d.Diag.code = Diag.code_fallback_tiled)
           o.Fallback.diags);
      (* the reduced result equals the untiled CPU reference *)
      let expected, _, _ = Imp.run c.C.plan ~inputs:c.C.inputs in
      let y = List.assoc "y" o.Fallback.results in
      Alcotest.(check bool)
        "tiled result matches the untiled reference" true
        (T.approx_equal y (List.assoc "y" expected));
      Alcotest.(check bool)
        "tiling metrics recorded" true
        (Metrics.value (Metrics.counter "tiling_success_total") >= 1.0)

let test_tiled_policy_gating () =
  let c = spmv_compiled () in
  (* Retile policy must not take the tiled rung *)
  match Fallback.run ~policy:Fallback.Retile ~config:cramped_config c with
  | Ok o -> (
      match o.Fallback.backend with
      | Fallback.Capstan_tiled _ ->
          Alcotest.fail "retile policy took the tiled rung"
      | _ -> ())
  | Error _ -> (* failing outright is fine; tiling was off the table *) ()

let suite =
  [
    Alcotest.test_case "corpus: stable E021x codes and lines" `Quick
      test_corpus_codes;
    Alcotest.test_case "corpus: pinned messages" `Quick test_corpus_messages;
    Alcotest.test_case "rejects carry spans and file context" `Quick test_spans;
    Alcotest.test_case "good.mtx: agrees with legacy reader" `Quick
      test_good_mtx;
    Alcotest.test_case "good.tns: agrees with legacy reader" `Quick
      test_good_tns;
    Alcotest.test_case "ingestion is fingerprint-deterministic" `Quick
      test_fingerprint_stable;
    Alcotest.test_case "budgets reject with E0214" `Quick test_budgets;
    Alcotest.test_case "fault injection stays in the envelope" `Quick
      test_faults;
    Alcotest.test_case "fd gauge returns to zero" `Quick test_fd_balance;
    Alcotest.test_case "mutation fuzz burst: no escapes" `Quick
      test_fuzz_burst;
    QCheck_alcotest.to_alcotest prop_mtx_roundtrip;
    QCheck_alcotest.to_alcotest prop_tns_roundtrip;
    Alcotest.test_case "tile: restrict slices and remaps" `Quick
      test_tile_restrict;
    Alcotest.test_case "tile: plan refuses structural misfits" `Quick
      test_tile_plan_structural;
    Alcotest.test_case "tile: plan shards on capacity misfits" `Quick
      test_tile_plan_capacity;
    Alcotest.test_case "tiled fallback matches untiled reference" `Quick
      test_tiled_fallback_end_to_end;
    Alcotest.test_case "retile policy skips the tiled rung" `Quick
      test_tiled_policy_gating;
  ]
