(* Process-wide dataset-statistics cache: behavior invariance (cached and
   uncached estimates are bit-identical), fingerprint discrimination,
   determinism under parallel Pool workers, and the cache-miss reduction
   the autotuner relies on. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Stats_cache = Stardust_tensor.Stats_cache
module K = Stardust_core.Kernels
module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module D = Stardust_workloads.Datasets
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Case = Stardust_oracle.Case
module Gen = Stardust_oracle.Gen

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Estimate with the cache disabled, then enabled from cold, then enabled
   from warm; all three must be bit-identical (evaluation is pure and the
   fast paths run the same monomorphic code cached or not). *)
let assert_invariant name compiled =
  Stats_cache.set_enabled false;
  let uncached = Sim.estimate ~config:Sim.default_config compiled in
  Stats_cache.set_enabled true;
  Stats_cache.reset ();
  let cold = Sim.estimate ~config:Sim.default_config compiled in
  let warm = Sim.estimate ~config:Sim.default_config compiled in
  checkb (name ^ ": cached(cold) = uncached") true (cold = uncached);
  checkb (name ^ ": cached(warm) = uncached") true (warm = uncached)

let kernel_invariance () =
  let stage spec = List.hd spec.K.stages in
  let spmv =
    K.compile_stage K.spmv (stage K.spmv)
      ~inputs:
        [
          ( "A",
            D.small_random ~seed:3 ~name:"A" ~format:(F.csr ())
              ~dims:[ 32; 32 ] ~density:0.2 () );
          ("x", D.dense_vector ~seed:4 ~name:"x" ~dim:32 ());
        ]
  in
  assert_invariant "spmv" spmv;
  let sddmm =
    K.compile_stage K.sddmm (stage K.sddmm)
      ~inputs:
        [
          ( "B",
            D.small_random ~seed:5 ~name:"B" ~format:(F.csr ())
              ~dims:[ 20; 22 ] ~density:0.2 () );
          ( "C",
            D.dense_matrix ~seed:6 ~name:"C" ~format:(F.rm ()) ~rows:20
              ~cols:8 () );
          ( "D",
            D.dense_matrix ~seed:7 ~name:"D" ~format:(F.rm ()) ~rows:22
              ~cols:8 () );
        ]
  in
  assert_invariant "sddmm" sddmm;
  let ttv =
    K.compile_stage K.ttv (stage K.ttv)
      ~inputs:
        [
          ( "B",
            D.small_random ~seed:8 ~name:"B" ~format:(F.csf 3)
              ~dims:[ 10; 11; 12 ] ~density:0.15 () );
          ("c", D.dense_vector ~seed:9 ~name:"c" ~dim:12 ());
        ]
  in
  assert_invariant "ttv" ttv

(* 50 generator-drawn cases: every one that compiles must estimate
   bit-identically with and without the cache. *)
let oracle_case_invariance () =
  let attempted = ref 0 in
  for seed = 0 to 49 do
    match Case.prepare (Gen.gen ~seed) with
    | Error _ -> ()
    | Ok p -> (
        match
          Compile.compile_result ~name:"fuzz" p.Case.sched
            ~inputs:p.Case.inputs
        with
        | Error _ -> ()
        | Ok c -> (
            match
              Stats_cache.set_enabled false;
              Sim.estimate c
            with
            | exception Sim.Sim_error _ -> Stats_cache.set_enabled true
            | uncached ->
                Stats_cache.set_enabled true;
                Stats_cache.reset ();
                incr attempted;
                let cached = Sim.estimate c in
                checkb
                  (Printf.sprintf "case %d cached = uncached" seed)
                  true (cached = uncached)))
  done;
  checkb "estimated a meaningful number of cases" true (!attempted >= 10)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let of_entries name entries =
  T.of_entries ~name ~format:(F.csr ()) ~dims:[ 8; 8 ] entries

let fingerprint_discriminates () =
  let e1 = [ ([ 0; 1 ], 1.0); ([ 3; 4 ], 2.0); ([ 7; 2 ], 3.0) ] in
  let e2 = [ ([ 0; 1 ], 1.0); ([ 3; 4 ], 2.5); ([ 7; 2 ], 3.0) ] in
  let e3 = [ ([ 0; 1 ], 1.0); ([ 3; 5 ], 2.0); ([ 7; 2 ], 3.0) ] in
  let fp l = Stats_cache.fingerprint (of_entries "A" l) in
  check Alcotest.string "same data, same fingerprint" (fp e1) (fp e1);
  checkb "different values differ" false (fp e1 = fp e2);
  checkb "different coordinates differ" false (fp e1 = fp e3);
  checkb "different name differs" false
    (fp e1 = Stats_cache.fingerprint (of_entries "B" e1))

(* ------------------------------------------------------------------ *)
(* Enable/disable round-trip                                           *)
(* ------------------------------------------------------------------ *)

let no_cache_round_trip () =
  let a =
    D.small_random ~seed:11 ~name:"A" ~format:(F.csr ()) ~dims:[ 16; 16 ]
      ~density:0.3 ()
  in
  Stats_cache.set_enabled true;
  Stats_cache.reset ();
  let s1 = Stats_cache.stats a in
  let c1 = Stats_cache.counters () in
  checki "first query misses" 1 c1.Stats_cache.misses;
  let s2 = Stats_cache.stats a in
  let c2 = Stats_cache.counters () in
  checki "second query hits" 1 c2.Stats_cache.hits;
  checkb "hit returns the same stats" true (s1 = s2);
  Stats_cache.set_enabled false;
  checkb "disabled reports disabled" false (Stats_cache.is_enabled ());
  let c0 = Stats_cache.counters () in
  let s3 = Stats_cache.stats a in
  let s4 = Stats_cache.stats a in
  let c3 = Stats_cache.counters () in
  checki "disabled queries all miss"
    (c0.Stats_cache.misses + 2)
    c3.Stats_cache.misses;
  checki "disabled queries never hit" c0.Stats_cache.hits
    c3.Stats_cache.hits;
  checkb "disabled results identical" true (s1 = s3 && s3 = s4);
  Stats_cache.set_enabled true;
  let s5 = Stats_cache.stats a in
  checkb "re-enabled results identical" true (s1 = s5)

(* ------------------------------------------------------------------ *)
(* LRU capacity bound                                                  *)
(* ------------------------------------------------------------------ *)

(* Shrink the bound to 2 entries and query 3 distinct tensors: the table
   stays bounded, evictions are counted, an evicted entry recomputes
   (bit-identically), and a kept entry still hits. *)
let lru_eviction () =
  let tensor seed =
    D.small_random ~seed ~name:(Printf.sprintf "T%d" seed)
      ~format:(F.csr ()) ~dims:[ 12; 12 ] ~density:0.3 ()
  in
  let orig_capacity = Stats_cache.capacity () in
  Fun.protect
    ~finally:(fun () -> Stats_cache.set_capacity orig_capacity)
    (fun () ->
      Stats_cache.set_enabled true;
      Stats_cache.reset ();
      Stats_cache.set_capacity 2;
      checki "capacity reports the bound" 2 (Stats_cache.capacity ());
      let a = tensor 31 and b = tensor 32 and c = tensor 33 in
      let sa = Stats_cache.stats a in
      let _ = Stats_cache.stats b in
      let _ = Stats_cache.stats c in
      checkb "table bounded to capacity" true (Stats_cache.size () <= 2);
      let after_fill = Stats_cache.counters () in
      checkb "overflow evicted at least one entry" true
        (after_fill.Stats_cache.evictions >= 1);
      (* [a] is the least recently used entry, so it was the victim;
         re-querying recomputes the same stats *)
      let sa' = Stats_cache.stats a in
      let after_requery = Stats_cache.counters () in
      checki "evicted entry recomputes (a miss)"
        (after_fill.Stats_cache.misses + 1)
        after_requery.Stats_cache.misses;
      checkb "recomputed stats bit-identical" true (sa = sa');
      (* [a] is now the most recent entry and must hit *)
      let _ = Stats_cache.stats a in
      checki "refilled entry hits"
        (after_requery.Stats_cache.hits + 1)
        (Stats_cache.counters ()).Stats_cache.hits;
      (* growing the bound back stops eviction *)
      Stats_cache.set_capacity 64;
      let grown = (Stats_cache.counters ()).Stats_cache.evictions in
      let _ = Stats_cache.stats b in
      let _ = Stats_cache.stats c in
      checki "no eviction under a roomy bound" grown
        (Stats_cache.counters ()).Stats_cache.evictions)

(* ------------------------------------------------------------------ *)
(* Search integration                                                  *)
(* ------------------------------------------------------------------ *)

let spmv_problem () =
  let a =
    D.small_random ~seed:21 ~name:"A" ~format:(F.csr ()) ~dims:[ 24; 24 ]
      ~density:0.2 ()
  in
  let x = D.dense_vector ~seed:22 ~name:"x" ~dim:24 () in
  Eval.problem_of_string ~name:"spmv"
    ~formats:[ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]
    ~inputs:[ ("A", a); ("x", x) ]
    "y(i) = A(i,j) * x(j)"

let sddmm_problem () =
  let b =
    D.small_random ~seed:23 ~name:"B" ~format:(F.csr ()) ~dims:[ 16; 18 ]
      ~density:0.2 ()
  in
  let c =
    D.dense_matrix ~seed:24 ~name:"C" ~format:(F.rm ()) ~rows:16 ~cols:8 ()
  in
  let d =
    D.dense_matrix ~seed:25 ~name:"D" ~format:(F.rm ()) ~rows:18 ~cols:8 ()
  in
  Eval.problem_of_string ~name:"sddmm"
    ~formats:
      [ ("A", F.csr ()); ("B", F.csr ()); ("C", F.rm ()); ("D", F.rm ()) ]
    ~inputs:[ ("B", b); ("C", c); ("D", d) ]
    "A(i,j) = B(i,j) * C(i,k) * D(j,k)"

let frontier_sig (r : Explore.result) =
  List.map
    (fun (e : Eval.eval) ->
      ( Stardust_explore.Point.fingerprint e.Eval.point,
        Eval.cycles e ))
    r.Explore.frontier

(* Domains racing on the shared cache must not change any search result:
   the frontier and every evaluation are identical at 1 and 4 workers. *)
let pool_determinism () =
  let p = spmv_problem () in
  Stats_cache.set_enabled true;
  Stats_cache.reset ();
  let r1 = Explore.run ~workers:1 p in
  Stats_cache.reset ();
  let r4 = Explore.run ~workers:4 p in
  checkb "frontier identical at 1 vs 4 workers" true
    (frontier_sig r1 = frontier_sig r4);
  checkb "evaluated cycles identical at 1 vs 4 workers" true
    (List.map Eval.cycles r1.Explore.evaluated
    = List.map Eval.cycles r4.Explore.evaluated)

(* The acceptance check of the tentpole: an exhaustive (grid) SDDMM
   search performs >= 10x fewer raw statistics computations with the
   cache than without, and returns the same frontier. *)
let grid_miss_reduction () =
  let p = sddmm_problem () in
  Stats_cache.set_enabled true;
  Stats_cache.reset ();
  let r_on = Explore.run ~workers:1 p in
  let on = Stats_cache.counters () in
  Stats_cache.set_enabled false;
  Stats_cache.reset ();
  let r_off = Explore.run ~workers:1 p in
  let off = Stats_cache.counters () in
  Stats_cache.set_enabled true;
  checkb "frontier unchanged by caching" true
    (frontier_sig r_on = frontier_sig r_off);
  checkb
    (Printf.sprintf "raw computations reduced >= 10x (%d -> %d)"
       off.Stats_cache.misses on.Stats_cache.misses)
    true
    (off.Stats_cache.misses >= 10 * on.Stats_cache.misses)

let suite =
  [
    Alcotest.test_case "cached estimates bit-identical (kernels)" `Quick
      kernel_invariance;
    Alcotest.test_case "cached estimates bit-identical (oracle cases)"
      `Quick oracle_case_invariance;
    Alcotest.test_case "fingerprint discriminates data" `Quick
      fingerprint_discriminates;
    Alcotest.test_case "no-stats-cache round-trip" `Quick
      no_cache_round_trip;
    Alcotest.test_case "LRU eviction under a tiny bound" `Quick lru_eviction;
    Alcotest.test_case "pool workers 1 vs 4 deterministic" `Quick
      pool_determinism;
    Alcotest.test_case "grid search >=10x fewer raw computations" `Quick
      grid_miss_reduction;
  ]
