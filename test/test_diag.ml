(* Diagnostics, graceful degradation, and fault injection.

   Covers the structured-diagnostic subsystem end to end: rendering and
   JSON, the result-typed compile driver, the simulator's watchdog and
   fault-injection hooks, the retile/CPU fallback chain, hardened tensor
   file I/O, and the pipeline retry policy.  A qcheck fuzzer asserts the
   driver's core invariant: no input string makes [compile_string_result]
   escape with anything but [Ok] or [Error diags]. *)

module Diag = Stardust_diag.Diag
module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Io = Stardust_tensor.Tensor_io
module P = Stardust_ir.Parser
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Pipeline = Stardust_core.Pipeline
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Fallback = Stardust_driver.Fallback
module Ref = Stardust_vonneumann.Reference
module D = Stardust_workloads.Datasets

let close a b = T.approx_equal a b

let spmv_expr = "y(i) = A(i,j) * x(j)"
let spmv_formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]

let spmv_inputs ?(n = 16) () =
  [
    ("A",
     D.small_random ~seed:3 ~name:"A" ~format:(F.csr ()) ~dims:[ n; n ]
       ~density:0.2 ());
    ("x", D.dense_vector ~seed:4 ~name:"x" ~dim:n ());
  ]

let compile_spmv () =
  let st = List.hd K.spmv.K.stages in
  K.compile_stage K.spmv st ~inputs:(spmv_inputs ())

let spmv_expected inputs =
  Ref.eval (P.parse_assign spmv_expr) ~inputs ~result_format:(F.dv ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Rendering and collection                                            *)
(* ------------------------------------------------------------------ *)

let test_pp_and_json () =
  let d =
    Diag.error ~stage:Diag.Plan ~code:Diag.code_plan
      ~context:[ ("kernel", "spmv") ]
      "no co-iteration strategy for %s" "j"
  in
  let s = Diag.to_string d in
  Alcotest.(check bool) "one-line form" true
    (contains s "error[E0301][plan] no co-iteration strategy for j");
  Alcotest.(check bool) "context rendered" true (contains s "kernel=spmv");
  let j = Diag.to_json d in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (Fmt.str "json has %s" frag) true (contains j frag))
    [ "\"severity\":\"error\""; "\"stage\":\"plan\""; "\"code\":\"E0301\"";
      "\"context\":{\"kernel\":\"spmv\"}" ];
  (* escaping: quotes and newlines must not break the JSON *)
  let tricky = Diag.error ~stage:Diag.Io ~code:Diag.code_io "bad \"line\"\n" in
  Alcotest.(check bool) "escaped quote" true
    (contains (Diag.to_json tricky) "bad \\\"line\\\"\\n");
  let l = Diag.list_to_json [ d; tricky ] in
  Alcotest.(check bool) "list is an array" true
    (l.[0] = '[' && l.[String.length l - 1] = ']')

let test_render_caret () =
  let src = "y(i) = A(i,j) * z(j)" in
  let d =
    Diag.error ~stage:Diag.Parse ~code:Diag.code_parse
      ~span:{ Diag.start = 16; stop = 20 } "unknown tensor z"
  in
  let s = Diag.render_string ~src d in
  Alcotest.(check bool) "source line shown" true (contains s src);
  Alcotest.(check bool) "caret drawn" true (contains s "^");
  (* the caret sits under the span start *)
  (match String.split_on_char '\n' s with
  | [ _; _; caret_line ] ->
      let col = String.index caret_line '^' in
      Alcotest.(check int) "caret column" 16 (col - String.length "  | ")
  | _ -> Alcotest.fail "expected three render lines");
  (* spans outside the source degrade to the one-line form *)
  let wild = { d with Diag.span = Some { Diag.start = 999; stop = 1000 } } in
  Alcotest.(check bool) "wild span degrades" true
    (not (contains (Diag.render_string ~src wild) "^"))

let test_collector () =
  let c = Diag.Collector.create () in
  Alcotest.(check bool) "empty" true (Diag.Collector.is_empty c);
  Diag.Collector.add c
    (Diag.warning ~stage:Diag.Driver ~code:Diag.code_retry "w");
  Diag.Collector.add c (Diag.error ~stage:Diag.Plan ~code:Diag.code_plan "e");
  Diag.Collector.add_all c
    [ Diag.note ~stage:Diag.Driver ~code:Diag.code_fallback_cpu "n" ];
  Alcotest.(check int) "one error" 1 (Diag.Collector.error_count c);
  Alcotest.(check bool) "has errors" true (Diag.Collector.has_errors c);
  Alcotest.(check int) "emission order kept" 3
    (List.length (Diag.Collector.to_list c));
  match Diag.Collector.to_list c with
  | [ w; e; n ] ->
      Alcotest.(check string) "first" "w" w.Diag.message;
      Alcotest.(check string) "second" "e" e.Diag.message;
      Alcotest.(check string) "third" "n" n.Diag.message
  | _ -> Alcotest.fail "expected three diagnostics"

(* ------------------------------------------------------------------ *)
(* Result-typed compile driver                                         *)
(* ------------------------------------------------------------------ *)

let test_compile_result_parse_error () =
  match
    C.compile_string_result ~formats:spmv_formats ~inputs:(spmv_inputs ())
      "y(i = A(i,j"
  with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error ds ->
      let d = List.hd ds in
      Alcotest.(check string) "code" Diag.code_parse d.Diag.code;
      Alcotest.(check bool) "stage parse" true (d.Diag.stage = Diag.Parse);
      Alcotest.(check bool) "span points into the source" true
        (match d.Diag.span with Some _ -> true | None -> false)

let test_compile_result_plan_error () =
  (* an undefined tensor survives parsing and dies later with a
     stage-tagged diagnostic, not a raw exception *)
  match
    C.compile_string_result ~name:"bad" ~formats:spmv_formats
      ~inputs:(spmv_inputs ()) "y(i) = Q(i,j) * x(j)"
  with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error ds ->
      Alcotest.(check bool) "all are errors" true
        (List.for_all Diag.is_error ds);
      Alcotest.(check bool) "kernel context attached" true
        (List.for_all
           (fun d -> List.mem_assoc "kernel" d.Diag.context)
           ds)

let test_compile_result_ok () =
  match
    C.compile_string_result ~name:"spmv" ~formats:spmv_formats
      ~inputs:(spmv_inputs ()) spmv_expr
  with
  | Error ds -> Alcotest.failf "unexpected: %s" (Diag.list_to_json ds)
  | Ok c ->
      let results, _ = Sim.execute c in
      Alcotest.(check bool) "simulates correctly" true
        (close (List.assoc "y" results) (spmv_expected (spmv_inputs ())))

(* No input string may make the driver escape with a non-diagnostic
   exception: it returns Ok or Error, full stop. *)
let fuzz_compile_total =
  let base = spmv_expr in
  let gen =
    QCheck.Gen.(
      oneof
        [
          (* arbitrary printable garbage *)
          string_size ~gen:printable (int_range 0 40);
          (* single-character mutation of a valid kernel *)
          map2
            (fun pos c ->
              let b = Bytes.of_string base in
              Bytes.set b (pos mod Bytes.length b) c;
              Bytes.to_string b)
            (int_range 0 1000) printable;
          (* random splice into a valid kernel *)
          map2
            (fun i s ->
              let i = i mod (String.length base + 1) in
              String.sub base 0 i ^ s
              ^ String.sub base i (String.length base - i))
            (int_range 0 1000)
            (string_size ~gen:printable (int_range 0 8));
        ])
  in
  QCheck.Test.make ~name:"compile_string_result never raises" ~count:200
    (QCheck.make ~print:(fun s -> Printf.sprintf "%S" s) gen)
    (fun s ->
      match
        C.compile_string_result ~formats:spmv_formats
          ~inputs:(spmv_inputs ()) s
      with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Simulator hardening: watchdog and fault injection                   *)
(* ------------------------------------------------------------------ *)

let test_watchdog () =
  let c = compile_spmv () in
  match Sim.execute ~watchdog:10.0 c with
  | _ -> Alcotest.fail "expected the watchdog to trip"
  | exception Sim.Sim_error { kind = Sim.Watchdog; message } ->
      Alcotest.(check bool) "message names the budget" true
        (contains message "watchdog")
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_fault_dram_stall () =
  let c = compile_spmv () in
  let results0, r0 = Sim.execute c in
  let results1, r1 =
    Sim.execute ~faults:[ Sim.Dram_stall_storm { factor = 64.0 } ] c
  in
  (* a stall storm slows the kernel but cannot change its answer *)
  Alcotest.(check bool) "slower under the storm" true
    (r1.Sim.cycles >= r0.Sim.cycles);
  Alcotest.(check bool) "strictly memory-degraded" true
    (r1.Sim.seconds > r0.Sim.seconds);
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool)
        (Fmt.str "result %s unchanged" name)
        true
        (close t (List.assoc name results1)))
    results0

let expect_sim_error ~what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Sim_error" what
  | exception Sim.Sim_error { kind; _ } ->
      Alcotest.(check bool)
        (Fmt.str "%s: recoverable kind, got %s" what (Sim.error_kind_name kind))
        true
        (match kind with
        | Sim.Capacity | Sim.Watchdog | Sim.Fault -> true
        | Sim.Runtime -> false)
  | exception e ->
      Alcotest.failf "%s: unstructured exception %s" what
        (Printexc.to_string e)

let test_fault_corrupt_pos () =
  let c = compile_spmv () in
  expect_sim_error ~what:"huge pos" (fun () ->
      Sim.execute ~watchdog:1e6
        ~faults:[ Sim.Corrupt_pos { tensor = "A"; level = 1; index = 1; value = 1e6 } ]
        c);
  expect_sim_error ~what:"negative pos" (fun () ->
      Sim.execute ~watchdog:1e6
        ~faults:
          [ Sim.Corrupt_pos { tensor = "A"; level = 1; index = 2; value = -5.0 } ]
        c)

let test_fault_corrupt_crd () =
  let c = compile_spmv () in
  expect_sim_error ~what:"out-of-range crd" (fun () ->
      Sim.execute ~watchdog:1e6
        ~faults:
          [ Sim.Corrupt_crd { tensor = "A"; level = 1; index = 0; value = 1e7 } ]
        c)

let test_fault_bad_spec () =
  let c = compile_spmv () in
  let check_fault what faults =
    match Sim.execute ~faults c with
    | _ -> Alcotest.failf "%s: expected Sim_error" what
    | exception Sim.Sim_error { kind = Sim.Fault; _ } -> ()
    | exception e ->
        Alcotest.failf "%s: wrong exception %s" what (Printexc.to_string e)
  in
  check_fault "unknown tensor"
    [ Sim.Corrupt_pos { tensor = "nope"; level = 0; index = 0; value = 0.0 } ];
  check_fault "index out of image"
    [ Sim.Corrupt_pos { tensor = "A"; level = 1; index = 999999; value = 0.0 } ]

(* ------------------------------------------------------------------ *)
(* Fallback chain                                                      *)
(* ------------------------------------------------------------------ *)

let tiny_chip n = { Sim.default_config with Sim.arch = { Arch.default with Arch.num_pmu = n } }

let test_fallback_none () =
  let c = compile_spmv () in
  match Fallback.run ~policy:Fallback.No_fallback ~config:(tiny_chip 1) c with
  | Ok _ -> Alcotest.fail "expected infeasibility"
  | Error ds ->
      let d = List.hd ds in
      Alcotest.(check string) "infeasible code" Diag.code_infeasible d.Diag.code;
      Alcotest.(check bool) "names the limiting resource" true
        (List.mem_assoc "limiting" d.Diag.context)

let test_fallback_retile () =
  let c = compile_spmv () in
  match Fallback.run ~policy:Fallback.Retile ~config:(tiny_chip 4) c with
  | Error ds -> Alcotest.failf "retile failed: %s" (Diag.list_to_json ds)
  | Ok o ->
      (match o.Fallback.backend with
      | Fallback.Capstan_retiled _ -> ()
      | b -> Alcotest.failf "wrong backend %s" (Fallback.backend_name b));
      Alcotest.(check bool) "retile warning emitted" true
        (List.exists
           (fun d -> d.Diag.code = Diag.code_fallback_retile)
           o.Fallback.diags);
      Alcotest.(check bool) "retiled results still correct" true
        (close
           (List.assoc "y" o.Fallback.results)
           (spmv_expected (spmv_inputs ())))

let test_fallback_cpu () =
  let c = compile_spmv () in
  (* one PMU: no retiled mapping can fit either, so only the CPU policy
     survives *)
  (match Fallback.run ~policy:Fallback.Retile ~config:(tiny_chip 1) c with
  | Ok _ -> Alcotest.fail "retile policy should stop short"
  | Error ds ->
      Alcotest.(check bool) "policy boundary reported" true
        (List.exists
           (fun d ->
             Diag.is_error d && d.Diag.code = Diag.code_infeasible)
           ds));
  match Fallback.run ~policy:Fallback.Cpu ~config:(tiny_chip 1) c with
  | Error ds -> Alcotest.failf "cpu fallback failed: %s" (Diag.list_to_json ds)
  | Ok o ->
      Alcotest.(check bool) "cpu backend" true
        (o.Fallback.backend = Fallback.Cpu_baseline);
      Alcotest.(check bool) "no simulator report on the cpu path" true
        (o.Fallback.report = None);
      Alcotest.(check bool) "cpu warning emitted" true
        (List.exists
           (fun d -> d.Diag.code = Diag.code_fallback_cpu)
           o.Fallback.diags);
      (* the abandoned Capstan attempts ride along as notes, not errors *)
      Alcotest.(check bool) "trail is non-fatal" true
        (List.for_all (fun d -> not (Diag.is_error d)) o.Fallback.diags);
      Alcotest.(check bool) "cpu results correct" true
        (close
           (List.assoc "y" o.Fallback.results)
           (spmv_expected (spmv_inputs ())))

(* ------------------------------------------------------------------ *)
(* Hardened tensor I/O                                                 *)
(* ------------------------------------------------------------------ *)

let with_tmp content f =
  let path = Filename.temp_file "stardust_io" ".txt" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let header = "%%MatrixMarket matrix coordinate real general\n"

let check_mtx_error what content substr =
  with_tmp content (fun path ->
      match Io.read_matrix_market ~format:(F.csr ()) path with
      | _ -> Alcotest.failf "%s: expected Io_error" what
      | exception Io.Io_error m ->
          Alcotest.(check bool)
            (Fmt.str "%s: %S mentions %S" what m substr)
            true (contains m substr)
      | exception e ->
          Alcotest.failf "%s: unstructured exception %s" what
            (Printexc.to_string e))

let test_io_mtx_errors () =
  check_mtx_error "empty file" "" "unexpected end of file";
  check_mtx_error "no header" "1 1 1\n1 1 2.0\n" "missing MatrixMarket header";
  check_mtx_error "bad size line" (header ^ "3 3\n") ":2: bad size line";
  check_mtx_error "non-numeric size" (header ^ "3 x 3\n") ":2:";
  check_mtx_error "truncated entries"
    (header ^ "2 2 2\n1 1 1.0\n")
    ":3: truncated file: 1 of 2 entries";
  check_mtx_error "coordinate out of range"
    (header ^ "2 2 2\n1 1 1.0\n5 1 2.0\n")
    ":4: coordinate 5 (mode 0) exceeds the declared dimension 2";
  check_mtx_error "zero coordinate"
    (header ^ "2 2 1\n0 1 1.0\n")
    ":3: coordinate 0 (mode 0) is not positive";
  check_mtx_error "missing value" (header ^ "2 2 1\n1 1\n") ":3: missing value";
  check_mtx_error "duplicate entry"
    (header ^ "2 2 2\n1 1 1.0\n1 1 2.0\n")
    ":4: duplicate entry (1, 1)";
  check_mtx_error "trailing garbage"
    (header ^ "1 1 1\n1 1 2.0\njunk\n")
    ":4: trailing garbage"

let check_tns_error what content substr =
  with_tmp content (fun path ->
      match Io.read_tns ~format:(F.csr ()) path with
      | _ -> Alcotest.failf "%s: expected Io_error" what
      | exception Io.Io_error m ->
          Alcotest.(check bool)
            (Fmt.str "%s: %S mentions %S" what m substr)
            true (contains m substr)
      | exception e ->
          Alcotest.failf "%s: unstructured exception %s" what
            (Printexc.to_string e))

let test_io_tns_errors () =
  check_tns_error "ragged" "1 1 2.0\n1 1 1 3.0\n" ":2: ragged entry";
  check_tns_error "bad value" "1 1 abc\n" ":1:";
  check_tns_error "duplicate" "1 2 1.0\n1 2 4.0\n" ":2: duplicate entry 1 2";
  check_tns_error "empty" "" "no entries";
  with_tmp "1 1 2.0\n" (fun path ->
      match Io.read_tns ~format:(F.csr ()) ~dims:[ 3; 3; 3 ] path with
      | _ -> Alcotest.fail "expected arity mismatch"
      | exception Io.Io_error m ->
          Alcotest.(check bool) "arity mismatch reported" true
            (contains m "2 modes but dims declares 3"))

let test_io_valid_roundtrip_still_works () =
  (* hardening must not reject well-formed files: comments, blank tail *)
  with_tmp
    (header ^ "% a comment\n2 2 2\n1 2 1.5\n2 1 2.5\n\n% trailing comment\n")
    (fun path ->
      let t = Io.read_matrix_market ~format:(F.csr ()) path in
      Alcotest.(check int) "nnz" 2 (T.nnz t))

(* ------------------------------------------------------------------ *)
(* Pipeline retry policy                                               *)
(* ------------------------------------------------------------------ *)

let test_pipeline_retry_recovers () =
  let inputs = spmv_inputs () in
  let count = ref 0 in
  let execute c =
    incr count;
    (* the first two attempts hit an injected DRAM fault; the third runs
       clean — exactly the transient the retry budget exists for *)
    if !count <= 2 then
      raise (Sim.Sim_error { kind = Sim.Fault; message = "injected" })
    else fst (Sim.execute c)
  in
  match Pipeline.run_result ~retries:2 K.spmv ~inputs ~execute with
  | Error ds -> Alcotest.failf "expected recovery: %s" (Diag.list_to_json ds)
  | Ok t ->
      Alcotest.(check int) "two retry warnings" 2
        (List.length t.Pipeline.warnings);
      List.iter
        (fun d ->
          Alcotest.(check string) "retry code" Diag.code_retry d.Diag.code)
        t.Pipeline.warnings;
      (match t.Pipeline.stages with
      | [ s ] ->
          Alcotest.(check int) "retries recorded" 2 s.Pipeline.retries_used
      | _ -> Alcotest.fail "expected one stage");
      Alcotest.(check bool) "result correct after retries" true
        (close (List.assoc "y" t.Pipeline.results) (spmv_expected inputs))

let test_pipeline_retry_exhausted () =
  let inputs = spmv_inputs () in
  let execute _ =
    raise (Sim.Sim_error { kind = Sim.Fault; message = "always" })
  in
  match Pipeline.run_result ~retries:1 K.spmv ~inputs ~execute with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error ds ->
      Alcotest.(check bool) "retry warning kept in the trail" true
        (List.exists (fun d -> d.Diag.code = Diag.code_retry) ds);
      let errs = List.filter Diag.is_error ds in
      Alcotest.(check int) "one error" 1 (List.length errs);
      let d = List.hd errs in
      Alcotest.(check string) "stage-failure code" Diag.code_pipeline_stage
        d.Diag.code;
      Alcotest.(check bool) "stage context attached" true
        (List.mem_assoc "stage" d.Diag.context
        && List.mem_assoc "expr" d.Diag.context)

let suite =
  [
    Alcotest.test_case "pp and json" `Quick test_pp_and_json;
    Alcotest.test_case "caret rendering" `Quick test_render_caret;
    Alcotest.test_case "collector" `Quick test_collector;
    Alcotest.test_case "compile_result parse error" `Quick
      test_compile_result_parse_error;
    Alcotest.test_case "compile_result late error" `Quick
      test_compile_result_plan_error;
    Alcotest.test_case "compile_result ok" `Quick test_compile_result_ok;
    Alcotest.test_case "watchdog trips" `Quick test_watchdog;
    Alcotest.test_case "fault: dram stall storm" `Quick test_fault_dram_stall;
    Alcotest.test_case "fault: corrupt pos" `Quick test_fault_corrupt_pos;
    Alcotest.test_case "fault: corrupt crd" `Quick test_fault_corrupt_crd;
    Alcotest.test_case "fault: bad injection spec" `Quick test_fault_bad_spec;
    Alcotest.test_case "fallback: none fails structurally" `Quick
      test_fallback_none;
    Alcotest.test_case "fallback: retile" `Quick test_fallback_retile;
    Alcotest.test_case "fallback: cpu" `Quick test_fallback_cpu;
    Alcotest.test_case "io: malformed mtx" `Quick test_io_mtx_errors;
    Alcotest.test_case "io: malformed tns" `Quick test_io_tns_errors;
    Alcotest.test_case "io: valid file still reads" `Quick
      test_io_valid_roundtrip_still_works;
    Alcotest.test_case "pipeline: retry recovers" `Quick
      test_pipeline_retry_recovers;
    Alcotest.test_case "pipeline: retries exhausted" `Quick
      test_pipeline_retry_exhausted;
    QCheck_alcotest.to_alcotest fuzz_compile_total;
  ]
