(* Stardust test suite entry point: one alcotest section per library. *)

let () =
  Alcotest.run "stardust"
    [
      ("tensor", Test_tensor.suite);
      ("stats_cache", Test_stats_cache.suite);
      ("ir", Test_ir.suite);
      ("schedule", Test_schedule.suite);
      ("lower", Test_lower.suite);
      ("spatial", Test_spatial.suite);
      ("backends", Test_backends.suite);
      ("vonneumann", Test_vonneumann.suite);
      ("capstan", Test_capstan.suite);
      ("workloads", Test_workloads.suite);
      ("edge", Test_edge.suite);
      ("properties", Test_properties.suite);
      ("explore", Test_explore.suite);
      ("diag", Test_diag.suite);
      ("oracle", Test_oracle.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("ingest", Test_ingest.suite);
    ]
