(* Tests for Stardust_explore: legality predicates, the parallel pool,
   Pareto filtering, and end-to-end search properties. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module P = Stardust_ir.Parser
module Legality = Stardust_core.Legality
module K = Stardust_core.Kernels
module Resources = Stardust_capstan.Resources
module D = Stardust_workloads.Datasets
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Point = Stardust_explore.Point
module Space = Stardust_explore.Space
module Pool = Stardust_explore.Pool
module Pareto = Stardust_explore.Pareto

(* ------------------------------------------------------------------ *)
(* Legality predicates (shared by the heuristic and the explorer)      *)
(* ------------------------------------------------------------------ *)

let spmv_assign = P.parse_assign "y(i) = A(i,j) * x(j)"
let spmv_formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]

let sddmm_assign = P.parse_assign "A(i,j) = B(i,j) * C(i,k) * D(j,k)"

let sddmm_formats =
  [ ("A", F.csr ()); ("B", F.csr ()); ("C", F.rm ()); ("D", F.rm ()) ]

let test_respects_levels () =
  Alcotest.(check bool)
    "CSR canonical order is legal" true
    (Legality.respects_levels ~formats:spmv_formats spmv_assign [ "i"; "j" ]);
  Alcotest.(check bool)
    "CSR reversed order binds j before its parent level" false
    (Legality.respects_levels ~formats:spmv_formats spmv_assign [ "j"; "i" ])

let test_legal_orders () =
  Alcotest.(check (list (list string)))
    "SpMV has exactly one legal order" [ [ "i"; "j" ] ]
    (Legality.legal_orders ~formats:spmv_formats spmv_assign [ "i"; "j" ]);
  let orders =
    Legality.legal_orders ~formats:sddmm_formats sddmm_assign [ "i"; "j"; "k" ]
  in
  Alcotest.(check bool)
    "SDDMM canonical order is among the legal ones" true
    (List.mem [ "i"; "j"; "k" ] orders);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Fmt.str "order %s respects levels" (String.concat "," o))
        true
        (Legality.respects_levels ~formats:sddmm_formats sddmm_assign o))
    orders

let test_dense_last () =
  (* A reduction variable that only indexes dense levels sinks below the
     ones that touch compressed levels. *)
  let formats = [ ("alpha", F.make []); ("b", F.sv ()); ("c", F.dv ()) ] in
  let a = P.parse_assign "alpha = b(i) * c(j)" in
  let reordered, moved = Legality.dense_last ~formats a [ "j"; "i" ] in
  Alcotest.(check bool) "dense-only var moved" true moved;
  Alcotest.(check (list string))
    "j sinks below the sparse var" [ "i"; "j" ] reordered;
  (* SpMV's reduction variable indexes a compressed level: no move. *)
  let same, moved =
    Legality.dense_last ~formats:spmv_formats spmv_assign [ "j" ]
  in
  Alcotest.(check bool) "nothing to move for SpMV" false moved;
  Alcotest.(check (list string)) "order unchanged" [ "j" ] same

let test_uses_gather () =
  Alcotest.(check bool)
    "SpMV gathers the dense vector" true
    (Legality.uses_gather ~formats:spmv_formats spmv_assign);
  let formats = [ ("a", F.sv ()); ("b", F.sv ()); ("c", F.sv ()) ] in
  Alcotest.(check bool)
    "sparse-sparse add gathers nothing" false
    (Legality.uses_gather ~formats (P.parse_assign "a(i) = b(i) + c(i)"))

(* ------------------------------------------------------------------ *)
(* Pool: deterministic parallel map and memo cache                     *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let xs = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) xs in
  List.iter
    (fun workers ->
      Alcotest.(check (array int))
        (Fmt.str "map with %d workers preserves order" workers)
        expect
        (Pool.map ~workers (fun i -> i * i) xs))
    [ 1; 2; 4 ]

let test_pool_map_exception () =
  List.iter
    (fun workers ->
      match
        Pool.map ~workers
          (fun i -> if i = 7 then failwith "boom 7" else i)
          (Array.init 16 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Worker_error"
      | exception Pool.Worker_error { index; exn = Failure m } ->
          Alcotest.(check int)
            (Fmt.str "failing item index with %d workers" workers)
            7 index;
          Alcotest.(check string) "original exception carried" "boom 7" m
      | exception e ->
          Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
    [ 1; 4 ]

(* Persistent pool lifecycle: a created handle serves many maps on the
   same parked domains, keeps the one-shot ordering guarantee, degrades
   to inline execution after shutdown, and runs nested submissions from
   inside a batch item inline instead of deadlocking. *)
let test_pool_lifecycle () =
  let pool = Pool.create ~workers:3 () in
  Alcotest.(check int) "size reports total workers" 3 (Pool.size pool);
  let xs = Array.init 50 (fun i -> i) in
  let expect = Array.map (fun i -> i + 1) xs in
  for round = 1 to 3 do
    Alcotest.(check (array int))
      (Fmt.str "round %d reuses the parked domains" round)
      expect
      (Pool.map ~pool (fun i -> i + 1) xs)
  done;
  (* a nested map from inside a batch item runs inline, not deadlocked *)
  let nested =
    Pool.map ~pool
      (fun i ->
        Alcotest.(check bool)
          "inside a pooled item the flag is set" true
          (Pool.in_pooled_task ());
        Array.fold_left ( + ) 0
          (Pool.map ~pool (fun j -> i * j) (Array.init 4 (fun j -> j))))
      (Array.init 6 (fun i -> i))
  in
  Alcotest.(check (array int))
    "nested results correct" [| 0; 6; 12; 18; 24; 30 |] nested;
  Alcotest.(check bool)
    "flag cleared outside pooled items" false (Pool.in_pooled_task ());
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check (array int))
    "map after shutdown degrades to inline" expect
    (Pool.map ~pool (fun i -> i + 1) xs)

(* Shutdown degradation is structured, never a hang or an assert:
   double shutdown is a no-op, submit-after-shutdown computes inline
   with correct values, and a shutdown from inside a pooled task is
   refused with a stable diagnostic instead of deadlocking the pool. *)
let test_pool_shutdown_edges () =
  let pool = Pool.create ~workers:2 () in
  (* shutdown requested from inside a pooled task: refused, stable code *)
  let results =
    Pool.map ~pool
      (fun i ->
        match Pool.shutdown pool with
        | () -> Alcotest.fail "expected shutdown-from-task to be refused"
        | exception Stardust_diag.Diag.Fail ds ->
            Alcotest.(check string)
              "refusal carries the internal-invariant code"
              Stardust_diag.Diag.code_internal
              (List.hd ds).Stardust_diag.Diag.code;
            i * 2)
      (Array.init 4 (fun i -> i))
  in
  Alcotest.(check (array int))
    "batch completes despite the refused shutdown" [| 0; 2; 4; 6 |] results;
  Pool.shutdown pool;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent, any number of times *);
  Alcotest.(check (array int))
    "submit after shutdown answers inline, right values" [| 1; 2; 3 |]
    (Pool.map ~pool (fun i -> i + 1) [| 0; 1; 2 |])

(* The deadline wrapper: timely work returns Ok, slow work is abandoned
   with the elapsed budget, and exceptions propagate unwrapped. *)
let test_pool_with_deadline () =
  (match Pool.with_deadline ~seconds:30.0 (fun () -> 6 * 7) with
  | Ok v -> Alcotest.(check int) "timely work returns its value" 42 v
  | Error _ -> Alcotest.fail "timely work must not be abandoned");
  (match
     Pool.with_deadline ~seconds:0.05 (fun () ->
         (* spin, don't sleep: abandonment must not depend on the
            workload yielding *)
         let rec spin deadline =
           if Unix.gettimeofday () < deadline then spin deadline
         in
         spin (Unix.gettimeofday () +. 10.0);
         0)
   with
  | Ok _ -> Alcotest.fail "spinning work must be abandoned"
  | Error (Pool.Deadline_expired seconds) ->
      Alcotest.(check (float 0.001)) "abandoned with its budget" 0.05 seconds
  | Error (Pool.Deadline_unenforceable _) ->
      Alcotest.fail "one runaway must not spend the abandoned budget");
  match Pool.with_deadline ~seconds:30.0 (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the exception to propagate"
  | exception Failure m ->
      Alcotest.(check string) "exception propagates unwrapped" "boom" m

(* Abandoned-domain accounting: runaways whose computations finish are
   reaped (joined) by later deadline-bearing calls, so a burst of
   short-lived timeouts never degrades deadline enforcement. *)
let test_pool_abandon_reap () =
  (* earlier tests may have left their own runaways (the with_deadline
     test's 10 s spinner); only this test's six must be reaped *)
  let baseline = Pool.reap_abandoned () in
  (* pile up several abandoned-but-finite runaways: each blows a 1 ms
     deadline, then finishes on its own ~50 ms later *)
  let spin_for seconds () =
    let stop = Unix.gettimeofday () +. seconds in
    let rec spin () = if Unix.gettimeofday () < stop then spin () in
    spin ();
    0
  in
  for _ = 1 to 6 do
    match Pool.with_deadline ~seconds:0.001 (spin_for 0.05) with
    | Ok _ -> Alcotest.fail "a 50ms spin must blow a 1ms deadline"
    | Error (Pool.Deadline_expired _) -> ()
    | Error (Pool.Deadline_unenforceable _) ->
        Alcotest.fail "six short runaways must not spend the budget"
  done;
  (* once the runaways have finished, the next call reaps them all and
     deadline enforcement is fully available again *)
  Unix.sleepf 0.2;
  (match Pool.with_deadline ~seconds:30.0 (fun () -> 21 * 2) with
  | Ok v -> Alcotest.(check int) "post-reap call succeeds" 42 v
  | Error _ -> Alcotest.fail "post-reap call must not be refused");
  Alcotest.(check bool)
    "every finished runaway reaped" true
    (Pool.reap_abandoned () <= baseline)

let test_pool_cache () =
  let cache : int Pool.Cache.t = Pool.Cache.create () in
  let calls = ref 0 in
  let f () = incr calls; 41 + 1 in
  let a = Pool.Cache.find_or_compute cache "k" f in
  let b = Pool.Cache.find_or_compute cache "k" f in
  Alcotest.(check int) "value" 42 a;
  Alcotest.(check int) "cached value" 42 b;
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one entry" 1 (Pool.Cache.size cache)

(* ------------------------------------------------------------------ *)
(* Pareto frontier                                                     *)
(* ------------------------------------------------------------------ *)

let test_pareto () =
  let pts = [ (4., 1.); (1., 4.); (2., 2.); (3., 3.); (2., 2.); (5., 0.5) ] in
  let obj x = Some x in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "dominated points dropped, sorted by primary"
    [ (1., 4.); (2., 2.); (4., 1.); (5., 0.5) ]
    (Pareto.frontier obj pts);
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "best is the cycle minimum" (Some (1., 4.))
    (Pareto.best obj pts);
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "empty input" None
    (Pareto.best obj [])

(* ------------------------------------------------------------------ *)
(* End-to-end search properties                                        *)
(* ------------------------------------------------------------------ *)

let spmv_problem seed =
  let a = D.small_random ~seed ~name:"A" ~format:(F.csr ()) ~dims:[ 24; 24 ]
      ~density:0.2 () in
  let x = D.dense_vector ~seed:(seed + 1) ~name:"x" ~dim:24 () in
  Eval.problem ~name:"spmv" ~formats:spmv_formats
    ~inputs:[ ("A", a); ("x", x) ]
    spmv_assign

let sddmm_problem seed =
  let b = D.small_random ~seed ~name:"B" ~format:(F.csr ()) ~dims:[ 16; 18 ]
      ~density:0.2 () in
  let c = D.dense_matrix ~seed:(seed + 1) ~name:"C" ~format:(F.rm ()) ~rows:16
      ~cols:8 () in
  let d = D.dense_matrix ~seed:(seed + 2) ~name:"D" ~format:(F.rm ()) ~rows:18
      ~cols:8 () in
  Eval.problem ~name:"sddmm" ~formats:sddmm_formats
    ~inputs:[ ("B", b); ("C", c); ("D", d) ]
    sddmm_assign

let mttkrp_problem seed =
  let st = List.hd K.mttkrp.K.stages in
  let b = D.small_random ~seed ~name:"B" ~format:(F.csf 3)
      ~dims:[ 8; 9; 10 ] ~density:0.15 () in
  let c = D.dense_matrix ~seed:(seed + 1) ~name:"C" ~format:(F.rm ()) ~rows:9
      ~cols:6 () in
  let d = D.dense_matrix ~seed:(seed + 2) ~name:"D" ~format:(F.rm ()) ~rows:10
      ~cols:6 () in
  Eval.problem_of_string ~name:"mttkrp" ~formats:st.K.formats
    ~inputs:[ ("B", b); ("C", c); ("D", d) ]
    st.K.expr

(* The heuristic's point is always enumerated first, so the explorer's
   best can never be slower than the autoscheduler's choice. *)
let check_never_worse name problem =
  let r = Explore.run ~workers:2 problem in
  (match (Option.bind r.Explore.best Eval.cycles,
          Eval.cycles r.Explore.seed_eval) with
  | Some best, Some seed ->
      if best > seed then
        Alcotest.failf "%s: explorer best %.0f slower than heuristic %.0f"
          name best seed
  | None, Some seed ->
      Alcotest.failf "%s: heuristic feasible (%.0f) but explorer found nothing"
        name seed
  | _, None -> (* heuristic point over budget: nothing to compare *) ());
  (* every frontier point must fit on the chip *)
  List.iter
    (fun (e : Eval.eval) ->
      match e.Eval.outcome with
      | Eval.Feasible { usage; _ } ->
          Alcotest.(check bool)
            (Fmt.str "%s frontier point %s fits" name
               (Point.to_string e.Eval.point))
            true usage.Resources.feasible
      | Eval.Infeasible reason ->
          Alcotest.failf "%s: infeasible point %s on the frontier (%s)" name
            (Point.to_string e.Eval.point) reason)
    r.Explore.frontier

let prop_never_worse =
  QCheck.Test.make ~name:"explorer best never slower than heuristic" ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      check_never_worse "spmv" (spmv_problem seed);
      check_never_worse "sddmm" (sddmm_problem seed);
      check_never_worse "mttkrp" (mttkrp_problem seed);
      true)

let frontier_points (r : Explore.result) =
  List.map (fun (e : Eval.eval) -> e.Eval.point) r.Explore.frontier

let test_determinism () =
  let p = sddmm_problem 11 in
  let r1 = Explore.run ~workers:1 p in
  let r4 = Explore.run ~workers:4 p in
  Alcotest.(check int)
    "same candidate count" r1.Explore.candidates r4.Explore.candidates;
  Alcotest.(check bool)
    "identical frontier regardless of worker count" true
    (List.for_all2 Point.equal (frontier_points r1) (frontier_points r4));
  let rg1 = Explore.run ~workers:1 ~strategy:Explore.Greedy p in
  let rg4 = Explore.run ~workers:4 ~strategy:Explore.Greedy p in
  Alcotest.(check bool)
    "greedy is worker-count independent too" true
    (List.for_all2 Point.equal (frontier_points rg1) (frontier_points rg4));
  let rr1 = Explore.run ~workers:1
      ~strategy:(Explore.Random { samples = 12; seed = 3 }) p in
  let rr4 = Explore.run ~workers:4
      ~strategy:(Explore.Random { samples = 12; seed = 3 }) p in
  Alcotest.(check bool)
    "seeded random search is reproducible" true
    (List.for_all2 Point.equal (frontier_points rr1) (frontier_points rr4))

let test_strategies_agree () =
  (* Greedy and random both start from the seed, so they can never beat
     exhaustive, and greedy must match or improve on the seed. *)
  let p = spmv_problem 5 in
  let rex = Explore.run p in
  let rgr = Explore.run ~strategy:Explore.Greedy p in
  match (Option.bind rex.Explore.best Eval.cycles,
         Option.bind rgr.Explore.best Eval.cycles) with
  | Some ex, Some gr ->
      Alcotest.(check bool) "greedy >= exhaustive best" true (gr >= ex);
      (match Eval.cycles rgr.Explore.seed_eval with
      | Some seed ->
          Alcotest.(check bool) "greedy <= its seed" true (gr <= seed)
      | None -> ())
  | _ -> Alcotest.fail "expected feasible best for SpMV"

(* ------------------------------------------------------------------ *)
(* Budgeted strategies                                                 *)
(* ------------------------------------------------------------------ *)

let eval_fps (r : Explore.result) =
  List.map
    (fun (e : Eval.eval) -> Point.fingerprint e.Eval.point)
    r.Explore.evaluated

(* The budgeted strategies are driven entirely from the driver thread
   (ranking, rung scheduling, PRNG draws), so their whole evaluation
   trail — not just the frontier — must be bit-identical at any worker
   count. *)
let test_budgeted_determinism () =
  let p = sddmm_problem 11 in
  List.iter
    (fun (name, strategy) ->
      let r1 = Explore.run ~workers:1 ~strategy p in
      let r4 = Explore.run ~workers:4 ~strategy p in
      Alcotest.(check (list string))
        (name ^ ": identical evaluation trail workers 1 vs 4")
        (eval_fps r1) (eval_fps r4);
      Alcotest.(check (list string))
        (name ^ ": identical frontier workers 1 vs 4")
        (List.map Point.fingerprint (frontier_points r1))
        (List.map Point.fingerprint (frontier_points r4));
      Alcotest.(check int)
        (name ^ ": same full-evaluation count")
        (List.length r1.Explore.evaluated)
        (List.length r4.Explore.evaluated);
      Alcotest.(check int)
        (name ^ ": same bound-evaluation count")
        r1.Explore.bound_evals r4.Explore.bound_evals)
    [
      ("halving", Explore.Halving);
      ("anneal", Explore.Anneal { seed = 7 });
      ("surrogate", Explore.Surrogate);
    ]

(* An explicit budget caps the number of distinct points submitted for
   full evaluation, whatever the strategy. *)
let test_budget_cap () =
  let p = spmv_problem 3 in
  List.iter
    (fun strategy ->
      let r = Explore.run ~workers:2 ~strategy ~budget:5 p in
      Alcotest.(check bool)
        "full evaluations within budget" true
        (List.length r.Explore.evaluated <= 5);
      Alcotest.(check (option int)) "budget reported" (Some 5) r.Explore.budget)
    [ Explore.Halving; Explore.Anneal { seed = 1 }; Explore.Surrogate ]

(* Acceptance: on the paper kernels at bench scale, halving and the
   linear surrogate reproduce exhaustive enumeration's exact Pareto
   frontier with at most a tenth of its full simulator evaluations. *)
let kernel_problem name n =
  let spec = Option.get (K.find name) in
  let st = List.hd spec.K.stages in
  Eval.problem_of_string ~name ~formats:st.K.formats
    ~inputs:(Stardust_serve.Workload.stage_random_inputs st n)
    st.K.expr

let test_budget_efficiency () =
  List.iter
    (fun kname ->
      let p = kernel_problem kname 256 in
      let axes =
        Space.efficiency_axes ~formats:p.Eval.formats p.Eval.expr
      in
      let ex = Explore.run ~workers:2 ~axes p in
      let ex_est = Explore.estimate_count ex in
      List.iter
        (fun (sname, strategy, budget) ->
          let r = Explore.run ~workers:2 ~strategy ~budget ~axes p in
          Alcotest.(check (list string))
            (Fmt.str "%s/%s: frontier identical to exhaustive" kname sname)
            (List.map Point.fingerprint (frontier_points ex))
            (List.map Point.fingerprint (frontier_points r));
          let est = Explore.estimate_count r in
          Alcotest.(check bool)
            (Fmt.str "%s/%s: %d estimates <= 10%% of exhaustive's %d" kname
               sname est ex_est)
            true
            (est * 10 <= ex_est))
        [ ("halving", Explore.Halving, 24); ("surrogate", Explore.Surrogate, 28) ])
    [ "spmv"; "sddmm"; "plus3" ]

(* The racing/surrogate strategies discard candidates whose lower bound
   exceeds a measured champion, so the bound must never exceed the
   simulator's estimate.  Checked over oracle-generated cases — the same
   adversarial corpus the differential tests use — at a grid of
   parallelization points. *)
let prop_bound_admissible =
  QCheck.Test.make ~name:"lower bound never exceeds the estimate" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let case = Stardust_oracle.Gen.gen ~seed in
      match Stardust_oracle.Case.prepare case with
      | Error _ -> true
      | Ok prep ->
          let formats =
            List.map
              (fun (ts : Stardust_oracle.Case.tensor_spec) ->
                (ts.Stardust_oracle.Case.tname, ts.Stardust_oracle.Case.fmt))
              case.Stardust_oracle.Case.tensors
            @ [
                ( case.Stardust_oracle.Case.result,
                  case.Stardust_oracle.Case.result_format );
              ]
          in
          let p =
            Eval.problem_of_string ~name:"oracle" ~formats
              ~inputs:prep.Stardust_oracle.Case.inputs
              case.Stardust_oracle.Case.expr
          in
          let pre = Eval.prepare p in
          List.iter
            (fun (op, ip) ->
              let pt = Point.make ~outer_par:op ~inner_par:ip () in
              match Eval.cycles (Eval.compute p pt) with
              | None -> ()
              | Some cycles ->
                  let b = Eval.lower_bound pre pt in
                  if b > cycles +. 1e-6 then
                    QCheck.Test.fail_reportf
                      "seed %d %s: bound %.2f > estimate %.2f at op=%d ip=%d"
                      seed case.Stardust_oracle.Case.expr b cycles op ip)
            [ (1, 1); (1, 16); (4, 4); (16, 1); (16, 16) ];
          true)

let test_seed_first () =
  (* The candidate list starts with the heuristic decision. *)
  let axes = Space.default_axes ~formats:spmv_formats spmv_assign in
  let pts = Space.points ~formats:spmv_formats spmv_assign axes in
  let seed = Space.seed ~formats:spmv_formats spmv_assign in
  Alcotest.(check bool) "non-empty space" true (pts <> []);
  Alcotest.(check bool)
    "heuristic seed enumerated first" true
    (Point.equal (List.hd pts) seed)

let suite =
  [
    Alcotest.test_case "legality: respects_levels" `Quick test_respects_levels;
    Alcotest.test_case "legality: legal_orders" `Quick test_legal_orders;
    Alcotest.test_case "legality: dense_last" `Quick test_dense_last;
    Alcotest.test_case "legality: uses_gather" `Quick test_uses_gather;
    Alcotest.test_case "pool: map preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "pool: exceptions propagate" `Quick
      test_pool_map_exception;
    Alcotest.test_case "pool: memo cache" `Quick test_pool_cache;
    Alcotest.test_case "pool: persistent lifecycle" `Quick
      test_pool_lifecycle;
    Alcotest.test_case "pool: shutdown edges are structured" `Quick
      test_pool_shutdown_edges;
    Alcotest.test_case "pool: with_deadline abandons slow work" `Quick
      test_pool_with_deadline;
    Alcotest.test_case "pool: abandoned domains are reaped" `Quick
      test_pool_abandon_reap;
    Alcotest.test_case "pareto frontier" `Quick test_pareto;
    Alcotest.test_case "search: worker-count determinism" `Quick
      test_determinism;
    Alcotest.test_case "search: strategies consistent" `Quick
      test_strategies_agree;
    Alcotest.test_case "space: seed enumerated first" `Quick test_seed_first;
    Alcotest.test_case "budgeted: worker-count determinism" `Quick
      test_budgeted_determinism;
    Alcotest.test_case "budgeted: explicit budget caps evaluations" `Quick
      test_budget_cap;
    Alcotest.test_case "budgeted: frontier at <=10% of exhaustive" `Quick
      test_budget_efficiency;
    QCheck_alcotest.to_alcotest prop_never_worse;
    QCheck_alcotest.to_alcotest prop_bound_admissible;
  ]
