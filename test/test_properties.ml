(* Additional randomized property tests across the whole stack. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Stats = Stardust_tensor.Stats
module P = Stardust_ir.Parser
module Ast = Stardust_ir.Ast
module K = Stardust_core.Kernels
module C = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
module Resources = Stardust_capstan.Resources
module Ref = Stardust_vonneumann.Reference
module Imp = Stardust_vonneumann.Imp_interp
module D = Stardust_workloads.Datasets

let close a b = T.approx_equal a b

let run_stage spec ~inputs =
  let st = List.hd spec.K.stages in
  let compiled = K.compile_stage spec st ~inputs in
  let expected =
    Ref.eval (P.parse_assign st.K.expr) ~inputs ~result_format:st.K.result_format
  in
  let sim, report = Sim.execute compiled in
  (compiled, List.assoc st.K.result sim, expected, report)

(* SDDMM on random masks and ranks: all backends agree. *)
let prop_sddmm_random =
  QCheck.Test.make ~name:"SDDMM agrees on random masks and ranks" ~count:25
    QCheck.(triple (int_range 0 500) (int_range 2 6) (int_range 1 9))
    (fun (seed, rank, d10) ->
      let b = D.small_random ~seed ~name:"B" ~format:(F.csr ()) ~dims:[ 6; 7 ]
          ~density:(float_of_int d10 /. 10.0) () in
      let c = D.dense_matrix ~seed:(seed + 1) ~name:"C" ~format:(F.rm ())
          ~rows:6 ~cols:rank () in
      let d = D.dense_matrix ~seed:(seed + 2) ~name:"D" ~format:(F.rm ())
          ~rows:7 ~cols:rank () in
      let inputs = [ ("B", b); ("C", c); ("D", d) ] in
      let compiled, sim, expected, _ = run_stage K.sddmm ~inputs in
      let cpu, _, _ = Imp.run compiled.C.plan ~inputs in
      close sim expected && close (List.assoc "A" cpu) expected)

(* TTV on random 3-tensors: all backends agree. *)
let prop_ttv_random =
  QCheck.Test.make ~name:"TTV agrees on random 3-tensors" ~count:25
    QCheck.(pair (int_range 0 500) (int_range 1 6))
    (fun (seed, d10) ->
      let b = D.small_random ~seed ~name:"B" ~format:(F.csf 3)
          ~dims:[ 4; 5; 6 ] ~density:(float_of_int d10 /. 10.0) () in
      QCheck.assume (T.nnz b > 0);
      let c = D.dense_vector ~seed:(seed + 1) ~name:"c" ~dim:6 () in
      let inputs = [ ("B", b); ("c", c) ] in
      let compiled, sim, expected, _ = run_stage K.ttv ~inputs in
      let cpu, _, _ = Imp.run compiled.C.plan ~inputs in
      close sim expected && close (List.assoc "A" cpu) expected)

(* The input format of the operands does not change the computed values. *)
let prop_format_invariance =
  QCheck.Test.make ~name:"result values are format-invariant" ~count:25
    QCheck.(int_range 0 500)
    (fun seed ->
      let b0 = D.small_random ~seed ~name:"B" ~format:(F.csr ()) ~dims:[ 5; 6 ]
          ~density:0.4 () in
      let x = D.dense_vector ~seed:(seed + 1) ~name:"x" ~dim:6 () in
      let results =
        List.map
          (fun fmt ->
            let b = T.rename "A" (T.convert ~format:fmt b0) in
            let formats = [ ("y", F.dv ()); ("A", fmt); ("x", F.dv ()) ] in
            let sched =
              Stardust_schedule.Schedule.of_assign ~formats
                (P.parse_assign "y(i) = A(i,j) * x(j)")
            in
            let compiled = C.compile sched ~inputs:[ ("A", b); ("x", x) ] in
            let sim, _ = Sim.execute compiled in
            List.assoc "y" sim)
          [ F.csr (); F.rm (); F.make [ F.Compressed; F.Compressed ] ]
      in
      match results with
      | r0 :: rest -> List.for_all (close r0) rest
      | [] -> false)

(* Simulated cycles never decrease when memory bandwidth decreases. *)
let prop_bandwidth_monotone =
  QCheck.Test.make ~name:"cycles are monotone in memory bandwidth" ~count:15
    QCheck.(int_range 0 500)
    (fun seed ->
      let b = D.small_random ~seed ~name:"A" ~format:(F.csr ()) ~dims:[ 8; 9 ]
          ~density:0.3 () in
      let x = D.dense_vector ~name:"x" ~dim:9 () in
      let st = List.hd K.spmv.K.stages in
      let compiled = K.compile_stage K.spmv st ~inputs:[ ("A", b); ("x", x) ] in
      let cyc bw =
        (Sim.estimate
           ~config:{ Sim.arch = Arch.default;
                     dram = Dram.with_bandwidth Dram.hbm2e bw }
           compiled).Sim.cycles
      in
      let c1 = cyc 10.0e9 and c2 = cyc 100.0e9 and c3 = cyc 1000.0e9 in
      c1 >= c2 && c2 >= c3)

(* Resource counts grow monotonically with inner parallelization. *)
let prop_resources_monotone =
  QCheck.Test.make ~name:"PMU/MC counts never shrink with outer par" ~count:10
    QCheck.(int_range 1 8)
    (fun op ->
      let inputs = List.assoc "SDDMM" Test_backend_data.small_inputs in
      let lo = { K.sddmm with K.outer_par = op } in
      let hi = { K.sddmm with K.outer_par = op * 2 } in
      let count spec =
        Resources.count Arch.default
          (K.compile_stage spec (List.hd spec.K.stages) ~inputs)
      in
      let a = count lo and b = count hi in
      b.Resources.pcu >= a.Resources.pcu && b.Resources.pmu >= a.Resources.pmu)

(* Parsing is a retraction of printing. *)
let prop_parse_print_roundtrip =
  let arb =
    QCheck.make
      ~print:(fun a -> Ast.assign_to_string a)
      QCheck.Gen.(
        let var = oneofl [ "i"; "j"; "k" ] in
        let access =
          map2
            (fun t vs -> Ast.Access { tensor = t; indices = vs })
            (oneofl [ "A"; "B"; "C" ])
            (map (fun v -> [ v ]) var)
        in
        let leaf =
          oneof [ access; map (fun n -> Ast.Const (float_of_int n)) (int_bound 9) ]
        in
        let rec expr n =
          if n = 0 then leaf
          else
            oneof
              [ leaf;
                map2 (fun a b -> Ast.Bin (Ast.Add, a, b)) (expr (n - 1)) (expr (n - 1));
                map2 (fun a b -> Ast.Bin (Ast.Mul, a, b)) (expr (n - 1)) (expr (n - 1));
                map2 (fun a b -> Ast.Bin (Ast.Sub, a, b)) (expr (n - 1)) (expr (n - 1));
                map (fun a -> Ast.Neg a) (expr (n - 1)) ]
        in
        map
          (fun e ->
            (* anchor the output variable so every extent is inferable *)
            { Ast.lhs = { tensor = "y"; indices = [ "i" ] };
              accum = false;
              rhs = Ast.Bin (Ast.Add, e, Ast.access "Z" [ "i" ]) })
          (expr 3))
  in
  QCheck.Test.make ~name:"parse (print e) evaluates like e" ~count:100 arb
    (fun a ->
      let reparsed = P.parse_assign (Ast.assign_to_string a) in
      (* structural equality can differ in association; compare by dense
         evaluation over small random tensors *)
      let mk name =
        D.small_random ~seed:(Hashtbl.hash name) ~name ~format:(F.dv ())
          ~dims:[ 4 ] ~density:0.8 ()
      in
      let inputs =
        List.map (fun n -> (n, mk n))
          (List.sort_uniq compare
             ([ "A"; "B"; "C"; "Z" ] @ Ast.tensors_of_expr a.Ast.rhs))
      in
      let v1 = Ref.eval a ~inputs ~result_format:(F.dv ()) in
      let v2 = Ref.eval reparsed ~inputs ~result_format:(F.dv ()) in
      close v1 v2)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sddmm_random;
      prop_ttv_random;
      prop_format_invariance;
      prop_bandwidth_monotone;
      prop_resources_monotone;
      prop_parse_print_roundtrip;
    ]
