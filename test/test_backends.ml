(* End-to-end backend tests: for every paper kernel on small data, four
   independent implementations must agree —

     dense reference  =  CIN interpreter  =  Capstan functional sim
                      =  imperative (TACO-style) CPU path

   — and the Capstan analytic estimate must match the functional
   execution's work tallies.  Plus property tests over random expressions
   and inputs. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module P = Stardust_ir.Parser
module S = Stardust_schedule.Schedule
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Ref = Stardust_vonneumann.Reference
module Interp = Stardust_vonneumann.Cin_interp
module Imp = Stardust_vonneumann.Imp_interp
module Cpu_lower = Stardust_vonneumann.Cpu_lower
module Imperative_ir = Stardust_vonneumann.Imperative_ir
module Profile = Stardust_vonneumann.Profile
module D = Stardust_workloads.Datasets

let checkb = Alcotest.check Alcotest.bool
let close a b = T.approx_equal a b

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* The four-way agreement check, per kernel                            *)
(* ------------------------------------------------------------------ *)

let run_kernel_stage (spec : K.spec) (st : K.stage) ~inputs =
  let compiled = K.compile_stage spec st ~inputs in
  let assign = P.parse_assign st.K.expr in
  let expected = Ref.eval assign ~inputs ~result_format:st.K.result_format in
  let sched = K.schedule_stage spec st in
  let interp =
    Interp.run sched ~inputs ~result:st.K.result ~result_format:st.K.result_format
  in
  let sim_results, report = Sim.execute compiled in
  let simmed = List.assoc st.K.result sim_results in
  let cpu_results, _tally, _func = Imp.run compiled.C.plan ~inputs in
  let cpu = List.assoc st.K.result cpu_results in
  let est = Sim.estimate compiled in
  (expected, interp, simmed, cpu, report, est)

let kernel_test (spec : K.spec) () =
  let pool = ref (List.assoc spec.K.kname Test_backend_data.small_inputs) in
  List.iter
    (fun (st : K.stage) ->
      let inputs =
        List.filter_map
          (fun (n, _) ->
            if n = st.K.result then None
            else Option.map (fun t -> (n, t)) (List.assoc_opt n !pool))
          st.K.formats
      in
      let expected, interp, simmed, cpu, report, est =
        run_kernel_stage spec st ~inputs
      in
      checkb "interpreter agrees" true (close interp expected);
      checkb "capstan sim agrees" true (close simmed expected);
      checkb "cpu path agrees" true (close cpu expected);
      let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b) in
      checkb "estimate iterations exact" true
        (rel est.Sim.iterations report.Sim.iterations < 1e-3);
      checkb "estimate compute close" true
        (rel est.Sim.compute_cycles report.Sim.compute_cycles < 0.05);
      checkb "estimate bytes close" true
        (rel est.Sim.streamed_bytes report.Sim.streamed_bytes < 0.05);
      checkb "nonzero work tallied" true (report.Sim.iterations > 0.0);
      pool := (st.K.result, simmed) :: !pool)
    spec.K.stages

let kernel_cases =
  List.map
    (fun (spec : K.spec) ->
      ("four-way agreement: " ^ spec.K.kname, `Quick, kernel_test spec))
    K.all

(* ------------------------------------------------------------------ *)
(* Simulator specifics                                                 *)
(* ------------------------------------------------------------------ *)

let spmv_compiled () =
  let spec = K.spmv in
  let st = List.hd spec.K.stages in
  let inputs = List.assoc "SpMV" Test_backend_data.small_inputs in
  K.compile_stage spec st ~inputs

let test_sim_configs_ordered () =
  let c = spmv_compiled () in
  let hbm = (Sim.estimate c).Sim.cycles in
  let ddr = (Sim.estimate ~config:{ Sim.arch = Stardust_capstan.Arch.default;
                                    dram = Stardust_capstan.Dram.ddr4 } c).Sim.cycles in
  let ideal = (Sim.estimate ~config:Sim.ideal_config c).Sim.cycles in
  checkb "ideal <= hbm" true (ideal <= hbm);
  checkb "hbm <= ddr4" true (hbm <= ddr)

let test_sim_plasticine_slower () =
  let c = spmv_compiled () in
  let hbm = (Sim.estimate c).Sim.compute_cycles in
  let plast =
    (Sim.estimate
       ~config:{ Sim.arch = Stardust_capstan.Arch.plasticine;
                 dram = Stardust_capstan.Dram.hbm2e } c).Sim.compute_cycles
  in
  checkb "plasticine slower (scalar sparse lanes)" true (plast > hbm)

let test_sim_fifo_discipline () =
  (* an unbalanced FIFO program fails loudly in the functional simulator *)
  let open Stardust_spatial.Spatial_ir in
  let prog =
    { name = "bad_fifo"; env = []; host_params = [];
      dram = [ { mem = "src_dram"; kind = Dram_dense; size = Int 4 } ];
      accel =
        [ Alloc { mem = "f"; kind = Fifo 16; size = Int 16 };
          Load_burst { dst = "f"; src = "src_dram"; lo = Int 0; hi = Int 2; par = 1 };
          Foreach { len = Int 4; par = 1; bind = "k"; trip = Trip_const 4;
                    body = [ Deq ("v", "f") ] } ] }
  in
  (* wrap into a fake compiled record via the public compile path is not
     possible; drive the machine through a tiny schedule instead *)
  ignore prog;
  (* deq more than enqueued: exercised indirectly by the compiled kernels;
     here we check the validator rejects use-before-alloc *)
  checkb "validator" false (is_valid
    { prog with accel = List.tl prog.accel })

let test_sim_report_fields () =
  let c = spmv_compiled () in
  let _, report = Sim.execute c in
  checkb "bytes positive" true (report.Sim.streamed_bytes > 0.0);
  checkb "seconds consistent" true
    (Float.abs (report.Sim.seconds -. report.Sim.cycles /. 1.6e9) < 1e-12);
  checkb "cycles = max(compute, dram)" true
    (report.Sim.cycles >= report.Sim.compute_cycles -. 1e-9
     && report.Sim.cycles >= report.Sim.dram_cycles -. 1e-9)

(* ------------------------------------------------------------------ *)
(* CPU path specifics                                                  *)
(* ------------------------------------------------------------------ *)

let test_cpu_codegen_text () =
  let c = spmv_compiled () in
  let _, _, func = Imp.run c.C.plan ~inputs:c.C.inputs in
  let code = Imperative_ir.to_string func in
  checkb "is C" true (contains code "#include <stdint.h>");
  checkb "pos loop" true (contains code "A2_pos[");
  checkb "restrict arrays" true (contains code "double* restrict");
  checkb "loc sane" true (Imperative_ir.lines_of_code func > 10)

let test_cpu_merge_codegen () =
  let spec = K.plus2 in
  let st = List.hd spec.K.stages in
  let inputs = List.assoc "Plus2" Test_backend_data.small_inputs in
  let c = K.compile_stage spec st ~inputs in
  let _, tally, func = Imp.run c.C.plan ~inputs in
  let code = Imperative_ir.to_string func in
  checkb "merge while loop" true (contains code "while (");
  checkb "min merge" true (contains code "TACO_MIN" || contains code "==");
  checkb "branches counted" true (tally.Imp.branches > 0.0)

let test_cpu_omp_only_for_spmv () =
  List.iter
    (fun (spec : K.spec) ->
      let st = List.hd spec.K.stages in
      let inputs = List.assoc spec.K.kname Test_backend_data.small_inputs in
      let inputs =
        List.filter (fun (n, _) -> List.mem_assoc n st.K.formats) inputs
      in
      let plan =
        Stardust_core.Plan.build
          (S.of_assign ~formats:st.K.formats (P.parse_assign st.K.expr))
          ~inputs
      in
      let p = Profile.of_plan plan ~inputs in
      let expect = spec.K.kname = "SpMV" in
      checkb (spec.K.kname ^ " parallel") expect p.Profile.parallel_outer)
    [ K.spmv; K.sddmm; K.residual; K.ttv; K.innerprod ]

(* ------------------------------------------------------------------ *)
(* Properties: random elementwise expressions across all backends       *)
(* ------------------------------------------------------------------ *)

let arb_small_tensor name seed =
  D.small_random ~seed ~name ~format:(F.csr ()) ~dims:[ 5; 6 ] ~density:0.4 ()

let prop_elementwise_backends_agree =
  QCheck.Test.make ~name:"random add/mul kernels agree across backends" ~count:40
    QCheck.(pair (int_range 0 1) (int_range 0 1000))
    (fun (op, seed) ->
      let b = arb_small_tensor "B" seed in
      let c = arb_small_tensor "C" (seed + 7) in
      let expr = if op = 0 then "A(i,j) = B(i,j) + C(i,j)" else "A(i,j) = B(i,j) * C(i,j)" in
      let formats = [ ("A", F.csr ()); ("B", F.csr ()); ("C", F.csr ()) ] in
      let sched = S.of_assign ~formats (P.parse_assign expr) in
      let inputs = [ ("B", b); ("C", c) ] in
      let compiled = C.compile sched ~inputs in
      let expected =
        Ref.eval (P.parse_assign expr) ~inputs ~result_format:(F.csr ())
      in
      let sim, _ = Sim.execute compiled in
      let cpu, _, _ = Imp.run compiled.C.plan ~inputs in
      close (List.assoc "A" sim) expected && close (List.assoc "A" cpu) expected)

let prop_spmv_random_matrices =
  QCheck.Test.make ~name:"SpMV agrees on random matrices/densities" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 1 9))
    (fun (seed, d10) ->
      let density = float_of_int d10 /. 10.0 in
      let a = D.small_random ~seed ~name:"A" ~format:(F.csr ()) ~dims:[ 7; 8 ]
          ~density () in
      let x = D.dense_vector ~seed:(seed + 1) ~name:"x" ~dim:8 () in
      let inputs = [ ("A", a); ("x", x) ] in
      let st = List.hd K.spmv.K.stages in
      let compiled = K.compile_stage K.spmv st ~inputs in
      let expected =
        Ref.eval (P.parse_assign st.K.expr) ~inputs ~result_format:(F.dv ())
      in
      let sim, report = Sim.execute compiled in
      let est = Sim.estimate compiled in
      close (List.assoc "y" sim) expected
      && Float.abs (est.Sim.iterations -. report.Sim.iterations) < 0.5)

let prop_estimate_matches_execute =
  QCheck.Test.make ~name:"estimate tallies match execution on random inputs"
    ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let b = D.small_random ~seed ~name:"B" ~format:(F.ucc ()) ~dims:[ 3; 4; 5 ]
          ~density:0.5 () in
      let c = D.small_random ~seed:(seed + 3) ~name:"C" ~format:(F.ucc ())
          ~dims:[ 3; 4; 5 ] ~density:0.5 () in
      QCheck.assume (T.nnz b > 0 && T.nnz c > 0);
      let inputs = [ ("B", b); ("C", c) ] in
      let st = List.hd K.plus2.K.stages in
      let compiled = K.compile_stage K.plus2 st ~inputs in
      let _, report = Sim.execute compiled in
      let est = Sim.estimate compiled in
      Float.abs (est.Sim.iterations -. report.Sim.iterations) < 0.5
      && Float.abs (est.Sim.compute_cycles -. report.Sim.compute_cycles)
         /. Float.max 1.0 report.Sim.compute_cycles
         < 0.05)

let suite =
  kernel_cases
  @ [
      ("sim: config ordering", `Quick, test_sim_configs_ordered);
      ("sim: plasticine slower", `Quick, test_sim_plasticine_slower);
      ("sim: fifo discipline/validation", `Quick, test_sim_fifo_discipline);
      ("sim: report consistency", `Quick, test_sim_report_fields);
      ("cpu: C codegen", `Quick, test_cpu_codegen_text);
      ("cpu: merge codegen", `Quick, test_cpu_merge_codegen);
      ("cpu: parallelization rule", `Quick, test_cpu_omp_only_for_spmv);
      QCheck_alcotest.to_alcotest prop_elementwise_backends_agree;
      QCheck_alcotest.to_alcotest prop_spmv_random_matrices;
      QCheck_alcotest.to_alcotest prop_estimate_matches_execute;
    ]
