(* Differential-testing oracle: generator well-formedness, corpus
   round-trips, the shrinker against a seeded bad backend, and hung-worker
   isolation in the pool. *)

module T = Stardust_tensor.Tensor
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Legality = Stardust_core.Legality
module Reference = Stardust_vonneumann.Reference
module Pool = Stardust_explore.Pool
module Diag = Stardust_diag.Diag
module Json = Stardust_json.Json
module Case = Stardust_oracle.Case
module Gen = Stardust_oracle.Gen
module Differ = Stardust_oracle.Differ
module Runner = Stardust_oracle.Runner
module Shrink = Stardust_oracle.Shrink
module Corpus = Stardust_oracle.Corpus
module Fuzz = Stardust_oracle.Fuzz
module Prng = Stardust_workloads.Prng

(* ------------------------------------------------------------------ *)
(* Stub backends                                                       *)
(* ------------------------------------------------------------------ *)

(* A correct backend: just the reference evaluator again. *)
let good_backend =
  {
    Runner.bname = "good-stub";
    exec =
      (fun (p : Case.prepared) ->
        Reference.eval p.Case.assign ~inputs:p.Case.inputs
          ~result_format:p.Case.p_result_format);
  }

(* A deterministically wrong backend: the reference answer with every
   stored value doubled (and a constant bumped in, so the all-zeros case
   still diverges). *)
let bad_backend =
  {
    Runner.bname = "bad-stub";
    exec =
      (fun (p : Case.prepared) ->
        let r =
          Reference.eval p.Case.assign ~inputs:p.Case.inputs
            ~result_format:p.Case.p_result_format
        in
        let entries =
          List.map
            (fun (c, v) -> (Array.to_list c, (2.0 *. v) +. 1.0))
            (T.to_entries r)
        in
        let entries =
          if entries = [] then
            [ (Array.to_list (Array.map (fun _ -> 0) (T.dims r)), 1.0) ]
          else entries
        in
        T.of_entries ~name:(T.name r) ~format:(T.format r)
          ~dims:(Array.to_list (T.dims r))
          entries);
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.0);
        ("b", Json.Str "x\"y\\z\n");
        ("c", Json.Arr [ Json.Bool true; Json.Null; Json.Num (-0.25) ]);
        ("d", Json.Obj [ ("nested", Json.Arr []) ]);
      ]
  in
  Alcotest.(check bool)
    "print/parse round-trips" true
    (Json.parse (Json.to_string v) = v);
  Alcotest.check_raises "trailing garbage rejected"
    (Json.Parse_error ("trailing garbage after JSON value", 5))
    (fun () -> ignore (Json.parse "null x"))

(* The recursive-descent parser is depth-bounded: a hostile
   [[[[…-nesting line raises a structured Parse_error, never
   Stack_overflow (which would escape I/O-shaped exception filters —
   the compile service's connection handlers in particular). *)
let test_json_depth_bound () =
  let deep d = String.make d '[' ^ String.make d ']' in
  (* nesting at the bound parses fine *)
  (match Json.parse (deep Json.max_depth) with
  | Json.Arr _ -> ()
  | _ -> Alcotest.fail "nesting at the bound should parse to an array"
  | exception Json.Parse_error (m, _) ->
      Alcotest.failf "nesting at the bound rejected: %s" m);
  (* one past the bound is a parse error *)
  (match Json.parse (deep (Json.max_depth + 1)) with
  | _ -> Alcotest.fail "nesting past the bound must be rejected"
  | exception Json.Parse_error (m, _) ->
      Alcotest.(check string)
        "error names the nesting bound"
        (Printf.sprintf "nesting deeper than %d levels" Json.max_depth)
        m);
  (* far past the bound — the attack shape — still a parse error, with
     objects nesting the same way *)
  List.iter
    (fun s ->
      match Json.parse s with
      | _ -> Alcotest.fail "deep nesting must be rejected"
      | exception Json.Parse_error _ -> ())
    [
      deep 100_000;
      String.make 100_000 '[' (* unterminated, same recursion *);
      String.concat "" (List.init 2_000 (fun _ -> "{\"k\":"))
      ^ "null"
      ^ String.make 2_000 '}';
    ]

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  Alcotest.(check bool)
    "same seed, same case" true
    (Case.equal (Gen.gen ~seed:12345) (Gen.gen ~seed:12345));
  (* different seeds almost surely differ; 3 tries make a flake
     astronomically unlikely *)
  Alcotest.(check bool)
    "different seeds differ" true
    (List.exists
       (fun s -> not (Case.equal (Gen.gen ~seed:s) (Gen.gen ~seed:12345)))
       [ 1; 2; 3 ])

let prop_gen_prepares =
  QCheck.Test.make ~name:"generated cases prepare and schedule legally"
    ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let case = Gen.gen ~seed in
      match Case.prepare case with
      | Error m -> QCheck.Test.fail_reportf "unpreparable case: %s" m
      | Ok _ -> (
          (* the sampled loop order must be one Legality accepts *)
          let assign = Parser.parse_assign case.Case.expr in
          match case.Case.order with
          | [] -> true
          | order ->
              let formats =
                List.map
                  (fun (ts : Case.tensor_spec) -> (ts.Case.tname, ts.Case.fmt))
                  case.Case.tensors
                @ [ (case.Case.result, case.Case.result_format) ]
              in
              Legality.respects_levels ~formats assign order))

let prop_gen_agrees_with_itself =
  QCheck.Test.make ~name:"reference is deterministic across reruns" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let case = Gen.gen ~seed in
      match Case.prepare case with
      | Error _ -> false
      | Ok p ->
          let e () =
            Reference.eval p.Case.assign ~inputs:p.Case.inputs
              ~result_format:p.Case.p_result_format
          in
          T.approx_equal (e ()) (e ()))

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stardust_corpus_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun x -> Sys.remove (Filename.concat dir x))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir (fun dir ->
      let case = Gen.gen ~seed:777 in
      let reports =
        [ { Runner.backend = "bad-stub"; verdict = Differ.Mismatch 1.5 } ]
      in
      let diags =
        [
          Diag.error ~stage:Diag.Oracle ~code:Diag.code_oracle_mismatch
            "backend bad-stub disagrees";
        ]
      in
      let path = Corpus.save ~dir ~diags ~reports case in
      Alcotest.(check bool) "file exists" true (Sys.file_exists path);
      Alcotest.(check bool)
        "case round-trips" true
        (Case.equal case (Corpus.load path));
      Alcotest.(check (list (pair string string)))
        "verdicts recorded"
        [ ("bad-stub", "mismatch (max abs diff 1.5)") ]
        (Corpus.load_verdicts path);
      Alcotest.(check (list string)) "listed" [ path ] (Corpus.list ~dir ());
      (* content-addressed names: saving the same case twice is one file *)
      let path2 = Corpus.save ~dir ~reports case in
      Alcotest.(check string) "stable filename" path path2;
      Alcotest.(check int) "no duplicate" 1 (List.length (Corpus.list ~dir ())))

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_runner_verdicts () =
  let case = Gen.gen ~seed:99 in
  let crash_backend =
    { Runner.bname = "crash-stub"; exec = (fun _ -> failwith "boom") }
  in
  let o =
    Runner.run_case ~backends:[ good_backend; bad_backend; crash_backend ]
      case
  in
  let verdict b =
    (List.find (fun (r : Runner.report) -> r.Runner.backend = b)
       o.Runner.reports)
      .Runner.verdict
  in
  Alcotest.(check bool) "good passes" true (verdict "good-stub" = Differ.Pass);
  Alcotest.(check bool)
    "bad mismatches" true
    (match verdict "bad-stub" with Differ.Mismatch _ -> true | _ -> false);
  Alcotest.(check bool)
    "crash is caught" true
    (match verdict "crash-stub" with Differ.Crash _ -> true | _ -> false);
  Alcotest.(check bool) "case fails" true o.Runner.failing;
  (* one diagnostic per failing backend, none for the pass *)
  let ds = Runner.diags_of_outcome o in
  Alcotest.(check int) "two diagnostics" 2 (List.length ds);
  Alcotest.(check bool)
    "codes are oracle codes" true
    (List.for_all
       (fun (d : Diag.t) ->
         d.Diag.stage = Diag.Oracle
         && (d.Diag.code = Diag.code_oracle_mismatch
             || d.Diag.code = Diag.code_oracle_crash))
       ds)

let test_default_backends_agree () =
  (* a couple of fixed seeds through the real backend set *)
  List.iter
    (fun seed ->
      let o = Runner.run_case (Gen.gen ~seed) in
      if o.Runner.failing then
        Alcotest.failf "seed %d fails:@.%a" seed Runner.pp_outcome o)
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

(* Find a generated case with at least 3 operands to give the shrinker
   something to chew on. *)
let rec multi_operand_case seed =
  let c = Gen.gen ~seed in
  if Case.num_operands c >= 3 then c else multi_operand_case (seed + 1)

let test_shrink_bad_backend () =
  let case = multi_operand_case 1000 in
  let fails c =
    let o = Runner.run_case ~backends:[ bad_backend ] c in
    o.Runner.failing
  in
  Alcotest.(check bool) "original fails" true (fails case);
  let min = Shrink.minimize ~fails case in
  Alcotest.(check bool)
    "minimized is strictly smaller" true
    (Case.size min < Case.size case);
  Alcotest.(check bool) "minimized still fails" true (fails min);
  (* the bad stub corrupts every case, so shrinking should reach the floor:
     a single operand *)
  Alcotest.(check int) "one operand" 1 (Case.num_operands min)

let test_shrink_preserves_specific_failure () =
  (* a backend that only fails when tensor B participates: the shrinker
     must keep B while dropping everything else *)
  let fails_on_b =
    {
      Runner.bname = "b-hater";
      exec =
        (fun (p : Case.prepared) ->
          if List.mem_assoc "B" p.Case.inputs then failwith "saw B"
          else
            Reference.eval p.Case.assign ~inputs:p.Case.inputs
              ~result_format:p.Case.p_result_format);
    }
  in
  let fails c = (Runner.run_case ~backends:[ fails_on_b ] c).Runner.failing in
  (* find a case that mentions B among >= 3 operands *)
  let rec find seed =
    let c = Gen.gen ~seed in
    if
      Case.num_operands c >= 3
      && List.exists (fun (ts : Case.tensor_spec) -> ts.Case.tname = "B")
           c.Case.tensors
    then c
    else find (seed + 1)
  in
  let case = find 2000 in
  let min = Shrink.minimize ~fails case in
  Alcotest.(check bool) "still fails" true (fails min);
  Alcotest.(check bool)
    "B survived" true
    (List.exists (fun (ts : Case.tensor_spec) -> ts.Case.tname = "B")
       min.Case.tensors);
  Alcotest.(check bool) "smaller" true (Case.size min < Case.size case)

let test_shrink_budget_respected () =
  let evals = ref 0 in
  let fails _ =
    incr evals;
    true
  in
  let case = multi_operand_case 3000 in
  ignore (Shrink.minimize ~budget:5 ~fails case);
  Alcotest.(check bool) "at most 5 evaluations" true (!evals <= 5)

(* ------------------------------------------------------------------ *)
(* Pool deadlines                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_timeout_isolated () =
  let stop = Atomic.make false in
  let task i =
    if i = 1 then begin
      while not (Atomic.get stop) do
        Domain.cpu_relax ()
      done;
      -1
    end
    else i * 10
  in
  let r = Pool.map_result ~timeout:0.2 ~workers:2 task [| 0; 1; 2 |] in
  Atomic.set stop true;
  Alcotest.(check bool) "item 0 ok" true (r.(0) = Ok 0);
  Alcotest.(check bool)
    "item 1 timed out" true
    (match r.(1) with
    | Error (Pool.Failure_timed_out { seconds }) -> seconds = 0.2
    | _ -> false);
  Alcotest.(check bool) "item 2 ok" true (r.(2) = Ok 20)

let test_pool_map_raises_worker_timeout () =
  let stop = Atomic.make false in
  let task i =
    if i = 0 then
      while not (Atomic.get stop) do
        Domain.cpu_relax ()
      done;
    i
  in
  Alcotest.check_raises "structured timeout"
    (Pool.Worker_timeout { index = 0; seconds = 0.2 })
    (fun () -> ignore (Pool.map ~timeout:0.2 ~workers:1 task [| 0; 1 |]));
  Atomic.set stop true

let test_fuzz_spinning_backend_costs_one_case () =
  (* Reproduce the fuzz loop's seed derivation to aim the spin at exactly
     one of the four cases. *)
  let master = Prng.create 5 in
  let seeds = Array.init 4 (fun _ -> 0) in
  for i = 0 to 3 do
    seeds.(i) <- Prng.int master 0x3FFFFFFF
  done;
  let target = seeds.(2) in
  let stop = Atomic.make false in
  let cfg =
    {
      Fuzz.default_config with
      Fuzz.cases = 4;
      seed = 5;
      corpus_dir = None;
      workers = Some 1;
      case_timeout = Some 0.3;
      mk_backends =
        Some
          (fun () ->
            [
              good_backend;
              {
                Runner.bname = "spinner";
                exec =
                  (fun (p : Case.prepared) ->
                    (* spin iff this is the targeted case *)
                    if p.Case.p_seed = target then
                      while not (Atomic.get stop) do
                        Domain.cpu_relax ()
                      done;
                    Reference.eval p.Case.assign ~inputs:p.Case.inputs
                      ~result_format:p.Case.p_result_format);
              };
            ]);
      log = ignore;
    }
  in
  let stats = Fuzz.run cfg in
  Atomic.set stop true;
  Alcotest.(check int) "exactly one hung case" 1 stats.Fuzz.hung;
  Alcotest.(check int) "the rest passed" 3 stats.Fuzz.passed;
  Alcotest.(check int) "no failures" 0 stats.Fuzz.failed;
  Alcotest.(check bool)
    "hang reported as E0803" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = Diag.code_oracle_hang)
       stats.Fuzz.diags)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ("json round-trip", `Quick, test_json_roundtrip);
    ("json nesting depth bounded", `Quick, test_json_depth_bound);
    ("generator is deterministic", `Quick, test_gen_deterministic);
    QCheck_alcotest.to_alcotest prop_gen_prepares;
    QCheck_alcotest.to_alcotest prop_gen_agrees_with_itself;
    ("corpus round-trip", `Quick, test_corpus_roundtrip);
    ("runner verdicts", `Quick, test_runner_verdicts);
    ("default backends agree", `Quick, test_default_backends_agree);
    ("shrinker minimizes a bad backend", `Quick, test_shrink_bad_backend);
    ( "shrinker preserves the failure trigger",
      `Quick,
      test_shrink_preserves_specific_failure );
    ("shrinker respects its budget", `Quick, test_shrink_budget_respected);
    ("pool timeout isolates one item", `Quick, test_pool_timeout_isolated);
    ( "pool map raises structured timeout",
      `Quick,
      test_pool_map_raises_worker_timeout );
    ( "spinning backend costs one case",
      `Quick,
      test_fuzz_spinning_backend_costs_one_case );
  ]
