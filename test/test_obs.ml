(* Tests for Stardust_obs and its wiring: span balance under exceptions,
   Chrome trace-event export well-formedness, metrics determinism across
   worker counts, attributed profile trees summing to the simulator's
   report, and pool timeout accounting. *)

module F = Stardust_tensor.Format
module C = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module D = Stardust_workloads.Datasets
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Pool = Stardust_explore.Pool
module Json = Stardust_json.Json
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics
module Profile = Stardust_obs.Profile

exception Boom

(* substring containment, for asserting on rendered text *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_balance_under_exceptions () =
  Trace.reset ();
  Trace.start ();
  Alcotest.(check int) "depth starts at 0" 0 (Trace.depth ());
  Trace.with_span "outer" (fun () ->
      Alcotest.(check int) "inside a span" 1 (Trace.depth ());
      try
        Trace.with_span "inner" (fun () ->
            Alcotest.(check int) "nested" 2 (Trace.depth ());
            raise Boom)
      with Boom -> ());
  Alcotest.(check int) "depth restored after a raising span" 0 (Trace.depth ());
  (* the raising span is still recorded, tagged raised=true; the raise
     re-propagates unchanged *)
  Alcotest.check_raises "exception propagates" Boom (fun () ->
      Trace.with_span "raiser" (fun () -> raise Boom));
  Alcotest.(check int) "depth balanced" 0 (Trace.depth ());
  let evs = Trace.events () in
  Alcotest.(check int) "three spans recorded" 3 (List.length evs);
  let raised =
    List.filter
      (fun (e : Trace.event) ->
        List.mem_assoc "raised" e.Trace.ev_args)
      evs
  in
  Alcotest.(check int) "both raising spans tagged" 2 (List.length raised);
  Trace.reset ()

let test_disabled_tracing_records_nothing () =
  Trace.reset ();
  Trace.with_span "ghost" (fun () -> ());
  Trace.instant "ghost-marker";
  Alcotest.(check int) "no events while off" 0 (Trace.event_count ())

(* Chrome export parsed back with the oracle's own JSON parser. *)
let test_chrome_export_well_formed () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span ~cat:"test" ~args:[ ("kernel", "k\"quoted\"") ] "outer"
    (fun () ->
      Trace.with_span ~cat:"test" "inner" (fun () -> ());
      Trace.instant ~cat:"test" "marker");
  let doc = Json.parse (Trace.export_json ()) in
  let evs = Json.to_list (Json.member_exn "traceEvents" doc) in
  Alcotest.(check int) "all events exported" (Trace.event_count ())
    (List.length evs);
  List.iter
    (fun e ->
      ignore (Json.to_str (Json.member_exn "name" e));
      ignore (Json.to_float (Json.member_exn "ts" e));
      ignore (Json.to_float (Json.member_exn "pid" e));
      ignore (Json.to_float (Json.member_exn "tid" e));
      match Json.to_str (Json.member_exn "ph" e) with
      | "X" -> ignore (Json.to_float (Json.member_exn "dur" e))
      | "i" -> ignore (Json.to_str (Json.member_exn "s" e))
      | ph -> Alcotest.failf "unexpected phase %s" ph)
    evs;
  (* the quoted arg survived escaping *)
  let outer =
    List.find
      (fun e -> Json.to_str (Json.member_exn "name" e) = "outer")
      evs
  in
  Alcotest.(check string)
    "args round-trip" "k\"quoted\""
    (Json.to_str
       (Json.member_exn "kernel" (Json.member_exn "args" outer)));
  Trace.reset ()

(* The compiler tags its spans with the Diag stage vocabulary. *)
let spmv_formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]

let spmv_inputs seed =
  let a =
    D.small_random ~seed ~name:"A" ~format:(F.csr ()) ~dims:[ 24; 24 ]
      ~density:0.2 ()
  in
  [ ("A", a); ("x", D.dense_vector ~seed:(seed + 1) ~name:"x" ~dim:24 ()) ]

let test_compile_spans_tagged_by_stage () =
  Trace.reset ();
  Trace.start ();
  let compiled =
    C.compile_string ~formats:spmv_formats ~inputs:(spmv_inputs 3)
      "y(i) = A(i,j) * x(j)"
  in
  ignore (Sim.estimate compiled);
  let cats =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.Trace.ev_cat) (Trace.events ()))
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Fmt.str "%s span present" c) true
        (List.mem c cats))
    [ "parse"; "schedule"; "plan"; "lower"; "codegen"; "simulate" ];
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"test counter" "obs_test_total" in
  Metrics.inc c;
  Metrics.inc ~by:2.0 c;
  Alcotest.(check (float 0.0)) "counter adds" 3.0 (Metrics.value c);
  let g = Metrics.gauge ~labels:[ ("b", "2"); ("a", "1") ] "obs_test_gauge" in
  Metrics.set g 7.0;
  let h = Metrics.histogram ~buckets:[ 0.1; 1.0 ] "obs_test_seconds" in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Alcotest.(check (float 0.0)) "histogram count" 3.0 (Metrics.value h);
  let text = Metrics.render_text () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "render contains %S" needle) true
        (contains ~affix:needle text))
    [
      "# TYPE obs_test_total counter";
      "obs_test_total 3";
      (* labels render sorted by key *)
      "obs_test_gauge{a=\"1\",b=\"2\"} 7";
      "obs_test_seconds_bucket{le=\"+Inf\"} 3";
      "obs_test_seconds_count 3";
    ];
  (* volatile metrics stay out of the deterministic snapshot *)
  Metrics.set (Metrics.gauge ~volatile:true "obs_wallclock_seconds") 1.23;
  let snap = Metrics.snapshot_json () in
  Alcotest.(check bool) "volatile excluded" false
    (contains ~affix:"obs_wallclock_seconds" snap);
  Alcotest.(check bool) "volatile present in full snapshot" true
    (contains ~affix:"obs_wallclock_seconds"
       (Metrics.snapshot_json ~deterministic:false ()));
  ignore (Json.parse snap);
  (* re-registration with a different kind is rejected *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "metric obs_test_total re-registered as a gauge (was a counter)")
    (fun () -> ignore (Metrics.gauge "obs_test_total"));
  Metrics.reset ()

(* The whole deterministic snapshot — compiler, simulator, pool, and
   search counters included — must be bit-identical across worker
   counts. *)
let test_metrics_deterministic_across_workers () =
  let problem () =
    Eval.problem ~name:"spmv" ~formats:spmv_formats ~inputs:(spmv_inputs 11)
      (Stardust_ir.Parser.parse_assign "y(i) = A(i,j) * x(j)")
  in
  let snapshot workers =
    Metrics.reset ();
    ignore (Explore.run ~workers (problem ()));
    let s = Metrics.snapshot_json () in
    Metrics.reset ();
    s
  in
  let s1 = snapshot 1 and s4 = snapshot 4 in
  Alcotest.(check string) "snapshots identical for 1 vs 4 workers" s1 s4;
  Alcotest.(check bool) "evals were counted" true
    (contains ~affix:"explore_evals_total" s1)

(* ------------------------------------------------------------------ *)
(* Profile trees                                                       *)
(* ------------------------------------------------------------------ *)

let check_profile_sums name (compiled : C.compiled) =
  let p = Sim.estimate_profiled compiled in
  let r = p.Sim.preport in
  let close what expect got =
    let tol = 1e-9 *. Float.max 1.0 (Float.abs expect) in
    if Float.abs (expect -. got) > tol then
      Alcotest.failf "%s: %s tree sum %.9g <> report %.9g" name what got
        expect
  in
  close "cycles" r.Sim.cycles (Profile.total p.Sim.ptree);
  close "compute" r.Sim.compute_cycles (Profile.total_compute p.Sim.ptree);
  close "dram" r.Sim.dram_cycles (Profile.total_dram p.Sim.ptree);
  (* the tree mirrors the loop nest: more than just the root *)
  Alcotest.(check bool)
    (name ^ " tree has loop nodes")
    true
    (Profile.node_count p.Sim.ptree > 1);
  (* estimate and estimate_profiled agree exactly *)
  Alcotest.(check (float 0.0))
    (name ^ " estimate unchanged")
    (Sim.estimate compiled).Sim.cycles r.Sim.cycles;
  (* JSON form parses and carries the same total *)
  let j = Json.parse (Profile.to_json p.Sim.ptree) in
  close "json total" (Profile.total p.Sim.ptree)
    (Json.to_float (Json.member_exn "total_cycles" j))

let test_profile_sums_spmv () =
  check_profile_sums "spmv"
    (C.compile_string ~formats:spmv_formats ~inputs:(spmv_inputs 7)
       "y(i) = A(i,j) * x(j)")

let test_profile_sums_sddmm () =
  (* SDDMM reduces over k into a streaming sparse output, so it needs the
     kernel's reduction schedule — go through Kernels.compile_stage like
     the backend tests do instead of the schedule-free compile_string. *)
  let module K = Stardust_core.Kernels in
  let spec = K.sddmm in
  let st = List.hd spec.K.stages in
  let inputs = List.assoc "SDDMM" Test_backend_data.small_inputs in
  check_profile_sums "sddmm" (K.compile_stage spec st ~inputs)

(* ------------------------------------------------------------------ *)
(* Pool accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_timeout_counted () =
  Metrics.reset ();
  let stop = Atomic.make false in
  let task i =
    if i = 1 then begin
      while not (Atomic.get stop) do
        Domain.cpu_relax ()
      done;
      -1
    end
    else i
  in
  let r = Pool.map_result ~timeout:0.2 ~workers:2 task [| 0; 1; 2 |] in
  Atomic.set stop true;
  Alcotest.(check bool) "item timed out" true
    (match r.(1) with Error (Pool.Failure_timed_out _) -> true | _ -> false);
  Alcotest.(check (float 0.0))
    "pool_timeouts_total incremented once" 1.0
    (Metrics.value (Metrics.counter ~volatile:true "pool_timeouts_total"));
  Alcotest.(check (float 0.0))
    "pool_tasks_total counted all items" 3.0
    (Metrics.value (Metrics.counter "pool_tasks_total"));
  Metrics.reset ()

let suite =
  [
    ("span balance under exceptions", `Quick, test_span_balance_under_exceptions);
    ("disabled tracing records nothing", `Quick, test_disabled_tracing_records_nothing);
    ("chrome export is well-formed", `Quick, test_chrome_export_well_formed);
    ("compile spans tagged by stage", `Quick, test_compile_spans_tagged_by_stage);
    ("metrics registry and rendering", `Quick, test_metrics_registry);
    ( "metrics deterministic across worker counts",
      `Quick,
      test_metrics_deterministic_across_workers );
    ("profile tree sums to report (spmv)", `Quick, test_profile_sums_spmv);
    ("profile tree sums to report (sddmm)", `Quick, test_profile_sums_sddmm);
    ("pool timeouts are counted", `Quick, test_pool_timeout_counted);
  ]
