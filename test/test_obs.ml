(* Tests for Stardust_obs and its wiring: span balance under exceptions,
   Chrome trace-event export well-formedness, metrics determinism across
   worker counts, attributed profile trees summing to the simulator's
   report, and pool timeout accounting. *)

module F = Stardust_tensor.Format
module C = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module D = Stardust_workloads.Datasets
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Pool = Stardust_explore.Pool
module Json = Stardust_json.Json
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics
module Profile = Stardust_obs.Profile

exception Boom

(* substring containment, for asserting on rendered text *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_balance_under_exceptions () =
  Trace.reset ();
  Trace.start ();
  Alcotest.(check int) "depth starts at 0" 0 (Trace.depth ());
  Trace.with_span "outer" (fun () ->
      Alcotest.(check int) "inside a span" 1 (Trace.depth ());
      try
        Trace.with_span "inner" (fun () ->
            Alcotest.(check int) "nested" 2 (Trace.depth ());
            raise Boom)
      with Boom -> ());
  Alcotest.(check int) "depth restored after a raising span" 0 (Trace.depth ());
  (* the raising span is still recorded, tagged raised=true; the raise
     re-propagates unchanged *)
  Alcotest.check_raises "exception propagates" Boom (fun () ->
      Trace.with_span "raiser" (fun () -> raise Boom));
  Alcotest.(check int) "depth balanced" 0 (Trace.depth ());
  let evs = Trace.events () in
  Alcotest.(check int) "three spans recorded" 3 (List.length evs);
  let raised =
    List.filter
      (fun (e : Trace.event) ->
        List.mem_assoc "raised" e.Trace.ev_args)
      evs
  in
  Alcotest.(check int) "both raising spans tagged" 2 (List.length raised);
  Trace.reset ()

let test_disabled_tracing_records_nothing () =
  Trace.reset ();
  Trace.with_span "ghost" (fun () -> ());
  Trace.instant "ghost-marker";
  Alcotest.(check int) "no events while off" 0 (Trace.event_count ())

(* Chrome export parsed back with the oracle's own JSON parser. *)
let test_chrome_export_well_formed () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span ~cat:"test" ~args:[ ("kernel", "k\"quoted\"") ] "outer"
    (fun () ->
      Trace.with_span ~cat:"test" "inner" (fun () -> ());
      Trace.instant ~cat:"test" "marker");
  let doc = Json.parse (Trace.export_json ()) in
  let evs = Json.to_list (Json.member_exn "traceEvents" doc) in
  Alcotest.(check int) "all events exported" (Trace.event_count ())
    (List.length evs);
  List.iter
    (fun e ->
      ignore (Json.to_str (Json.member_exn "name" e));
      ignore (Json.to_float (Json.member_exn "ts" e));
      ignore (Json.to_float (Json.member_exn "pid" e));
      ignore (Json.to_float (Json.member_exn "tid" e));
      match Json.to_str (Json.member_exn "ph" e) with
      | "X" -> ignore (Json.to_float (Json.member_exn "dur" e))
      | "i" -> ignore (Json.to_str (Json.member_exn "s" e))
      | ph -> Alcotest.failf "unexpected phase %s" ph)
    evs;
  (* the quoted arg survived escaping *)
  let outer =
    List.find
      (fun e -> Json.to_str (Json.member_exn "name" e) = "outer")
      evs
  in
  Alcotest.(check string)
    "args round-trip" "k\"quoted\""
    (Json.to_str
       (Json.member_exn "kernel" (Json.member_exn "args" outer)));
  Trace.reset ()

(* The compiler tags its spans with the Diag stage vocabulary. *)
let spmv_formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ]

let spmv_inputs seed =
  let a =
    D.small_random ~seed ~name:"A" ~format:(F.csr ()) ~dims:[ 24; 24 ]
      ~density:0.2 ()
  in
  [ ("A", a); ("x", D.dense_vector ~seed:(seed + 1) ~name:"x" ~dim:24 ()) ]

let test_compile_spans_tagged_by_stage () =
  Trace.reset ();
  Trace.start ();
  let compiled =
    C.compile_string ~formats:spmv_formats ~inputs:(spmv_inputs 3)
      "y(i) = A(i,j) * x(j)"
  in
  ignore (Sim.estimate compiled);
  let cats =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.Trace.ev_cat) (Trace.events ()))
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Fmt.str "%s span present" c) true
        (List.mem c cats))
    [ "parse"; "schedule"; "plan"; "lower"; "codegen"; "simulate" ];
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"test counter" "obs_test_total" in
  Metrics.inc c;
  Metrics.inc ~by:2.0 c;
  Alcotest.(check (float 0.0)) "counter adds" 3.0 (Metrics.value c);
  let g = Metrics.gauge ~labels:[ ("b", "2"); ("a", "1") ] "obs_test_gauge" in
  Metrics.set g 7.0;
  let h = Metrics.histogram ~buckets:[ 0.1; 1.0 ] "obs_test_seconds" in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  Alcotest.(check (float 0.0)) "histogram count" 3.0 (Metrics.value h);
  let text = Metrics.render_text () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "render contains %S" needle) true
        (contains ~affix:needle text))
    [
      "# TYPE obs_test_total counter";
      "obs_test_total 3";
      (* labels render sorted by key *)
      "obs_test_gauge{a=\"1\",b=\"2\"} 7";
      "obs_test_seconds_bucket{le=\"+Inf\"} 3";
      "obs_test_seconds_count 3";
    ];
  (* volatile metrics stay out of the deterministic snapshot *)
  Metrics.set (Metrics.gauge ~volatile:true "obs_wallclock_seconds") 1.23;
  let snap = Metrics.snapshot_json () in
  Alcotest.(check bool) "volatile excluded" false
    (contains ~affix:"obs_wallclock_seconds" snap);
  Alcotest.(check bool) "volatile present in full snapshot" true
    (contains ~affix:"obs_wallclock_seconds"
       (Metrics.snapshot_json ~deterministic:false ()));
  ignore (Json.parse snap);
  (* re-registration with a different kind is rejected *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "metric obs_test_total re-registered as a gauge (was a counter)")
    (fun () -> ignore (Metrics.gauge "obs_test_total"));
  Metrics.reset ()

(* The whole deterministic snapshot — compiler, simulator, pool, and
   search counters included — must be bit-identical across worker
   counts. *)
let test_metrics_deterministic_across_workers () =
  let problem () =
    Eval.problem ~name:"spmv" ~formats:spmv_formats ~inputs:(spmv_inputs 11)
      (Stardust_ir.Parser.parse_assign "y(i) = A(i,j) * x(j)")
  in
  let snapshot workers =
    Metrics.reset ();
    ignore (Explore.run ~workers (problem ()));
    let s = Metrics.snapshot_json () in
    Metrics.reset ();
    s
  in
  let s1 = snapshot 1 and s4 = snapshot 4 in
  Alcotest.(check string) "snapshots identical for 1 vs 4 workers" s1 s4;
  Alcotest.(check bool) "evals were counted" true
    (contains ~affix:"explore_evals_total" s1)

(* ------------------------------------------------------------------ *)
(* Profile trees                                                       *)
(* ------------------------------------------------------------------ *)

let check_profile_sums name (compiled : C.compiled) =
  let p = Sim.estimate_profiled compiled in
  let r = p.Sim.preport in
  let close what expect got =
    let tol = 1e-9 *. Float.max 1.0 (Float.abs expect) in
    if Float.abs (expect -. got) > tol then
      Alcotest.failf "%s: %s tree sum %.9g <> report %.9g" name what got
        expect
  in
  close "cycles" r.Sim.cycles (Profile.total p.Sim.ptree);
  close "compute" r.Sim.compute_cycles (Profile.total_compute p.Sim.ptree);
  close "dram" r.Sim.dram_cycles (Profile.total_dram p.Sim.ptree);
  (* the tree mirrors the loop nest: more than just the root *)
  Alcotest.(check bool)
    (name ^ " tree has loop nodes")
    true
    (Profile.node_count p.Sim.ptree > 1);
  (* estimate and estimate_profiled agree exactly *)
  Alcotest.(check (float 0.0))
    (name ^ " estimate unchanged")
    (Sim.estimate compiled).Sim.cycles r.Sim.cycles;
  (* JSON form parses and carries the same total *)
  let j = Json.parse (Profile.to_json p.Sim.ptree) in
  close "json total" (Profile.total p.Sim.ptree)
    (Json.to_float (Json.member_exn "total_cycles" j))

let test_profile_sums_spmv () =
  check_profile_sums "spmv"
    (C.compile_string ~formats:spmv_formats ~inputs:(spmv_inputs 7)
       "y(i) = A(i,j) * x(j)")

let test_profile_sums_sddmm () =
  (* SDDMM reduces over k into a streaming sparse output, so it needs the
     kernel's reduction schedule — go through Kernels.compile_stage like
     the backend tests do instead of the schedule-free compile_string. *)
  let module K = Stardust_core.Kernels in
  let spec = K.sddmm in
  let st = List.hd spec.K.stages in
  let inputs = List.assoc "SDDMM" Test_backend_data.small_inputs in
  check_profile_sums "sddmm" (K.compile_stage spec st ~inputs)

(* ------------------------------------------------------------------ *)
(* Pool accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_timeout_counted () =
  Metrics.reset ();
  let stop = Atomic.make false in
  let task i =
    if i = 1 then begin
      while not (Atomic.get stop) do
        Domain.cpu_relax ()
      done;
      -1
    end
    else i
  in
  let r = Pool.map_result ~timeout:0.2 ~workers:2 task [| 0; 1; 2 |] in
  Atomic.set stop true;
  Alcotest.(check bool) "item timed out" true
    (match r.(1) with Error (Pool.Failure_timed_out _) -> true | _ -> false);
  Alcotest.(check (float 0.0))
    "pool_timeouts_total incremented once" 1.0
    (Metrics.value (Metrics.counter ~volatile:true "pool_timeouts_total"));
  Alcotest.(check (float 0.0))
    "pool_tasks_total counted all items" 3.0
    (Metrics.value (Metrics.counter "pool_tasks_total"));
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Prometheus exposition lint                                          *)
(* ------------------------------------------------------------------ *)

(* A small linter for the exposition text format (0.0.4): every line is
   a well-formed comment or sample, [# TYPE] appears exactly once per
   family and before that family's samples, label values are quoted with
   no raw quote/backslash/newline inside, histogram buckets are
   cumulative with [+Inf] last and [_sum]/[_count] trailing.  Exposed so
   the serve tests can lint a live scrape during a chaos storm. *)
let lint_prometheus text =
  let fail fmt = Fmt.kstr (fun s -> Alcotest.fail s) fmt in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let valid_name n =
    n <> ""
    && (not (n.[0] >= '0' && n.[0] <= '9'))
    && String.for_all is_name_char n
  in
  (* parse `k="v",k="v"` between { and }; returns pairs with v still
     escaped *)
  let parse_labels s =
    let n = String.length s in
    let rec pairs i acc =
      if i >= n then List.rev acc
      else
        let rec key j = if j < n && s.[j] <> '=' then key (j + 1) else j in
        let eq = key i in
        if eq >= n || eq = i then fail "bad label key in %S" s
        else if eq + 1 >= n || s.[eq + 1] <> '"' then
          fail "label value not quoted in %S" s
        else
          let rec value j =
            if j >= n then fail "unterminated label value in %S" s
            else if s.[j] = '\\' then
              if j + 1 < n && (s.[j + 1] = '\\' || s.[j + 1] = '"' || s.[j + 1] = 'n')
              then value (j + 2)
              else fail "bad escape in label value in %S" s
            else if s.[j] = '"' then j
            else value (j + 1)
          in
          let close = value (eq + 2) in
          let k = String.sub s i (eq - i) in
          let v = String.sub s (eq + 2) (close - eq - 2) in
          if not (valid_name k) then fail "bad label name %S" k;
          if close + 1 < n then
            if s.[close + 1] = ',' then pairs (close + 2) ((k, v) :: acc)
            else fail "junk after label value in %S" s
          else List.rev ((k, v) :: acc)
    in
    pairs 0 []
  in
  let types = Hashtbl.create 16 in
  let helps = Hashtbl.create 16 in
  let sampled = Hashtbl.create 16 in
  (* histogram bookkeeping: per (family|labels-sans-le) the le values in
     order, and _sum/_count presence *)
  let buckets : (string, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let samples = ref 0 in
  let base_family name =
    let strip suffix =
      let ns = String.length name and ss = String.length suffix in
      if ns > ss && String.sub name (ns - ss) ss = suffix then
        let base = String.sub name 0 (ns - ss) in
        if Hashtbl.mem types base then Some base else None
      else None
    in
    match (strip "_bucket", strip "_sum", strip "_count") with
    | Some b, _, _ | _, Some b, _ | _, _, Some b -> b
    | None, None, None -> name
  in
  List.iter
    (fun line ->
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let name =
          match String.index_opt rest ' ' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        if not (valid_name name) then fail "bad HELP family %S" name;
        if Hashtbl.mem helps name then fail "duplicate HELP for %s" name;
        Hashtbl.add helps name ()
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match
          String.split_on_char ' ' (String.sub line 7 (String.length line - 7))
        with
        | [ name; kind ] ->
            if not (valid_name name) then fail "bad TYPE family %S" name;
            if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
              fail "bad TYPE kind %S for %s" kind name;
            if Hashtbl.mem types name then
              fail "duplicate TYPE for family %s" name;
            if Hashtbl.mem sampled name then
              fail "TYPE for %s after its samples" name;
            Hashtbl.add types name kind
        | _ -> fail "malformed TYPE line %S" line
      end
      else if line.[0] = '#' then ()
      else begin
        (* sample: name[{labels}] value *)
        incr samples;
        let name_end =
          let rec go i =
            if i < String.length line && is_name_char line.[i] then go (i + 1)
            else i
          in
          go 0
        in
        let name = String.sub line 0 name_end in
        if not (valid_name name) then fail "bad sample name in %S" line;
        let rest = String.sub line name_end (String.length line - name_end) in
        let labels, value_s =
          if rest <> "" && rest.[0] = '{' then
            match String.rindex_opt rest '}' with
            | None -> fail "unterminated label set in %S" line
            | Some close ->
                ( parse_labels (String.sub rest 1 (close - 1)),
                  String.trim
                    (String.sub rest (close + 1) (String.length rest - close - 1))
                )
          else ([], String.trim rest)
        in
        let value =
          match value_s with
          | "+Inf" -> infinity
          | "-Inf" -> neg_infinity
          | "NaN" -> nan
          | s -> (
              match float_of_string_opt s with
              | Some f -> f
              | None -> fail "bad sample value %S in %S" s line)
        in
        let family = base_family name in
        Hashtbl.replace sampled family ();
        if not (Hashtbl.mem types family) then
          fail "sample %s before any TYPE for %s" name family;
        (* histogram structure *)
        if Hashtbl.find types family = "histogram" then begin
          let series_key =
            family ^ "|"
            ^ String.concat ","
                (List.filter_map
                   (fun (k, v) -> if k = "le" then None else Some (k ^ "=" ^ v))
                   labels)
          in
          let cell =
            match Hashtbl.find_opt buckets series_key with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add buckets series_key c;
                c
          in
          let ends_with suffix =
            let ns = String.length name and ss = String.length suffix in
            ns > ss && String.sub name (ns - ss) ss = suffix
          in
          if ends_with "_bucket" then begin
            let le =
              match List.assoc_opt "le" labels with
              | Some le -> le
              | None -> fail "histogram bucket without le in %S" line
            in
            (match !cell with
            | ("le", prev) :: _ when prev > value ->
                fail "non-cumulative buckets in %s" series_key
            | _ -> ());
            (match !cell with
            | ("le", _) :: _ | [] -> ()
            | _ -> fail "bucket after _sum/_count in %s" series_key);
            (match !cell with
            | ("inf", _) :: _ when le <> "+Inf" ->
                fail "bucket after +Inf in %s" series_key
            | _ -> ());
            cell := ((if le = "+Inf" then "inf" else "le"), value) :: !cell
          end
          else if ends_with "_sum" then cell := ("sum", value) :: !cell
          else if ends_with "_count" then begin
            (match List.assoc_opt "inf" !cell with
            | Some inf_count when inf_count <> value ->
                fail "+Inf bucket (%g) disagrees with _count (%g) in %s"
                  inf_count value series_key
            | Some _ -> ()
            | None -> fail "histogram %s has no +Inf bucket" series_key);
            if not (List.mem_assoc "sum" !cell) then
              fail "histogram %s has _count before _sum" series_key;
            cell := ("count", value) :: !cell
          end
          else fail "raw sample %s of histogram family %s" name family
        end
      end)
    (String.split_on_char '\n' text);
  !samples

let test_prometheus_conformance () =
  Metrics.reset ();
  (* nasty label values: newline, quote, backslash *)
  Metrics.inc
    (Metrics.counter ~help:"count\\of \"things\""
       ~labels:[ ("tenant", "a\nb") ]
       "lint_things_total");
  Metrics.inc ~by:2.0
    (Metrics.counter ~help:"count\\of \"things\""
       ~labels:[ ("tenant", "q\"uote") ]
       "lint_things_total");
  Metrics.inc
    (Metrics.counter ~help:"count\\of \"things\""
       ~labels:[ ("tenant", "back\\slash") ]
       "lint_things_total");
  Metrics.set (Metrics.gauge ~help:"plain gauge" "lint_level") 3.5;
  let h =
    Metrics.histogram ~help:"latencies" ~buckets:[ 0.1; 1.0 ] "lint_seconds"
  in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 99.0 (* overflows every bound: lands only in +Inf *);
  Metrics.inc (Metrics.counter ~volatile:true ~help:"wall clock" "lint_wall_total");
  let text = Metrics.render_text () in
  let n = lint_prometheus text in
  Alcotest.(check bool) "rendered some samples" true (n >= 8);
  (* one TYPE line per family even with three labeled series *)
  let count_sub sub =
    let rec go i acc =
      if i + String.length sub > String.length text then acc
      else if String.sub text i (String.length sub) = sub then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "TYPE once per family" 1
    (count_sub "# TYPE lint_things_total counter");
  (* label escaping: newline, quote, backslash *)
  Alcotest.(check bool) "newline escaped in label value" true
    (contains ~affix:{|tenant="a\nb"|} text);
  Alcotest.(check bool) "quote escaped in label value" true
    (contains ~affix:{|tenant="q\"uote"|} text);
  Alcotest.(check bool) "backslash escaped in label value" true
    (contains ~affix:{|tenant="back\\slash"|} text);
  (* HELP escapes backslash but NOT quotes (exposition format rule) *)
  Alcotest.(check bool) "HELP keeps quotes verbatim, escapes backslash" true
    (contains ~affix:{|# HELP lint_things_total count\\of "things"|} text);
  (* histogram shape: +Inf bucket present, _sum/_count trailing *)
  Alcotest.(check bool) "+Inf bucket rendered" true
    (contains ~affix:{|lint_seconds_bucket{le="+Inf"} 3|} text);
  Alcotest.(check bool) "_count rendered" true
    (contains ~affix:"lint_seconds_count 3" text);
  (* volatile filtering gives a deterministic scrape *)
  let det = Metrics.render_text ~include_volatile:false () in
  ignore (lint_prometheus det : int);
  Alcotest.(check bool) "volatile family dropped" false
    (contains ~affix:"lint_wall_total" det);
  Alcotest.(check bool) "volatile family in the full scrape" true
    (contains ~affix:"lint_wall_total" text);
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Trace contexts and collectors                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_collector () =
  Trace.reset ();
  (* global tracing OFF: a collector still captures, the buffer stays
     empty *)
  let c = Trace.new_collector () in
  let ctx =
    Some { Trace.ctx_args = [ ("request_id", "rid-1") ]; ctx_collector = Some c }
  in
  Trace.with_context ctx (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.instant "mark"));
  Alcotest.(check (option unit)) "context restored" None
    (Option.map ignore (Trace.current_context ()));
  Alcotest.(check int) "global buffer untouched" 0 (Trace.event_count ());
  let evs, dropped = Trace.collector_events c in
  Alcotest.(check int) "three events collected" 3 (List.length evs);
  Alcotest.(check int) "nothing dropped" 0 dropped;
  List.iter
    (fun (_, e) ->
      Alcotest.(check (option string))
        (Fmt.str "event %s correlated" e.Trace.ev_name)
        (Some "rid-1")
        (List.assoc_opt "request_id" e.Trace.ev_args))
    evs;
  (* completion order: inner closes first, with its entry depth *)
  (match evs with
  | (d_inner, e_inner) :: (d_mark, _) :: (d_outer, e_outer) :: _ ->
      Alcotest.(check string) "inner first" "inner" e_inner.Trace.ev_name;
      Alcotest.(check string) "outer last" "outer" e_outer.Trace.ev_name;
      Alcotest.(check int) "inner depth" 2 d_inner;
      Alcotest.(check int) "instant depth" 2 d_mark;
      Alcotest.(check int) "outer depth" 1 d_outer
  | _ -> Alcotest.fail "unexpected collector shape");
  (* the cap drops excess events and counts them *)
  let small = Trace.new_collector ~cap:2 () in
  Trace.with_context
    (Some { Trace.ctx_args = []; ctx_collector = Some small })
    (fun () ->
      for i = 1 to 5 do
        Trace.with_span (Fmt.str "s%d" i) (fun () -> ())
      done);
  let evs, dropped = Trace.collector_events small in
  Alcotest.(check int) "cap respected" 2 (List.length evs);
  Alcotest.(check int) "drops counted" 3 dropped;
  Trace.reset ()

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight = Stardust_obs.Flight

let mk_event ?(tid = 1) ?(args = []) name =
  {
    Trace.ev_name = name;
    ev_cat = "t";
    ev_ph = "X";
    ev_ts = 0.0;
    ev_dur = 1.0;
    ev_tid = tid;
    ev_args = args;
  }

let record_simple f ~id ~op ~ok ?(codes = []) ?(spans = ([], 0)) () =
  Flight.record f ~request_id:id ~generated:false ~op ~ok ~codes
    ~latency_s:0.001 ~queue_wait_s:0.0 ~spans ()

let test_flight_recorder () =
  let f = Flight.create ~capacity:3 ~failed_capacity:2 () in
  record_simple f ~id:"a" ~op:"ping" ~ok:true ();
  record_simple f ~id:"b" ~op:"compile" ~ok:true ();
  record_simple f ~id:"c" ~op:"estimate" ~ok:false ~codes:[ "E1005" ]
    ~spans:([ (2, mk_event "inner"); (1, mk_event "serve.estimate") ], 0)
    ();
  record_simple f ~id:"d" ~op:"ping" ~ok:true ();
  record_simple f ~id:"e" ~op:"compile" ~ok:false ~codes:[ "E1002" ] ();
  let ring, failed, total = Flight.occupancy f in
  Alcotest.(check int) "ring bounded" 3 ring;
  Alcotest.(check int) "failures kept" 2 failed;
  Alcotest.(check int) "lifetime total" 5 total;
  (* ring keeps the newest, oldest first *)
  (match Flight.entries f with
  | [ x; y; z ] ->
      Alcotest.(check string) "oldest survivor" "c" x.Flight.f_request_id;
      Alcotest.(check string) "middle" "d" y.Flight.f_request_id;
      Alcotest.(check string) "newest" "e" z.Flight.f_request_id
  | _ -> Alcotest.fail "ring occupancy mismatch");
  (* the failed request's span tree is reconstructable by id *)
  (match Flight.trace_json f "c" with
  | None -> Alcotest.fail "failed request not found"
  | Some json ->
      Alcotest.(check bool) "root span present" true
        (contains ~affix:"serve.estimate" json);
      Alcotest.(check bool) "child nested" true
        (contains ~affix:"\"children\"" json);
      Alcotest.(check bool) "codes attached" true
        (contains ~affix:"E1005" json));
  Alcotest.(check bool) "evicted-from-ring id still traceable (failed list)"
    true
    (Flight.trace_json f "c" <> None);
  Alcotest.(check (option string)) "unknown id not found" None
    (Option.map (fun _ -> "found") (Flight.trace_json f "nope"));
  (* a successful request has a summary but no retained spans *)
  (match Flight.find f "d" with
  | Some e -> Alcotest.(check int) "no spans for successes" 0 (List.length e.Flight.f_spans)
  | None -> Alcotest.fail "ring entry d missing");
  (* deterministic snapshot: a pure function of the request multiset —
     identical regardless of arrival order, no wall-clock fields *)
  let feed order =
    let f = Flight.create ~capacity:8 () in
    List.iter
      (fun (id, op, ok) -> record_simple f ~id ~op ~ok ())
      order;
    Flight.entries_json ~deterministic:true f
  in
  let a = feed [ ("x", "ping", true); ("y", "compile", false); ("z", "stats", true) ] in
  let b = feed [ ("z", "stats", true); ("x", "ping", true); ("y", "compile", false) ] in
  Alcotest.(check string) "deterministic dump is order-independent" a b;
  Alcotest.(check bool) "no latency in deterministic dump" false
    (contains ~affix:"latency" a);
  (* generated ids are omitted from the deterministic dump *)
  let g = Flight.create () in
  Flight.record g ~request_id:"r-1" ~generated:true ~op:"ping" ~ok:true
    ~codes:[] ~latency_s:0.1 ~queue_wait_s:0.0 ();
  Alcotest.(check bool) "generated id omitted" false
    (contains ~affix:"r-1" (Flight.entries_json ~deterministic:true g));
  Alcotest.(check bool) "generated id present in the debug dump" true
    (contains ~affix:"r-1" (Flight.entries_json g))

let suite =
  [
    ("span balance under exceptions", `Quick, test_span_balance_under_exceptions);
    ("disabled tracing records nothing", `Quick, test_disabled_tracing_records_nothing);
    ("chrome export is well-formed", `Quick, test_chrome_export_well_formed);
    ("compile spans tagged by stage", `Quick, test_compile_spans_tagged_by_stage);
    ("metrics registry and rendering", `Quick, test_metrics_registry);
    ( "metrics deterministic across worker counts",
      `Quick,
      test_metrics_deterministic_across_workers );
    ("profile tree sums to report (spmv)", `Quick, test_profile_sums_spmv);
    ("profile tree sums to report (sddmm)", `Quick, test_profile_sums_sddmm);
    ("pool timeouts are counted", `Quick, test_pool_timeout_counted);
    ("prometheus exposition conformance", `Quick, test_prometheus_conformance);
    ("trace collectors and contexts", `Quick, test_trace_collector);
    ("flight recorder", `Quick, test_flight_recorder);
  ]
