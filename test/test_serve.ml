(* Compile-service tests: protocol round-trips, stable error codes for
   malformed requests, plan-cache hit/eviction semantics, worker-count
   determinism of the metrics snapshot, the nested-pool (batched
   autotune) guard, a Unix-socket client session, and the hardening
   layer: request deadlines (E1005), connection shedding (E1004),
   oversized-line rejection (E1006), abrupt-disconnect survival,
   crash-safe plan-cache persistence, and an in-process chaos storm. *)

module Json = Stardust_json.Json
module Pool = Stardust_explore.Pool
module Diag = Stardust_diag.Diag
module Plan_cache = Stardust_serve.Plan_cache
module Protocol = Stardust_serve.Protocol
module Service = Stardust_serve.Service
module Server = Stardust_serve.Server
module Client = Stardust_serve.Client
module Chaos = Stardust_serve.Chaos
module Metrics = Stardust_obs.Metrics
module Trace = Stardust_obs.Trace
module Flight = Stardust_obs.Flight
module Http = Stardust_serve.Http

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Small requests: paper kernels at tiny scales so a whole suite run
   costs a few compilations, not a benchmark. *)
let req ?(extra = []) ?id op fields =
  let id = match id with None -> [] | Some i -> [ ("id", Json.Num (float_of_int i)) ] in
  Json.Obj (id @ [ ("op", Json.Str op) ] @ fields @ extra)

let kernel_req ?extra ?id op kernel n =
  req ?extra ?id op
    [ ("kernel", Json.Str kernel); ("n", Json.Num (float_of_int n)) ]

let field name resp = Json.member_exn name resp
let is_ok resp = field "ok" resp = Json.Bool true
let cached_bit resp = field "cached" resp = Json.Bool true
let error_code resp = Json.to_str (field "code" (field "error" resp))

let with_service ?workers f =
  let svc = Service.create ?workers ~plan_cache_capacity:64 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                *)
(* ------------------------------------------------------------------ *)

(* Every operation answered ok, with the request id and op echoed in the
   envelope; shutdown flips the service's stopping flag last. *)
let test_roundtrip_ops () =
  with_service ~workers:1 (fun svc ->
      let ask i r =
        let resp = Service.handle_request svc r in
        check Alcotest.string
          (Fmt.str "request %d echoes its id" i)
          (Json.to_string (Json.Num (float_of_int i)))
          (Json.to_string (field "id" resp));
        resp
      in
      let ping = ask 1 (req ~id:1 "ping" []) in
      checkb "ping ok" true (is_ok ping);
      checks "ping op echoed" "ping" (Json.to_str (field "op" ping));
      checks "ping pongs" "pong" (Json.to_str (field "result" ping));
      let compile = ask 2 (kernel_req ~id:2 "compile" "spmv" 8) in
      checkb "compile ok" true (is_ok compile);
      checkb "compile result has code" true
        (Json.member "code" (field "result" compile) <> None);
      checkb "compile result has resources" true
        (Json.member "resources" (field "result" compile) <> None);
      let estimate = ask 3 (kernel_req ~id:3 "estimate" "spmv" 8) in
      checkb "estimate ok" true (is_ok estimate);
      checkb "estimate reports cycles" true
        (Json.to_float
           (field "cycles" (field "report" (field "result" estimate)))
        > 0.0);
      let stats = ask 4 (kernel_req ~id:4 "stats" "spmv" 8) in
      checkb "stats ok" true (is_ok stats);
      checki "stats covers both spmv inputs" 2
        (List.length (Json.to_list (field "tensors" (field "result" stats))));
      let autotune =
        ask 5
          (kernel_req ~id:5 "autotune" "spmv" 8
             ~extra:[ ("strategy", Json.Str "greedy") ])
      in
      checkb "autotune ok" true (is_ok autotune);
      checkb "autotune reports a frontier" true
        (Json.member "frontier" (field "result" autotune) <> None);
      let metrics = ask 6 (req ~id:6 "metrics" []) in
      checkb "metrics ok" true (is_ok metrics);
      checkb "metrics reports the plan cache" true
        (Json.member "plan_cache" (field "result" metrics) <> None);
      let bye = ask 7 (req ~id:7 "shutdown" []) in
      checkb "shutdown ok" true (is_ok bye);
      checkb "shutdown stops the service" true (Service.stopping svc))

(* Expression mode: the same NAME=FMT / NAME=DIMS@DENSITY grammar as the
   CLI, resolved inside the service. *)
let test_expr_mode () =
  with_service ~workers:1 (fun svc ->
      let r =
        req "estimate"
          [
            ("expr", Json.Str "y(i) = A(i,j) * x(j)");
            ( "formats",
              Json.Obj
                [
                  ("y", Json.Str "dv"); ("A", Json.Str "csr");
                  ("x", Json.Str "dv");
                ] );
            ("data", Json.Arr [ Json.Str "A=16x16@0.2"; Json.Str "x=16" ]);
          ]
      in
      let resp = Service.handle_request svc r in
      checkb "expression estimate ok" true (is_ok resp);
      (* a different dram answers from a different plan-cache key *)
      let ddr4 =
        Service.handle_request svc
          (match r with
          | Json.Obj fields -> Json.Obj (("dram", Json.Str "ddr4") :: fields)
          | _ -> assert false)
      in
      checkb "ddr4 estimate ok" true (is_ok ddr4);
      checkb "ddr4 is a distinct plan (cold)" false (cached_bit ddr4);
      checkb "estimates differ across dram models" false
        (Json.to_string (field "result" resp)
        = Json.to_string (field "result" ddr4)))

(* ------------------------------------------------------------------ *)
(* Malformed requests: stable codes, never a crash                     *)
(* ------------------------------------------------------------------ *)

let test_malformed () =
  with_service ~workers:1 (fun svc ->
      let answer line = Json.parse (Server.handle_line svc line) in
      let not_json = answer "{nope" in
      checkb "non-JSON line answered" true (not (is_ok not_json));
      checks "non-JSON line is E1001" "E1001" (error_code not_json);
      checks "non-JSON op is invalid" "invalid"
        (Json.to_str (field "op" not_json));
      let bad code name line =
        let resp = answer line in
        checkb (name ^ " answered, not crashed") true (not (is_ok resp));
        checks (name ^ " code") code (error_code resp)
      in
      bad "E1002" "unknown op" {|{"op": "frobnicate"}|};
      bad "E1002" "missing op" {|{"kernel": "spmv"}|};
      bad "E1002" "ill-typed field" {|{"op": "compile", "kernel": "spmv", "n": "big"}|};
      bad "E1002" "unknown kernel" {|{"op": "compile", "kernel": "nosuch"}|};
      bad "E1002" "kernel and expr together"
        {|{"op": "compile", "kernel": "spmv", "expr": "y(i) = x(i)"}|};
      bad "E1002" "no problem at all" {|{"op": "compile"}|};
      bad "E1002" "bad emit section"
        {|{"op": "compile", "kernel": "spmv", "emit": ["asm"]}|};
      bad "E1002" "bad data spec"
        {|{"op": "stats", "data": ["A=banana"]}|};
      (* a syntactically broken expression flows through as the
         compiler's own stable parse code, not a serve code *)
      let parse_err =
        answer {|{"op": "compile", "expr": "y(i = x(i)", "data": ["x=8"], "formats": {"x": "dv", "y": "dv"}}|}
      in
      checkb "broken expr answered" true (not (is_ok parse_err));
      checks "broken expr keeps the compiler's code" "E0101"
        (error_code parse_err);
      (* the service survived all of the above *)
      checkb "service still answers" true
        (is_ok (Service.handle_request svc (req "ping" []))))

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

(* The tentpole's acceptance bit: a repeated compile is answered from
   the plan cache bit-identically, with no recompilation. *)
let test_plan_cache_hit_identical () =
  with_service ~workers:1 (fun svc ->
      let r = kernel_req "compile" "spmv" 8 ~extra:[ ("emit", Json.Arr [ Json.Str "cin"; Json.Str "code"; Json.Str "resources" ]) ] in
      let cold = Service.handle_request svc r in
      let warm = Service.handle_request svc r in
      checkb "cold miss" false (cached_bit cold);
      checkb "warm hit" true (cached_bit warm);
      (* the per-request correlation id is unique by design; mask it
         (everywhere — envelope and stamped diag contexts) the same way
         CI's persistence round-trip masks the cached flag *)
      let rec mask_rid = function
        | Json.Obj fields ->
            Json.Obj
              (List.filter_map
                 (fun (k, v) ->
                   if k = "request_id" then None else Some (k, mask_rid v))
                 fields)
        | Json.Arr items -> Json.Arr (List.map mask_rid items)
        | j -> j
      in
      let strip_cached = function
        | Json.Obj fields ->
            Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields)
        | j -> j
      in
      checks "hit is bit-identical to the cold compile"
        (Json.to_string (mask_rid (strip_cached cold)))
        (Json.to_string (mask_rid (strip_cached warm)));
      let c = Plan_cache.counters (Service.plan_cache svc) in
      checki "one compilation" 1 c.Plan_cache.misses;
      checki "one cache answer" 1 c.Plan_cache.hits;
      (* error payloads are deterministic and cached too *)
      let broken = kernel_req "compile" "nosuch" 8 in
      let e1 = Service.handle_request svc broken in
      let e2 = Service.handle_request svc broken in
      checks "failed requests answered identically"
        (Json.to_string (mask_rid e1))
        (Json.to_string (mask_rid e2)))

let test_plan_cache_lru () =
  let pc = Plan_cache.create ~capacity:2 () in
  let calls = Hashtbl.create 8 in
  let get k =
    Plan_cache.find_or_compute pc k (fun () ->
        Hashtbl.replace calls k
          (1 + Option.value ~default:0 (Hashtbl.find_opt calls k));
        Json.Str k)
  in
  List.iter (fun k -> ignore (get k)) [ "a"; "b"; "c" ];
  let c = Plan_cache.counters pc in
  checki "entries bounded to capacity" 2 c.Plan_cache.entries;
  checki "overflow evicted the LRU entry" 1 c.Plan_cache.evictions;
  let _, hit_b = get "b" in
  checkb "recently-filled b survives" true hit_b;
  ignore (get "d");
  let _, hit_b2 = get "b" in
  checkb "touched b survives the next eviction" true hit_b2;
  let _, hit_c = get "c" in
  checkb "LRU c was the victim" false hit_c;
  checki "c recomputed after eviction" 2 (Hashtbl.find calls "c");
  checki "b computed exactly once" 1 (Hashtbl.find calls "b");
  (* shrinking the bound evicts immediately *)
  Plan_cache.set_capacity pc 1;
  let c = Plan_cache.counters pc in
  checki "shrink evicts down to the new bound" 1 c.Plan_cache.entries

(* Four domains racing on one missing key: single-flight means exactly
   one computation, three waiters counted as hits, all values shared. *)
let test_plan_cache_single_flight () =
  let pc = Plan_cache.create () in
  let computes = Atomic.make 0 in
  let results =
    Pool.map ~workers:4
      (fun _ ->
        Plan_cache.find_or_compute pc "shared" (fun () ->
            Atomic.incr computes;
            Unix.sleepf 0.02;
            Json.Str "value"))
      (Array.init 4 Fun.id)
  in
  checki "computed exactly once" 1 (Atomic.get computes);
  Array.iter
    (fun (v, _) -> checkb "every caller sees the filled value" true (v = Json.Str "value"))
    results;
  let c = Plan_cache.counters pc in
  checki "one miss for the filler" 1 c.Plan_cache.misses;
  checki "three hits for the waiters" 3 c.Plan_cache.hits

(* A failing fill withdraws the pending marker: the next caller retries
   and becomes the new filler instead of caching the crash. *)
let test_plan_cache_failed_fill () =
  let pc = Plan_cache.create () in
  (match Plan_cache.find_or_compute pc "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the fill exception to propagate"
  | exception Failure m -> checks "original exception" "boom" m);
  let v, hit = Plan_cache.find_or_compute pc "k" (fun () -> Json.Str "ok") in
  checkb "retry recomputes" false hit;
  checkb "retry fills" true (v = Json.Str "ok")

(* ------------------------------------------------------------------ *)
(* Worker-count determinism                                            *)
(* ------------------------------------------------------------------ *)

(* The same batches through services at 1 and 4 workers must produce
   identical response lists and an identical deterministic metrics
   snapshot: single-flight fills keep even the cached bits and the
   plan-cache counters independent of scheduling. *)
let test_worker_determinism () =
  let batch_a =
    [
      kernel_req ~id:1 "estimate" "spmv" 8;
      kernel_req ~id:2 "compile" "spmv" 8;
      kernel_req ~id:3 "stats" "spmv" 8;
      kernel_req ~id:4 "estimate" "plus3" 8;
      req ~id:5 "ping" [];
    ]
  in
  let batch_b = batch_a (* replay: every cacheable request hits *) in
  let drive workers =
    Metrics.reset ();
    with_service ~workers (fun svc ->
        let r1 = Service.handle_batch svc batch_a in
        let r2 = Service.handle_batch svc batch_b in
        ( List.map Json.to_string (r1 @ r2),
          Metrics.snapshot_json ~deterministic:true () ))
  in
  let responses1, snapshot1 = drive 1 in
  let responses4, snapshot4 = drive 4 in
  checkb "response lists identical at 1 vs 4 workers" true
    (responses1 = responses4);
  checks "deterministic metrics snapshot identical at 1 vs 4 workers"
    snapshot1 snapshot4;
  (* the replayed batch really was served from the cache *)
  List.iteri
    (fun i line ->
      let resp = Json.parse line in
      match Json.member "cached" resp with
      | Some (Json.Bool c) ->
          checkb (Fmt.str "replayed request %d cached" i) true c
      | _ -> ())
    (List.filteri (fun i _ -> i >= List.length batch_a) responses1)

(* A batch whose item itself maps on the pool (autotune) must degrade to
   an inline nested run, not deadlock on the batch submitter's lock. *)
let test_batch_autotune_no_deadlock () =
  with_service ~workers:2 (fun svc ->
      let batch =
        [
          kernel_req ~id:1 "autotune" "spmv" 8
            ~extra:[ ("strategy", Json.Str "greedy") ];
          req ~id:2 "ping" [];
          kernel_req ~id:3 "estimate" "spmv" 8;
        ]
      in
      let responses = Service.handle_batch svc batch in
      checki "every batch item answered" 3 (List.length responses);
      List.iter
        (fun r -> checkb "batch item ok" true (is_ok r))
        responses)

(* ------------------------------------------------------------------ *)
(* Socket transport                                                    *)
(* ------------------------------------------------------------------ *)

let test_unix_socket_session () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "stardust-serve-test-%d.sock" (Unix.getpid ()))
  in
  with_service ~workers:1 (fun svc ->
      let listener = Domain.spawn (fun () -> Server.serve_unix_socket svc path) in
      let rec wait_for_socket n =
        if not (Sys.file_exists path) && n > 0 then begin
          Unix.sleepf 0.01;
          wait_for_socket (n - 1)
        end
      in
      wait_for_socket 500;
      let c = Client.connect path in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let ping = Client.rpc c (req ~id:1 "ping" []) in
          checkb "socket ping ok" true (is_ok ping);
          let cold = Client.rpc c (kernel_req ~id:2 "compile" "spmv" 8) in
          let warm = Client.rpc c (kernel_req ~id:3 "compile" "spmv" 8) in
          checkb "socket cold compile ok" true (is_ok cold);
          checkb "socket warm compile cached" true (cached_bit warm);
          (* a batch line comes back as one array in request order *)
          let batch =
            Client.rpc c
              (Json.Arr [ req ~id:4 "ping" []; kernel_req ~id:5 "estimate" "spmv" 8 ])
          in
          (match batch with
          | Json.Arr [ a; b ] ->
              checkb "batch ping ok" true (is_ok a);
              checkb "batch estimate ok" true (is_ok b)
          | _ -> Alcotest.fail "expected a two-element response array");
          let bye = Client.rpc c (req ~id:6 "shutdown" []) in
          checkb "socket shutdown ok" true (is_ok bye));
      Domain.join listener;
      checkb "socket file unlinked on exit" false (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Hardening: deadlines, shedding, disconnects, oversized lines        *)
(* ------------------------------------------------------------------ *)

(* A request that blows its deadline_ms is abandoned with a stable
   E1005 — and the service keeps answering afterwards. *)
let test_deadline () =
  with_service ~workers:1 (fun svc ->
      let heavy =
        kernel_req ~id:1 "autotune" "mttkrp" 96
          ~extra:
            [
              ("strategy", Json.Str "random");
              ("samples", Json.Num 4000.0);
              ("deadline_ms", Json.Num 1.0);
            ]
      in
      let resp = Service.handle_request svc heavy in
      checkb "deadline blown answered, not hung" true (not (is_ok resp));
      checks "deadline code" "E1005" (error_code resp);
      (* the daemon is still alive and still fast *)
      let ping = Service.handle_request svc (req ~id:2 "ping" []) in
      checkb "service survives an abandoned request" true (is_ok ping);
      (* a generous deadline does not get in the way *)
      let light =
        kernel_req ~id:3 "estimate" "spmv" 8
          ~extra:[ ("deadline_ms", Json.Num 60000.0) ]
      in
      checkb "request under its deadline ok" true
        (is_ok (Service.handle_request svc light));
      (* a daemon-wide default applies where the request sets none *)
      let svc2 = Service.create ~workers:1 ~request_timeout:0.001 () in
      Fun.protect
        ~finally:(fun () -> Service.shutdown svc2)
        (fun () ->
          let r =
            Service.handle_request svc2
              (kernel_req ~id:4 "autotune" "mttkrp" 96
                 ~extra:
                   [
                     ("strategy", Json.Str "random");
                     ("samples", Json.Num 4000.0);
                   ])
          in
          checkb "daemon default deadline fires" true (not (is_ok r));
          checks "daemon default deadline code" "E1005" (error_code r)))

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Fmt.str "stardust-%s-%d" name (Unix.getpid ()))

let with_listener ?max_connections ?max_line_bytes svc path f =
  let listener =
    Domain.spawn (fun () ->
        Server.serve_unix_socket ?max_connections ?max_line_bytes svc path)
  in
  let rec wait n =
    if (not (Sys.file_exists path)) && n > 0 then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  Fun.protect
    ~finally:(fun () ->
      Service.request_stop svc;
      Domain.join listener)
    f

(* Beyond --max-connections the daemon sheds with a one-line E1004 and
   keeps serving the connections it already accepted. *)
let test_shed_at_bound () =
  let path = tmp_path "shed.sock" in
  with_service ~workers:1 (fun svc ->
      with_listener ~max_connections:1 svc path (fun () ->
          let held = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close held)
            (fun () ->
              (* occupy the only slot with a real exchange *)
              checkb "held connection serves" true
                (is_ok (Client.rpc held (req ~id:1 "ping" [])));
              (* the next connection is shed with E1004 *)
              let shed = Client.connect path in
              let line = input_line shed.Client.ic in
              Client.close shed;
              let resp = Json.parse line in
              checks "shed connection answered E1004" "E1004"
                (error_code resp);
              checks "shed op" "overloaded" (Json.to_str (field "op" resp));
              (* the held connection is unaffected *)
              checkb "held connection still serves" true
                (is_ok (Client.rpc held (req ~id:2 "ping" []))))))

(* An abrupt client disconnect — mid-request and mid-response — never
   takes the daemon down. *)
let test_abrupt_disconnect () =
  let path = tmp_path "disc.sock" in
  with_service ~workers:1 (fun svc ->
      with_listener svc path (fun () ->
          (* half-written line, then slam the socket *)
          let c1 = Client.connect path in
          output_string c1.Client.oc "{\"op\": \"comp";
          flush c1.Client.oc;
          Client.close c1;
          (* full request, slam before reading the response *)
          let c2 = Client.connect path in
          output_string c2.Client.oc
            "{\"op\": \"compile\", \"kernel\": \"spmv\", \"n\": 8}\n";
          flush c2.Client.oc;
          Client.close c2;
          (* daemon still answers a fresh connection *)
          Unix.sleepf 0.1;
          let c3 = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c3)
            (fun () ->
              checkb "daemon survives abrupt disconnects" true
                (is_ok (Client.rpc c3 (req ~id:1 "ping" []))))))

(* Deeply nested JSON — the stack-smashing attack on the recursive
   parser — is answered with a structured E1001 on both transports, the
   connection stays usable, and the daemon never leaks its connection
   slot (the review-found failure mode: a Stack_overflow escaping the
   handler's I/O-shaped exception filter skipped the cleanup, leaking
   one slot per hit until every future connection was shed). *)
let test_deep_nesting () =
  let deep d = String.make d '[' ^ String.make d ']' in
  (* stdin-shaped path: handle_line answers, never raises *)
  with_service ~workers:1 (fun svc ->
      let resp = Json.parse (Server.handle_line svc (deep 100_000)) in
      checks "deep line answered E1001" "E1001" (error_code resp));
  (* socket path: repeat the attack more times than --max-connections —
     a leaked slot per hit would shed the liveness probe at the end *)
  let path = tmp_path "deep.sock" in
  with_service ~workers:1 (fun svc ->
      with_listener ~max_connections:4 svc path (fun () ->
          for _ = 1 to 8 do
            let c = Client.connect path in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let resp = Json.parse (Client.rpc_line c (deep 100_000)) in
                checks "socket deep line answered E1001" "E1001"
                  (error_code resp);
                checkb "connection survives the deep line" true
                  (is_ok (Client.rpc c (req ~id:1 "ping" []))))
          done;
          (* no slots leaked: a fresh connection still gets served *)
          let c = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              checkb "no connection slots leaked" true
                (is_ok (Client.rpc c (req ~id:2 "ping" []))))))

(* A line past the bound is answered E1006 and the connection stays
   usable for the next request. *)
let test_oversized_line () =
  let path = tmp_path "long.sock" in
  with_service ~workers:1 (fun svc ->
      with_listener ~max_line_bytes:256 svc path (fun () ->
          let c = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let resp =
                Json.parse (Client.rpc_line c (String.make 4096 'x'))
              in
              checks "oversized line answered E1006" "E1006" (error_code resp);
              checkb "connection survives the oversized line" true
                (is_ok (Client.rpc c (req ~id:1 "ping" []))))))

(* ------------------------------------------------------------------ *)
(* Crash-safe persistence                                              *)
(* ------------------------------------------------------------------ *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* The acceptance bit: a daemon restarted over the same --cache-dir
   answers a repeat from disk, bit-identically, as a cache hit. *)
let test_persistence_restart () =
  let dir = tmp_path "pcache" in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let r = kernel_req ~id:1 "compile" "spmv" 8 in
      let strip_cached = function
        | Json.Obj fields ->
            Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields)
        | j -> j
      in
      (* first daemon: compile once, spill at fill time *)
      let svc1 = Service.create ~workers:1 ~cache_dir:dir () in
      let cold =
        Fun.protect
          ~finally:(fun () -> Service.shutdown svc1)
          (fun () -> Service.handle_request svc1 r)
      in
      checkb "cold compile ok" true (is_ok cold);
      checkb "cold compile is a miss" false (cached_bit cold);
      checkb "fill spilled to disk" true
        (Array.exists
           (fun f -> Filename.check_suffix f ".json")
           (Sys.readdir dir));
      (* second daemon: warm-starts from the spill *)
      let svc2 = Service.create ~workers:1 ~cache_dir:dir () in
      Fun.protect
        ~finally:(fun () -> Service.shutdown svc2)
        (fun () ->
          checkb "clean spill loads without warnings" true
            (Service.boot_diags svc2 = []);
          let warm = Service.handle_request svc2 r in
          checkb "restarted daemon answers the repeat as a hit" true
            (cached_bit warm);
          checks "restart answer is bit-identical"
            (Json.to_string (strip_cached cold))
            (Json.to_string (strip_cached warm));
          let c = Plan_cache.counters (Service.plan_cache svc2) in
          checki "no recompilation after restart" 0 c.Plan_cache.misses;
          checki "the repeat was a cache hit" 1 c.Plan_cache.hits))

(* A corrupted spill entry is skipped with a W0104 warning; the daemon
   boots and the poisoned key just recompiles. *)
let test_persistence_corrupt () =
  let dir = tmp_path "pcache-corrupt" in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Unix.mkdir dir 0o755;
      (* a truncated write and outright garbage *)
      let put name bytes =
        let oc = open_out (Filename.concat dir name) in
        output_string oc bytes;
        close_out oc
      in
      put "plan_0000000000000001.json" "{\"version\": 1, \"key\"";
      put "plan_0000000000000002.json" "not json at all";
      put "plan_0000000000000003.json" "{\"version\": 99, \"key\": \"k\", \"value\": 1}";
      let svc = Service.create ~workers:1 ~cache_dir:dir () in
      Fun.protect
        ~finally:(fun () -> Service.shutdown svc)
        (fun () ->
          let ds = Service.boot_diags svc in
          checki "every corrupt entry warned" 3 (List.length ds);
          List.iter
            (fun d ->
              checks "corrupt entry code" Diag.code_cache_corrupt d.Diag.code;
              checkb "corrupt warning names the file" true
                (List.mem_assoc "file" d.Diag.context))
            ds;
          (* the daemon is fine; a compile fills and spills fresh *)
          let r = Service.handle_request svc (kernel_req ~id:1 "compile" "spmv" 8) in
          checkb "daemon serves after corrupt boot" true (is_ok r)))

(* ------------------------------------------------------------------ *)
(* Chaos: the storm as a unit test                                     *)
(* ------------------------------------------------------------------ *)

(* A small in-process storm: garbage, half-lines, oversized lines,
   slow-loris, and mid-response disconnects concurrent with well-formed
   clients.  Zero failures means: never crashed, every well-formed
   request answered. *)
let test_chaos_storm () =
  let path = tmp_path "chaos.sock" in
  with_service ~workers:2 (fun svc ->
      with_listener ~max_connections:8 ~max_line_bytes:4096 svc path
        (fun () ->
          let cfg =
            {
              (Chaos.default_config ~socket:path) with
              Chaos.clients = 3;
              requests_per_client = 8;
              adversaries = 2;
              attacks_per_adversary = 5;
              max_line_bytes = 4096;
            }
          in
          let report = Chaos.run cfg in
          checks "chaos storm has zero failures" ""
            (String.concat "; " report.Chaos.failures);
          checki "every well-formed request answered"
            report.Chaos.wellformed_sent report.Chaos.wellformed_answered;
          checki "every attack ran" 10 report.Chaos.attacks_run))

(* ------------------------------------------------------------------ *)
(* Request correlation                                                 *)
(* ------------------------------------------------------------------ *)

let contains = Test_obs.contains

let request_id_of resp =
  match Json.member "request_id" resp with
  | Some (Json.Str s) -> Some s
  | _ -> None

(* every [request_id] stamped into a diagnostic's context object *)
let diag_context_rids resp =
  match Json.member "error" resp with
  | Some (Json.Obj ef) -> (
      match List.assoc_opt "diagnostics" ef with
      | Some (Json.Arr ds) ->
          List.map
            (fun d ->
              match Json.member "context" d with
              | Some (Json.Obj ctx) -> (
                  match List.assoc_opt "request_id" ctx with
                  | Some (Json.Str r) -> r
                  | _ -> "<unstamped>")
              | _ -> "<no context>")
            ds
      | _ -> [])
  | _ -> []

let generated_rid msg resp =
  match request_id_of resp with
  | Some r ->
      checkb msg true (String.length r > 2 && String.sub r 0 2 = "r-")
  | None -> Alcotest.fail (msg ^ ": request_id missing")

(* A client-supplied request_id is echoed in the envelope; a deadline
   failure stamps it into every diagnostic context, retains the span
   tree in the flight recorder under that id, and every retained span
   carries it as an arg — at one worker and at four. *)
let test_request_correlation () =
  List.iter
    (fun workers ->
      with_service ~workers (fun svc ->
          let tag = Fmt.str "w%d" workers in
          let resp =
            Service.handle_request svc
              (req ~id:1 "ping" []
                 ~extra:[ ("request_id", Json.Str ("cli-" ^ tag)) ])
          in
          check
            Alcotest.(option string)
            (tag ^ ": client id echoed")
            (Some ("cli-" ^ tag))
            (request_id_of resp);
          generated_rid
            (tag ^ ": minted id on a bare request")
            (Service.handle_request svc (req ~id:2 "ping" []));
          (* malformed correlation ids are protocol errors, still
             answered with a minted id *)
          let bad =
            Service.handle_request svc
              (req ~id:3 "ping" [] ~extra:[ ("request_id", Json.Num 7.0) ])
          in
          checks (tag ^ ": non-string request_id code") "E1002"
            (error_code bad);
          generated_rid (tag ^ ": rejected request still correlated") bad;
          checks
            (tag ^ ": unprintable request_id code")
            "E1002"
            (error_code
               (Service.handle_request svc
                  (req ~id:4 "ping" []
                     ~extra:[ ("request_id", Json.Str "has space") ])));
          (* blow a deadline under the client's id *)
          let rid = "doomed-" ^ tag in
          let resp =
            Service.handle_request svc
              (kernel_req ~id:5 "autotune" "mttkrp" 96
                 ~extra:
                   [
                     ("strategy", Json.Str "random");
                     ("samples", Json.Num 4000.0);
                     ("deadline_ms", Json.Num 1.0);
                     ("request_id", Json.Str rid);
                   ])
          in
          checks (tag ^ ": deadline code") "E1005" (error_code resp);
          check
            Alcotest.(option string)
            (tag ^ ": failure echoes the id")
            (Some rid) (request_id_of resp);
          let rids = diag_context_rids resp in
          checkb (tag ^ ": at least one diagnostic") true (rids <> []);
          List.iter
            (fun r -> checks (tag ^ ": diag context stamped") rid r)
            rids;
          (* acceptance: the id echoed in the NDJSON error response keys
             the full span tree in the flight recorder *)
          (match Flight.find (Service.flight svc) rid with
          | None -> Alcotest.fail (tag ^ ": failure not in the recorder")
          | Some e ->
              checkb (tag ^ ": spans retained for the failure") true
                (e.Flight.f_spans <> []);
              List.iter
                (fun (_, ev) ->
                  check
                    Alcotest.(option string)
                    (tag ^ ": every retained span correlated")
                    (Some rid)
                    (List.assoc_opt "request_id" ev.Trace.ev_args))
                e.Flight.f_spans);
          match Flight.trace_json (Service.flight svc) rid with
          | None -> Alcotest.fail (tag ^ ": trace_json lost the failure")
          | Some json ->
              checkb (tag ^ ": tree holds the serve root span") true
                (contains ~affix:"serve.autotune" json);
              checkb (tag ^ ": tree names the code") true
                (contains ~affix:"E1005" json)))
    [ 1; 4 ]

(* With global tracing on, the correlation id follows the request into
   the deadline sub-domain and onto pool worker spans — the id appears
   on the exported events recorded by other domains. *)
let test_correlation_in_trace_export () =
  with_service ~workers:2 (fun svc ->
      Trace.reset ();
      Trace.start ();
      Fun.protect
        ~finally:(fun () -> Trace.reset ())
        (fun () ->
          checkb "estimate under deadline ok" true
            (is_ok
               (Service.handle_request svc
                  (kernel_req ~id:1 "estimate" "spmv" 8
                     ~extra:
                       [
                         ("deadline_ms", Json.Num 60000.0);
                         ("request_id", Json.Str "deep-1");
                       ])));
          checkb "autotune ok" true
            (is_ok
               (Service.handle_request svc
                  (kernel_req ~id:2 "autotune" "spmv" 8
                     ~extra:
                       [
                         ("strategy", Json.Str "greedy");
                         ("request_id", Json.Str "deep-2");
                       ])));
          let evs = Trace.events () in
          let with_rid rid =
            List.filter
              (fun e ->
                List.assoc_opt "request_id" e.Trace.ev_args = Some rid)
              evs
          in
          let deep1 = with_rid "deep-1" in
          let root =
            match
              List.find_opt (fun e -> e.Trace.ev_name = "serve.estimate") deep1
            with
            | Some e -> e
            | None -> Alcotest.fail "serve.estimate span not exported"
          in
          checkb "deadline sub-domain spans carry the id" true
            (List.exists (fun e -> e.Trace.ev_tid <> root.Trace.ev_tid) deep1);
          let deep2 = with_rid "deep-2" in
          checkb "serve.autotune span exported" true
            (List.exists (fun e -> e.Trace.ev_name = "serve.autotune") deep2);
          checkb "pool worker spans carry the id" true
            (List.exists (fun e -> e.Trace.ev_cat = "pool") deep2)))

(* Correlation over the wire: ids echoed through the unix socket, and
   transport-level errors (unparseable line, oversized line) answered
   with minted ids that land in the flight recorder too. *)
let test_correlation_over_socket () =
  let path = tmp_path "corr.sock" in
  with_service ~workers:1 (fun svc ->
      with_listener ~max_line_bytes:4096 svc path (fun () ->
          let c = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              check
                Alcotest.(option string)
                "socket echoes the id" (Some "sock-1")
                (request_id_of
                   (Client.rpc c
                      (req ~id:1 "ping" []
                         ~extra:[ ("request_id", Json.Str "sock-1") ])));
              let resp = Json.parse (Client.rpc_line c "{nope") in
              checks "garbage line code" "E1001" (error_code resp);
              generated_rid "E1001 carries a minted id" resp;
              let resp =
                Json.parse (Client.rpc_line c (String.make 8192 'x'))
              in
              checks "oversized line code" "E1006" (error_code resp);
              generated_rid "E1006 carries a minted id" resp;
              let resp =
                Client.rpc c
                  (kernel_req ~id:2 "autotune" "mttkrp" 96
                     ~extra:
                       [
                         ("strategy", Json.Str "random");
                         ("samples", Json.Num 4000.0);
                         ("deadline_ms", Json.Num 1.0);
                         ("request_id", Json.Str "sock-doom");
                       ])
              in
              checks "socket deadline code" "E1005" (error_code resp);
              check
                Alcotest.(option string)
                "socket failure echoes the id" (Some "sock-doom")
                (request_id_of resp);
              checkb "socket failure traceable by its id" true
                (Flight.trace_json (Service.flight svc) "sock-doom" <> None);
              let _, failed, total = Flight.occupancy (Service.flight svc) in
              checkb "recorder saw every exchange" true (total >= 4);
              checkb "failures retained with spans" true (failed >= 3))))

(* The deterministic flight dump is a pure function of the request
   multiset: identical at one worker and at four. *)
let test_flight_deterministic_across_workers () =
  let dump workers =
    with_service ~workers (fun svc ->
        let batch =
          [
            req ~id:1 "ping" [] ~extra:[ ("request_id", Json.Str "s-ping") ];
            kernel_req ~id:2 "compile" "spmv" 8
              ~extra:[ ("request_id", Json.Str "s-compile") ];
            kernel_req ~id:3 "estimate" "sddmm" 8
              ~extra:[ ("request_id", Json.Str "s-estimate") ];
            kernel_req ~id:4 "compile" "nosuch" 8
              ~extra:[ ("request_id", Json.Str "s-bad") ];
          ]
        in
        checki "batch answered" 4 (List.length (Service.handle_batch svc batch));
        Flight.entries_json ~deterministic:true (Service.flight svc))
  in
  let d1 = dump 1 in
  checks "flight dump workers 1 vs 4" d1 (dump 4);
  checkb "failure summarized" true (contains ~affix:"s-bad" d1);
  checkb "no wall-clock in the deterministic dump" false
    (contains ~affix:"latency" d1)

(* ------------------------------------------------------------------ *)
(* The HTTP observability plane                                        *)
(* ------------------------------------------------------------------ *)

(* one raw request with an arbitrary method, for the 405 check *)
let http_raw addr meth path =
  match String.rindex_opt addr ':' with
  | None -> Alcotest.fail ("bad addr " ^ addr)
  | Some i ->
      let host = String.sub addr 0 i
      and port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
          let r =
            Fmt.str "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
              meth path host
          in
          ignore (Unix.write_substring fd r 0 (String.length r));
          let buf = Buffer.create 256 in
          let chunk = Bytes.create 1024 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          in
          drain ();
          Buffer.contents buf)

let test_http_plane () =
  with_service ~workers:1 (fun svc ->
      match Http.start ~version:"test" ~service:svc "127.0.0.1:0" with
      | Error e -> Alcotest.fail ("http plane failed to start: " ^ e)
      | Ok plane ->
          Fun.protect
            ~finally:(fun () -> Http.stop plane)
            (fun () ->
              let addr = Http.bound_addr plane in
              (* seed some traffic, including one failure *)
              checkb "ping ok" true
                (is_ok (Service.handle_request svc (req ~id:1 "ping" [])));
              checks "seeded failure" "E1005"
                (error_code
                   (Service.handle_request svc
                      (kernel_req ~id:2 "autotune" "mttkrp" 96
                         ~extra:
                           [
                             ("strategy", Json.Str "random");
                             ("samples", Json.Num 4000.0);
                             ("deadline_ms", Json.Num 1.0);
                             ("request_id", Json.Str "dead-http");
                           ])));
              (* /metrics: valid exposition text with the serve families *)
              (match Client.scrape_metrics addr with
              | Error e -> Alcotest.fail ("scrape failed: " ^ e)
              | Ok body ->
                  ignore (Test_obs.lint_prometheus body : int);
                  checkb "request counter scraped" true
                    (contains ~affix:"serve_requests_total" body);
                  checkb "flight counter scraped" true
                    (contains ~affix:"serve_flight_recorded_total" body);
                  checkb "http counter scraped" true
                    (contains ~affix:"serve_http_requests_total" body));
              (* health and readiness *)
              (match Client.health addr with
              | Ok (h, r) ->
                  checkb "healthy" true h;
                  checkb "ready" true r
              | Error e -> Alcotest.fail ("health failed: " ^ e));
              (* buildinfo *)
              (match Client.http_get addr "/buildinfo" with
              | Ok (200, body) ->
                  checkb "buildinfo names the version" true
                    (contains ~affix:{|"version":"test"|} body);
                  checkb "buildinfo names the chip config" true
                    (contains ~affix:"chip_config" body)
              | Ok (s, _) -> Alcotest.fail (Fmt.str "/buildinfo answered %d" s)
              | Error e -> Alcotest.fail ("buildinfo failed: " ^ e));
              (* flight recorder endpoints *)
              (match Client.http_get addr "/debug/requests" with
              | Ok (200, body) ->
                  checkb "recorder lists the failure" true
                    (contains ~affix:"dead-http" body)
              | Ok (s, _) ->
                  Alcotest.fail (Fmt.str "/debug/requests answered %d" s)
              | Error e -> Alcotest.fail ("debug/requests failed: " ^ e));
              (match Client.http_get addr "/debug/trace?id=dead-http" with
              | Ok (200, body) ->
                  checkb "trace holds the serve span" true
                    (contains ~affix:"serve.autotune" body)
              | Ok (s, _) -> Alcotest.fail (Fmt.str "/debug/trace answered %d" s)
              | Error e -> Alcotest.fail ("debug/trace failed: " ^ e));
              (match Client.http_get addr "/debug/trace?id=nope" with
              | Ok (404, _) -> ()
              | Ok (s, _) -> Alcotest.fail (Fmt.str "unknown id answered %d" s)
              | Error e -> Alcotest.fail e);
              (match Client.http_get addr "/debug/trace" with
              | Ok (400, _) -> ()
              | Ok (s, _) -> Alcotest.fail (Fmt.str "missing id answered %d" s)
              | Error e -> Alcotest.fail e);
              (match Client.http_get addr "/nope" with
              | Ok (404, _) -> ()
              | Ok (s, _) -> Alcotest.fail (Fmt.str "unknown path answered %d" s)
              | Error e -> Alcotest.fail e);
              checkb "non-GET answered 405" true
                (contains ~affix:"405" (http_raw addr "POST" "/metrics"));
              (* drain: readiness flips to 503, health and metrics stay up *)
              Service.request_stop svc;
              (match Client.health addr with
              | Ok (h, r) ->
                  checkb "still healthy while draining" true h;
                  checkb "not ready while draining" false r
              | Error e -> Alcotest.fail ("health during drain: " ^ e));
              (match Client.http_get addr "/readyz" with
              | Ok (503, body) ->
                  checkb "drain reason named" true
                    (contains ~affix:"draining" body)
              | Ok (s, _) -> Alcotest.fail (Fmt.str "draining readyz = %d" s)
              | Error e -> Alcotest.fail e);
              match Client.scrape_metrics addr with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("scrape during drain: " ^ e)))

(* Acceptance: scraping /metrics DURING an in-process chaos storm keeps
   returning valid exposition text, and the storm itself stays clean. *)
let test_http_scrape_during_chaos () =
  let path = tmp_path "chaos-http.sock" in
  with_service ~workers:2 (fun svc ->
      match Http.start ~version:"test" ~service:svc "127.0.0.1:0" with
      | Error e -> Alcotest.fail ("http plane failed to start: " ^ e)
      | Ok plane ->
          Fun.protect
            ~finally:(fun () -> Http.stop plane)
            (fun () ->
              let addr = Http.bound_addr plane in
              with_listener ~max_connections:8 ~max_line_bytes:4096 svc path
                (fun () ->
                  let cfg =
                    {
                      (Chaos.default_config ~socket:path) with
                      Chaos.clients = 2;
                      requests_per_client = 6;
                      adversaries = 2;
                      attacks_per_adversary = 4;
                      max_line_bytes = 4096;
                    }
                  in
                  let storm = Domain.spawn (fun () -> Chaos.run cfg) in
                  for i = 1 to 10 do
                    (match Client.scrape_metrics addr with
                    | Ok body ->
                        ignore (Test_obs.lint_prometheus body : int);
                        checkb
                          (Fmt.str "scrape %d has the request counter" i)
                          true
                          (contains ~affix:"serve_requests_total" body)
                    | Error e ->
                        Alcotest.fail (Fmt.str "scrape %d during storm: %s" i e));
                    Unix.sleepf 0.02
                  done;
                  let report = Domain.join storm in
                  checks "storm under scrape has zero failures" ""
                    (String.concat "; " report.Chaos.failures);
                  checki "every well-formed request answered"
                    report.Chaos.wellformed_sent
                    report.Chaos.wellformed_answered)))

(* Budgeted autotune over the wire: the strategy/budget fields reach the
   explorer, the result reports its budget accounting, and an unknown
   strategy is refused with the stable E1008 code (not silently mapped
   to exhaustive, and never cached). *)
let test_autotune_budgeted () =
  with_service ~workers:1 (fun svc ->
      let resp =
        Service.handle_request svc
          (kernel_req ~id:1 "autotune" "spmv" 8
             ~extra:
               [ ("strategy", Json.Str "halving"); ("budget", Json.Num 6.0) ])
      in
      checkb "halving autotune ok" true (is_ok resp);
      let result = field "result" resp in
      checks "strategy echoed" "halving"
        (Json.to_str (field "strategy" result));
      checki "budget echoed" 6
        (int_of_float (Json.to_float (field "budget" result)));
      checkb "full evaluations capped by the budget" true
        (Json.to_float (field "full_evals" result) <= 6.0);
      checkb "bound evaluations reported" true
        (Json.member "bound_evals" result <> None);
      let surrogate =
        Service.handle_request svc
          (kernel_req ~id:2 "autotune" "spmv" 8
             ~extra:[ ("strategy", Json.Str "surrogate") ])
      in
      checkb "surrogate autotune ok" true (is_ok surrogate);
      let unknown =
        Service.handle_request svc
          (kernel_req ~id:3 "autotune" "spmv" 8
             ~extra:[ ("strategy", Json.Str "simplex") ])
      in
      checkb "unknown strategy refused" false (is_ok unknown);
      checks "unknown strategy answered E1008" "E1008" (error_code unknown);
      let negative =
        Service.handle_request svc
          (kernel_req ~id:4 "autotune" "spmv" 8
             ~extra:[ ("budget", Json.Num (-1.0)) ])
      in
      checkb "negative budget refused" false (is_ok negative);
      checks "negative budget answered E1002" "E1002" (error_code negative))

let suite =
  [
    Alcotest.test_case "protocol: every op round-trips" `Quick
      test_roundtrip_ops;
    Alcotest.test_case "protocol: expression mode and dram keys" `Quick
      test_expr_mode;
    Alcotest.test_case "protocol: malformed requests get stable codes"
      `Quick test_malformed;
    Alcotest.test_case "plan cache: repeat answered bit-identically" `Quick
      test_plan_cache_hit_identical;
    Alcotest.test_case "plan cache: LRU eviction under a tiny bound" `Quick
      test_plan_cache_lru;
    Alcotest.test_case "plan cache: single-flight fills" `Quick
      test_plan_cache_single_flight;
    Alcotest.test_case "plan cache: failed fill withdraws" `Quick
      test_plan_cache_failed_fill;
    Alcotest.test_case "service: workers 1 vs 4 deterministic" `Quick
      test_worker_determinism;
    Alcotest.test_case "service: batched autotune does not deadlock" `Quick
      test_batch_autotune_no_deadlock;
    Alcotest.test_case "service: budgeted autotune strategies and E1008"
      `Quick test_autotune_budgeted;
    Alcotest.test_case "server: unix-socket client session" `Quick
      test_unix_socket_session;
    Alcotest.test_case "hardening: deadlines answered E1005" `Quick
      test_deadline;
    Alcotest.test_case "hardening: shed at --max-connections with E1004"
      `Quick test_shed_at_bound;
    Alcotest.test_case "hardening: abrupt disconnects survived" `Quick
      test_abrupt_disconnect;
    Alcotest.test_case "hardening: oversized lines answered E1006" `Quick
      test_oversized_line;
    Alcotest.test_case "hardening: deep nesting answered E1001, no leak"
      `Quick test_deep_nesting;
    Alcotest.test_case "persistence: restart answers repeats from disk"
      `Quick test_persistence_restart;
    Alcotest.test_case "persistence: corrupt spill skipped with W0104"
      `Quick test_persistence_corrupt;
    Alcotest.test_case "chaos: in-process storm, zero failures" `Quick
      test_chaos_storm;
    Alcotest.test_case "correlation: ids echoed, stamped, and traced"
      `Quick test_request_correlation;
    Alcotest.test_case "correlation: ids cross domains in the trace export"
      `Quick test_correlation_in_trace_export;
    Alcotest.test_case "correlation: ids over the unix socket" `Quick
      test_correlation_over_socket;
    Alcotest.test_case "flight: deterministic dump workers 1 vs 4" `Quick
      test_flight_deterministic_across_workers;
    Alcotest.test_case "http: observability plane endpoints" `Quick
      test_http_plane;
    Alcotest.test_case "http: scrape stays valid during a chaos storm"
      `Quick test_http_scrape_during_chaos;
  ]
