(* stardustc — the Stardust compiler driver.

   Compile sparse tensor algebra to Capstan from the command line:

     stardustc list
     stardustc kernel sddmm --code --resources --simulate
     stardustc compile -e "y(i) = A(i,j) * x(j)" \
         -f A=csr -f x=dv -f y=dv  -d A=64x64@0.05 -d x=64 \
         --code --simulate --cpu

   Random input data is generated deterministically from the -d specs;
   named kernels ship with paper-shaped defaults. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Cin = Stardust_ir.Cin
module S = Stardust_schedule.Schedule
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
module Resources = Stardust_capstan.Resources
module Imp = Stardust_vonneumann.Imp_interp
module Diag = Stardust_diag.Diag
module Fallback = Stardust_driver.Fallback
module D = Stardust_workloads.Datasets
module Explore = Stardust_explore.Explore
module Fuzz = Stardust_oracle.Fuzz
module Ocorpus = Stardust_oracle.Corpus
module Orunner = Stardust_oracle.Runner
module Ocase = Stardust_oracle.Case
module Space = Stardust_explore.Space
module Point = Stardust_explore.Point
module Eval = Stardust_explore.Eval
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics
module Profile = Stardust_obs.Profile
open Cmdliner

(* --trace FILE: record spans for the whole command and write a Chrome
   trace_event file on exit.  Saving via [at_exit] survives the [exit]
   calls the subcommands use for their status codes. *)
let trace_flag =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace_event file of the run (open in \
                 chrome://tracing or Perfetto).")

let start_tracing = function
  | None -> ()
  | Some path ->
      Trace.start ();
      at_exit (fun () -> Trace.save path)

(* --no-stats-cache: escape hatch around the process-wide dataset-
   statistics cache (every estimate recomputes from the raw tensors).
   Caching is behavior-invariant, so this only trades speed for memory —
   useful for isolating suspected cache bugs and for measuring the
   uncached baseline. *)
let no_stats_cache_flag =
  Arg.(value & flag
       & info [ "no-stats-cache" ]
           ~doc:"Disable the process-wide dataset-statistics cache \
                 (recompute statistics for every estimate).")

let apply_stats_cache no_cache =
  if no_cache then Stardust_tensor.Stats_cache.set_enabled false

(* Input construction (format names, "A=8x8@0.3" data specs, the
   paper-shaped random inputs for a named kernel stage) is shared with
   the compile service: one grammar, one seeding discipline, so a CLI
   invocation and a serve request over the same spec build the same
   tensors — and therefore the same plan-cache fingerprint. *)
module W = Stardust_serve.Workload
module Ingest = Stardust_ingest.Ingest
module Ingest_fuzz = Stardust_ingest.Ingest_fuzz

let stage_random_inputs = W.stage_random_inputs

(* Real-dataset ingestion flags, shared by every command that accepts -d
   specs: "NAME=@PATH" file specs resolve inside the --data-root sandbox
   and stream through Stardust_ingest under the hard budgets. *)
let data_root_flag =
  Arg.(value & opt (some string) None
       & info [ "data-root" ] ~docv:"DIR"
           ~doc:"Sandbox directory for $(b,NAME=@PATH) file data specs; \
                 file specs are refused without it, and may not be \
                 absolute or traverse with \"..\".")

let max_nnz_flag =
  Arg.(value & opt int 0
       & info [ "max-nnz" ] ~docv:"N"
           ~doc:"Refuse ingested files with more than $(docv) entries \
                 (0 = unlimited); exceeding it is a stable E0214.")

let max_ingest_bytes_flag =
  Arg.(value & opt int 0
       & info [ "max-ingest-bytes" ] ~docv:"BYTES"
           ~doc:"Refuse reading more than $(docv) bytes per ingested file \
                 (0 = unlimited); exceeding it is a stable E0214.")

let budget_of max_nnz max_bytes =
  Ingest.budget
    ?max_nnz:(if max_nnz > 0 then Some max_nnz else None)
    ?max_bytes:(if max_bytes > 0 then Some max_bytes else None)
    ()

let data_doc =
  "Input data spec: random, e.g. A=64x64@0.05 or x=64, or a real \
   dataset file under $(b,--data-root), e.g. A=@bcsstk.mtx."

(* ------------------------------------------------------------------ *)
(* Output sections                                                      *)
(* ------------------------------------------------------------------ *)

let report_compiled ?(dot = false) ~cin ~code ~resources ~simulate ~estimate
    ~cpu (compiled : C.compiled) =
  if dot then
    Fmt.pr "%s@." (Stardust_spatial.Dotgraph.of_program compiled.C.program);
  if cin then
    Fmt.pr "=== Concrete index notation ===@.%a@.@." Cin.pp
      (S.stmt compiled.C.schedule);
  if code then Fmt.pr "=== Spatial ===@.%s@.@." (C.spatial_code compiled);
  if resources then
    Fmt.pr "=== Capstan resources ===@.%a@.@." Resources.pp
      (Resources.count Arch.default compiled);
  if cpu then begin
    let _, _, func = Imp.run compiled.C.plan ~inputs:compiled.C.inputs in
    Fmt.pr "=== TACO-style C (CPU baseline) ===@.%s@.@."
      (Stardust_vonneumann.Imperative_ir.to_string func)
  end;
  if simulate then begin
    let results, report = Sim.execute compiled in
    List.iter (fun (name, t) -> Fmt.pr "=== Result %s ===@.%a@." name T.pp t) results;
    Fmt.pr "simulated: %.0f cycles (%.3f us), %.0f B DRAM traffic@.@."
      report.Sim.cycles (report.Sim.seconds *. 1e6) report.Sim.streamed_bytes
  end;
  if estimate then
    List.iter
      (fun (name, config) ->
        let r = Sim.estimate ~config compiled in
        Fmt.pr "%-18s %12.0f cycles  %10.3f us@." name r.Sim.cycles
          (r.Sim.seconds *. 1e6))
      [ ("Capstan (HBM2E)", Sim.default_config);
        ("Capstan (DDR4)", { Sim.arch = Arch.default; dram = Dram.ddr4 });
        ("Capstan (ideal)", Sim.ideal_config) ]

(* ------------------------------------------------------------------ *)
(* Commands                                                             *)
(* ------------------------------------------------------------------ *)

let flag_cin = Arg.(value & flag & info [ "cin" ] ~doc:"Print the scheduled CIN.")
let flag_code = Arg.(value & flag & info [ "code" ] ~doc:"Print the generated Spatial code.")
let flag_res = Arg.(value & flag & info [ "resources" ] ~doc:"Print Capstan resource usage.")
let flag_sim = Arg.(value & flag & info [ "simulate" ] ~doc:"Functionally simulate and print results.")
let flag_est = Arg.(value & flag & info [ "estimate" ] ~doc:"Print analytic cycle estimates per memory system.")
let flag_cpu = Arg.(value & flag & info [ "cpu" ] ~doc:"Print the TACO-style C the CPU baseline path generates.")
let flag_dot = Arg.(value & flag & info [ "dot" ] ~doc:"Print the dataflow graph in Graphviz DOT form.")

let list_cmd =
  let run () =
    Fmt.pr "Paper kernels (stardustc kernel NAME):@.";
    List.iter
      (fun (spec : K.spec) ->
        Fmt.pr "  %-12s %s@." (String.lowercase_ascii spec.K.kname)
          spec.K.paper_expr)
      K.all;
    Fmt.pr "@.Formats (for -f NAME=FMT): csr csc dv sv rm cm csf2 csf3 ucc scalar@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in paper kernels and formats.")
    Term.(const run $ const ())

let kernel_cmd =
  let kname_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL") in
  let scale =
    Arg.(value & opt int 32 & info [ "n" ] ~doc:"Scale of the random inputs.")
  in
  let run name scale cin code res sim est cpu dot =
    match K.find name with
    | None ->
        Fmt.epr "unknown kernel %s (try: stardustc list)@." name;
        exit 1
    | Some spec ->
        let n = scale in
        let inputs_for (st : K.stage) = stage_random_inputs st n in
        let pool = ref [] in
        List.iter
          (fun (st : K.stage) ->
            let inputs =
              List.map
                (fun (tname, t) ->
                  match List.assoc_opt tname !pool with
                  | Some prev -> (tname, T.rename tname prev)
                  | None -> (tname, t))
                (inputs_for st)
            in
            Fmt.pr "--- stage: %s ---@." st.K.expr;
            let compiled = K.compile_stage spec st ~inputs in
            report_compiled ~dot ~cin ~code ~resources:res ~simulate:sim
              ~estimate:est ~cpu compiled;
            if sim then begin
              let results, _ = Sim.execute compiled in
              pool := results @ !pool
            end)
          spec.K.stages
  in
  Cmd.v
    (Cmd.info "kernel"
       ~doc:"Compile one of the paper's kernels on synthetic data.")
    Term.(const run $ kname_arg $ scale $ flag_cin $ flag_code $ flag_res
          $ flag_sim $ flag_est $ flag_cpu $ flag_dot)

let compile_cmd =
  let expr =
    Arg.(required & opt (some string) None
         & info [ "e"; "expr" ] ~docv:"EXPR"
             ~doc:"Index-notation assignment, e.g. \"y(i) = A(i,j) * x(j)\".")
  in
  let formats =
    Arg.(value & opt_all string []
         & info [ "f"; "format" ] ~docv:"NAME=FMT" ~doc:"Tensor format binding.")
  in
  let data =
    Arg.(value & opt_all string []
         & info [ "d"; "data" ] ~docv:"NAME=SPEC" ~doc:data_doc)
  in
  let run expr formats data data_root max_nnz max_bytes cin code res sim est
      cpu dot =
    let formats =
      List.map W.parse_format_binding formats
    in
    let sched = C.schedule_of_string ~formats expr in
    let inputs =
      W.inputs_of_specs ?data_root ~budget:(budget_of max_nnz max_bytes)
        ~formats data
    in
    let compiled = C.compile sched ~inputs in
    let any = cin || code || res || sim || est || cpu || dot in
    report_compiled ~dot ~cin ~code:(code || not any) ~resources:res
      ~simulate:sim ~estimate:est ~cpu compiled
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile an arbitrary index-notation expression to Spatial.")
    Term.(const run $ expr $ formats $ data $ data_root_flag $ max_nnz_flag
          $ max_ingest_bytes_flag $ flag_cin $ flag_code $ flag_res
          $ flag_sim $ flag_est $ flag_cpu $ flag_dot)

(* ------------------------------------------------------------------ *)
(* run: execute with graceful degradation                              *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let kname_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"KERNEL"
             ~doc:"Paper kernel to run (or use -e/-f/-d for an arbitrary \
                   expression).")
  in
  let scale =
    Arg.(value & opt int 32 & info [ "n" ] ~doc:"Scale of the random inputs.")
  in
  let expr =
    Arg.(value & opt (some string) None
         & info [ "e"; "expr" ] ~docv:"EXPR"
             ~doc:"Index-notation assignment to run instead of a named kernel.")
  in
  let formats =
    Arg.(value & opt_all string []
         & info [ "f"; "format" ] ~docv:"NAME=FMT" ~doc:"Tensor format binding.")
  in
  let data =
    Arg.(value & opt_all string []
         & info [ "d"; "data" ] ~docv:"NAME=SPEC" ~doc:data_doc)
  in
  let fallback =
    Arg.(value
         & opt
             (enum
                [ ("none", Fallback.No_fallback);
                  ("retile", Fallback.Retile);
                  ("tiled", Fallback.Tiled);
                  ("cpu", Fallback.Cpu) ])
             Fallback.No_fallback
         & info [ "fallback" ] ~docv:"POLICY"
             ~doc:"Degradation policy when the kernel exceeds chip capacity: \
                   $(b,none) fails with diagnostics, $(b,retile) retries \
                   progressively gentler mappings, $(b,tiled) additionally \
                   permits out-of-core coordinate tiling when the data is \
                   what does not fit, $(b,cpu) additionally falls back to \
                   the von Neumann CPU baseline.")
  in
  let diag_json =
    Arg.(value & flag
         & info [ "diag-json" ]
             ~doc:"Emit all diagnostics as a JSON array on stdout instead of \
                   human-readable text on stderr.")
  in
  let pmus =
    Arg.(value & opt int 0
         & info [ "pmus" ]
             ~doc:"Override the chip's PMU count (0 = default; shrink it to \
                   exercise the capacity fallbacks).")
  in
  let pcus =
    Arg.(value & opt int 0
         & info [ "pcus" ]
             ~doc:"Override the chip's PCU count (0 = default).")
  in
  let watchdog =
    Arg.(value & opt float Sim.default_watchdog
         & info [ "watchdog" ]
             ~doc:"Simulator step budget before the watchdog trips.")
  in
  let run kname scale expr formats data data_root max_nnz max_bytes policy
      diag_json pmus pcus watchdog trace no_stats_cache =
    start_tracing trace;
    apply_stats_cache no_stats_cache;
    let arch =
      let a = Arch.default in
      let a = if pmus > 0 then { a with Arch.num_pmu = pmus } else a in
      if pcus > 0 then { a with Arch.num_pcu = pcus } else a
    in
    let config = { Sim.default_config with Sim.arch } in
    (* Stdout hygiene: with --diag-json, stdout carries only the JSON
       array, so `stardustc run --diag-json | jq` always parses; human
       progress moves to stderr. *)
    let hum_ppf = if diag_json then Fmt.stderr else Fmt.stdout in
    (* every diagnostic the run produces, in emission order *)
    let emitted = ref [] in
    let emit ds = emitted := !emitted @ ds in
    let finish code =
      if diag_json then Fmt.pr "%s@." (Diag.list_to_json !emitted)
      else List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) !emitted;
      exit code
    in
    let pool = ref [] in
    let run_stage label (cres : (C.compiled, Diag.t list) result) =
      match cres with
      | Error ds ->
          emit ds;
          finish 1
      | Ok compiled -> (
          match Fallback.run ~policy ~config ~watchdog compiled with
          | Error ds ->
              emit ds;
              finish 1
          | Ok o ->
              emit o.Fallback.diags;
              Fmt.pf hum_ppf "%s: ok on %s%a@." label
                (Fallback.backend_name o.Fallback.backend)
                Fmt.(
                  option (fun ppf (r : Sim.report) ->
                      Fmt.pf ppf " (%.0f cycles)" r.Sim.cycles))
                o.Fallback.report;
              List.iter
                (fun (rname, t) ->
                  Fmt.pf hum_ppf "  %s: %d nnz@." rname (T.nnz t))
                o.Fallback.results;
              pool := o.Fallback.results @ !pool)
    in
    (match (kname, expr) with
    | Some name, None -> (
        match K.find name with
        | None ->
            Fmt.epr "unknown kernel %s (try: stardustc list)@." name;
            exit 1
        | Some spec ->
            List.iter
              (fun (st : K.stage) ->
                let inputs =
                  List.map
                    (fun (tname, t) ->
                      match List.assoc_opt tname !pool with
                      | Some prev -> (tname, T.rename tname prev)
                      | None -> (tname, t))
                    (stage_random_inputs st scale)
                in
                run_stage st.K.expr (K.compile_stage_result spec st ~inputs))
              spec.K.stages)
    | None, Some e ->
        let formats =
          List.map W.parse_format_binding formats
        in
        (* ingestion failures (malformed files, budgets, sandbox refusals)
           reach --diag-json consumers structurally, like any other stage *)
        let inputs =
          match
            W.inputs_of_specs ?data_root ~budget:(budget_of max_nnz max_bytes)
              ~formats data
          with
          | inputs -> inputs
          | exception Diag.Fail ds ->
              emit ds;
              finish 1
        in
        run_stage e (C.compile_string_result ~formats ~inputs e)
    | _ ->
        Fmt.epr "run: give a KERNEL name or -e EXPR (not both)@.";
        exit 1);
    finish 0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Compile and execute a kernel, degrading gracefully (per \
             $(b,--fallback)) when it exceeds chip capacity.")
    Term.(const run $ kname_arg $ scale $ expr $ formats $ data
          $ data_root_flag $ max_nnz_flag $ max_ingest_bytes_flag $ fallback
          $ diag_json $ pmus $ pcus $ watchdog $ trace_flag
          $ no_stats_cache_flag)

let autotune_cmd =
  let kname_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"KERNEL"
             ~doc:"Paper kernel to autotune (or use -e/-f/-d for an \
                   arbitrary expression).")
  in
  let scale =
    Arg.(value & opt int 128 & info [ "n" ] ~doc:"Scale of the random inputs.")
  in
  let expr =
    Arg.(value & opt (some string) None
         & info [ "e"; "expr" ] ~docv:"EXPR"
             ~doc:"Index-notation assignment to autotune instead of a named \
                   kernel.")
  in
  let formats =
    Arg.(value & opt_all string []
         & info [ "f"; "format" ] ~docv:"NAME=FMT" ~doc:"Tensor format binding.")
  in
  let data =
    Arg.(value & opt_all string []
         & info [ "d"; "data" ] ~docv:"NAME=SPEC" ~doc:data_doc)
  in
  let strategy =
    Arg.(value & opt string "grid"
         & info [ "strategy" ] ~docv:"STRATEGY"
             ~doc:"Search strategy: exhaustive $(b,grid), $(b,greedy) \
                   coordinate descent, seeded $(b,random) sampling, \
                   bound-guided successive $(b,halving), population \
                   $(b,anneal)ing, or the linear-$(b,surrogate) ranker. \
                   The budgeted strategies ($(b,halving), $(b,anneal), \
                   $(b,surrogate)) cap full simulator evaluations at \
                   $(b,--budget).")
  in
  let budget =
    Arg.(value & opt int 0
         & info [ "budget" ] ~docv:"N"
             ~doc:"Maximum number of full simulator evaluations for the \
                   budgeted strategies (0 = the strategy's own default; \
                   exhaustive/greedy/random ignore it).")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ]
             ~doc:"Domain worker pool size (0 = one per available core).")
  in
  let samples =
    Arg.(value & opt int 64
         & info [ "samples" ] ~doc:"Sample count for --strategy random.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"PRNG seed for --strategy random/anneal.")
  in
  let splits =
    Arg.(value & opt (list int) []
         & info [ "splits" ] ~docv:"N,N"
             ~doc:"Also enumerate loop splits at these tile sizes (the \
                   pruning layer rejects what the backend cannot lower).")
  in
  let regions =
    Arg.(value & flag
         & info [ "regions" ]
             ~doc:"Also search the on-chip/off-chip gather-region axis.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the result as JSON on stdout.")
  in
  let run kname scale expr formats data data_root max_nnz max_bytes strategy
      budget workers samples seed splits regions json trace no_stats_cache =
    start_tracing trace;
    apply_stats_cache no_stats_cache;
    let problem =
      match (kname, expr) with
      | Some name, None -> (
          match K.find name with
          | None ->
              Fmt.epr "unknown kernel %s (try: stardustc list)@." name;
              exit 1
          | Some spec ->
              let st = List.hd spec.K.stages in
              if List.length spec.K.stages > 1 then
                Fmt.epr
                  "note: %s is multi-stage; autotuning its first stage (%s)@."
                  spec.K.kname st.K.expr;
              let inputs = stage_random_inputs st scale in
              Eval.problem_of_string
                ~name:(String.lowercase_ascii spec.K.kname)
                ~formats:st.K.formats ~inputs st.K.expr)
      | None, Some expr ->
          let formats =
            List.map W.parse_format_binding formats
          in
          let inputs =
            W.inputs_of_specs ?data_root ~budget:(budget_of max_nnz max_bytes)
              ~formats data
          in
          Eval.problem_of_string ~name:"custom" ~formats ~inputs expr
      | _ ->
          Fmt.epr "autotune: give a KERNEL name or -e EXPR (not both)@.";
          exit 1
    in
    let axes =
      Space.default_axes ~arch:Arch.default ~split_factors:splits
        ~gathers:
          (if regions then [ Point.Auto; Point.On_chip; Point.Off_chip ]
           else [ Point.Auto ])
        ~formats:problem.Eval.formats problem.Eval.expr
    in
    let strategy =
      match W.strategy_of_string ~samples ~seed strategy with
      | Ok s -> s
      | Error msg ->
          Fmt.epr "autotune: %s@." msg;
          exit 1
    in
    let budget = if budget > 0 then Some budget else None in
    let workers = if workers <= 0 then None else Some workers in
    let r = Explore.run ?workers ~strategy ?budget ~axes problem in
    if json then Fmt.pr "%s@." (Explore.to_json r)
    else Fmt.pr "%a" Explore.pp_result r
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:"Search the schedule/format/hardware design space of a kernel \
             and print the Pareto frontier over (cycles, chip resources).")
    Term.(const run $ kname_arg $ scale $ expr $ formats $ data
          $ data_root_flag $ max_nnz_flag $ max_ingest_bytes_flag $ strategy
          $ budget $ workers $ samples $ seed $ splits $ regions $ json
          $ trace_flag $ no_stats_cache_flag)

(* ------------------------------------------------------------------ *)
(* profile: attributed per-loop cycle trees                            *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let kname_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"KERNEL"
             ~doc:"Paper kernel to profile (or use -e/-f/-d for an \
                   arbitrary expression).")
  in
  let scale =
    Arg.(value & opt int 32 & info [ "n" ] ~doc:"Scale of the random inputs.")
  in
  let expr =
    Arg.(value & opt (some string) None
         & info [ "e"; "expr" ] ~docv:"EXPR"
             ~doc:"Index-notation assignment to profile instead of a named \
                   kernel.")
  in
  let formats =
    Arg.(value & opt_all string []
         & info [ "f"; "format" ] ~docv:"NAME=FMT" ~doc:"Tensor format binding.")
  in
  let data =
    Arg.(value & opt_all string []
         & info [ "d"; "data" ] ~docv:"NAME=SPEC" ~doc:data_doc)
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the profile (and the deterministic metrics \
                   snapshot) as JSON on stdout; nothing else is printed \
                   there.")
  in
  let show_metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Also print the metrics registry in Prometheus text \
                   format.")
  in
  let run kname scale expr formats data data_root max_nnz max_bytes json
      show_metrics trace =
    start_tracing trace;
    (* stage name, compiled form — multi-stage kernels are executed
       stage-by-stage so later stages see real intermediates (their trip
       counts come from the actual tensor statistics) *)
    let stages : (string * C.compiled) list =
      match (kname, expr) with
      | Some name, None -> (
          match K.find name with
          | None ->
              Fmt.epr "unknown kernel %s (try: stardustc list)@." name;
              exit 1
          | Some spec ->
              let pool = ref [] in
              List.map
                (fun (st : K.stage) ->
                  let inputs =
                    List.map
                      (fun (tname, t) ->
                        match List.assoc_opt tname !pool with
                        | Some prev -> (tname, T.rename tname prev)
                        | None -> (tname, t))
                      (stage_random_inputs st scale)
                  in
                  let compiled = K.compile_stage spec st ~inputs in
                  if List.length spec.K.stages > 1 then begin
                    let results, _ = Sim.execute compiled in
                    pool := results @ !pool
                  end;
                  (st.K.expr, compiled))
                spec.K.stages)
      | None, Some e ->
          let formats =
            List.map W.parse_format_binding formats
          in
          let inputs =
            W.inputs_of_specs ?data_root ~budget:(budget_of max_nnz max_bytes)
              ~formats data
          in
          [ (e, C.compile_string ~formats ~inputs e) ]
      | _ ->
          Fmt.epr "profile: give a KERNEL name or -e EXPR (not both)@.";
          exit 1
    in
    let profiled =
      List.map
        (fun (label, compiled) ->
          let p = Sim.estimate_profiled compiled in
          (label, p))
        stages
    in
    if json then begin
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "{\"stages\":[";
      List.iteri
        (fun i (label, (p : Sim.profiled)) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"expr\":\"%s\",\"cycles\":%s,\"compute_cycles\":%s,\"dram_cycles\":%s,\"seconds\":%s,\"profile\":%s}"
               (Trace.json_escape label)
               (Metrics.number_to_string p.Sim.preport.Sim.cycles)
               (Metrics.number_to_string p.Sim.preport.Sim.compute_cycles)
               (Metrics.number_to_string p.Sim.preport.Sim.dram_cycles)
               (Metrics.number_to_string p.Sim.preport.Sim.seconds)
               (Profile.to_json p.Sim.ptree)))
        profiled;
      Buffer.add_string buf "],\"metrics\":";
      Buffer.add_string buf (Metrics.snapshot_json ());
      Buffer.add_char buf '}';
      print_endline (Buffer.contents buf)
    end
    else begin
      List.iter
        (fun (label, (p : Sim.profiled)) ->
          let r = p.Sim.preport in
          Fmt.pr "=== profile: %s ===@.%s@." label
            (Profile.to_string p.Sim.ptree);
          Fmt.pr
            "total: %.0f cycles (%.3f us) — %s-bound (compute %.0f, dram \
             %.0f)@.@."
            r.Sim.cycles (r.Sim.seconds *. 1e6)
            (if r.Sim.compute_cycles >= r.Sim.dram_cycles then "compute"
             else "memory")
            r.Sim.compute_cycles r.Sim.dram_cycles)
        profiled;
      if show_metrics then Fmt.pr "%s" (Metrics.render_text ())
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Attribute a kernel's estimated cycles to its loop nest: \
             per-loop compute/DRAM breakdown with shares of the kernel \
             total, from the same analytic model the benchmarks use.")
    Term.(const run $ kname_arg $ scale $ expr $ formats $ data
          $ data_root_flag $ max_nnz_flag $ max_ingest_bytes_flag $ json
          $ show_metrics $ trace_flag)

(* ------------------------------------------------------------------ *)
(* serve: the persistent compile service                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve NDJSON requests on a Unix-domain socket at $(docv) \
                   instead of stdin/stdout.")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ]
             ~doc:"Domain worker pool size (0 = one per available core); \
                   request batches and autotune searches fan out on it.")
  in
  let plan_cap =
    Arg.(value & opt int Stardust_serve.Plan_cache.default_capacity
         & info [ "plan-cache-capacity" ] ~docv:"N"
             ~doc:"LRU bound on cached plans (compiled results, estimates, \
                   autotune frontiers).")
  in
  let stats_cap =
    Arg.(value & opt int 0
         & info [ "stats-cache-capacity" ] ~docv:"N"
             ~doc:"LRU bound on the dataset-statistics cache (0 = default).")
  in
  let max_conns =
    Arg.(value & opt int Stardust_serve.Server.default_max_connections
         & info [ "max-connections" ] ~docv:"N"
             ~doc:"Concurrent connection bound for $(b,--socket) mode; \
                   connections beyond it are shed with a one-line stable \
                   E1004 response instead of queuing.")
  in
  let request_timeout =
    Arg.(value & opt float 0.0
         & info [ "request-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request deadline (0 = none): a request that blows \
                   it is abandoned and answered with E1005 while the \
                   daemon keeps serving.  Requests may tighten it with a \
                   $(i,deadline_ms) field.  If too many abandoned \
                   runaways are still live, deadline-bearing requests \
                   are refused with E1007 until the pool reaps them.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Spill the plan cache to $(docv) (content-addressed, \
                   atomically written) and warm-start from it on boot: a \
                   restarted daemon answers repeats from disk \
                   bit-identically.  Corrupt entries are skipped with a \
                   W0104 warning.")
  in
  let max_line_bytes =
    Arg.(value & opt int Stardust_serve.Server.default_max_line_bytes
         & info [ "max-line-bytes" ] ~docv:"BYTES"
             ~doc:"Request-line length bound; longer lines are drained \
                   and answered with E1006.")
  in
  let http_addr =
    Arg.(value & opt (some string) None
         & info [ "http" ] ~docv:"ADDR:PORT"
             ~doc:"Also serve the HTTP observability plane on $(docv) \
                   (port 0 binds an ephemeral port): GET /metrics \
                   (Prometheus text), /healthz, /readyz (503 while \
                   draining), /buildinfo, /debug/requests (flight \
                   recorder), /debug/trace?id=REQUEST_ID.  The bound \
                   address is printed on stderr as a machine-parsable \
                   $(i,serve: http listening on HOST:PORT) line.")
  in
  let chaos =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Boot the daemon on $(b,--socket), run the chaos \
                   harness against it (well-formed clients concurrent \
                   with garbage/half-line/oversized/slow-loris/\
                   deep-nesting/disconnect adversaries), print the \
                   report and the deterministic metrics snapshot, and \
                   exit non-zero on any failure.")
  in
  let chaos_clients =
    Arg.(value & opt int 4
         & info [ "chaos-clients" ] ~docv:"N"
             ~doc:"Chaos harness: well-formed client threads.")
  in
  let chaos_requests =
    Arg.(value & opt int 25
         & info [ "chaos-requests" ] ~docv:"N"
             ~doc:"Chaos harness: requests per well-formed client.")
  in
  let chaos_seed =
    Arg.(value & opt int 42
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Chaos harness: PRNG seed (same seed, same schedule).")
  in
  let run socket workers plan_cap stats_cap max_conns request_timeout
      cache_dir data_root max_nnz max_bytes max_line_bytes http_addr chaos
      chaos_clients chaos_requests chaos_seed trace no_stats_cache =
    start_tracing trace;
    apply_stats_cache no_stats_cache;
    if stats_cap > 0 then Stardust_tensor.Stats_cache.set_capacity stats_cap;
    let module Serve = Stardust_serve in
    let svc =
      Serve.Service.create
        ?workers:(if workers <= 0 then None else Some workers)
        ~plan_cache_capacity:plan_cap
        ?request_timeout:
          (if request_timeout > 0.0 then Some request_timeout else None)
        ?cache_dir ?data_root
        ~ingest_budget:(budget_of max_nnz max_bytes) ()
    in
    List.iter
      (fun d -> Fmt.epr "%a@." Diag.pp d)
      (Serve.Service.boot_diags svc);
    Serve.Server.install_stop_signals svc;
    (* The observability plane outlives the NDJSON transport's drain: it
       must keep answering /readyz (503) and /metrics while in-flight
       requests finish, so it is stopped last, after the serve loop
       returns. *)
    let http_plane =
      match http_addr with
      | None -> None
      | Some addr -> (
          match Serve.Http.start ~version:"1.0.0" ~service:svc addr with
          | Ok plane ->
              Fmt.epr "serve: http listening on %s@."
                (Serve.Http.bound_addr plane);
              Some plane
          | Error msg ->
              Fmt.epr "stardustc serve: %s@." msg;
              Stdlib.exit 2)
    in
    Fun.protect
      ~finally:(fun () ->
        Option.iter Serve.Http.stop http_plane;
        Serve.Service.shutdown svc)
      (fun () ->
        match (chaos, socket) with
        | true, None ->
            Fmt.epr "stardustc serve: --chaos needs --socket@.";
            Stdlib.exit 2
        | true, Some path ->
            let listener =
              Thread.create
                (fun () ->
                  Serve.Server.serve_unix_socket ~max_connections:max_conns
                    ~max_line_bytes svc path)
                ()
            in
            let cfg =
              {
                (Serve.Chaos.default_config ~socket:path) with
                Serve.Chaos.seed = chaos_seed;
                clients = chaos_clients;
                requests_per_client = chaos_requests;
                max_line_bytes;
              }
            in
            let report = Serve.Chaos.run cfg in
            Fmt.pr "%a@." Serve.Chaos.pp_report report;
            Fmt.pr "%s@." (Metrics.snapshot_json ~deterministic:true ());
            Serve.Service.request_stop svc;
            Thread.join listener;
            if report.Serve.Chaos.failures <> [] then Stdlib.exit 1
        | false, None -> Serve.Server.serve_channels ~max_line_bytes svc stdin stdout
        | false, Some path ->
            Fmt.epr "stardustc serve: listening on %s@." path;
            Serve.Server.serve_unix_socket ~max_connections:max_conns
              ~max_line_bytes svc path)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent compile service: newline-delimited JSON \
             requests (compile/estimate/autotune/stats/metrics) over \
             stdin/stdout or a Unix socket, answered from a \
             content-addressed plan cache with the same stable \
             diagnostic codes as $(b,run --diag-json).  Socket mode \
             serves connections concurrently up to \
             $(b,--max-connections), sheds beyond it, survives client \
             disconnects, honors per-request deadlines, and can persist \
             its plan cache across restarts with $(b,--cache-dir).")
    Term.(const run $ socket $ workers $ plan_cap $ stats_cap $ max_conns
          $ request_timeout $ cache_dir $ data_root_flag $ max_nnz_flag
          $ max_ingest_bytes_flag $ max_line_bytes $ http_addr $ chaos
          $ chaos_clients $ chaos_requests $ chaos_seed $ trace_flag
          $ no_stats_cache_flag)

(* ------------------------------------------------------------------ *)
(* fuzz / replay: the differential-testing oracle                      *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let cases =
    Arg.(value & opt int 100
         & info [ "cases" ] ~doc:"Number of random cases to run.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Master PRNG seed (the run is bit-for-bit \
                                 reproducible given the same seed and case \
                                 count).")
  in
  let corpus =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory for minimized failing cases (default: corpus/; \
                   $(b,--no-corpus) disables persistence).")
  in
  let no_corpus =
    Arg.(value & flag
         & info [ "no-corpus" ] ~doc:"Do not persist failing cases.")
  in
  let workers =
    Arg.(value & opt int 0
         & info [ "workers" ]
             ~doc:"Domain worker pool size (0 = one per available core).")
  in
  let timeout =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-case wall-clock deadline; a case that exceeds it is \
                   abandoned and reported as hung (0 disables).")
  in
  let watchdog =
    Arg.(value & opt float Orunner.default_watchdog
         & info [ "watchdog" ]
             ~doc:"Simulator step budget per backend run.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-case progress.")
  in
  let ingest =
    Arg.(value & flag
         & info [ "ingest" ]
             ~doc:"Fuzz the dataset readers instead of the backends: \
                   byte-wise mutations of well-formed .mtx/.tns files \
                   (plus injected faults) must always land inside the \
                   structured E021x envelope — no raw exceptions, no \
                   leaked file descriptors.")
  in
  let run cases seed corpus no_corpus workers timeout watchdog quiet ingest
      trace no_stats_cache =
    start_tracing trace;
    apply_stats_cache no_stats_cache;
    if ingest then begin
      let stats =
        Ingest_fuzz.run ~cases ~seed
          ~log:(if quiet then ignore else prerr_endline)
          ()
      in
      Fmt.pr "%a@." Ingest_fuzz.pp_stats stats;
      List.iter (Fmt.epr "%s@.") stats.Ingest_fuzz.failures;
      exit (if stats.Ingest_fuzz.failures <> [] then 1 else 0)
    end;
    let cfg =
      {
        Fuzz.default_config with
        Fuzz.cases;
        seed;
        corpus_dir =
          (if no_corpus then None
           else Some (Option.value corpus ~default:Ocorpus.default_dir));
        workers = (if workers <= 0 then None else Some workers);
        case_timeout = (if timeout <= 0.0 then None else Some timeout);
        watchdog;
        log = (if quiet then ignore else prerr_endline);
      }
    in
    let stats = Fuzz.run cfg in
    Fmt.pr "%a@." Fuzz.pp_stats stats;
    List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) stats.Fuzz.diags;
    exit (if stats.Fuzz.failed > 0 || stats.Fuzz.hung > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially test every backend on random sparse tensor \
             algebra: generated cases run through the reference evaluator, \
             both interpreters, the Capstan simulator, and the fallback \
             driver; disagreements are minimized and saved to the corpus.")
    Term.(const run $ cases $ seed $ corpus $ no_corpus $ workers $ timeout
          $ watchdog $ quiet $ ingest $ trace_flag $ no_stats_cache_flag)

let replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"CASE.json" ~doc:"Corpus entry to re-execute.")
  in
  let watchdog =
    Arg.(value & opt float Orunner.default_watchdog
         & info [ "watchdog" ] ~doc:"Simulator step budget per backend run.")
  in
  let run file watchdog =
    let case = Ocorpus.load file in
    (match Ocorpus.load_verdicts file with
    | [] -> ()
    | vs ->
        Fmt.pr "recorded verdicts:@.";
        List.iter (fun (b, v) -> Fmt.pr "  %-14s %s@." b v) vs;
        Fmt.pr "@.");
    let outcome = Orunner.run_case ~watchdog case in
    Fmt.pr "%a@." Orunner.pp_outcome outcome;
    List.iter
      (fun d -> Fmt.epr "%a@." Diag.pp d)
      (Orunner.diags_of_outcome ~file outcome);
    exit (if outcome.Orunner.failing then 1 else 0)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Deterministically re-execute a saved fuzz case through every \
             backend and report fresh verdicts.")
    Term.(const run $ file_arg $ watchdog)

let () =
  let doc = "the Stardust sparse-tensor-algebra-to-RDA compiler" in
  let group =
    Cmd.group (Cmd.info "stardustc" ~version:"1.0.0" ~doc)
      [ list_cmd; kernel_cmd; compile_cmd; run_cmd; profile_cmd;
        autotune_cmd; serve_cmd; fuzz_cmd; replay_cmd ]
  in
  (* last-resort structured handler: no input may crash the CLI with a raw
     exception; anything the subcommands did not turn into diagnostics
     themselves becomes an E0901 here *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Diag.Fail ds ->
      (* already-structured failures (e.g. ingestion rejects from commands
         without their own --diag-json plumbing) print as themselves *)
      List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) ds;
      exit 1
  | exception e ->
      let d =
        Diag.error ~stage:Diag.Driver ~code:Diag.code_unexpected
          ~context:[ ("exception", Printexc.to_string e) ]
          "stardustc aborted on an unhandled exception"
      in
      Fmt.epr "%a@." Diag.pp d;
      exit 2
