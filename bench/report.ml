(** Machine-readable benchmark artifacts.

    [suite_json] runs selected kernels of the paper suite and writes one
    JSON document with, per kernel/dataset instance: the per-platform
    model seconds, the deterministic Capstan cycle counters (HBM2E), the
    per-stage resource counts, and the wall-clock the run took.  All
    fields except [wall_seconds] come from analytic models and are
    bit-identical across runs — which is what [perf_diff] relies on to
    catch cost-model regressions in CI.

    [perf_diff] parses two such documents (with the oracle's own JSON
    parser — no new dependencies) and compares every deterministic field
    exactly; wall-clock fields are ignored. *)

module K = Stardust_core.Kernels
module C = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Resources = Stardust_capstan.Resources
module Json = Stardust_json.Json
module Metrics = Stardust_obs.Metrics

let num = Metrics.number_to_string
let esc = Stardust_obs.Trace.json_escape

let find_specs names =
  match names with
  | [] -> K.all
  | names ->
      List.map
        (fun n ->
          match K.find n with
          | Some s -> s
          | None -> Fmt.failwith "unknown kernel %s (try: bench list)" n)
        names

(** One instance rendered as a JSON object. *)
let instance_json (r : Suite.run) ~wall =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "{\"kernel\":\"%s\",\"dataset\":\"%s\""
       (esc (String.lowercase_ascii r.Suite.spec.K.kname))
       (esc r.Suite.instance));
  (* per-platform analytic seconds (all deterministic models) *)
  Buffer.add_string buf ",\"platform_seconds\":{";
  List.iteri
    (fun i (p, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (esc (Suite.platform_name p)) (num s)))
    r.Suite.seconds;
  Buffer.add_char buf '}';
  (* deterministic Capstan (HBM2E) cycle counters, summed over stages *)
  let reports =
    List.map (fun c -> Sim.estimate ~config:Sim.default_config c) r.Suite.compiled
  in
  let sum f = List.fold_left (fun a (x : Sim.report) -> a +. f x) 0.0 reports in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"cycles\":%s,\"compute_cycles\":%s,\"dram_cycles\":%s,\"streamed_bytes\":%s,\"iterations\":%s"
       (num (sum (fun x -> x.Sim.cycles)))
       (num (sum (fun x -> x.Sim.compute_cycles)))
       (num (sum (fun x -> x.Sim.dram_cycles)))
       (num (sum (fun x -> x.Sim.streamed_bytes)))
       (num (sum (fun x -> x.Sim.iterations))));
  (* per-stage resource counts *)
  Buffer.add_string buf ",\"resources\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      let u = Resources.count Arch.default c in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"pcu\":%d,\"pmu\":%d,\"mc\":%d,\"shuffle\":%d,\"limiting\":\"%s\"}"
           u.Resources.pcu u.Resources.pmu u.Resources.mc u.Resources.shuffle
           (esc u.Resources.limiting)))
    r.Suite.compiled;
  Buffer.add_char buf ']';
  (* wall clock: the one non-deterministic field; perf_diff ignores it *)
  Buffer.add_string buf (Printf.sprintf ",\"wall_seconds\":%s}" (num wall));
  Buffer.contents buf

let all_sections =
  [ "kernels"; "throughput"; "serve"; "ingest"; "search-efficiency";
    "serve-http" ]

let suite_json ~kernels ?(sections = all_sections) ~path () =
  List.iter
    (fun s ->
      if not (List.mem s all_sections) then
        Fmt.failwith "unknown suite section %s (try: %s)" s
          (String.concat "/" all_sections))
    sections;
  let want s = List.mem s sections in
  let parts = ref [] in
  let add fragment = parts := fragment :: !parts in
  let instances = ref 0 in
  if want "kernels" then begin
    let specs = find_specs kernels in
    let entries =
      List.concat_map
        (fun (spec : K.spec) ->
          Fmt.epr "bench: %s...@." spec.K.kname;
          List.map
            (fun inst ->
              let t0 = Unix.gettimeofday () in
              let r = Suite.run_instance spec inst in
              instance_json r ~wall:(Unix.gettimeofday () -. t0))
            (Suite.instances spec))
        specs
    in
    instances := List.length entries;
    add ("\"kernels\":[" ^ String.concat "," entries ^ "]")
  end;
  if want "throughput" then begin
    Fmt.epr "bench: estimate-throughput...@.";
    add ("\"throughput\":[" ^ Throughput.rows_json (Throughput.measure ()) ^ "]")
  end;
  if want "serve" then begin
    Fmt.epr "bench: serve-throughput...@.";
    add ("\"serve\":[" ^ Serve_bench.rows_json (Serve_bench.measure ()) ^ "]")
  end;
  if want "ingest" then begin
    Fmt.epr "bench: ingest-throughput...@.";
    add ("\"ingest\":[" ^ Ingest_bench.rows_json (Ingest_bench.measure ()) ^ "]")
  end;
  if want "search-efficiency" then begin
    Fmt.epr "bench: search-efficiency...@.";
    add
      ("\"search-efficiency\":["
      ^ Search_efficiency.rows_json (Search_efficiency.measure ())
      ^ "]")
  end;
  (* serve-http resets the metrics registry for a deterministic scrape,
     so it must run after every section that reads global counters *)
  if want "serve-http" then begin
    Fmt.epr "bench: serve-http...@.";
    add
      ("\"serve-http\":["
      ^ Serve_bench.http_rows_json (Serve_bench.measure_http ())
      ^ "]")
  end;
  let doc =
    "{\"schema\":\"stardust-bench-suite/1\","
    ^ String.concat "," (List.rev !parts)
    ^ "}"
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Fmt.epr "bench: wrote %s (%d instances, sections %s)@." path !instances
    (String.concat "," sections)

(* ------------------------------------------------------------------ *)
(* perf-diff                                                           *)
(* ------------------------------------------------------------------ *)

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Json.parse s

(** Deterministic scalar fields compared exactly. *)
let det_fields =
  [ "cycles"; "compute_cycles"; "dram_cycles"; "streamed_bytes"; "iterations" ]

let entry_key j =
  Printf.sprintf "%s/%s"
    (Json.to_str (Json.member_exn "kernel" j))
    (Json.to_str (Json.member_exn "dataset" j))

let resources_sig j =
  String.concat ";"
    (List.map
       (fun r ->
         String.concat ","
           (List.map
              (fun f -> num (Json.to_float (Json.member_exn f r)))
              [ "pcu"; "pmu"; "mc"; "shuffle" ]))
       (Json.to_list (Json.member_exn "resources" j)))

(** Compare two suite documents; returns the number of mismatches and
    prints one line per difference.  Wall-clock and platform-seconds
    fields are not compared (seconds are deterministic too, but cycles
    subsume them and integer comparison avoids any float-text concern). *)
let perf_diff ?(sections = all_sections) base_path new_path =
  let base_doc = load base_path and fresh_doc = load new_path in
  let mismatches = ref 0 in
  let complain fmt = Fmt.epr ("perf-diff: " ^^ fmt ^^ "@.") in
  let want s = List.mem s sections in
  if want "kernels" then begin
    let index doc =
      List.map
        (fun e -> (entry_key e, e))
        (Json.to_list (Json.member_exn "kernels" doc))
    in
    let base = index base_doc and fresh = index fresh_doc in
    List.iter
      (fun (k, b) ->
        match List.assoc_opt k fresh with
        | None ->
            incr mismatches;
            complain "%s: present in %s but missing from %s" k base_path
              new_path
        | Some f ->
            List.iter
              (fun field ->
                let vb = Json.to_float (Json.member_exn field b)
                and vf = Json.to_float (Json.member_exn field f) in
                if vb <> vf then begin
                  incr mismatches;
                  complain "%s: %s changed %s -> %s" k field (num vb) (num vf)
                end)
              det_fields;
            let rb = resources_sig b and rf = resources_sig f in
            if rb <> rf then begin
              incr mismatches;
              complain "%s: resources changed %s -> %s" k rb rf
            end)
      base;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k base) then begin
          incr mismatches;
          complain "%s: new instance not in baseline %s" k base_path
        end)
      fresh
  end;
  (* Counter tables — keyed entries whose listed fields are exact
     deterministic counts (wall-clock fields are never compared):
     - throughput: evaluation and stats-cache hit/miss counts
       (sequential, seeded);
     - serve: request and plan-cache counts (single-flight fills make
       them independent of client interleaving). *)
  let diff_counter_section ~section ~key_field ~fields =
    let index doc =
      match Json.member section doc with
      | None -> None
      | Some j ->
          Some
            (List.map
               (fun e ->
                 ( num (Json.to_float (Json.member_exn key_field e)),
                   e ))
               (Json.to_list j))
    in
    match (index base_doc, index fresh_doc) with
    | None, None -> ()
    | Some _, None ->
        incr mismatches;
        complain "%s section missing from %s" section new_path
    | None, Some _ ->
        incr mismatches;
        complain "%s section missing from baseline %s" section base_path
    | Some base_tp, Some fresh_tp ->
        List.iter
          (fun (k, b) ->
            match List.assoc_opt k fresh_tp with
            | None ->
                incr mismatches;
                complain "%s/%s: missing from %s" section k new_path
            | Some f ->
                List.iter
                  (fun field ->
                    let vb = Json.to_float (Json.member_exn field b)
                    and vf = Json.to_float (Json.member_exn field f) in
                    if vb <> vf then begin
                      incr mismatches;
                      complain "%s/%s: %s changed %s -> %s" section k field
                        (num vb) (num vf)
                    end)
                  fields)
          base_tp;
        List.iter
          (fun (k, _) ->
            if not (List.mem_assoc k base_tp) then begin
              incr mismatches;
              complain "%s/%s: new entry not in baseline %s" section k
                base_path
            end)
          fresh_tp
  in
  (* String-keyed counter tables — like [diff_counter_section] but with
     an entry key built from one or more string fields (e.g. kernel, or
     kernel plus strategy). *)
  let diff_string_keyed_section ~section ~key_of ~fields =
    let index doc =
      match Json.member section doc with
      | None -> None
      | Some j -> Some (List.map (fun e -> (key_of e, e)) (Json.to_list j))
    in
    match (index base_doc, index fresh_doc) with
    | None, None -> ()
    | Some _, None ->
        incr mismatches;
        complain "%s section missing from %s" section new_path
    | None, Some _ ->
        incr mismatches;
        complain "%s section missing from baseline %s" section base_path
    | Some base_tp, Some fresh_tp ->
        List.iter
          (fun (k, b) ->
            match List.assoc_opt k fresh_tp with
            | None ->
                incr mismatches;
                complain "%s/%s: missing from %s" section k new_path
            | Some f ->
                List.iter
                  (fun field ->
                    let vb = Json.to_float (Json.member_exn field b)
                    and vf = Json.to_float (Json.member_exn field f) in
                    if vb <> vf then begin
                      incr mismatches;
                      complain "%s/%s: %s changed %s -> %s" section k field
                        (num vb) (num vf)
                    end)
                  fields)
          base_tp;
        List.iter
          (fun (k, _) ->
            if not (List.mem_assoc k base_tp) then begin
              incr mismatches;
              complain "%s/%s: new entry not in baseline %s" section k
                base_path
            end)
          fresh_tp
  in
  if want "throughput" then
    (* throughput entries are keyed by kernel name (a string field) *)
    diff_string_keyed_section ~section:"throughput"
      ~key_of:(fun e -> Json.to_str (Json.member_exn "kernel" e))
      ~fields:[ "evaluations"; "cache_hits"; "cache_misses" ];
  if want "search-efficiency" then
    (* one entry per kernel/strategy pair; every field but wall-clock is
       deterministic, so the frontier-exactness bit and the evaluation
       budgets of the budgeted strategies are pinned by CI *)
    diff_string_keyed_section ~section:"search-efficiency"
      ~key_of:(fun e ->
        Json.to_str (Json.member_exn "kernel" e)
        ^ "/"
        ^ Json.to_str (Json.member_exn "strategy" e))
      ~fields:
        [
          "budget"; "candidates"; "full_evals"; "estimates"; "bound_evals";
          "frontier_size"; "frontier_match"; "within_tenth";
        ];
  if want "serve" then
    diff_counter_section ~section:"serve" ~key_field:"clients"
      ~fields:
        [ "requests"; "plan_cache_hits"; "plan_cache_misses" ];
  if want "ingest" then
    (* streaming-reader byte/entry tallies and the out-of-core planner's
       tile counts are pure functions of the seeded generator *)
    diff_counter_section ~section:"ingest" ~key_field:"target_nnz"
      ~fields:[ "entries"; "bytes"; "tiles"; "tile0_cycles" ];
  if want "serve-http" then
    (* the observability plane replays a fixed one-worker script from a
       reset registry: recorder occupancy and the byte length of the
       volatile-free scrape are pure functions of the script *)
    diff_counter_section ~section:"serve-http" ~key_field:"requests"
      ~fields:[ "flight_recorded"; "flight_failed"; "scrape_bytes" ];
  if !mismatches = 0 then
    Fmt.epr "perf-diff: %s and %s agree on every deterministic counter@."
      base_path new_path;
  !mismatches
