(** Estimate-throughput microbenchmark: how many schedule points per
    second can the analytic oracle cost?

    The workload is exactly what the autotuner and fuzzer pay per
    candidate — a full [compile] + [Sim.estimate] of one kernel stage
    against fixed inputs, repeated [reps] times — measured twice: once
    with the process-wide statistics cache disabled (every point
    re-derives its dataset statistics from the raw tensors) and once
    with it enabled.  The evaluation and cache-hit/miss counts are
    deterministic (sequential code, seeded data) and diffed by CI's
    perf-smoke job; the wall-clock fields and the speedup are not.

    The cached/uncached reports are also checked for bit-identity here —
    a cheap standing guard in every suite run on top of the dedicated
    tests. *)

module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
module D = Stardust_workloads.Datasets
module F = Stardust_tensor.Format
module Stats_cache = Stardust_tensor.Stats_cache

let reps = 60

(* Input scale: large enough that the O(nnz) statistics scans dominate an
   uncached estimate (the regime the paper's datasets are in), small
   enough that a suite run stays fast. *)
let spmv_inputs () =
  [
    ( "A",
      D.random_matrix ~seed:3 ~name:"A" ~format:(F.csr ()) ~rows:2000
        ~cols:2000 ~density:0.05 () );
    ("x", D.dense_vector ~seed:4 ~name:"x" ~dim:2000 ());
  ]

let sddmm_inputs () =
  [
    ( "B",
      D.random_matrix ~seed:5 ~name:"B" ~format:(F.csr ()) ~rows:1500
        ~cols:1500 ~density:0.05 () );
    ( "C",
      D.dense_matrix ~seed:6 ~name:"C" ~format:(F.rm ()) ~rows:1500 ~cols:64
        () );
    ( "D",
      D.dense_matrix ~seed:7 ~name:"D" ~format:(F.rm ()) ~rows:1500 ~cols:64
        () );
  ]

let plus3_inputs () =
  [
    ( "B",
      D.random_matrix ~seed:8 ~name:"B" ~format:(F.csr ()) ~rows:800
        ~cols:800 ~density:0.04 () );
    ( "C",
      D.random_matrix ~seed:9 ~name:"C" ~format:(F.csr ()) ~rows:800
        ~cols:800 ~density:0.04 () );
  ]

let workloads () =
  [
    ("spmv", K.spmv, List.hd K.spmv.K.stages, spmv_inputs ());
    ("sddmm", K.sddmm, List.hd K.sddmm.K.stages, sddmm_inputs ());
    ("plus3", K.plus3, List.hd K.plus3.K.stages, plus3_inputs ());
  ]

type row = {
  kernel : string;
  evaluations : int;  (** points costed per phase (deterministic) *)
  cache_hits : int;  (** cached phase only (deterministic) *)
  cache_misses : int;  (** cached phase only (deterministic) *)
  uncached_seconds : float;
  cached_seconds : float;
}

let speedup r =
  if r.cached_seconds > 0.0 then r.uncached_seconds /. r.cached_seconds
  else infinity

let points_per_sec n s = if s > 0.0 then float_of_int n /. s else infinity

(* One compile+estimate — the per-candidate unit of autotuner work. *)
let evaluate_once spec st ~inputs =
  Sim.estimate ~config:Sim.default_config (K.compile_stage spec st ~inputs)

let time_phase spec st ~inputs =
  let t0 = Unix.gettimeofday () in
  let last = ref None in
  for _ = 1 to reps do
    last := Some (evaluate_once spec st ~inputs)
  done;
  (Unix.gettimeofday () -. t0, Option.get !last)

let measure () =
  let was_enabled = Stats_cache.is_enabled () in
  let rows =
    List.map
      (fun (kernel, spec, st, inputs) ->
        Stats_cache.set_enabled false;
        let uncached_seconds, r_un = time_phase spec st ~inputs in
        Stats_cache.set_enabled true;
        Stats_cache.reset ();
        let cached_seconds, r_c = time_phase spec st ~inputs in
        let c = Stats_cache.counters () in
        if r_un <> r_c then
          Fmt.failwith
            "throughput: cached and uncached %s estimates differ" kernel;
        {
          kernel;
          evaluations = reps;
          cache_hits = c.Stats_cache.hits;
          cache_misses = c.Stats_cache.misses;
          uncached_seconds;
          cached_seconds;
        })
      (workloads ())
  in
  Stats_cache.set_enabled was_enabled;
  rows

(** JSON fragment for the suite document: one object per kernel.
    [evaluations]/[cache_hits]/[cache_misses] are the deterministic
    fields; the wall-clock fields are ignored by perf-diff. *)
let rows_json rows =
  let num = Stardust_obs.Metrics.number_to_string in
  String.concat ","
    (List.map
       (fun r ->
         Printf.sprintf
           "{\"kernel\":\"%s\",\"evaluations\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"wall_uncached_seconds\":%s,\"wall_cached_seconds\":%s}"
           r.kernel r.evaluations r.cache_hits r.cache_misses
           (num r.uncached_seconds) (num r.cached_seconds))
       rows)

(** Standalone [bench estimate-throughput]: human-readable table. *)
let run () =
  let rows = measure () in
  Fmt.pr "@.== Estimate throughput (%d compile+estimate points/phase) ==@."
    reps;
  Fmt.pr "%-8s %12s %12s %8s %10s@." "kernel" "pts/s cold" "pts/s cached"
    "speedup" "hit rate";
  List.iter
    (fun r ->
      let queries = r.cache_hits + r.cache_misses in
      Fmt.pr "%-8s %12.1f %12.1f %7.1fx %9.1f%%@." r.kernel
        (points_per_sec r.evaluations r.uncached_seconds)
        (points_per_sec r.evaluations r.cached_seconds)
        (speedup r)
        (if queries = 0 then 0.0
         else 100.0 *. float_of_int r.cache_hits /. float_of_int queries))
    rows
