(** Search-efficiency benchmark: evaluation budgets of the budgeted
    autotune strategies against exhaustive enumeration.

    For each paper kernel the wide {!Stardust_explore.Space.efficiency_axes}
    grid is searched four ways — exhaustive, bound-guided successive
    halving, the linear surrogate, and population annealing — and each
    run reports how many full estimator walks it spent, whether its
    Pareto frontier is point-identical to exhaustive enumeration's, and
    whether it stayed within a tenth of exhaustive's evaluations.

    Everything except wall-clock is deterministic: the inputs are seeded,
    the strategies run their control flow on the driver thread, and the
    budgets are pinned.  CI's perf-smoke job diffs the rows, so a change
    that degrades a strategy's frontier quality ([frontier_match] flips
    to 0), inflates its evaluation count, or loosens the admissible bound
    ([bound_evals]) fails the build — the acceptance criterion of the
    budgeted-search work, held as a standing regression gate. *)

module K = Stardust_core.Kernels
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Point = Stardust_explore.Point
module Space = Stardust_explore.Space
module Metrics = Stardust_obs.Metrics

let scale = 256
let kernels = [ "spmv"; "sddmm"; "plus3" ]

(* Pinned budgets: the tightest values at which each strategy still
   reproduces the exact exhaustive frontier on every kernel above (with
   headroom of a few evaluations).  Anneal is informational — a local
   search over a 321-point grid is not expected to recover the whole
   frontier — but its trajectory is seeded and deterministic, so its
   counters pin all the same. *)
let strategies =
  [
    ("exhaustive", Explore.Exhaustive, None);
    ("halving", Explore.Halving, Some 24);
    ("surrogate", Explore.Surrogate, Some 28);
    ("anneal", Explore.Anneal { seed = 42 }, Some 36);
  ]

type row = {
  kernel : string;
  strategy : string;
  budget : int;  (** 0 = uncapped *)
  candidates : int;
  full_evals : int;
  estimates : int;  (** full evaluations that reached the estimator *)
  bound_evals : int;  (** stats-only lower bounds (cheap) *)
  frontier_size : int;
  frontier_match : bool;  (** frontier point-identical to exhaustive *)
  within_tenth : bool;  (** estimates <= 10% of exhaustive's *)
  wall_seconds : float;
}

let problem_of kname =
  let spec =
    match K.find kname with
    | Some s -> s
    | None -> Fmt.failwith "search-efficiency: unknown kernel %s" kname
  in
  let st = List.hd spec.K.stages in
  Eval.problem_of_string ~name:kname ~formats:st.K.formats
    ~inputs:(Autotune.stage_inputs st scale)
    st.K.expr

let frontier_fps (r : Explore.result) =
  List.map (fun (e : Eval.eval) -> Point.fingerprint e.Eval.point)
    r.Explore.frontier

let measure () =
  List.concat_map
    (fun kernel ->
      let p = problem_of kernel in
      let axes =
        Space.efficiency_axes ~formats:p.Eval.formats p.Eval.expr
      in
      let runs =
        List.map
          (fun (sname, strategy, budget) ->
            let t0 = Unix.gettimeofday () in
            let r = Explore.run ~workers:4 ~strategy ?budget ~axes p in
            (sname, r, Unix.gettimeofday () -. t0))
          strategies
      in
      let ex =
        match runs with
        | ("exhaustive", r, _) :: _ -> r
        | _ -> assert false
      in
      let ex_fps = frontier_fps ex and ex_est = Explore.estimate_count ex in
      List.map
        (fun (sname, (r : Explore.result), wall) ->
          let estimates = Explore.estimate_count r in
          {
            kernel;
            strategy = sname;
            budget = (match r.Explore.budget with None -> 0 | Some b -> b);
            candidates = r.Explore.candidates;
            full_evals = List.length r.Explore.evaluated;
            estimates;
            bound_evals = r.Explore.bound_evals;
            frontier_size = List.length r.Explore.frontier;
            frontier_match = frontier_fps r = ex_fps;
            within_tenth = estimates * 10 <= ex_est;
            wall_seconds = wall;
          })
        runs)
    kernels

(** JSON fragment for the suite document: one object per kernel/strategy
    pair.  Every field except [wall_seconds] is deterministic and diffed
    by perf-smoke. *)
let rows_json rows =
  let num = Metrics.number_to_string in
  String.concat ","
    (List.map
       (fun r ->
         Printf.sprintf
           "{\"kernel\":\"%s\",\"strategy\":\"%s\",\"budget\":%d,\"candidates\":%d,\"full_evals\":%d,\"estimates\":%d,\"bound_evals\":%d,\"frontier_size\":%d,\"frontier_match\":%d,\"within_tenth\":%d,\"wall_seconds\":%s}"
           r.kernel r.strategy r.budget r.candidates r.full_evals r.estimates
           r.bound_evals r.frontier_size
           (if r.frontier_match then 1 else 0)
           (if r.within_tenth then 1 else 0)
           (num r.wall_seconds))
       rows)

(** Standalone [bench search-efficiency]: human-readable table. *)
let run () =
  let rows = measure () in
  Fmt.pr "@.== Search efficiency: budgeted strategies vs exhaustive (n=%d) ==@."
    scale;
  Fmt.pr "%-8s %-11s %7s %6s %10s %7s %9s %7s %7s@." "kernel" "strategy"
    "budget" "cand" "estimates" "bounds" "frontier" "exact" "<=10%";
  List.iter
    (fun r ->
      Fmt.pr "%-8s %-11s %7s %6d %10d %7d %9d %7s %7s@." r.kernel r.strategy
        (if r.budget = 0 then "-" else string_of_int r.budget)
        r.candidates r.estimates r.bound_evals r.frontier_size
        (if r.frontier_match then "yes" else "no")
        (if r.within_tenth then "yes" else "no"))
    rows
