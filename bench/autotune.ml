(* Autotune artifact: design-space exploration results and pool scaling.

   For each paper kernel the explorer searches the schedule space around
   the autoscheduler's heuristic seed and reports the best point found,
   its simulated cycles, and the improvement over the heuristic — one JSON
   trajectory line per kernel for tracking across runs.

   The second half measures the parallel evaluator itself: the same
   exhaustive SDDMM search wall-clocked with one worker and with a full
   pool (fresh memo caches for both, so every point is recompiled and
   re-estimated).  On a multi-core machine the pool run is strictly
   faster; the frontier is identical either way. *)

module F = Stardust_tensor.Format
module K = Stardust_core.Kernels
module D = Stardust_workloads.Datasets
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module Point = Stardust_explore.Point
module Pool = Stardust_explore.Pool

let scale = 256

(* Paper-shaped random inputs for one kernel stage (mirrors stardustc). *)
let stage_inputs (st : K.stage) n =
  List.filter_map
    (fun (tname, fmt) ->
      if tname = st.K.result || (String.length tname > 0 && tname.[0] = '_')
      then None
      else
        let order = F.order fmt in
        let dims = List.init order (fun _ -> n) in
        let t =
          if F.is_fully_dense fmt then
            if order = 1 then D.dense_vector ~name:tname ~dim:n ()
            else if order = 2 then
              D.dense_matrix ~name:tname ~format:fmt ~rows:n ~cols:n ()
            else D.small_random ~name:tname ~format:fmt ~dims ~density:1.0 ()
          else
            D.small_random
              ~seed:(Hashtbl.hash tname)
              ~name:tname ~format:fmt ~dims ~density:0.1 ()
        in
        Some (tname, t))
    st.K.formats

let problem_of (spec : K.spec) =
  let st = List.hd spec.K.stages in
  Eval.problem_of_string
    ~name:(String.lowercase_ascii spec.K.kname)
    ~formats:st.K.formats
    ~inputs:(stage_inputs st scale)
    st.K.expr

let kernels = [ K.spmv; K.sddmm; K.mattransmul; K.residual; K.mttkrp ]

let search_table () =
  Fmt.pr "@.== Autotune: best found point per kernel (n=%d) ==@.@." scale;
  Fmt.pr "%-12s %10s %14s %14s %9s  %s@." "kernel" "points" "heuristic"
    "best cycles" "speedup" "best point";
  Fmt.pr "%s@." (String.make 92 '-');
  let rows =
    List.map
      (fun spec ->
        let p = problem_of spec in
        let r = Explore.run p in
        let seed_cycles = Eval.cycles r.Explore.seed_eval in
        let best_cycles = Option.bind r.Explore.best Eval.cycles in
        let speedup =
          match (seed_cycles, best_cycles) with
          | Some s, Some b when b > 0. -> Some (s /. b)
          | _ -> None
        in
        Fmt.pr "%-12s %10d %14s %14s %9s  %s@." p.Eval.name
          r.Explore.candidates
          (match seed_cycles with
          | Some c -> Fmt.str "%.0f" c
          | None -> "pruned")
          (match best_cycles with Some c -> Fmt.str "%.0f" c | None -> "-")
          (match speedup with Some s -> Fmt.str "%.2fx" s | None -> "-")
          (match r.Explore.best with
          | Some b -> Point.to_string b.Eval.point
          | None -> "-");
        (p.Eval.name, best_cycles))
      kernels
  in
  (* one machine-readable line per kernel for trajectory tracking *)
  List.iter
    (fun (name, cycles) ->
      Fmt.pr "{\"bench\": \"autotune_%s\", \"best_cycles\": %s}@." name
        (match cycles with Some c -> Fmt.str "%.0f" c | None -> "null"))
    rows

let pool_scaling () =
  let p = problem_of K.sddmm in
  let timed workers =
    (* fresh cache so both runs do the full compile+estimate work *)
    let cache = Pool.Cache.create () in
    let t0 = Unix.gettimeofday () in
    let r = Explore.run ~workers ~cache p in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, r)
  in
  let wide = Pool.default_workers () in
  let t1, r1 = timed 1 in
  let tn, rn = timed wide in
  let same =
    List.for_all2
      (fun (a : Eval.eval) (b : Eval.eval) ->
        Point.equal a.Eval.point b.Eval.point)
      r1.Explore.frontier rn.Explore.frontier
  in
  Fmt.pr "@.== Autotune: evaluator pool scaling (SDDMM, exhaustive) ==@.@.";
  Fmt.pr "workers=1:  %6.2fs for %d points@." t1
    (List.length r1.Explore.evaluated);
  Fmt.pr "workers=%d:  %6.2fs for %d points (%.2fx)@." wide tn
    (List.length rn.Explore.evaluated)
    (t1 /. tn);
  Fmt.pr "frontier identical across worker counts: %b@." same;
  Fmt.pr "{\"bench\": \"autotune_pool\", \"workers\": %d, \"t1\": %.3f, \
          \"tn\": %.3f, \"same_frontier\": %b}@."
    wide t1 tn same

let run () =
  search_table ();
  pool_scaling ()
