(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table6     # one artifact
     dune exec bench/main.exe -- list    # available artifacts

   Capstan numbers come from the analytic simulator (exact work tallies
   derived from the real generated datasets); CPU/GPU numbers from the
   calibrated analytic baseline models.  See EXPERIMENTS.md for
   paper-vs-measured discussion. *)

let artifacts =
  [
    ("table3", ("Table 3: input vs generated lines of code", Tables.table3));
    ("table4", ("Table 4: datasets", Tables.table4));
    ("table5", ("Table 5: Capstan resource usage", Tables.table5));
    ("table6", ("Table 6: normalized runtimes", fun () -> Tables.table6 ()));
    ("fig12", ("Figure 12: memory bandwidth sweep", Tables.fig12));
    ("fig13", ("Figure 13: per-kernel speedups", Tables.fig13));
    ("case_spmv", ("Section 8.3: SpMV case study", Tables.case_spmv));
    ("longtail", ("Long-tail kernels beyond the paper's suite", Tables.longtail));
    ("ablations", ("Ablations: sparse lanes, bit-vector stream, gather staging, scheduling", Ablations.run));
    ("autotune", ("Design-space exploration: best point per kernel, pool scaling", Autotune.run));
    ("micro", ("Compiler-phase microbenchmarks (Bechamel)", Micro.run));
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "list" ] ->
      List.iter (fun (k, (d, _)) -> Fmt.pr "%-10s %s@." k d) artifacts
  | [ "code"; kernel ] -> Tables.listing kernel
  | [] ->
      (* default: every paper artifact (micro last; it is the slowest) *)
      List.iter (fun (_, (_, f)) -> f ()) artifacts
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n artifacts with
          | Some (_, f) -> f ()
          | None ->
              Fmt.epr "unknown artifact %s (try: list)@." n;
              exit 1)
        names
