(* Benchmark harness entry point.

   Regenerates every table and figure of the paper's evaluation:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table6     # one artifact
     dune exec bench/main.exe -- list    # available artifacts

   Capstan numbers come from the analytic simulator (exact work tallies
   derived from the real generated datasets); CPU/GPU numbers from the
   calibrated analytic baseline models.  See EXPERIMENTS.md for
   paper-vs-measured discussion. *)

let artifacts =
  [
    ("table3", ("Table 3: input vs generated lines of code", Tables.table3));
    ("table4", ("Table 4: datasets", Tables.table4));
    ("table5", ("Table 5: Capstan resource usage", Tables.table5));
    ("table6", ("Table 6: normalized runtimes", fun () -> Tables.table6 ()));
    ("fig12", ("Figure 12: memory bandwidth sweep", Tables.fig12));
    ("fig13", ("Figure 13: per-kernel speedups", Tables.fig13));
    ("case_spmv", ("Section 8.3: SpMV case study", Tables.case_spmv));
    ("longtail", ("Long-tail kernels beyond the paper's suite", Tables.longtail));
    ("ablations", ("Ablations: sparse lanes, bit-vector stream, gather staging, scheduling", Ablations.run));
    ("autotune", ("Design-space exploration: best point per kernel, pool scaling", Autotune.run));
    ("micro", ("Compiler-phase microbenchmarks (Bechamel)", Micro.run));
    ( "estimate-throughput",
      ( "Oracle throughput: compile+estimate points/sec, stats cache on/off",
        Throughput.run ) );
    ( "search-efficiency",
      ( "Budgeted autotune strategies vs exhaustive: frontier exactness \
         and evaluation counts",
        Search_efficiency.run ) );
    ( "serve-throughput",
      ( "Compile service: requests/sec and p50/p99 latency at 1-16 clients",
        Serve_bench.run ) );
    ( "ingest-throughput",
      ( "Dataset ingestion: streaming-reader MB/s and out-of-core tile plans",
        Ingest_bench.run ) );
    ( "serve-soak",
      ( "Compile service: chaos soak over a live socket (informational)",
        Serve_bench.soak ) );
    ( "serve-http",
      ( "Observability plane: flight-recorder occupancy and scrape timing",
        Serve_bench.run_http ) );
  ]

(* "a,b,c" -> ["a"; "b"; "c"] *)
let split_kernels s =
  List.filter (fun x -> x <> "") (String.split_on_char ',' s)

let usage_suite () =
  Fmt.epr
    "usage: bench suite --json PATH [--kernels a,b,c] [--sections \
     kernels,throughput,serve,ingest,search-efficiency,serve-http]@.       \
     bench perf-diff [--sections ...] BASELINE NEW@.";
  exit 2

(* suite --json PATH [--kernels a,b,c] [--sections a,b]: machine-readable
   per-kernel numbers for CI's perf-smoke diff; --sections restricts the
   document (and the diff) to named sections, so the serve-smoke job can
   regenerate and pin just the serve counters without re-running the
   whole kernel suite *)
let rec suite_json_cli ?json ?(kernels = []) ?sections = function
  | "--json" :: path :: rest -> suite_json_cli ~json:path ~kernels ?sections rest
  | "--kernels" :: ks :: rest ->
      suite_json_cli ?json ~kernels:(kernels @ split_kernels ks) ?sections rest
  | "--sections" :: ss :: rest ->
      suite_json_cli ?json ~kernels ~sections:(split_kernels ss) rest
  | [] -> (
      match json with
      | Some path -> Report.suite_json ~kernels ?sections ~path ()
      | None -> usage_suite ())
  | _ -> usage_suite ()

let rec perf_diff_cli ?sections = function
  | "--sections" :: ss :: rest -> perf_diff_cli ~sections:(split_kernels ss) rest
  | [ base; fresh ] ->
      exit (if Report.perf_diff ?sections base fresh > 0 then 1 else 0)
  | _ -> usage_suite ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "list" ] ->
      List.iter (fun (k, (d, _)) -> Fmt.pr "%-10s %s@." k d) artifacts
  | [ "code"; kernel ] -> Tables.listing kernel
  | "suite" :: rest -> suite_json_cli rest
  | "perf-diff" :: rest -> perf_diff_cli rest
  | [] ->
      (* default: every paper artifact (micro last; it is the slowest) *)
      List.iter (fun (_, (_, f)) -> f ()) artifacts
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n artifacts with
          | Some (_, f) -> f ()
          | None ->
              Fmt.epr "unknown artifact %s (try: list)@." n;
              exit 1)
        names
