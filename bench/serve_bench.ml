(** Serve-throughput benchmark: requests/sec and latency percentiles of
    the compile service under concurrent clients.

    Each level spins up a fresh in-process {!Stardust_serve.Service}
    and [clients] caller domains; every client issues the same fixed
    request script (compile/estimate/stats over two kernels at two
    scales) and records per-request wall-clock.  The script cycles
    through [distinct] unique requests, so with the plan cache's
    single-flight fills the level's hit/miss counters are a pure
    function of the request multiset: [misses = distinct],
    [hits = requests - distinct], no matter how the clients interleave.
    Those counts (plus [clients] and [requests]) are the deterministic
    fields CI's perf-diff pins; rps/p50/p99 are wall-clock truth and
    are reported but never compared. *)

module Json = Stardust_json.Json
module Service = Stardust_serve.Service
module Pool = Stardust_explore.Pool
module Plan_cache = Stardust_serve.Plan_cache

let levels = [ 1; 4; 16 ]
let rounds = 2  (** times each client replays the script *)

(* The request script: a mix of cacheable operations over distinct
   (op, kernel, scale) keys.  Kept tiny — after the first round
   everything is a cache hit, which is exactly the serving regime the
   bench is about. *)
let script =
  let req op kernel n =
    Json.Obj
      [
        ("op", Json.Str op); ("kernel", Json.Str kernel);
        ("n", Json.Num (float_of_int n));
      ]
  in
  [
    req "estimate" "spmv" 16;
    req "estimate" "spmv" 32;
    req "estimate" "plus3" 16;
    req "estimate" "plus3" 32;
    req "compile" "spmv" 16;
    req "compile" "spmv" 32;
    req "compile" "plus3" 16;
    req "stats" "spmv" 16;
  ]

let distinct = List.length script

type level = {
  clients : int;
  requests : int;  (** total across all clients (deterministic) *)
  plan_hits : int;  (** deterministic: requests - distinct *)
  plan_misses : int;  (** deterministic: distinct *)
  wall_seconds : float;
  rps : float;
  p50 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (q * n / 100))

let run_level clients =
  (* concurrency comes from the caller domains; the service's own pool
     only serves batches/autotune, which this script never issues *)
  let svc = Service.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let client _k =
        let lats = ref [] in
        for _ = 1 to rounds do
          List.iter
            (fun req ->
              let t0 = Unix.gettimeofday () in
              let resp = Service.handle_request svc req in
              let dt = Unix.gettimeofday () -. t0 in
              (match Json.member "ok" resp with
              | Some (Json.Bool true) -> ()
              | _ ->
                  Fmt.failwith "serve bench: request failed: %s"
                    (Json.to_string resp));
              lats := dt :: !lats)
            script
        done;
        Array.of_list !lats
      in
      let t0 = Unix.gettimeofday () in
      let per_client =
        Pool.map ~workers:clients client (Array.init clients Fun.id)
      in
      let wall = Unix.gettimeofday () -. t0 in
      let lats = Array.concat (Array.to_list per_client) in
      Array.sort compare lats;
      let c = Plan_cache.counters (Service.plan_cache svc) in
      let requests = Array.length lats in
      {
        clients;
        requests;
        plan_hits = c.Plan_cache.hits;
        plan_misses = c.Plan_cache.misses;
        wall_seconds = wall;
        rps = (if wall > 0.0 then float_of_int requests /. wall else 0.0);
        p50 = percentile lats 50;
        p99 = percentile lats 99;
      })

let measure () = List.map run_level levels

(** JSON fragment for the suite document: one object per concurrency
    level.  [clients]/[requests]/[plan_cache_hits]/[plan_cache_misses]
    are the deterministic fields; the latency fields are wall-clock. *)
let rows_json rows =
  let num = Stardust_obs.Metrics.number_to_string in
  String.concat ","
    (List.map
       (fun r ->
         Printf.sprintf
           "{\"clients\":%d,\"requests\":%d,\"plan_cache_hits\":%d,\"plan_cache_misses\":%d,\"wall_seconds\":%s,\"rps\":%s,\"p50_seconds\":%s,\"p99_seconds\":%s}"
           r.clients r.requests r.plan_hits r.plan_misses
           (num r.wall_seconds) (num r.rps) (num r.p50) (num r.p99))
       rows)

(** Standalone [bench serve-throughput]: human-readable table. *)
let run () =
  let rows = measure () in
  Fmt.pr "@.== Serve throughput (%d distinct plans, %d requests/client) ==@."
    distinct
    (rounds * distinct);
  Fmt.pr "%-8s %10s %12s %12s %12s %8s@." "clients" "requests" "req/s"
    "p50 (us)" "p99 (us)" "hits";
  List.iter
    (fun r ->
      Fmt.pr "%-8d %10d %12.1f %12.1f %12.1f %7d@." r.clients r.requests
        r.rps (r.p50 *. 1e6) (r.p99 *. 1e6) r.plan_hits)
    rows

(* ------------------------------------------------------------------ *)
(* Soak: the chaos harness as an informational benchmark               *)
(* ------------------------------------------------------------------ *)

(** Standalone [bench serve-soak]: boot a real socket daemon in-process
    and storm it with the chaos harness — well-formed clients concurrent
    with garbage/half-line/oversized/slow-loris/disconnect adversaries.
    Informational only (wall-clock and retry counts depend on the
    machine); the pinned serve numbers stay with [serve-throughput]. *)
let soak () =
  let module Server = Stardust_serve.Server in
  let module Chaos = Stardust_serve.Chaos in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stardust-soak-%d.sock" (Unix.getpid ()))
  in
  let svc = Service.create () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      let listener =
        Domain.spawn (fun () ->
            Server.serve_unix_socket ~max_connections:8 svc path)
      in
      let rec wait n =
        if (not (Sys.file_exists path)) && n > 0 then begin
          Unix.sleepf 0.01;
          wait (n - 1)
        end
      in
      wait 500;
      let cfg =
        {
          (Chaos.default_config ~socket:path) with
          Chaos.clients = 8;
          requests_per_client = 40;
          adversaries = 4;
          attacks_per_adversary = 20;
        }
      in
      let t0 = Unix.gettimeofday () in
      let report = Chaos.run cfg in
      let wall = Unix.gettimeofday () -. t0 in
      Stardust_serve.Service.request_stop svc;
      Domain.join listener;
      Fmt.pr "@.== Serve soak (chaos harness, seed %d) ==@." cfg.Chaos.seed;
      Fmt.pr "%a@." Chaos.pp_report report;
      Fmt.pr "wall: %.2fs (%.1f well-formed req/s under attack)@." wall
        (float_of_int report.Chaos.wellformed_answered /. wall);
      if report.Chaos.failures <> [] then exit 1)

(* ------------------------------------------------------------------ *)
(* serve-http: the observability plane                                 *)
(* ------------------------------------------------------------------ *)

module Metrics = Stardust_obs.Metrics
module Flight = Stardust_obs.Flight
module Http = Stardust_serve.Http
module Client = Stardust_serve.Client

type http_row = {
  h_requests : int;  (** deterministic: script length *)
  h_flight_total : int;  (** deterministic: every request recorded *)
  h_flight_failed : int;  (** deterministic: failures in the script *)
  h_scrape_bytes : int;
      (** deterministic: bytes of the volatile-free exposition text after
          the script, from a reset registry at one worker *)
  h_scrapes : int;
  h_scrape_wall : float;  (** wall-clock: never compared *)
}

(* A fixed script with client-supplied correlation ids and two requests
   that fail deterministically (unknown kernel, unknown op) — exercising
   the flight recorder's failed-trace path without any wall-clock
   dependence. *)
let http_script =
  let rid r extra = ("request_id", Json.Str r) :: extra in
  let req op fields = Json.Obj (("op", Json.Str op) :: fields) in
  let kernel k n =
    [ ("kernel", Json.Str k); ("n", Json.Num (float_of_int n)) ]
  in
  [
    req "ping" (rid "h-ping" []);
    req "compile" (rid "h-compile-1" (kernel "spmv" 16));
    req "compile" (rid "h-compile-2" (kernel "spmv" 16));
    req "estimate" (rid "h-estimate" (kernel "plus3" 16));
    req "stats" (rid "h-stats" (kernel "spmv" 16));
    req "compile" (rid "h-bad-kernel" (kernel "nosuch" 8));
    req "frobnicate" (rid "h-bad-op" []);
    req "ping" (rid "h-ping-2" []);
  ]

(* Replays [http_script] on a fresh one-worker service with a freshly
   reset metrics registry (run LAST in the suite so the reset cannot
   disturb other sections), then scrapes a real HTTP plane bound to an
   ephemeral loopback port.  The recorder occupancy and the byte length
   of the deterministic (volatile-free) scrape are pure functions of the
   script; the repeated live scrapes are timed for the human-readable
   report only. *)
let measure_http () =
  Metrics.reset ();
  let svc = Service.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown svc)
    (fun () ->
      List.iter
        (fun r -> ignore (Service.handle_request svc r : Json.t))
        http_script;
      let _, failed, total = Flight.occupancy (Service.flight svc) in
      let det = Metrics.render_text ~include_volatile:false () in
      match Http.start ~version:"bench" ~service:svc "127.0.0.1:0" with
      | Error e -> Fmt.failwith "serve-http bench: %s" e
      | Ok plane ->
          Fun.protect
            ~finally:(fun () -> Http.stop plane)
            (fun () ->
              let addr = Http.bound_addr plane in
              let scrapes = 25 in
              let t0 = Unix.gettimeofday () in
              for _ = 1 to scrapes do
                match Client.scrape_metrics addr with
                | Ok _ -> ()
                | Error e -> Fmt.failwith "serve-http bench scrape: %s" e
              done;
              {
                h_requests = List.length http_script;
                h_flight_total = total;
                h_flight_failed = failed;
                h_scrape_bytes = String.length det;
                h_scrapes = scrapes;
                h_scrape_wall = Unix.gettimeofday () -. t0;
              }))

(** JSON fragment for the suite document: a single-row section.
    [requests]/[flight_recorded]/[flight_failed]/[scrape_bytes] are the
    deterministic fields CI pins; the scrape timing is wall-clock. *)
let http_rows_json r =
  let num = Metrics.number_to_string in
  Printf.sprintf
    "{\"requests\":%d,\"flight_recorded\":%d,\"flight_failed\":%d,\"scrape_bytes\":%d,\"scrapes\":%d,\"scrape_wall_seconds\":%s,\"scrapes_per_sec\":%s}"
    r.h_requests r.h_flight_total r.h_flight_failed r.h_scrape_bytes
    r.h_scrapes
    (num r.h_scrape_wall)
    (num
       (if r.h_scrape_wall > 0.0 then
          float_of_int r.h_scrapes /. r.h_scrape_wall
        else 0.0))

(** Standalone [bench serve-http]: human-readable summary. *)
let run_http () =
  let r = measure_http () in
  Fmt.pr "@.== Serve observability plane ==@.";
  Fmt.pr "requests:        %d (%d failed)@." r.h_requests r.h_flight_failed;
  Fmt.pr "flight recorder: %d recorded, %d failed traces retained@."
    r.h_flight_total r.h_flight_failed;
  Fmt.pr "scrape:          %d bytes deterministic exposition text@."
    r.h_scrape_bytes;
  Fmt.pr "live scrapes:    %d in %.3fs (%.1f scrapes/s)@." r.h_scrapes
    r.h_scrape_wall
    (if r.h_scrape_wall > 0.0 then
       float_of_int r.h_scrapes /. r.h_scrape_wall
     else 0.0)
