(** Ingestion throughput benchmark: how fast does the streaming Matrix
    Market reader move real-dataset bytes, and what does the out-of-core
    tiling planner decide for a matrix that outgrows a chip?

    Each dataset is generated deterministically (a fixed odd stride
    walking a power-of-two cell grid visits every cell exactly once, so
    the first [nnz] steps are distinct coordinates), written to a temp
    file, streamed back through {!Stardust_ingest.Ingest} under an
    explicit byte budget, compiled into spmv, and handed to
    {!Stardust_ingest.Tile.plan} against a deliberately small chip.  The
    entry/byte/tile counts and the tile-0 cycle estimate are
    deterministic and diffed by CI's ingest-smoke job; the wall-clock
    fields are not. *)

module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module D = Stardust_workloads.Datasets
module Ingest = Stardust_ingest.Ingest
module Tile = Stardust_ingest.Tile

let rows = 2048
let cols = 2048
let cells = rows * cols

(* Odd stride on a power-of-two cell count: the walk is a permutation of
   the grid, so the first [nnz] cells are distinct without any dedup
   bookkeeping on the generator side. *)
let stride = 1_000_003

let write_mtx path ~nnz =
  let oc = open_out path in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "%%MatrixMarket matrix coordinate real general\n";
  Buffer.add_string buf (Printf.sprintf "%d %d %d\n" rows cols nnz);
  for k = 0 to nnz - 1 do
    let p = k * stride land (cells - 1) in
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d.0\n" ((p / cols) + 1) ((p mod cols) + 1)
         (1 + (k mod 9)));
    if Buffer.length buf > 1 lsl 16 then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  done;
  Buffer.output_buffer oc buf;
  close_out oc

(* The CI smoke ingests ~1M entries; the budget leaves headroom over the
   actual file size but still proves the budgeted code path. *)
let budget = Ingest.budget ~max_nnz:2_000_000 ~max_bytes:64_000_000 ()

(* A quarter-ish chip — 64 PMUs of 16 x 64 words, 65536 words of SRAM —
   small enough that both datasets overflow it and the planner's tile
   counts separate them. *)
let small_arch =
  { Arch.default with Arch.num_pmu = 64; pmu_banks = 16; pmu_words_per_bank = 64 }

let datasets = [ ("mtx-100k", 100_000); ("mtx-1m", 1_000_000) ]

type row = {
  dataset : string;
  target_nnz : int;  (** generator request; the diff key (deterministic) *)
  entries : int;  (** entries the reader ingested (deterministic) *)
  bytes : int;  (** file bytes consumed (deterministic) *)
  tiles : int;  (** coordinate tiles planned on [small_arch] (deterministic) *)
  tile0_cycles : float;  (** analytic cycles of the first tile (deterministic) *)
  ingest_seconds : float;
}

let mb_per_sec r =
  if r.ingest_seconds > 0.0 then
    float_of_int r.bytes /. (1024.0 *. 1024.0) /. r.ingest_seconds
  else infinity

let measure () =
  List.map
    (fun (dataset, nnz) ->
      let path = Filename.temp_file "stardust-ingest-bench" ".mtx" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      write_mtx path ~nnz;
      let bytes = (Unix.stat path).Unix.st_size in
      let t0 = Unix.gettimeofday () in
      let a = Ingest.read_file ~name:"A" ~budget ~format:(F.csr ()) path in
      let ingest_seconds = Unix.gettimeofday () -. t0 in
      let formats = [ ("y", F.dv ()); ("A", F.csr ()); ("x", F.dv ()) ] in
      let expr = "y(i) = A(i,j) * x(j)" in
      let inputs =
        [ ("A", a); ("x", D.dense_vector ~seed:4 ~name:"x" ~dim:cols ()) ]
      in
      let c = Compile.compile_string ~formats ~inputs expr in
      match Tile.plan small_arch c with
      | Error reason ->
          Fmt.failwith "ingest bench: %s does not tile: %s" dataset reason
      | Ok (shard, ranges) ->
          let lo, hi = List.hd ranges in
          let c0 =
            Compile.compile_string ~formats
              ~inputs:(Tile.tile_inputs shard c ~lo ~hi)
              expr
          in
          let r0 = Sim.estimate ~config:Sim.default_config c0 in
          {
            dataset;
            target_nnz = nnz;
            entries = T.num_vals a;
            bytes;
            tiles = List.length ranges;
            tile0_cycles = r0.Sim.cycles;
            ingest_seconds;
          })
    datasets

(** JSON fragment for the suite document: one object per dataset.
    [target_nnz]/[entries]/[bytes]/[tiles]/[tile0_cycles] are the
    deterministic fields; the wall-clock fields are ignored by
    perf-diff. *)
let rows_json rs =
  let num = Stardust_obs.Metrics.number_to_string in
  String.concat ","
    (List.map
       (fun r ->
         Printf.sprintf
           "{\"dataset\":\"%s\",\"target_nnz\":%d,\"entries\":%d,\"bytes\":%d,\"tiles\":%d,\"tile0_cycles\":%s,\"wall_ingest_seconds\":%s,\"wall_mb_per_sec\":%s}"
           r.dataset r.target_nnz r.entries r.bytes r.tiles
           (num r.tile0_cycles) (num r.ingest_seconds) (num (mb_per_sec r)))
       rs)

(** Standalone [bench ingest-throughput]: human-readable table. *)
let run () =
  let rs = measure () in
  Fmt.pr "@.== Ingestion throughput (streaming .mtx reader, %dx%d grid) ==@."
    rows cols;
  Fmt.pr "%-10s %10s %10s %10s %8s %6s %14s@." "dataset" "entries" "MB"
    "MB/s" "Mnnz/s" "tiles" "tile0 cycles";
  List.iter
    (fun r ->
      let mb = float_of_int r.bytes /. (1024.0 *. 1024.0) in
      Fmt.pr "%-10s %10d %10.1f %10.1f %8.2f %6d %14.0f@." r.dataset r.entries
        mb (mb_per_sec r)
        (if r.ingest_seconds > 0.0 then
           float_of_int r.entries /. 1.0e6 /. r.ingest_seconds
         else infinity)
        r.tiles r.tile0_cycles)
    rs;
  Fmt.pr
    "tiles planned for a %d-PMU chip (%d words of SRAM); cycles from the \
     HBM2E analytic model@."
    small_arch.Arch.num_pmu
    (Tile.budget_words small_arch)
