(** Tensor statistics used by the analytic cost models.

    The Capstan simulator and the CPU/GPU baselines estimate loop trip counts
    from dataset statistics instead of executing every scalar operation (the
    paper's datasets reach billions of iterations).  This module computes the
    exact counts those estimates need: per-level position counts, fiber
    lengths, and co-iteration (intersection/union) cardinalities.

    The co-iteration hot paths linearize coordinate prefixes into single
    native ints whenever the per-dimension spans fit 62 bits: the merge and
    grouping loops then run on monotone int arrays with no per-nonzero
    allocation and no polymorphic [compare].  Tensors whose prefix space
    overflows an int fall back to the original array/list-keyed paths, which
    count the exact same quantities. *)

type t = {
  dims : int array;
  nnz : int;  (** structurally stored nonzeros *)
  num_vals : int;  (** leaf positions incl. trailing-dense zeros *)
  level_positions : int array;  (** iteration-space size of each level *)
  density : float;
}

let of_tensor (x : Tensor.t) =
  let dims = Tensor.dims x in
  let n = Array.length dims in
  let nnz = Tensor.nnz x in
  (* One left-to-right pass: each level's position count derives from the
     level above it (dense levels multiply the parent count by their
     dimension, compressed levels have one position per crd entry), so the
     prefix levels are never rescanned per level. *)
  let level_positions = Array.make n 0 in
  let parent = ref 1 in
  for l = 0 to n - 1 do
    (match x.Tensor.levels.(l) with
    | Tensor.Dense_level { dim } -> parent := !parent * dim
    | Tensor.Compressed_level { crd; _ } -> parent := Array.length crd);
    level_positions.(l) <- !parent
  done;
  let density =
    if n = 0 then 1.0
    else
      float_of_int nnz
      /. Array.fold_left (fun a d -> a *. float_of_int d) 1.0 dims
  in
  { dims; nnz; num_vals = Tensor.num_vals x; level_positions; density }

(** Average number of children per position at level [l] (fiber length). *)
let avg_fiber_len s l =
  let parent = if l = 0 then 1 else s.level_positions.(l - 1) in
  if parent = 0 then 0.0
  else float_of_int s.level_positions.(l) /. float_of_int parent

let pp ppf s =
  Fmt.pf ppf "dims=%a nnz=%d vals=%d density=%.3e levels=%a"
    Fmt.(brackets (array ~sep:(any "x") int))
    s.dims s.nnz s.num_vals s.density
    Fmt.(brackets (array ~sep:comma int))
    s.level_positions

(* -------------------------------------------------------------------- *)
(* Coordinate-prefix linearization                                       *)
(* -------------------------------------------------------------------- *)

(** Is storage order lexicographic over logical coordinates? *)
let identity_order (x : Tensor.t) =
  let mo = (Tensor.format x).Format.mode_order in
  List.for_all2 ( = ) mo (List.init (List.length mo) Fun.id)

(** Per-dimension spans for linearizing logical-coordinate prefixes of
    length [depth + 1] drawn from either of two tensors into single ints;
    [None] when a tensor is too short or the prefix space overflows a
    native int.  Linearization is order-isomorphic to lexicographic
    comparison of the prefixes, so sorted-key merges count exactly what
    the array merges count. *)
let linear_spans (dims_a : int array) (dims_b : int array) ~depth =
  let k = depth + 1 in
  if Array.length dims_a < k || Array.length dims_b < k then None
  else begin
    let spans = Array.make (max k 1) 1 in
    let total = ref 1 and ok = ref true in
    for i = 0 to k - 1 do
      let s = max 1 (max dims_a.(i) dims_b.(i)) in
      spans.(i) <- s;
      if !total > max_int / s then ok := false else total := !total * s
    done;
    if !ok then Some spans else None
  end

(* Growable int buffer: the only allocation of the linearized paths is the
   (amortized) key array itself. *)
let push (buf : int array ref) (n : int ref) v =
  let a = !buf in
  let cap = Array.length a in
  if !n = cap then begin
    let a' = Array.make (2 * cap) 0 in
    Array.blit a 0 a' 0 cap;
    buf := a'
  end;
  !buf.(!n) <- v;
  incr n

(** Sorted distinct linearized prefix keys of length [depth + 1].
    Requires an identity mode order (storage order is then lexicographic,
    so the key stream is monotone and one comparison dedups it). *)
let distinct_prefix_keys (t : Tensor.t) ~spans ~depth =
  let buf = ref (Array.make 64 0) and n = ref 0 in
  let last = ref 0 in
  Tensor.iter_nonzeros
    (fun c _ ->
      let k = ref 0 in
      for i = 0 to depth do
        k := (!k * spans.(i)) + c.(i)
      done;
      if !n = 0 || !k <> !last then begin
        push buf n !k;
        last := !k
      end)
    t;
  Array.sub !buf 0 !n

(** Linear merge of two sorted distinct key arrays: the co-iteration
    cardinality ([union = false] counts keys in both, [union = true] keys
    in either). *)
let key_merge_count ~union (pa : int array) (pb : int array) =
  let na = Array.length pa and nb = Array.length pb in
  let i = ref 0 and j = ref 0 and inter = ref 0 in
  while !i < na && !j < nb do
    let a = pa.(!i) and b = pb.(!j) in
    if a = b then (incr inter; incr i; incr j)
    else if a < b then incr i
    else incr j
  done;
  if union then na + nb - !inter else !inter

(** Like {!key_merge_count} but charging pipeline occupancy per parent
    group: surviving keys are grouped by [key / parent_span] (the
    linearized parent prefix) and a group of [m] keys costs
    [max m par / par] vector-lane-group cycles. *)
let key_coiter_launch_total ~union ~par ~parent_span (pa : int array)
    (pb : int array) =
  let na = Array.length pa and nb = Array.length pb in
  let acc = ref 0.0 in
  let group = ref 0 and m = ref 0 in
  let flush () =
    if !m > 0 then
      acc := !acc +. (float_of_int (max !m par) /. float_of_int par);
    m := 0
  in
  let visit k =
    let g = k / parent_span in
    if !m = 0 || g <> !group then begin
      flush ();
      group := g
    end;
    incr m
  in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let a = pa.(!i) and b = pb.(!j) in
    if a = b then begin
      visit a;
      incr i;
      incr j
    end
    else if a < b then begin
      if union then visit a;
      incr i
    end
    else begin
      if union then visit b;
      incr j
    end
  done;
  if union then begin
    while !i < na do visit pa.(!i); incr i done;
    while !j < nb do visit pb.(!j); incr j done
  end;
  flush ();
  !acc

(* -------------------------------------------------------------------- *)
(* Co-iteration cardinalities                                            *)
(* -------------------------------------------------------------------- *)

let sorted_coords (x : Tensor.t) =
  let l = Tensor.fold_nonzeros (fun acc c _ -> c :: acc) [] x in
  let a = Array.of_list l in
  Array.sort compare a;
  a

let count_merge a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and inter = ref 0 and union = ref 0 in
  while !i < na && !j < nb do
    let c = compare a.(!i) b.(!j) in
    if c = 0 then (incr inter; incr union; incr i; incr j)
    else if c < 0 then (incr union; incr i)
    else (incr union; incr j)
  done;
  union := !union + (na - !i) + (nb - !j);
  (!inter, !union)

(* Full-coordinate merge counts.  Linearized fast path: collect every
   nonzero's key, sort (already sorted for identity orders, but sorting is
   cheap and keeps the path uniform), merge as ints.  The keys of one
   tensor are distinct (coordinate paths are unique), so the merge counts
   match the coordinate-array merge exactly. *)
let full_merge_counts (a : Tensor.t) (b : Tensor.t) =
  let da = Tensor.dims a and db = Tensor.dims b in
  let order = Array.length da in
  if Array.length db <> order then
    count_merge (sorted_coords a) (sorted_coords b)
  else
    match linear_spans da db ~depth:(order - 1) with
    | None -> count_merge (sorted_coords a) (sorted_coords b)
    | Some spans ->
        let keys t =
          let buf = ref (Array.make 64 0) and n = ref 0 in
          Tensor.iter_nonzeros
            (fun c _ ->
              let k = ref 0 in
              for i = 0 to order - 1 do
                k := (!k * spans.(i)) + c.(i)
              done;
              push buf n !k)
            t;
          let ks = Array.sub !buf 0 !n in
          Array.sort Int.compare ks;
          ks
        in
        let ka = keys a and kb = keys b in
        ( key_merge_count ~union:false ka kb,
          key_merge_count ~union:true ka kb )

(** Number of coordinate paths present in {e both} tensors (the trip count of
    an intersection co-iteration over full coordinates). *)
let intersection_nnz a b = fst (full_merge_counts a b)

(** Number of coordinate paths present in {e either} tensor (the trip count
    of a union co-iteration over full coordinates). *)
let union_nnz a b = snd (full_merge_counts a b)

(** Union cardinality of several tensors (e.g. Plus3's three-way add). *)
let union_nnz_many = function
  | [] -> 0
  | [ x ] -> Tensor.nnz x
  | x :: rest -> (
      let ts = x :: rest in
      let order = Array.length (Tensor.dims x) in
      let spans =
        if List.for_all (fun t -> Array.length (Tensor.dims t) = order) ts
        then
          let dims =
            List.fold_left
              (fun acc t -> Array.map2 max acc (Tensor.dims t))
              (Tensor.dims x) rest
          in
          linear_spans dims dims ~depth:(order - 1)
        else None
      in
      match spans with
      | Some spans ->
          let tbl = Hashtbl.create 1024 in
          List.iter
            (fun t ->
              Tensor.iter_nonzeros
                (fun c _ ->
                  let k = ref 0 in
                  for i = 0 to order - 1 do
                    k := (!k * spans.(i)) + c.(i)
                  done;
                  Hashtbl.replace tbl !k ())
                t)
            ts;
          Hashtbl.length tbl
      | None ->
          let tbl = Hashtbl.create 1024 in
          List.iter
            (fun t ->
              Tensor.iter_nonzeros
                (fun c _ -> Hashtbl.replace tbl (Array.to_list c) ())
                t)
            ts;
          Hashtbl.length tbl)

(** Rows (leading-dimension slices) with at least one stored nonzero. *)
let nonempty_rows (x : Tensor.t) =
  let seen = Hashtbl.create 256 in
  Tensor.iter_nonzeros (fun c _ -> Hashtbl.replace seen c.(0) ()) x;
  Hashtbl.length seen

(* Generic prefix table (any mode order): int keys when the prefix space
   fits an int, coordinate-list keys otherwise. *)
let prefix_table_counts ~union (a : Tensor.t) (b : Tensor.t) ~depth =
  match linear_spans (Tensor.dims a) (Tensor.dims b) ~depth with
  | Some spans ->
      let prefixes t =
        let tbl = Hashtbl.create 1024 in
        Tensor.iter_nonzeros
          (fun c _ ->
            let k = ref 0 in
            for i = 0 to depth do
              k := (!k * spans.(i)) + c.(i)
            done;
            Hashtbl.replace tbl !k ())
          t;
        tbl
      in
      let pa = prefixes a and pb = prefixes b in
      let count = ref 0 in
      if union then begin
        Hashtbl.iter (fun k () -> if not (Hashtbl.mem pb k) then incr count) pa;
        !count + Hashtbl.length pb
      end
      else begin
        Hashtbl.iter (fun k () -> if Hashtbl.mem pb k then incr count) pa;
        !count
      end
  | None ->
      let prefixes t =
        let tbl = Hashtbl.create 1024 in
        Tensor.iter_nonzeros
          (fun c _ ->
            Hashtbl.replace tbl (Array.to_list (Array.sub c 0 (depth + 1))) ())
          t;
        tbl
      in
      let pa = prefixes a and pb = prefixes b in
      let count = ref 0 in
      if union then begin
        Hashtbl.iter (fun k () -> if not (Hashtbl.mem pb k) then incr count) pa;
        !count + Hashtbl.length pb
      end
      else begin
        Hashtbl.iter (fun k () -> if Hashtbl.mem pb k then incr count) pa;
        !count
      end

(** [prefix_coiter_count ~union a b ~depth] is the number of distinct
    coordinate prefixes of length [depth + 1] present in both
    ([union = false]) or either ([union = true]) tensor — exactly the total
    number of iterations a depth-[depth] co-iteration loop executes across
    a whole kernel. *)
let prefix_coiter_count ~union (a : Tensor.t) (b : Tensor.t) ~depth =
  if identity_order a && identity_order b then
    match linear_spans (Tensor.dims a) (Tensor.dims b) ~depth with
    | Some spans ->
        (* Fast path: storage order is lexicographic, so distinct prefixes
           arrive as a monotone key stream and one int merge counts the
           co-iteration. *)
        key_merge_count ~union
          (distinct_prefix_keys a ~spans ~depth)
          (distinct_prefix_keys b ~spans ~depth)
    | None -> prefix_table_counts ~union a b ~depth
  else prefix_table_counts ~union a b ~depth

(** [fiber_launch_total ~par x l] is the total pipeline occupancy, in
    vector-lane-group cycles, of iterating every fiber of compressed level
    [l] with [par]-wide sparse lanes: a fiber of [n > 0] elements occupies
    [max n par / par] cycles (short fibers cannot fill the vector width).
    Empty fibers contribute nothing (their launch overhead is charged
    separately). *)
let fiber_launch_total ~par (x : Tensor.t) l =
  match x.Tensor.levels.(l) with
  | Tensor.Dense_level { dim } ->
      let fibers = if l = 0 then 1 else Tensor.num_positions x (l - 1) in
      float_of_int (fibers * max dim par) /. float_of_int par
  | Tensor.Compressed_level { pos; _ } ->
      let acc = ref 0.0 in
      for p = 0 to Array.length pos - 2 do
        let n = pos.(p + 1) - pos.(p) in
        if n > 0 then acc := !acc +. (float_of_int (max n par) /. float_of_int par)
      done;
      !acc

(** Sorted distinct coordinate prefixes of length [depth + 1] (requires an
    identity mode order so storage order is lexicographic). *)
let sorted_prefixes (t : Tensor.t) ~depth =
  let out = ref [] and n = ref 0 and last = ref [||] in
  Tensor.iter_nonzeros
    (fun c _ ->
      let p = Array.sub c 0 (depth + 1) in
      if !n = 0 || compare p !last <> 0 then begin
        out := p :: !out;
        last := p;
        incr n
      end)
    t;
  Array.of_list (List.rev !out)

(* Original array-merge grouping, kept as the overflow fallback of
   {!coiter_launch_total}. *)
let coiter_launch_total_arrays ~union ~par (a : Tensor.t) (b : Tensor.t)
    ~depth =
  let pa = sorted_prefixes a ~depth and pb = sorted_prefixes b ~depth in
  let na = Array.length pa and nb = Array.length pb in
  let parent p = Array.sub p 0 depth in
  let acc = ref 0.0 in
  let group = ref [||] and m = ref 0 in
  let flush () =
    if !m > 0 then
      acc := !acc +. (float_of_int (max !m par) /. float_of_int par);
    m := 0
  in
  let visit p =
    let g = parent p in
    if !m = 0 || compare g !group <> 0 then begin
      flush ();
      group := g
    end;
    incr m
  in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let c = compare pa.(!i) pb.(!j) in
    if c = 0 then begin
      visit pa.(!i);
      incr i;
      incr j
    end
    else if c < 0 then begin
      if union then visit pa.(!i);
      incr i
    end
    else begin
      if union then visit pb.(!j);
      incr j
    end
  done;
  if union then begin
    while !i < na do visit pa.(!i); incr i done;
    while !j < nb do visit pb.(!j); incr j done
  end;
  flush ();
  !acc

(** Like {!fiber_launch_total} but for the {e co-iteration} of two tensors
    at level [depth]: groups the surviving coordinates by their parent
    prefix and charges [max m par / par] per group of [m]. *)
let coiter_launch_total ~union ~par (a : Tensor.t) (b : Tensor.t) ~depth =
  if identity_order a && identity_order b then
    match linear_spans (Tensor.dims a) (Tensor.dims b) ~depth with
    | Some spans ->
        key_coiter_launch_total ~union ~par ~parent_span:spans.(depth)
          (distinct_prefix_keys a ~spans ~depth)
          (distinct_prefix_keys b ~spans ~depth)
    | None -> coiter_launch_total_arrays ~union ~par a b ~depth
  else coiter_launch_total_arrays ~union ~par a b ~depth

(** Maximum fiber length at compressed level [l] (worst-case segment). *)
let max_fiber_len (x : Tensor.t) l =
  match x.Tensor.levels.(l) with
  | Tensor.Dense_level { dim } -> dim
  | Tensor.Compressed_level { pos; _ } ->
      let m = ref 0 in
      for p = 0 to Array.length pos - 2 do
        m := max !m (pos.(p + 1) - pos.(p))
      done;
      !m
