(** Level-format sparse tensors.

    A tensor is stored as a tree of {e levels} (Chou et al.): level [l] stores
    the coordinates of logical dimension [mode_order.(l)].  A dense level
    stores nothing (coordinates are implicit); a compressed level stores a
    [pos] array segmenting a [crd] array, exactly like CSR's row pointers and
    column indices.  The [vals] array holds one value per leaf position.

    Positions at level [l] form a contiguous range; each position at level
    [l-1] owns a (possibly empty) sub-range at level [l].  This is the
    representation the compiler's iteration theory reasons about: a [forall]
    over an index variable iterates over the positions of the level bound to
    that variable. *)

type level_storage =
  | Dense_level of { dim : int }
      (** Coordinates are implicit; each parent position expands to [dim]
          child positions. *)
  | Compressed_level of { pos : int array; crd : int array }
      (** Child positions of parent [p] are [pos.(p) .. pos.(p+1) - 1]; their
          coordinates are [crd.(q)]. *)

type t = {
  name : string;
  dims : int array;  (** Logical dimension sizes. *)
  format : Format.t;
  levels : level_storage array;  (** In storage (mode) order. *)
  vals : float array;  (** One value per leaf position. *)
}

let name t = t.name
let dims t = Array.copy t.dims
let order t = Array.length t.dims
let format t = t.format

let dim t i =
  if i < 0 || i >= order t then invalid_arg "Tensor.dim: out of range";
  t.dims.(i)

(** Dimension size at storage level [l]. *)
let level_dim t l = t.dims.(Format.dim_of_level t.format l)

(** Order-0 (scalar) tensor. *)
let scalar ?(name = "s") v =
  {
    name;
    dims = [||];
    format = Format.make [];
    levels = [||];
    vals = [| v |];
  }

let is_scalar t = order t = 0
let scalar_value t =
  if not (is_scalar t) then invalid_arg "Tensor.scalar_value: not a scalar";
  t.vals.(0)

(* -------------------------------------------------------------------- *)
(* Packing from COO                                                      *)
(* -------------------------------------------------------------------- *)

(** [pack ~name ~format coo] assembles the level-format representation from a
    COO buffer.  Entries are canonicalised (sorted in mode order, duplicates
    summed, zeros dropped) and then packed level by level: each level refines
    the segment of entries owned by every parent position. *)
let pack ~name ~format coo =
  let dims = Coo.dims coo in
  let n = Array.length dims in
  if Format.order format <> n then
    invalid_arg "Tensor.pack: format order does not match tensor order";
  let entries =
    Coo.finalize_array ~mode_order:format.Format.mode_order coo
  in
  let nentries = Array.length entries in
  (* Permuted coordinate of entry [e] at level [l]. *)
  let pcoord e l = (fst entries.(e)).(Format.dim_of_level format l) in
  (* Invariant: [segments] lists, for every live position at the previous
     level, the half-open range of entries it owns, in position order. *)
  let segments = ref [| (0, nentries) |] in
  let levels =
    Array.of_list
    @@ List.mapi
         (fun l kind ->
           let dim = dims.(Format.dim_of_level format l) in
           match kind with
           | Format.Dense ->
               (* Expand every parent into [dim] children; partition each
                  parent's entries by their coordinate at this level. *)
               let next =
                 Array.concat
                   (Array.to_list
                      (Array.map
                         (fun (lo, hi) ->
                           let children = Array.make dim (0, 0) in
                           let start = ref lo in
                           for c = 0 to dim - 1 do
                             let s = !start in
                             let e = ref s in
                             while !e < hi && pcoord !e l = c do incr e done;
                             children.(c) <- (s, !e);
                             start := !e
                           done;
                           children)
                         !segments))
               in
               segments := next;
               Dense_level { dim }
           | Format.Compressed ->
               (* Record the distinct coordinates within every parent
                  segment; children are the runs of equal coordinates. *)
               let pos = Array.make (Array.length !segments + 1) 0 in
               let crds = ref [] and children = ref [] and count = ref 0 in
               Array.iteri
                 (fun p (lo, hi) ->
                   pos.(p) <- !count;
                   let s = ref lo in
                   while !s < hi do
                     let c = pcoord !s l in
                     let e = ref !s in
                     while !e < hi && pcoord !e l = c do incr e done;
                     crds := c :: !crds;
                     children := (!s, !e) :: !children;
                     incr count;
                     s := !e
                   done)
                 !segments;
               pos.(Array.length !segments) <- !count;
               segments := Array.of_list (List.rev !children);
               Compressed_level
                 { pos; crd = Array.of_list (List.rev !crds) })
         format.Format.levels
  in
  (* Each leaf position owns zero or one entry. *)
  let vals =
    Array.map
      (fun (lo, hi) ->
        assert (hi - lo <= 1);
        if hi > lo then snd entries.(lo) else 0.0)
      !segments
  in
  { name; dims; format; levels; vals }

let of_coo ~name ~format coo = pack ~name ~format coo

(** Construct a tensor directly from raw level arrays — the form a backend
    writes out (e.g. the Capstan simulator's DRAM images).  Performs basic
    structural validation: monotone position arrays, coordinate bounds, and
    a values array matching the leaf-position count.

    @raise Invalid_argument on inconsistent arrays. *)
let of_arrays ~name ~format ~dims ~(levels : level_storage array) ~vals =
  let dims = Array.of_list dims in
  let n = Array.length dims in
  if Format.order format <> n || Array.length levels <> n then
    invalid_arg "Tensor.of_arrays: order mismatch";
  let parent = ref 1 in
  Array.iteri
    (fun l st ->
      let d = dims.(Format.dim_of_level format l) in
      (match (Format.level_kind format l, st) with
      | Format.Dense, Dense_level { dim } ->
          if dim <> d then invalid_arg "Tensor.of_arrays: dense dim mismatch";
          parent := !parent * d
      | Format.Compressed, Compressed_level { pos; crd } ->
          if Array.length pos <> !parent + 1 then
            invalid_arg "Tensor.of_arrays: pos length mismatch";
          if pos.(0) <> 0 then invalid_arg "Tensor.of_arrays: pos.(0) <> 0";
          for p = 0 to !parent - 1 do
            if pos.(p + 1) < pos.(p) then
              invalid_arg "Tensor.of_arrays: pos not monotone"
          done;
          if pos.(!parent) <> Array.length crd then
            invalid_arg "Tensor.of_arrays: crd length mismatch";
          Array.iter
            (fun c ->
              if c < 0 || c >= d then
                invalid_arg "Tensor.of_arrays: coordinate out of bounds")
            crd;
          parent := Array.length crd
      | _ -> invalid_arg "Tensor.of_arrays: level kind mismatch"))
    levels;
  if Array.length vals <> !parent then
    invalid_arg "Tensor.of_arrays: vals length mismatch";
  { name; dims; format; levels; vals }

(** Build from an explicit entry list [(coords, value)]. *)
let of_entries ~name ~format ~dims entries =
  let coo = Coo.create (Array.of_list dims) in
  List.iter (fun (c, v) -> Coo.add coo (Array.of_list c) v) entries;
  pack ~name ~format coo

(* -------------------------------------------------------------------- *)
(* Level geometry                                                        *)
(* -------------------------------------------------------------------- *)

(** Number of positions at level [l] (the size of that level's iteration
    space summed over all parents); level [-1] is the single root. *)
let num_positions t l =
  if l < 0 then 1
  else
    match t.levels.(l) with
    | Dense_level { dim } ->
        let parent = ref 1 in
        for k = 0 to l - 1 do
          match t.levels.(k) with
          | Dense_level { dim } -> parent := !parent * dim
          | Compressed_level { crd; _ } -> parent := Array.length crd
        done;
        !parent * dim
    | Compressed_level { crd; _ } -> Array.length crd

(** Number of stored leaf values (including explicit zeros from trailing
    dense levels). *)
let num_vals t = Array.length t.vals

(** Number of structurally stored nonzeros (distinct coordinate paths). *)
let nnz t = Array.fold_left (fun acc v -> if v <> 0.0 then acc + 1 else acc) 0 t.vals

let density t =
  if is_scalar t then 1.0
  else
    let total = Array.fold_left (fun a d -> a *. float_of_int d) 1.0 t.dims in
    float_of_int (nnz t) /. total

(* -------------------------------------------------------------------- *)
(* Element access                                                        *)
(* -------------------------------------------------------------------- *)

(** Binary search for [c] in [crd.(lo..hi-1)]; the slice is sorted. *)
let search_crd crd lo hi c =
  let lo = ref lo and hi = ref hi in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if crd.(mid) = c then found := mid
    else if crd.(mid) < c then lo := mid + 1
    else hi := mid
  done;
  !found

(** [get t coords] reads one element by logical coordinates; absent
    coordinates read as [0.0]. *)
let get t coords =
  if Array.length coords <> order t then
    invalid_arg "Tensor.get: wrong coordinate arity";
  Array.iteri
    (fun i c ->
      if c < 0 || c >= t.dims.(i) then invalid_arg "Tensor.get: out of bounds")
    coords;
  if is_scalar t then t.vals.(0)
  else
    let rec descend l p =
      if l = Array.length t.levels then Some p
      else
        let c = coords.(Format.dim_of_level t.format l) in
        match t.levels.(l) with
        | Dense_level { dim } -> descend (l + 1) ((p * dim) + c)
        | Compressed_level { pos; crd } ->
            let q = search_crd crd pos.(p) pos.(p + 1) c in
            if q < 0 then None else descend (l + 1) q
    in
    match descend 0 0 with None -> 0.0 | Some p -> t.vals.(p)

(** [iter_nonzeros f t] calls [f coords v] for every stored value with
    [v <> 0.0], in storage order.  [coords] are logical coordinates. *)
let iter_nonzeros f t =
  if is_scalar t then (if t.vals.(0) <> 0.0 then f [||] t.vals.(0))
  else
    let n = Array.length t.levels in
    let coords = Array.make (order t) 0 in
    let rec descend l p =
      if l = n then (
        if t.vals.(p) <> 0.0 then f (Array.copy coords) t.vals.(p))
      else
        let d = Format.dim_of_level t.format l in
        match t.levels.(l) with
        | Dense_level { dim } ->
            for c = 0 to dim - 1 do
              coords.(d) <- c;
              descend (l + 1) ((p * dim) + c)
            done
        | Compressed_level { pos; crd } ->
            for q = pos.(p) to pos.(p + 1) - 1 do
              coords.(d) <- crd.(q);
              descend (l + 1) q
            done
    in
    descend 0 0

let fold_nonzeros f init t =
  let acc = ref init in
  iter_nonzeros (fun c v -> acc := f !acc c v) t;
  !acc

let to_entries t = List.rev (fold_nonzeros (fun acc c v -> (c, v) :: acc) [] t)

(* -------------------------------------------------------------------- *)
(* Conversions                                                           *)
(* -------------------------------------------------------------------- *)

(** Row-major dense array of all elements (logical order). *)
let to_dense t =
  if is_scalar t then [| t.vals.(0) |]
  else begin
    let total = Array.fold_left ( * ) 1 t.dims in
    let out = Array.make total 0.0 in
    let strides = Array.make (order t) 1 in
    for i = order t - 2 downto 0 do
      strides.(i) <- strides.(i + 1) * t.dims.(i + 1)
    done;
    iter_nonzeros
      (fun coords v ->
        let idx = ref 0 in
        Array.iteri (fun i c -> idx := !idx + (c * strides.(i))) coords;
        out.(!idx) <- v)
      t;
    out
  end

(** Re-pack a tensor into a different format (same logical content). *)
let convert ?name ~format t =
  let name = Option.value name ~default:t.name in
  if is_scalar t then { (scalar ~name t.vals.(0)) with format }
  else begin
    let coo = Coo.create t.dims in
    iter_nonzeros (fun c v -> Coo.add coo c v) t;
    pack ~name ~format coo
  end

let rename name t = { t with name }

(* -------------------------------------------------------------------- *)
(* Comparison and printing                                               *)
(* -------------------------------------------------------------------- *)

(** Element-wise closeness with a mixed tolerance, independent of format:
    same shape and, for every pair of elements,
    [|x - y| <= atol + rtol * max |x| |y|].  The relative term keeps the
    comparison meaningful for values far from 1.0 (long reductions), the
    absolute term for values near 0.0 (cancellation).  This is the one
    tensor comparison shared by the test suites and the differential
    oracle's differ. *)
let approx_equal ?(rtol = 1e-6) ?(atol = 1e-9) a b =
  Array.length a.dims = Array.length b.dims
  && Array.for_all2 ( = ) a.dims b.dims
  &&
  let da = to_dense a and db = to_dense b in
  Array.length da = Array.length db
  && Array.for_all2
       (fun x y ->
         Float.abs (x -. y)
         <= atol +. (rtol *. Float.max (Float.abs x) (Float.abs y)))
       da db

(** Structural value equality up to an absolute [tol] (legacy shim over
    {!approx_equal}). *)
let equal_approx ?(tol = 1e-9) a b = approx_equal ~rtol:0.0 ~atol:tol a b

(** Largest absolute element-wise difference. *)
let max_abs_diff a b =
  let da = to_dense a and db = to_dense b in
  if Array.length da <> Array.length db then infinity
  else
    let m = ref 0.0 in
    Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. db.(i)))) da;
    !m

let pp ppf t =
  Fmt.pf ppf "@[<v>%s: %a %a, %d nnz@,"
    t.name
    Fmt.(brackets (array ~sep:(any "x") int))
    t.dims Format.pp_short t.format (nnz t);
  let count = ref 0 in
  (try
     iter_nonzeros
       (fun c v ->
         if !count >= 20 then raise Exit;
         incr count;
         Fmt.pf ppf "  %a -> %g@,"
           Fmt.(parens (array ~sep:comma int))
           c v)
       t
   with Exit -> Fmt.pf ppf "  ...@,");
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t

(* -------------------------------------------------------------------- *)
(* Raw sub-array access (used by code generation and simulation)         *)
(* -------------------------------------------------------------------- *)

(** The positions array of compressed level [l].
    @raise Invalid_argument on a dense level. *)
let pos_array t l =
  match t.levels.(l) with
  | Compressed_level { pos; _ } -> pos
  | Dense_level _ -> invalid_arg "Tensor.pos_array: dense level"

(** The coordinates array of compressed level [l].
    @raise Invalid_argument on a dense level. *)
let crd_array t l =
  match t.levels.(l) with
  | Compressed_level { crd; _ } -> crd
  | Dense_level _ -> invalid_arg "Tensor.crd_array: dense level"

let vals_array t = t.vals
