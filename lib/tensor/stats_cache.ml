(** Process-wide dataset-statistics cache.

    Every consumer of the analytic oracle — the explorer's point
    evaluations, the fallback driver, the fuzzer, the profiler — funnels
    through [Plan.build] + [Sim.estimate], and each of those recomputes
    O(nnz) dataset statistics from the raw tensors.  The inputs of a
    search are fixed while hundreds of schedule points are costed, so the
    statistics are pure functions of (tensor data, query): this module
    memoises them once per process instead of once per evaluated point.

    {2 Fingerprints}

    Entries are keyed by a structural tensor fingerprint: name, dims,
    format signature, nnz, and a sampled FNV-1a hash over the value and
    pos/crd arrays (at most 64 stride-sampled elements per array, so
    fingerprinting a gigabyte tensor costs microseconds).  Two tensors
    with equal shape but different data hash differently with
    overwhelming probability; tensors are immutable once packed, so
    there is no invalidation — entries stay valid for the process
    lifetime and eviction is purely a capacity bound ({!set_capacity},
    default {!default_capacity}) shed least-recently-used first, so a
    long-lived daemon keeps its working set warm while dead tensors age
    out.

    {2 Locking discipline}

    One global mutex guards the table and the counters.  Fills are
    double-checked: look up under the lock, compute {e outside} it (the
    O(nnz) scans must not serialize other domains), then re-check and
    insert under the lock.  Racing [Explore.Pool] domains or [Fuzz]
    workers may compute the same entry twice — both arrive at the same
    value (evaluation is pure), the first insert wins, and correctness
    never depends on who filled.  Because which domain fills a raced key
    is scheduling-dependent, the exported Metrics counters are registered
    [~volatile:true]; deterministic consumers (the throughput bench, the
    autotune acceptance check) read {!counters} from sequential code
    instead. *)

module Metrics = Stardust_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Tensor fingerprint                                                  *)
(* ------------------------------------------------------------------ *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L
let sample_points = 64

let mix64 h v = Int64.mul (Int64.logxor h v) fnv_prime
let mix h v = mix64 h (Int64.of_int v)

(* Hash length plus up to [sample_points] evenly-strided elements: cheap
   on huge arrays, exact on small ones. *)
let hash_int_array h (a : int array) =
  let n = Array.length a in
  let h = ref (mix h n) in
  if n > 0 then begin
    let k = min n sample_points in
    for i = 0 to k - 1 do
      let idx = i * (n - 1) / max 1 (k - 1) in
      h := mix (mix !h idx) a.(idx)
    done
  end;
  !h

let hash_float_array h (a : float array) =
  let n = Array.length a in
  let h = ref (mix h n) in
  if n > 0 then begin
    let k = min n sample_points in
    for i = 0 to k - 1 do
      let idx = i * (n - 1) / max 1 (k - 1) in
      h := mix64 (mix !h idx) (Int64.bits_of_float a.(idx))
    done
  end;
  !h

let format_sig (f : Format.t) =
  Format.short_name f ^ ":"
  ^ String.concat "" (List.map string_of_int f.Format.mode_order)

(** Structural fingerprint: [name|dims|format|nnz|datahash].  Readable
    prefix for debugging, sampled data hash for discrimination. *)
let fingerprint_uncached (t : Tensor.t) =
  let h = ref fnv_basis in
  Array.iter (fun d -> h := mix !h d) t.Tensor.dims;
  Array.iter
    (fun lv ->
      match lv with
      | Tensor.Dense_level { dim } -> h := mix (mix !h 1) dim
      | Tensor.Compressed_level { pos; crd } ->
          h := hash_int_array (hash_int_array (mix !h 2) pos) crd)
    t.Tensor.levels;
  h := hash_float_array !h t.Tensor.vals;
  Printf.sprintf "%s|%s|%s|%d|%Lx" (Tensor.name t)
    (String.concat "x"
       (List.map string_of_int (Array.to_list t.Tensor.dims)))
    (format_sig (Tensor.format t))
    (Tensor.nnz t) !h

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

type value =
  | Stats of Stats.t
  | Int of int
  | Float of float
  | Keys of int array  (** sorted distinct linearized prefix keys *)
  | Ints of int array  (** per-level scalars, e.g. max fiber lengths *)

(** Capacity bound with LRU eviction: every entry carries a last-use
    stamp (a logical tick bumped on each table access), and an insert
    that pushes the table past the capacity evicts the least-recently
    used entries one at a time until it fits again.  The default is far
    above any single search's working set, so in a one-shot CLI run the
    bound never bites; in a long-lived daemon (the compile service, the
    fuzzer) it is what keeps dead tensors — fuzz cases, disconnected
    clients' datasets — from accumulating for the process lifetime.
    {!set_capacity} tunes the bound at runtime. *)
let default_capacity = 8192

type entry = { e_value : value; mutable e_last_used : int }

let lock = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 256
let capacity_bound = ref default_capacity
let tick = ref 0
let enabled_flag = ref true
let hit_count = ref 0
let miss_count = ref 0
let evict_count = ref 0
let fill_secs = ref 0.0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Fingerprint memo, keyed by physical identity: tensors are immutable
   once packed and the same [Tensor.t] value is queried hundreds of times
   per search, but the full fingerprint scans the value array (its nnz
   count).  A cheap structural bucket narrows to the handful of live
   tensors sharing a name/shape, compared with [==].  Capped like the
   main table so fuzz-generated tensors cannot accumulate forever. *)
let fp_memo : (string, (Tensor.t * string) list) Hashtbl.t = Hashtbl.create 64
let fp_memo_size = ref 0
let max_fp_entries = 4096

let fingerprint (t : Tensor.t) =
  let bucket =
    Printf.sprintf "%s|%d|%d" (Tensor.name t)
      (Array.length t.Tensor.dims)
      (Tensor.num_vals t)
  in
  let cached =
    locked (fun () ->
        match Hashtbl.find_opt fp_memo bucket with
        | None -> None
        | Some entries -> List.assq_opt t entries)
  in
  match cached with
  | Some fp -> fp
  | None ->
      let fp = fingerprint_uncached t in
      locked (fun () ->
          if !fp_memo_size >= max_fp_entries then begin
            Hashtbl.reset fp_memo;
            fp_memo_size := 0
          end;
          let entries =
            Option.value ~default:[] (Hashtbl.find_opt fp_memo bucket)
          in
          if not (List.mem_assq t entries) then begin
            Hashtbl.replace fp_memo bucket ((t, fp) :: entries);
            incr fp_memo_size
          end);
      fp

(* Volatile: raced double-fills make hit/miss splits scheduling-dependent,
   so these must not appear in deterministic metric snapshots. *)
let m_hits =
  lazy
    (Metrics.counter ~volatile:true
       ~help:"statistics-cache lookups served from the cache"
       "stats_cache_hits_total")

let m_misses =
  lazy
    (Metrics.counter ~volatile:true
       ~help:"statistics-cache lookups that computed from raw tensors"
       "stats_cache_misses_total")

let m_fill =
  lazy
    (Metrics.counter ~volatile:true
       ~help:"seconds spent computing statistics on cache misses"
       "stats_cache_fill_seconds_total")

let m_evict =
  lazy
    (Metrics.counter ~volatile:true
       ~help:"entries evicted by the LRU capacity bound"
       "stats_cache_evictions_total")

(** Disable to force every query back to a raw computation (the
    [--no-stats-cache] escape hatch); the table is cleared so a later
    re-enable starts cold. *)
let set_enabled b =
  locked (fun () ->
      enabled_flag := b;
      if not b then begin
        Hashtbl.reset table;
        Hashtbl.reset fp_memo;
        fp_memo_size := 0
      end)

let is_enabled () = locked (fun () -> !enabled_flag)

(* Caller holds [lock].  Evict least-recently-used entries until the
   table fits the capacity bound again; returns how many were shed.  The
   scan is O(n) per victim, but it only runs when an insert overflows
   the bound, and the bound keeps n small by construction. *)
let evict_lru_locked () =
  let evicted = ref 0 in
  while Hashtbl.length table > !capacity_bound do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.e_last_used -> acc
          | _ -> Some (k, e.e_last_used))
        table None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove table k;
        incr evict_count;
        incr evicted
    | None -> ()
  done;
  !evicted

(** Bound the table to [n] entries (clamped to at least 1), evicting
    least-recently-used entries immediately if it is already over. *)
let set_capacity n =
  let evicted =
    locked (fun () ->
        capacity_bound := max 1 n;
        evict_lru_locked ())
  in
  if evicted > 0 then
    Metrics.inc ~by:(float_of_int evicted) (Lazy.force m_evict)

let capacity () = locked (fun () -> !capacity_bound)
let size () = locked (fun () -> Hashtbl.length table)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  fill_seconds : float;
}

(** Deterministic counter view for sequential consumers (benches, tests);
    under racing domains prefer the volatile Metrics counters' trends. *)
let counters () =
  locked (fun () ->
      {
        hits = !hit_count;
        misses = !miss_count;
        evictions = !evict_count;
        fill_seconds = !fill_secs;
      })

(** Drop every entry and zero the counters (tests and benchmarks). *)
let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset fp_memo;
      fp_memo_size := 0;
      tick := 0;
      hit_count := 0;
      miss_count := 0;
      evict_count := 0;
      fill_secs := 0.0)

let note_hit () =
  locked (fun () -> incr hit_count);
  Metrics.inc (Lazy.force m_hits)

let note_miss dt =
  locked (fun () ->
      incr miss_count;
      fill_secs := !fill_secs +. dt);
  Metrics.inc (Lazy.force m_misses);
  Metrics.inc ~by:dt (Lazy.force m_fill)

(* Raw computation, counted as a miss (the disabled path: every query
   recomputes, so the miss counter equals the raw-computation count). *)
let timed_raw compute =
  let t0 = Unix.gettimeofday () in
  let v = compute () in
  note_miss (Unix.gettimeofday () -. t0);
  v

(* Double-checked fill (see the module doc for the discipline).  Callers
   check [enabled_flag] before building keys — disabled queries must not
   pay for fingerprinting.  Every table access stamps the entry with a
   fresh logical tick so eviction is LRU, not arbitrary. *)
let find_or_fill key compute =
  let found =
    locked (fun () ->
        match Hashtbl.find_opt table key with
        | Some e ->
            incr tick;
            e.e_last_used <- !tick;
            Some e.e_value
        | None -> None)
  in
  match found with
  | Some v ->
      note_hit ();
      v
  | None ->
      let t0 = Unix.gettimeofday () in
      let v = compute () in
      note_miss (Unix.gettimeofday () -. t0);
      let v, evicted =
        locked (fun () ->
            incr tick;
            match Hashtbl.find_opt table key with
            | Some e ->
                (* raced: another domain filled first *)
                e.e_last_used <- !tick;
                (e.e_value, 0)
            | None ->
                Hashtbl.add table key { e_value = v; e_last_used = !tick };
                (v, evict_lru_locked ()))
      in
      if evicted > 0 then
        Metrics.inc ~by:(float_of_int evicted) (Lazy.force m_evict);
      v

let wrong_kind key = invalid_arg ("Stats_cache: wrong entry kind for " ^ key)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(** Cached {!Stats.of_tensor}. *)
let stats (t : Tensor.t) =
  if not !enabled_flag then timed_raw (fun () -> Stats.of_tensor t)
  else
    let key = "st|" ^ fingerprint t in
    match find_or_fill key (fun () -> Stats (Stats.of_tensor t)) with
    | Stats s -> s
    | _ -> wrong_kind key

(** Cached per-level {!Stats.max_fiber_len}, all levels at once (callers
    build whole metadata records; one entry covers every level).  The
    returned array is shared — do not mutate. *)
let max_fiber_lens (t : Tensor.t) =
  let compute () =
    Array.init (Array.length t.Tensor.dims) (Stats.max_fiber_len t)
  in
  if not !enabled_flag then timed_raw compute
  else
    let key = "mfl|" ^ fingerprint t in
    match find_or_fill key (fun () -> Ints (compute ())) with
    | Ints a -> a
    | _ -> wrong_kind key

let max_fiber_len (t : Tensor.t) l = (max_fiber_lens t).(l)

(** Cached {!Stats.fiber_launch_total}. *)
let fiber_launch_total ~par (t : Tensor.t) l =
  if not !enabled_flag then
    timed_raw (fun () -> Stats.fiber_launch_total ~par t l)
  else
    let key = Printf.sprintf "flt|%s|%d|%d" (fingerprint t) l par in
    match
      find_or_fill key (fun () -> Float (Stats.fiber_launch_total ~par t l))
    with
    | Float v -> v
    | _ -> wrong_kind key

(* Cached sorted-prefix key arrays: shared by every pairwise query whose
   linearization spans agree, so a tensor's nonzeros are scanned once per
   (depth, spans), not once per co-iterated partner. *)
let prefix_keys (t : Tensor.t) ~fp ~spans ~depth =
  let key =
    Printf.sprintf "pk|%s|%d|%s" fp depth
      (String.concat "x" (List.map string_of_int (Array.to_list spans)))
  in
  match
    find_or_fill key (fun () ->
        Keys (Stats.distinct_prefix_keys t ~spans ~depth))
  with
  | Keys a -> a
  | _ -> wrong_kind key

(* Pairwise fast path applies under exactly the conditions of the Stats
   fast path (identity orders, spans fit an int), so cached and uncached
   results are the same code path over the same keys. *)
let pair_fast_path (a : Tensor.t) (b : Tensor.t) ~depth =
  if Stats.identity_order a && Stats.identity_order b then
    Stats.linear_spans a.Tensor.dims b.Tensor.dims ~depth
  else None

(** Cached {!Stats.prefix_coiter_count}. *)
let prefix_coiter_count ~union (a : Tensor.t) (b : Tensor.t) ~depth =
  if not !enabled_flag then
    timed_raw (fun () -> Stats.prefix_coiter_count ~union a b ~depth)
  else
    match pair_fast_path a b ~depth with
    | Some spans ->
        let fa = fingerprint a and fb = fingerprint b in
        let key = Printf.sprintf "pcc|%s|%s|%d|%b" fa fb depth union in
        (match
           find_or_fill key (fun () ->
               Int
                 (Stats.key_merge_count ~union
                    (prefix_keys a ~fp:fa ~spans ~depth)
                    (prefix_keys b ~fp:fb ~spans ~depth)))
         with
        | Int v -> v
        | _ -> wrong_kind key)
    | None ->
        let key =
          Printf.sprintf "pcc|%s|%s|%d|%b" (fingerprint a) (fingerprint b)
            depth union
        in
        (match
           find_or_fill key (fun () ->
               Int (Stats.prefix_coiter_count ~union a b ~depth))
         with
        | Int v -> v
        | _ -> wrong_kind key)

(** Cached {!Stats.coiter_launch_total}. *)
let coiter_launch_total ~union ~par (a : Tensor.t) (b : Tensor.t) ~depth =
  if not !enabled_flag then
    timed_raw (fun () -> Stats.coiter_launch_total ~union ~par a b ~depth)
  else
    match pair_fast_path a b ~depth with
    | Some spans ->
        let fa = fingerprint a and fb = fingerprint b in
        let key =
          Printf.sprintf "clt|%s|%s|%d|%b|%d" fa fb depth union par
        in
        (match
           find_or_fill key (fun () ->
               Float
                 (Stats.key_coiter_launch_total ~union ~par
                    ~parent_span:spans.(depth)
                    (prefix_keys a ~fp:fa ~spans ~depth)
                    (prefix_keys b ~fp:fb ~spans ~depth)))
         with
        | Float v -> v
        | _ -> wrong_kind key)
    | None ->
        let key =
          Printf.sprintf "clt|%s|%s|%d|%b|%d" (fingerprint a) (fingerprint b)
            depth union par
        in
        (match
           find_or_fill key (fun () ->
               Float (Stats.coiter_launch_total ~union ~par a b ~depth))
         with
        | Float v -> v
        | _ -> wrong_kind key)
