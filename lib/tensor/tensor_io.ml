(** Tensor file I/O: Matrix Market (.mtx) and FROSTT (.tns) coordinate
    formats — the interchange formats of SuiteSparse and the FROSTT sparse
    tensor collection the paper's datasets come from.  With these, the
    benchmark suite can run on the original inputs when they are available
    instead of the synthetic stand-ins.

    Both readers are hardened against malformed files: truncated headers,
    non-numeric fields, negative or out-of-range coordinates, duplicate
    entries, and trailing garbage all raise {!Io_error} carrying the file
    path and the 1-based line number — never a bare [Scanf.Scanf_failure],
    [Failure], or [End_of_file].  Channels are closed on every path. *)

exception Io_error of string

let err fmt = Fmt.kstr (fun s -> raise (Io_error s)) fmt

let split_ws line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(** Line-tracking reader over an input channel: every error it raises
    names the path and line. *)
type reader = { path : string; ic : in_channel; mutable lineno : int }

let reader path =
  match open_in path with
  | ic -> { path; ic; lineno = 0 }
  | exception Sys_error m -> err "%s" m

let line_err r fmt =
  Fmt.kstr (fun s -> err "%s:%d: %s" r.path r.lineno s) fmt

(** Next line, or [None] at end of file. *)
let next_line r =
  match input_line r.ic with
  | l ->
      r.lineno <- r.lineno + 1;
      Some l
  | exception End_of_file -> None

let require_line r what =
  match next_line r with
  | Some l -> l
  | None -> line_err r "unexpected end of file (expected %s)" what

let parse_int r what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> line_err r "%s: not an integer %S" what s

let parse_float r what s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> line_err r "%s: not a number %S" what s

(** 1-based file coordinate -> 0-based, bounds-checked against [dim]. *)
let parse_coord r ~mode ~dim s =
  let c = parse_int r (Printf.sprintf "coordinate (mode %d)" mode) s in
  if c < 1 then line_err r "coordinate %d (mode %d) is not positive" c mode;
  if dim > 0 && c > dim then
    line_err r "coordinate %d (mode %d) exceeds the declared dimension %d" c
      mode dim;
  c - 1

(* ------------------------------------------------------------------ *)
(* Matrix Market                                                       *)
(* ------------------------------------------------------------------ *)

(** Read a Matrix Market coordinate file (real/integer/pattern, general or
    symmetric) into a tensor of the given [format].

    @raise Io_error on malformed input, with the offending line number. *)
let read_matrix_market ?(name = "mtx") ~format path =
  let r = reader path in
  Fun.protect ~finally:(fun () -> close_in_noerr r.ic) @@ fun () ->
  let header = require_line r "the MatrixMarket banner" in
  if not (String.length header > 14 && String.sub header 0 14 = "%%MatrixMarket")
  then line_err r "missing MatrixMarket header";
  let lower = String.lowercase_ascii header in
  let has s =
    let n = String.length lower and m = String.length s in
    let rec go i = i + m <= n && (String.sub lower i m = s || go (i + 1)) in
    go 0
  in
  if not (has "coordinate") then
    line_err r "only coordinate matrices are supported";
  let symmetric = has "symmetric" in
  let pattern = has "pattern" in
  (* skip comments *)
  let rec size_line () =
    let l = require_line r "the size line" in
    if String.length l > 0 && l.[0] = '%' then size_line () else l
  in
  let rows, cols, nnz =
    match split_ws (size_line ()) with
    | [ rs; cs; ns ] ->
        let rows = parse_int r "row count" rs in
        let cols = parse_int r "column count" cs in
        let nnz = parse_int r "entry count" ns in
        if rows <= 0 || cols <= 0 then
          line_err r "non-positive matrix dimensions %dx%d" rows cols;
        if nnz < 0 then line_err r "negative entry count %d" nnz;
        (rows, cols, nnz)
    | _ -> line_err r "bad size line (want ROWS COLS NNZ)"
  in
  let coo = Coo.create [| rows; cols |] in
  let seen = Hashtbl.create (2 * nnz + 1) in
  for k = 1 to nnz do
    let l =
      match next_line r with
      | Some l -> l
      | None ->
          line_err r "truncated file: %d of %d entries present" (k - 1) nnz
    in
    match split_ws l with
    | is :: js :: rest ->
        let i = parse_coord r ~mode:0 ~dim:rows is in
        let j = parse_coord r ~mode:1 ~dim:cols js in
        let v =
          if pattern then (
            if rest <> [] then
              line_err r "pattern matrix entry carries a value";
            1.0)
          else
            match rest with
            | [ vs ] -> parse_float r "value" vs
            | [] -> line_err r "missing value in %S" l
            | _ -> line_err r "trailing fields in entry %S" l
        in
        if Hashtbl.mem seen (i, j) then
          line_err r "duplicate entry (%d, %d)" (i + 1) (j + 1);
        Hashtbl.add seen (i, j) ();
        Coo.add coo [| i; j |] v;
        if symmetric && i <> j then begin
          (* a symmetric file listing both (i,j) and (j,i) would silently
             double-add the mirrored entry; record the mirror so the
             explicit twin is rejected like any other duplicate *)
          if Hashtbl.mem seen (j, i) then
            line_err r "duplicate entry (%d, %d)" (i + 1) (j + 1);
          Hashtbl.add seen (j, i) ();
          Coo.add coo [| j; i |] v
        end
    | _ -> line_err r "bad entry %S (want I J [VALUE])" l
  done;
  (* trailing garbage: anything after the declared entries except
     comments and blank lines is an error *)
  let rec check_tail () =
    match next_line r with
    | None -> ()
    | Some l when String.trim l = "" || (String.length l > 0 && l.[0] = '%')
      ->
        check_tail ()
    | Some l -> line_err r "trailing garbage after %d entries: %S" nnz l
  in
  check_tail ();
  Tensor.of_coo ~name ~format coo

(** Write a tensor (order 2) as a general real Matrix Market file. *)
let write_matrix_market (t : Tensor.t) path =
  if Tensor.order t <> 2 then err "write_matrix_market: order-%d tensor" (Tensor.order t);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  Printf.fprintf oc "%%%%MatrixMarket matrix coordinate real general\n";
  let dims = Tensor.dims t in
  Printf.fprintf oc "%d %d %d\n" dims.(0) dims.(1) (Tensor.nnz t);
  Tensor.iter_nonzeros
    (fun c v -> Printf.fprintf oc "%d %d %.17g\n" (c.(0) + 1) (c.(1) + 1) v)
    t

(* ------------------------------------------------------------------ *)
(* FROSTT .tns                                                         *)
(* ------------------------------------------------------------------ *)

(** Read a FROSTT coordinate tensor ([i1 ... iN value] per line, 1-based).
    Dimensions are inferred as the per-mode maxima unless [dims] is given.

    @raise Io_error on malformed or ragged input, with the offending line
    number. *)
let read_tns ?(name = "tns") ?dims ~format path =
  let r = reader path in
  Fun.protect ~finally:(fun () -> close_in_noerr r.ic) @@ fun () ->
  let declared = Option.map Array.of_list dims in
  let entries = ref [] in
  (* duplicate keys are coordinates packed into one int ([shift] bits per
     mode); the rare coordinate too large to pack falls back to a string
     key — both schemes are injective, so no false duplicates *)
  let seen_packed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen_keyed : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let order = ref 0 in
  let shift = ref 0 in
  let maxima = ref [||] in
  let rec loop () =
    match next_line r with
    | None -> ()
    | Some l ->
        let l = String.trim l in
        if l <> "" && l.[0] <> '#' then begin
          let fields = Array.of_list (split_ws l) in
          let n = Array.length fields - 1 in
          if n < 1 then line_err r "bad line %S (want I1 .. IN VALUE)" l;
          if !order = 0 then begin
            (match declared with
            | Some d when Array.length d <> n ->
                line_err r "entry has %d modes but dims declares %d" n
                  (Array.length d)
            | _ -> ());
            order := n;
            shift := 62 / n;
            maxima := Array.make n 0
          end
          else if !order <> n then
            line_err r "ragged entry %S: %d modes, expected %d" l n !order;
          let coords =
            Array.init n (fun mode ->
                let dim =
                  match declared with Some d -> d.(mode) | None -> 0
                in
                let c = parse_coord r ~mode ~dim fields.(mode) in
                !maxima.(mode) <- max !maxima.(mode) (c + 1);
                c)
          in
          let v = parse_float r "value" fields.(n) in
          let duplicate =
            if Array.for_all (fun c -> c < 1 lsl !shift) coords then begin
              let key =
                Array.fold_left (fun k c -> (k lsl !shift) lor c) 0 coords
              in
              Hashtbl.mem seen_packed key
              || (Hashtbl.add seen_packed key (); false)
            end
            else begin
              let key =
                String.concat ","
                  (Array.to_list (Array.map string_of_int coords))
              in
              Hashtbl.mem seen_keyed key
              || (Hashtbl.add seen_keyed key (); false)
            end
          in
          if duplicate then
            line_err r "duplicate entry %s"
              (String.concat " "
                 (Array.to_list
                    (Array.map (fun c -> string_of_int (c + 1)) coords)));
          entries := (coords, v) :: !entries
        end;
        loop ()
  in
  loop ();
  if !order = 0 then err "%s: no entries" path;
  let dims =
    match declared with Some d -> d | None -> !maxima
  in
  let coo = Coo.create dims in
  List.iter (fun (c, v) -> Coo.add coo c v) !entries;
  Tensor.of_coo ~name ~format coo

(** Write any tensor in FROSTT coordinate form. *)
let write_tns (t : Tensor.t) path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  Tensor.iter_nonzeros
    (fun c v ->
      Array.iter (fun x -> Printf.fprintf oc "%d " (x + 1)) c;
      Printf.fprintf oc "%.17g\n" v)
    t
