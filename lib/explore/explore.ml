(** The design-space exploration driver (autotuner).

    Pipeline: {!Space} generates legal candidates seeded by the
    {!Stardust_core.Autoschedule} heuristic → {!Prune} rejects points that
    cannot be placed → {!Eval} costs the survivors with
    {!Stardust_capstan.Sim.estimate} on a {!Pool} of OCaml domains →
    {!Pareto} keeps the (cycles, chip-resources) frontier.

    Six strategies share that pipeline:

    - {b exhaustive} grid: every candidate, evaluated in parallel;
    - {b greedy} coordinate descent: start at the heuristic seed, sweep
      one axis at a time (evaluating each axis's alternatives as one
      parallel batch), move to the axis's best point, repeat to fixpoint;
    - {b random} search: a seeded {!Stardust_workloads.Prng} draw of N
      candidates (plus the heuristic seed) — reproducible bit-for-bit,
      never [Random.self_init];
    - {b halving} (racing): the stats-only admissible bound
      {!Eval.lower_bound} ranks every candidate within its resource
      group ({!Point.resource_signature}); rungs promote each group's
      best-ranked survivor to a full evaluation until the group's
      champion provably beats everything still queued;
    - {b anneal}: population annealing over the axes — seeded mutation
      and crossover moves from the heuristic point, batch-evaluated per
      round with Metropolis acceptance on a geometric cooling ladder;
    - {b surrogate}: a hand-rolled ridge least-squares fit on the
      features of visited points predicts log-cycles for the unvisited
      pool and steers which candidate each resource group promotes next,
      refit after every round.

    The last three honor a {b budget} — a hard cap on distinct points
    promoted to full evaluation — and spend stats-only lower bounds
    (three orders of magnitude cheaper) to decide where the budget goes.

    Every strategy is deterministic and independent of the worker count:
    candidates are enumerated in a fixed order, batches preserve input
    order ({!Pool.map}), budget accounting happens before batches fan
    out, and memoisation only short-circuits recomputation of a pure
    function. *)

module Prng = Stardust_workloads.Prng
module Sim = Stardust_capstan.Sim
module Resources = Stardust_capstan.Resources

type strategy =
  | Exhaustive
  | Greedy
  | Random of { samples : int; seed : int }
  | Halving
  | Anneal of { seed : int }
  | Surrogate

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Greedy -> "greedy"
  | Random _ -> "random"
  | Halving -> "halving"
  | Anneal _ -> "anneal"
  | Surrogate -> "surrogate"

type result = {
  problem : Eval.problem;
  strategy : strategy;
  workers : int;
  candidates : int;  (** size of the enumerated space *)
  evaluated : Eval.eval list;  (** deterministic order, duplicates removed *)
  pruned : int;  (** evaluated points rejected before simulation *)
  bound_evals : int;  (** stats-only lower bounds computed *)
  budget : int option;  (** effective cap on full evaluations, if any *)
  seed_eval : Eval.eval;  (** the heuristic point's evaluation *)
  frontier : Eval.eval list;  (** feasible non-dominated, by cycles asc *)
  best : Eval.eval option;  (** frontier head: minimum cycles *)
}

(** Did this evaluation reach {!Sim.estimate}?  True for feasible points
    and for capacity guards raised {e inside} the estimator; false for
    compile/schedule/prune rejections, which never cost an estimator
    walk.  [estimate_count] is the budget-efficiency instrument: the
    acceptance criterion compares a budgeted strategy's count against
    exhaustive's. *)
let reached_estimate (e : Eval.eval) =
  match e.Eval.outcome with
  | Eval.Feasible _ -> true
  | Eval.Infeasible r ->
      String.length r >= 9 && String.sub r 0 9 = "simulate("

let estimate_count r =
  List.length (List.filter reached_estimate r.evaluated)

let objectives (e : Eval.eval) =
  match (Eval.cycles e, Eval.resource_frac e) with
  | Some c, Some r -> Some (c, r)
  | _ -> None

(* Deduplicate while preserving first-occurrence order. *)
let dedup evals =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (e : Eval.eval) ->
      let fp = Point.fingerprint e.Eval.point in
      if Hashtbl.mem seen fp then false
      else begin
        Hashtbl.add seen fp ();
        true
      end)
    evals

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

(* Greedy coordinate descent over the axes record.  Each sweep re-places
   one coordinate at a time; the sweep's batches are evaluated in
   parallel and the pivot moves to the best feasible alternative (ties:
   earlier axis value).  Stops when a full sweep leaves the pivot
   unchanged, or after [max_sweeps] as a guard. *)
let greedy ~eval_batch ~(axes : Space.axes) (start : Point.t) =
  let max_sweeps = 8 in
  let trail = ref [] in
  let better (cur_pt, cur_cy) (e : Eval.eval) =
    match Eval.cycles e with
    | Some c when c < cur_cy -> (e.Eval.point, c)
    | _ -> (cur_pt, cur_cy)
  in
  (* Variant builders take the current pivot so each axis's batch keeps
     the coordinates already settled earlier in the sweep. *)
  let axis_variants : (Point.t -> Point.t list) list =
    [
      (fun pt -> List.map (fun o -> { pt with Point.order = o }) axes.Space.orders);
      (fun pt ->
        List.map (fun p -> { pt with Point.outer_par = p }) axes.Space.outer_pars);
      (fun pt ->
        List.map (fun p -> { pt with Point.inner_par = p }) axes.Space.inner_pars);
      (fun pt -> List.map (fun s -> { pt with Point.split = s }) axes.Space.splits);
      (fun pt -> List.map (fun g -> { pt with Point.gather = g }) axes.Space.gathers);
    ]
  in
  let sweep_axis (pt, cy) mk_variants =
    let batch =
      List.filter
        (fun (v : Point.t) -> Point.fingerprint v <> Point.fingerprint pt)
        (mk_variants pt)
    in
    if batch = [] then (pt, cy)
    else begin
      let evals = eval_batch batch in
      trail := List.rev_append evals !trail;
      List.fold_left better (pt, cy) evals
    end
  in
  let start_eval = List.hd (eval_batch [ start ]) in
  trail := [ start_eval ];
  let start_cycles =
    match Eval.cycles start_eval with Some c -> c | None -> infinity
  in
  let rec sweeps n (pt, cy) =
    if n >= max_sweeps then (pt, cy)
    else
      let next = List.fold_left sweep_axis (pt, cy) axis_variants in
      if Point.fingerprint (fst next) = Point.fingerprint pt then next
      else sweeps (n + 1) next
  in
  ignore (sweeps 0 (start, start_cycles));
  List.rev !trail

(* ------------------------------------------------------------------ *)
(* Budgeted strategies                                                 *)
(* ------------------------------------------------------------------ *)

(* Candidates bucketed by resource signature, in first-occurrence
   (enumeration) order.  Each group's members are ranked by (lower bound
   asc, inner_par desc, enumeration index asc): the bound's slack grows
   as parallelism shrinks, so among bound ties — typically points pinned
   to the same memory-roofline floor — the widest vector is promoted
   first.  Members carry their enumeration index so budgeted results can
   be re-sorted into enumeration order, which keeps Pareto tie-breaking
   identical to exhaustive search. *)
let resource_groups ~bound all =
  let tbl = Hashtbl.create 32 and order = ref [] in
  List.iteri
    (fun i (pt : Point.t) ->
      let k = Point.resource_signature pt in
      let c = (i, pt, bound pt) in
      match Hashtbl.find_opt tbl k with
      | None ->
          order := k :: !order;
          Hashtbl.replace tbl k [ c ]
      | Some l -> Hashtbl.replace tbl k (c :: l))
    all;
  List.rev_map
    (fun k ->
      List.sort
        (fun (i1, (p1 : Point.t), b1) (i2, (p2 : Point.t), b2) ->
          compare
            (b1, -p1.Point.inner_par, i1)
            (b2, -p2.Point.inner_par, i2))
        (List.rev (Hashtbl.find tbl k)))
    !order
  |> List.rev

(* Return the collected (index, eval) pairs as an enumeration-ordered
   eval list. *)
let by_enum_order collected =
  List.map snd (List.sort (fun (i, _) (j, _) -> compare i j) collected)

(* Successive-halving/racing.  One full evaluation per resource group
   ideally suffices: within a group every point occupies the same chip
   fraction, so only the group's minimum-cycles member can sit on the
   frontier.  Each rung promotes the best-ranked unevaluated candidate
   of every live group as one parallel batch; a group retires once its
   champion's measured cycles are below every queued candidate's lower
   bound (the candidate provably cannot win — admissibility makes the
   discard safe), and the budget caps how many rungs of slack the race
   gets for walking past infeasible heads or loose bounds. *)
let halving ~eval_batch ~remaining ~bound all =
  let groups =
    List.map (fun q -> (ref q, ref None)) (resource_groups ~bound all)
  in
  let collected = ref [] in
  let fp_index batch evals =
    (* match a rung's returned evals (budget may have dropped some) back
       to their enumeration indices *)
    let by_fp = Hashtbl.create 16 in
    List.iter
      (fun (i, (pt : Point.t), _) ->
        Hashtbl.replace by_fp (Point.fingerprint pt) i)
      batch;
    List.filter_map
      (fun (e : Eval.eval) ->
        Option.map
          (fun i -> (i, e))
          (Hashtbl.find_opt by_fp (Point.fingerprint e.Eval.point)))
      evals
  in
  let champion_beats champ (i, _, b) =
    match champ with
    | None -> false
    | Some (ci, ce) -> (
        match Eval.cycles ce with
        | None -> false
        | Some c -> b > c || (b = c && ci < i))
  in
  let rec rung () =
    if remaining () <= 0 then ()
    else begin
      (* pop one runnable candidate per live group *)
      let batch =
        List.filter_map
          (fun (queue, champ) ->
            (* drop provably-beaten candidates first *)
            let rec next () =
              match !queue with
              | [] -> None
              | c :: rest ->
                  if champion_beats !champ c then begin
                    queue := rest;
                    next ()
                  end
                  else begin
                    queue := rest;
                    Some (c, champ)
                  end
            in
            next ())
          groups
      in
      if batch = [] then ()
      else begin
        let cands = List.map fst batch in
        let evals = eval_batch (List.map (fun (_, pt, _) -> pt) cands) in
        let indexed = fp_index cands evals in
        collected := List.rev_append indexed !collected;
        (* update champions: minimum cycles, earliest index on ties *)
        List.iter
          (fun ((i, pt, _), champ) ->
            match
              List.find_opt
                (fun (_, (e : Eval.eval)) ->
                  Point.fingerprint e.Eval.point = Point.fingerprint pt)
                indexed
            with
            | None -> ()
            | Some (_, e) -> (
                match (Eval.cycles e, !champ) with
                | None, _ -> ()
                | Some _, None -> champ := Some (i, e)
                | Some c, Some (ci, ce) ->
                    let cc = Option.get (Eval.cycles ce) in
                    if c < cc || (c = cc && i < ci) then champ := Some (i, e)))
          batch;
        rung ()
      end
    end
  in
  rung ();
  by_enum_order !collected

(* Ridge least-squares fit (normal equations, Gaussian elimination with
   partial pivoting).  Hand-rolled: no external dependency.  Returns
   [None] when there are fewer rows than features or the system is
   (numerically) singular despite the ridge term. *)
let fit_least_squares rows =
  match rows with
  | [] -> None
  | (f0, _) :: _ ->
      let d = Array.length f0 in
      if List.length rows < d + 1 then None
      else begin
        let a = Array.make_matrix d d 0.0 and b = Array.make d 0.0 in
        List.iter
          (fun (f, y) ->
            for i = 0 to d - 1 do
              b.(i) <- b.(i) +. (f.(i) *. y);
              for j = 0 to d - 1 do
                a.(i).(j) <- a.(i).(j) +. (f.(i) *. f.(j))
              done
            done)
          rows;
        for i = 0 to d - 1 do
          a.(i).(i) <- a.(i).(i) +. 1e-6
        done;
        let singular = ref false in
        for col = 0 to d - 1 do
          (* partial pivot *)
          let piv = ref col in
          for r = col + 1 to d - 1 do
            if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
          done;
          if !piv <> col then begin
            let t = a.(col) in
            a.(col) <- a.(!piv);
            a.(!piv) <- t;
            let t = b.(col) in
            b.(col) <- b.(!piv);
            b.(!piv) <- t
          end;
          if Float.abs a.(col).(col) < 1e-12 then singular := true
          else
            for r = col + 1 to d - 1 do
              let m = a.(r).(col) /. a.(col).(col) in
              for c = col to d - 1 do
                a.(r).(c) <- a.(r).(c) -. (m *. a.(col).(c))
              done;
              b.(r) <- b.(r) -. (m *. b.(col))
            done
        done;
        if !singular then None
        else begin
          let theta = Array.make d 0.0 in
          for i = d - 1 downto 0 do
            let s = ref b.(i) in
            for j = i + 1 to d - 1 do
              s := !s -. (a.(i).(j) *. theta.(j))
            done;
            theta.(i) <- !s /. a.(i).(i)
          done;
          Some theta
        end
      end

let dot theta f =
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. f.(i))) theta;
  !s

(* Linear-surrogate search.  The model predicts the *residual* of the
   admissible lower bound — [log2 cycles - log2 bound] — rather than raw
   log-cycles: the bound already carries the structural shape of the cost
   (parallelism scaling, occupancy, the DRAM floor), so the regression
   only has to learn the simulator's correction on top of it, which keeps
   the fit well conditioned on the handful of rows a tight budget allows.
   A deterministic strided bootstrap (the seed plus every [stride]-th
   candidate) gives the first fit its rows; each round then refits on the
   visited feasible points and every resource group promotes its
   unvisited candidate with the lowest predicted cost
   [log2 bound + residual].  Until enough rows exist — or if the system
   is singular — the bound alone ranks (residual 0), so the strategy
   degrades to bound-guided racing rather than random choice.  Group
   members arrive sorted (bound asc, inner-par desc, index asc) and score
   ties keep the earlier member, matching the racing strategy's
   preference. *)
let surrogate ~eval_batch ~remaining ~bound ~feats all =
  let n = List.length all in
  let groups = resource_groups ~bound all in
  let log2_bound b = Float.log (Float.max b 1.0) /. Float.log 2.0 in
  let visited = Hashtbl.create 64 in
  let rows = ref [] and collected = ref [] in
  let submit cands =
    (* cands : (idx, point, bound) list; returns how many were new *)
    let fresh =
      List.filter
        (fun (_, pt, _) -> not (Hashtbl.mem visited (Point.fingerprint pt)))
        cands
    in
    if fresh = [] then 0
    else begin
      let evals = eval_batch (List.map (fun (_, pt, _) -> pt) fresh) in
      let by_fp = Hashtbl.create 16 in
      List.iter
        (fun (e : Eval.eval) ->
          Hashtbl.replace by_fp (Point.fingerprint e.Eval.point) e)
        evals;
      List.fold_left
        (fun count (i, pt, b) ->
          match Hashtbl.find_opt by_fp (Point.fingerprint pt) with
          | None -> count (* dropped by the budget *)
          | Some e ->
              Hashtbl.replace visited (Point.fingerprint pt) ();
              collected := (i, e) :: !collected;
              (match Eval.cycles e with
              | Some c ->
                  rows :=
                    ( feats pt,
                      (Float.log c /. Float.log 2.0) -. log2_bound b )
                    :: !rows
              | None -> ());
              count + 1)
        0 fresh
    end
  in
  (* bootstrap: seed (index 0) + a strided sample across the enumeration;
     candidates carry their real bound so the residual rows are exact *)
  let bound_of = Hashtbl.create n in
  List.iter
    (List.iter (fun (_, pt, b) ->
         Hashtbl.replace bound_of (Point.fingerprint pt) b))
    groups;
  let indexed =
    Array.of_list
      (List.mapi
         (fun i pt -> (i, pt, Hashtbl.find bound_of (Point.fingerprint pt)))
         all)
  in
  let boot_k = min 8 (max 4 (n / 32)) in
  let stride = max 1 (n / max 1 boot_k) in
  let boot =
    List.init boot_k (fun j ->
        indexed.(min (n - 1) (j * stride)))
  in
  ignore (submit boot);
  let rec rounds () =
    if remaining () <= 0 || Hashtbl.length visited >= n then ()
    else begin
      let theta = fit_least_squares !rows in
      let score (_, pt, b) =
        log2_bound b
        +. (match theta with Some th -> dot th (feats pt) | None -> 0.0)
      in
      let picks =
        List.filter_map
          (fun members ->
            let unvisited =
              List.filter
                (fun (_, pt, _) ->
                  not (Hashtbl.mem visited (Point.fingerprint pt)))
                members
            in
            match unvisited with
            | [] -> None
            | first :: rest ->
                Some
                  (List.fold_left
                     (fun best c ->
                       if score c < score best then c else best)
                     first rest))
          groups
      in
      if picks = [] || submit picks = 0 then ()
      else rounds ()
    end
  in
  rounds ();
  by_enum_order !collected

(* Population annealing.  Four walkers start at the heuristic seed and
   its first mutations; each round every walker proposes one move — a
   single-axis mutation, or with probability 1/4 a crossover with the
   population's best point — the proposals are evaluated as one parallel
   batch, and Metropolis acceptance (on relative cycle regression, with
   geometric cooling) decides each walker's next position in a fixed
   sequential order.  All randomness comes from one [Prng] stream drawn
   on the driver thread, so the trajectory is bit-identical at any
   worker count. *)
let anneal ~eval_batch ~remaining ~(axes : Space.axes) ~seed start =
  let rng = Prng.create seed in
  let pick l =
    match l with [] -> None | _ -> Some (List.nth l (Prng.int rng (List.length l)))
  in
  let mutate (pt : Point.t) =
    match Prng.int rng 5 with
    | 0 -> (
        match pick axes.Space.orders with
        | Some o -> { pt with Point.order = o }
        | None -> pt)
    | 1 -> (
        match pick axes.Space.outer_pars with
        | Some p -> { pt with Point.outer_par = p }
        | None -> pt)
    | 2 -> (
        match pick axes.Space.inner_pars with
        | Some p -> { pt with Point.inner_par = p }
        | None -> pt)
    | 3 -> (
        match pick axes.Space.splits with
        | Some s -> { pt with Point.split = s }
        | None -> pt)
    | _ -> (
        match pick axes.Space.gathers with
        | Some g -> { pt with Point.gather = g }
        | None -> pt)
  in
  let crossover (a : Point.t) (b : Point.t) =
    {
      Point.order = (if Prng.bool rng 0.5 then a.Point.order else b.Point.order);
      outer_par = (if Prng.bool rng 0.5 then a.Point.outer_par else b.Point.outer_par);
      inner_par = (if Prng.bool rng 0.5 then a.Point.inner_par else b.Point.inner_par);
      split = (if Prng.bool rng 0.5 then a.Point.split else b.Point.split);
      gather = (if Prng.bool rng 0.5 then a.Point.gather else b.Point.gather);
    }
  in
  let trail = ref [] in
  let eval_all pts =
    let evals = eval_batch pts in
    trail := List.rev_append evals !trail;
    let by_fp = Hashtbl.create 16 in
    List.iter
      (fun (e : Eval.eval) ->
        Hashtbl.replace by_fp (Point.fingerprint e.Eval.point) e)
      evals;
    fun pt -> Hashtbl.find_opt by_fp (Point.fingerprint pt)
  in
  (* initial population: the heuristic seed and three mutations of it *)
  let init = start :: List.init 3 (fun _ -> mutate start) in
  let lookup = eval_all init in
  let cycles_of pt =
    match lookup pt with Some e -> Eval.cycles e | None -> None
  in
  let population =
    ref (List.map (fun pt -> (pt, cycles_of pt)) init)
  in
  let best = ref None in
  let consider (pt, c) =
    match (c, !best) with
    | Some c, None -> best := Some (pt, c)
    | Some c, Some (_, bc) when c < bc -> best := Some (pt, c)
    | _ -> ()
  in
  List.iter consider !population;
  let temperature = ref 0.25 in
  let stale = ref 0 in
  let rec round () =
    if remaining () <= 0 || !stale >= 8 then ()
    else begin
      let proposals =
        List.map
          (fun (pt, _) ->
            match !best with
            | Some (bpt, _) when Prng.bool rng 0.25 -> crossover pt bpt
            | _ -> mutate pt)
          !population
      in
      (* progress = budget actually consumed: proposals that only revisit
         memoised points can recur forever once the walkers' reachable
         neighborhood is exhausted, so staleness must watch spending *)
      let before = remaining () in
      let lookup = eval_all proposals in
      stale := (if remaining () < before then 0 else !stale + 1);
      population :=
        List.map2
          (fun (pt, c) prop ->
            let pc =
              match lookup prop with Some e -> Eval.cycles e | None -> None
            in
            consider (prop, pc);
            match (pc, c) with
            | Some pc', None -> (prop, Some pc')
            | Some pc', Some c' ->
                let accept =
                  pc' <= c'
                  || Prng.float rng
                     < Float.exp (-.(pc' -. c') /. (!temperature *. c'))
                in
                if accept then (prop, Some pc') else (pt, c)
            | None, _ -> (pt, c))
          !population proposals;
      temperature := !temperature *. 0.85;
      round ()
    end
  in
  round ();
  List.rev !trail

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Search the design space of [problem].  [axes] defaults to
    {!Space.default_axes} for the problem's expression and formats;
    [workers] to {!Pool.default_workers}; [cache] to a fresh memo table
    (pass one in to share memoised evaluations across related runs).
    With [?pool] the evaluation batches run on a persistent
    {!Pool.create}d handle — the compile service reuses one pool across
    every request instead of re-spawning domains per search.

    [budget] caps the number of {e distinct points} promoted to a full
    evaluation (the heuristic seed is always submitted first and counts).
    Points beyond the cap are dropped deterministically in submission
    order, so a budgeted run is bit-identical at any worker count.  The
    budgeted strategies pick their own default when none is given —
    halving two rungs per resource group, surrogate three rounds plus
    its bootstrap, anneal 64 — while exhaustive/greedy/random stay
    uncapped unless a budget is passed explicitly. *)
let run ?workers ?pool ?(strategy = Exhaustive) ?budget ?axes ?cache
    (p : Eval.problem) =
  let workers =
    match (pool, workers) with
    | Some pl, _ -> Pool.size pl
    | None, Some w -> max 1 w
    | None, None -> Pool.default_workers ()
  in
  let axes =
    match axes with
    | Some ax -> ax
    | None ->
        Space.default_axes ~arch:p.Eval.config.Sim.arch ~formats:p.Eval.formats
          p.Eval.expr
  in
  let cache = match cache with Some c -> c | None -> Pool.Cache.create () in
  (* One prepare per search: problem key fingerprinted once, input
     statistics warmed into the shared cache before workers fan out. *)
  let pre = Eval.prepare p in
  let all = Space.points ~formats:p.Eval.formats p.Eval.expr axes in
  let seed_pt = List.hd all in
  let group_count =
    List.length
      (List.sort_uniq compare (List.map Point.resource_signature all))
  in
  let budget =
    match (budget, strategy) with
    | Some b, _ -> Some (max 1 b)
    | None, Halving -> Some ((2 * group_count) + 4)
    | None, Surrogate -> Some ((3 * group_count) + 8)
    | None, Anneal _ -> Some 64
    | None, (Exhaustive | Greedy | Random _) -> None
  in
  (* The budget gate: new fingerprints are admitted until the cap, then
     dropped; already-submitted points always pass (they are memoised
     and free).  Accounting happens on the driver thread before the
     batch fans out, so it cannot depend on worker scheduling. *)
  let submitted = Hashtbl.create 256 in
  let spent = ref 0 in
  let remaining () =
    match budget with None -> max_int | Some b -> max 0 (b - !spent)
  in
  let eval_batch pts =
    let pts =
      List.filter
        (fun pt ->
          let fp = Point.fingerprint pt in
          if Hashtbl.mem submitted fp then true
          else if remaining () > 0 then begin
            Hashtbl.add submitted fp ();
            incr spent;
            true
          end
          else false)
        pts
    in
    Array.to_list
      (Pool.map ~workers ?pool (Eval.evaluate ~cache pre) (Array.of_list pts))
  in
  (* The heuristic seed is always the first submission: every strategy
     starts from a known-good point, and it always fits the budget. *)
  let seed_eval = List.hd (eval_batch [ seed_pt ]) in
  let bound_count = ref 0 in
  let bound pt =
    incr bound_count;
    Eval.lower_bound pre pt
  in
  let evaluated =
    match strategy with
    | Exhaustive -> eval_batch all
    | Greedy -> dedup (greedy ~eval_batch ~axes seed_pt)
    | Random { samples; seed } ->
        let arr = Array.of_list all in
        let rng = Prng.create seed in
        let picks =
          List.init (max 0 samples) (fun _ ->
              arr.(Prng.int rng (Array.length arr)))
        in
        dedup (eval_batch (seed_pt :: picks))
    | Halving -> dedup (seed_eval :: halving ~eval_batch ~remaining ~bound all)
    | Surrogate ->
        dedup
          (seed_eval
          :: surrogate ~eval_batch ~remaining ~bound
               ~feats:(Eval.features pre) all)
    | Anneal { seed } ->
        dedup (anneal ~eval_batch ~remaining ~axes ~seed seed_pt)
  in
  let pruned =
    List.length
      (List.filter
         (fun (e : Eval.eval) ->
           match e.Eval.outcome with Eval.Infeasible _ -> true | _ -> false)
         evaluated)
  in
  let frontier = Pareto.frontier objectives evaluated in
  {
    problem = p;
    strategy;
    workers;
    candidates = List.length all;
    evaluated;
    pruned;
    bound_evals = !bound_count;
    budget;
    seed_eval;
    frontier;
    best = (match frontier with [] -> None | e :: _ -> Some e);
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_eval ppf (e : Eval.eval) =
  match e.Eval.outcome with
  | Eval.Feasible { report; usage } ->
      Fmt.pf ppf "%-44s %12.0f cycles  %3.0f%% chip (%s-bound)"
        (Point.to_string e.Eval.point) report.Sim.cycles
        (100.
        *. List.fold_left Float.max usage.Resources.pcu_frac
             [ usage.Resources.pmu_frac; usage.Resources.mc_frac;
               usage.Resources.shuffle_frac ])
        usage.Resources.limiting
  | Eval.Infeasible reason ->
      Fmt.pf ppf "%-44s pruned: %s" (Point.to_string e.Eval.point) reason

(** Human-readable report: search summary, Pareto frontier, best point,
    and the improvement over the heuristic seed. *)
let pp_result ppf (r : result) =
  Fmt.pf ppf "%s: %s search, %d candidates, %d evaluated (%d pruned), %d workers@."
    r.problem.Eval.name (strategy_name r.strategy) r.candidates
    (List.length r.evaluated) r.pruned r.workers;
  (match r.budget with
  | None -> ()
  | Some b ->
      Fmt.pf ppf
        "budget: %d full evaluations (%d estimator walks spent, %d \
         stats-only bounds)@."
        b (estimate_count r) r.bound_evals);
  Fmt.pf ppf "heuristic seed: %a@." pp_eval r.seed_eval;
  Fmt.pf ppf "Pareto frontier (cycles vs chip fraction):@.";
  List.iter (fun e -> Fmt.pf ppf "  %a@." pp_eval e) r.frontier;
  match (r.best, Eval.cycles r.seed_eval) with
  | Some b, Some seed_cycles ->
      let bc = Option.get (Eval.cycles b) in
      Fmt.pf ppf "best: %a@." pp_eval b;
      if bc < seed_cycles then
        Fmt.pf ppf "%.2fx faster than the heuristic point@."
          (seed_cycles /. bc)
      else Fmt.pf ppf "heuristic point is already optimal in this space@."
  | Some b, None -> Fmt.pf ppf "best: %a@." pp_eval b
  | None, _ -> Fmt.pf ppf "no feasible point in the search space@."

(* Minimal JSON rendering (no external dependency). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_point (pt : Point.t) =
  Fmt.str
    "{\"order\": %s, \"outer_par\": %d, \"inner_par\": %d, \"split\": %s, \
     \"gather\": \"%s\"}"
    (match pt.Point.order with
    | None -> "null"
    | Some o -> Fmt.str "\"%s\"" (json_escape (String.concat "," o)))
    pt.Point.outer_par pt.Point.inner_par
    (match pt.Point.split with
    | None -> "null"
    | Some (v, c) -> Fmt.str "{\"var\": \"%s\", \"tile\": %d}" (json_escape v) c)
    (match pt.Point.gather with
    | Point.Auto -> "auto"
    | Point.On_chip -> "on_chip"
    | Point.Off_chip -> "off_chip")

let json_of_eval (e : Eval.eval) =
  match e.Eval.outcome with
  | Eval.Feasible { report; usage } ->
      Fmt.str
        "{\"point\": %s, \"cycles\": %.0f, \"seconds\": %.6e, \
         \"dram_bytes\": %.0f, \"pcu\": %d, \"pmu\": %d, \"mc\": %d, \
         \"shuffle\": %d, \"limiting\": \"%s\"}"
        (json_of_point e.Eval.point) report.Sim.cycles report.Sim.seconds
        report.Sim.streamed_bytes usage.Resources.pcu usage.Resources.pmu
        usage.Resources.mc usage.Resources.shuffle
        (json_escape usage.Resources.limiting)
  | Eval.Infeasible reason ->
      Fmt.str "{\"point\": %s, \"pruned\": \"%s\"}" (json_of_point e.Eval.point)
        (json_escape reason)

(** Machine-readable report for trajectory tracking and tooling.
    [full_evals] counts distinct points promoted to full evaluation,
    [estimates] the subset that actually reached an estimator walk,
    [bound_evals] the stats-only lower bounds spent steering, and
    [budget] the effective cap ([null] = uncapped) — together they make
    search efficiency measurable from the CLI and the daemon alike. *)
let to_json (r : result) =
  Fmt.str
    "{\"kernel\": \"%s\", \"strategy\": \"%s\", \"workers\": %d, \
     \"candidates\": %d, \"evaluated\": %d, \"full_evals\": %d, \
     \"estimates\": %d, \"bound_evals\": %d, \"budget\": %s, \
     \"pruned\": %d, \"heuristic\": %s, \"best\": %s, \"frontier\": [%s]}"
    (json_escape r.problem.Eval.name)
    (strategy_name r.strategy) r.workers r.candidates
    (List.length r.evaluated) (List.length r.evaluated) (estimate_count r)
    r.bound_evals
    (match r.budget with None -> "null" | Some b -> string_of_int b)
    r.pruned
    (json_of_eval r.seed_eval)
    (match r.best with None -> "null" | Some b -> json_of_eval b)
    (String.concat ", " (List.map json_of_eval r.frontier))
