(** The design-space exploration driver (autotuner).

    Pipeline: {!Space} generates legal candidates seeded by the
    {!Stardust_core.Autoschedule} heuristic → {!Prune} rejects points that
    cannot be placed → {!Eval} costs the survivors with
    {!Stardust_capstan.Sim.estimate} on a {!Pool} of OCaml domains →
    {!Pareto} keeps the (cycles, chip-resources) frontier.

    Three strategies share that pipeline:

    - {b exhaustive} grid: every candidate, evaluated in parallel;
    - {b greedy} coordinate descent: start at the heuristic seed, sweep
      one axis at a time (evaluating each axis's alternatives as one
      parallel batch), move to the axis's best point, repeat to fixpoint;
    - {b random} search: a seeded {!Stardust_workloads.Prng} draw of N
      candidates (plus the heuristic seed) — reproducible bit-for-bit,
      never [Random.self_init].

    Every strategy is deterministic and independent of the worker count:
    candidates are enumerated in a fixed order, batches preserve input
    order ({!Pool.map}), and memoisation only short-circuits recomputation
    of a pure function. *)

module Prng = Stardust_workloads.Prng
module Sim = Stardust_capstan.Sim
module Resources = Stardust_capstan.Resources

type strategy =
  | Exhaustive
  | Greedy
  | Random of { samples : int; seed : int }

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Greedy -> "greedy"
  | Random _ -> "random"

type result = {
  problem : Eval.problem;
  strategy : strategy;
  workers : int;
  candidates : int;  (** size of the enumerated space *)
  evaluated : Eval.eval list;  (** deterministic order, duplicates removed *)
  pruned : int;  (** evaluated points rejected before simulation *)
  seed_eval : Eval.eval;  (** the heuristic point's evaluation *)
  frontier : Eval.eval list;  (** feasible non-dominated, by cycles asc *)
  best : Eval.eval option;  (** frontier head: minimum cycles *)
}

let objectives (e : Eval.eval) =
  match (Eval.cycles e, Eval.resource_frac e) with
  | Some c, Some r -> Some (c, r)
  | _ -> None

(* Deduplicate while preserving first-occurrence order. *)
let dedup evals =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (e : Eval.eval) ->
      let fp = Point.fingerprint e.Eval.point in
      if Hashtbl.mem seen fp then false
      else begin
        Hashtbl.add seen fp ();
        true
      end)
    evals

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

(* Greedy coordinate descent over the axes record.  Each sweep re-places
   one coordinate at a time; the sweep's batches are evaluated in
   parallel and the pivot moves to the best feasible alternative (ties:
   earlier axis value).  Stops when a full sweep leaves the pivot
   unchanged, or after [max_sweeps] as a guard. *)
let greedy ~eval_batch ~(axes : Space.axes) (start : Point.t) =
  let max_sweeps = 8 in
  let trail = ref [] in
  let better (cur_pt, cur_cy) (e : Eval.eval) =
    match Eval.cycles e with
    | Some c when c < cur_cy -> (e.Eval.point, c)
    | _ -> (cur_pt, cur_cy)
  in
  (* Variant builders take the current pivot so each axis's batch keeps
     the coordinates already settled earlier in the sweep. *)
  let axis_variants : (Point.t -> Point.t list) list =
    [
      (fun pt -> List.map (fun o -> { pt with Point.order = o }) axes.Space.orders);
      (fun pt ->
        List.map (fun p -> { pt with Point.outer_par = p }) axes.Space.outer_pars);
      (fun pt ->
        List.map (fun p -> { pt with Point.inner_par = p }) axes.Space.inner_pars);
      (fun pt -> List.map (fun s -> { pt with Point.split = s }) axes.Space.splits);
      (fun pt -> List.map (fun g -> { pt with Point.gather = g }) axes.Space.gathers);
    ]
  in
  let sweep_axis (pt, cy) mk_variants =
    let batch =
      List.filter
        (fun (v : Point.t) -> Point.fingerprint v <> Point.fingerprint pt)
        (mk_variants pt)
    in
    if batch = [] then (pt, cy)
    else begin
      let evals = eval_batch batch in
      trail := List.rev_append evals !trail;
      List.fold_left better (pt, cy) evals
    end
  in
  let start_eval = List.hd (eval_batch [ start ]) in
  trail := [ start_eval ];
  let start_cycles =
    match Eval.cycles start_eval with Some c -> c | None -> infinity
  in
  let rec sweeps n (pt, cy) =
    if n >= max_sweeps then (pt, cy)
    else
      let next = List.fold_left sweep_axis (pt, cy) axis_variants in
      if Point.fingerprint (fst next) = Point.fingerprint pt then next
      else sweeps (n + 1) next
  in
  ignore (sweeps 0 (start, start_cycles));
  List.rev !trail

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Search the design space of [problem].  [axes] defaults to
    {!Space.default_axes} for the problem's expression and formats;
    [workers] to {!Pool.default_workers}; [cache] to a fresh memo table
    (pass one in to share memoised evaluations across related runs).
    With [?pool] the evaluation batches run on a persistent
    {!Pool.create}d handle — the compile service reuses one pool across
    every request instead of re-spawning domains per search. *)
let run ?workers ?pool ?(strategy = Exhaustive) ?axes ?cache
    (p : Eval.problem) =
  let workers =
    match (pool, workers) with
    | Some pl, _ -> Pool.size pl
    | None, Some w -> max 1 w
    | None, None -> Pool.default_workers ()
  in
  let axes =
    match axes with
    | Some ax -> ax
    | None ->
        Space.default_axes ~arch:p.Eval.config.Sim.arch ~formats:p.Eval.formats
          p.Eval.expr
  in
  let cache = match cache with Some c -> c | None -> Pool.Cache.create () in
  (* One prepare per search: problem key fingerprinted once, input
     statistics warmed into the shared cache before workers fan out. *)
  let pre = Eval.prepare p in
  let eval_batch pts =
    Array.to_list
      (Pool.map ~workers ?pool (Eval.evaluate ~cache pre) (Array.of_list pts))
  in
  let all = Space.points ~formats:p.Eval.formats p.Eval.expr axes in
  let seed_pt = List.hd all in
  let evaluated =
    match strategy with
    | Exhaustive -> eval_batch all
    | Greedy -> dedup (greedy ~eval_batch ~axes seed_pt)
    | Random { samples; seed } ->
        let arr = Array.of_list all in
        let rng = Prng.create seed in
        let picks =
          List.init (max 0 samples) (fun _ ->
              arr.(Prng.int rng (Array.length arr)))
        in
        dedup (eval_batch (seed_pt :: picks))
  in
  let seed_eval =
    (* memoised: the seed is always the first evaluated point *)
    List.hd (eval_batch [ seed_pt ])
  in
  let pruned =
    List.length
      (List.filter
         (fun (e : Eval.eval) ->
           match e.Eval.outcome with Eval.Infeasible _ -> true | _ -> false)
         evaluated)
  in
  let frontier = Pareto.frontier objectives evaluated in
  {
    problem = p;
    strategy;
    workers;
    candidates = List.length all;
    evaluated;
    pruned;
    seed_eval;
    frontier;
    best = (match frontier with [] -> None | e :: _ -> Some e);
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_eval ppf (e : Eval.eval) =
  match e.Eval.outcome with
  | Eval.Feasible { report; usage } ->
      Fmt.pf ppf "%-44s %12.0f cycles  %3.0f%% chip (%s-bound)"
        (Point.to_string e.Eval.point) report.Sim.cycles
        (100.
        *. List.fold_left Float.max usage.Resources.pcu_frac
             [ usage.Resources.pmu_frac; usage.Resources.mc_frac;
               usage.Resources.shuffle_frac ])
        usage.Resources.limiting
  | Eval.Infeasible reason ->
      Fmt.pf ppf "%-44s pruned: %s" (Point.to_string e.Eval.point) reason

(** Human-readable report: search summary, Pareto frontier, best point,
    and the improvement over the heuristic seed. *)
let pp_result ppf (r : result) =
  Fmt.pf ppf "%s: %s search, %d candidates, %d evaluated (%d pruned), %d workers@."
    r.problem.Eval.name (strategy_name r.strategy) r.candidates
    (List.length r.evaluated) r.pruned r.workers;
  Fmt.pf ppf "heuristic seed: %a@." pp_eval r.seed_eval;
  Fmt.pf ppf "Pareto frontier (cycles vs chip fraction):@.";
  List.iter (fun e -> Fmt.pf ppf "  %a@." pp_eval e) r.frontier;
  match (r.best, Eval.cycles r.seed_eval) with
  | Some b, Some seed_cycles ->
      let bc = Option.get (Eval.cycles b) in
      Fmt.pf ppf "best: %a@." pp_eval b;
      if bc < seed_cycles then
        Fmt.pf ppf "%.2fx faster than the heuristic point@."
          (seed_cycles /. bc)
      else Fmt.pf ppf "heuristic point is already optimal in this space@."
  | Some b, None -> Fmt.pf ppf "best: %a@." pp_eval b
  | None, _ -> Fmt.pf ppf "no feasible point in the search space@."

(* Minimal JSON rendering (no external dependency). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_point (pt : Point.t) =
  Fmt.str
    "{\"order\": %s, \"outer_par\": %d, \"inner_par\": %d, \"split\": %s, \
     \"gather\": \"%s\"}"
    (match pt.Point.order with
    | None -> "null"
    | Some o -> Fmt.str "\"%s\"" (json_escape (String.concat "," o)))
    pt.Point.outer_par pt.Point.inner_par
    (match pt.Point.split with
    | None -> "null"
    | Some (v, c) -> Fmt.str "{\"var\": \"%s\", \"tile\": %d}" (json_escape v) c)
    (match pt.Point.gather with
    | Point.Auto -> "auto"
    | Point.On_chip -> "on_chip"
    | Point.Off_chip -> "off_chip")

let json_of_eval (e : Eval.eval) =
  match e.Eval.outcome with
  | Eval.Feasible { report; usage } ->
      Fmt.str
        "{\"point\": %s, \"cycles\": %.0f, \"seconds\": %.6e, \
         \"dram_bytes\": %.0f, \"pcu\": %d, \"pmu\": %d, \"mc\": %d, \
         \"shuffle\": %d, \"limiting\": \"%s\"}"
        (json_of_point e.Eval.point) report.Sim.cycles report.Sim.seconds
        report.Sim.streamed_bytes usage.Resources.pcu usage.Resources.pmu
        usage.Resources.mc usage.Resources.shuffle
        (json_escape usage.Resources.limiting)
  | Eval.Infeasible reason ->
      Fmt.str "{\"point\": %s, \"pruned\": \"%s\"}" (json_of_point e.Eval.point)
        (json_escape reason)

(** Machine-readable report for trajectory tracking and tooling. *)
let to_json (r : result) =
  Fmt.str
    "{\"kernel\": \"%s\", \"strategy\": \"%s\", \"workers\": %d, \
     \"candidates\": %d, \"evaluated\": %d, \"pruned\": %d, \
     \"heuristic\": %s, \"best\": %s, \"frontier\": [%s]}"
    (json_escape r.problem.Eval.name)
    (strategy_name r.strategy) r.workers r.candidates
    (List.length r.evaluated) r.pruned
    (json_of_eval r.seed_eval)
    (match r.best with None -> "null" | Some b -> json_of_eval b)
    (String.concat ", " (List.map json_of_eval r.frontier))
