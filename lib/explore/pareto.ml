(** Pareto frontier over two minimized objectives.

    The explorer reports not just the fastest point but the whole
    cycles-vs-chip-resources trade-off curve: a point belongs to the
    frontier iff no other point is at least as good on both objectives and
    strictly better on one.  Ties on both objectives keep the earliest
    point (deterministic under the evaluator's stable ordering). *)

(** [frontier objectives xs] filters [xs] to its non-dominated subset,
    sorted by the first objective ascending (then the second, then input
    order).  [objectives] returns [(primary, secondary)], both minimized;
    elements for which it returns [None] (infeasible points) are dropped. *)
let frontier (objectives : 'a -> (float * float) option) (xs : 'a list) =
  let pts =
    List.mapi (fun i x -> (i, x)) xs
    |> List.filter_map (fun (i, x) ->
           match objectives x with Some (a, b) -> Some (i, a, b, x) | None -> None)
  in
  let dominated (i, a, b, _) =
    List.exists
      (fun (j, a', b', _) ->
        let strictly = a' < a || b' < b in
        let at_least = a' <= a && b' <= b in
        (at_least && strictly) || (a' = a && b' = b && j < i))
      pts
  in
  pts
  |> List.filter (fun p -> not (dominated p))
  |> List.sort (fun (i, a, b, _) (j, a', b', _) ->
         compare (a, b, i) (a', b', j))
  |> List.map (fun (_, _, _, x) -> x)

(** The minimum of [xs] under the first objective (ties: secondary
    objective, then input order); [None] when nothing is feasible. *)
let best (objectives : 'a -> (float * float) option) (xs : 'a list) =
  match frontier objectives xs with [] -> None | x :: _ -> Some x
