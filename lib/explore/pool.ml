(** Fixed-size [Domain] worker pool with deterministic result ordering,
    per-task deadlines, and the mutex-guarded memoization cache the
    evaluator shares across workers.

    Candidate evaluation (compile + resource count + analytic simulation)
    is pure: each result depends only on its candidate.  So parallelism is
    a plain self-scheduling map — workers pull indices from an atomic
    counter and write into a preallocated slot array, which makes the
    output order (and therefore the frontier, the best point, and every
    printed report) independent of the worker count and of scheduling
    interleavings.  OCaml 5 domains give real parallelism; with
    [workers = 1] the map degenerates to a sequential loop with no domain
    spawned, which the bench suite uses as the serial baseline.

    {2 Deadlines and hung-worker isolation}

    With [?timeout] set, every application runs in a dedicated sub-domain
    while the worker polls for its completion against a wall-clock
    deadline.  A task that exceeds the deadline is {e abandoned} — OCaml
    domains cannot be killed, so the runaway domain keeps spinning until
    its computation ends, but the pool records a structured timeout for
    that item and moves on to the next one.  One wedged task therefore
    costs exactly one slot (plus one burned core), never the whole map.
    The differential-testing oracle leans on this to survive backends
    that hang on a fuzz case.  Abandoned domains are accounted for:
    each is registered with a completion probe, later deadline-bearing
    calls {e reap} (join) the ones whose computations have finished,
    and the live count is capped so the runtime's domain budget can
    never be silently exhausted — see the abandoned-domain accounting
    below and {!with_deadline}'s [Deadline_unenforceable]. *)

module Diag = Stardust_diag.Diag
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics

(* Wall-clock-derived pool metrics (queue wait, busy time, timeouts) are
   registered volatile: they are real measurements, so they must never
   appear in the deterministic snapshot that is diffed across runs and
   worker counts. *)
let queue_wait_hist () =
  Metrics.histogram ~volatile:true
    ~help:"seconds between map submission and an item being picked up"
    "pool_queue_wait_seconds"

let busy_gauge worker =
  Metrics.gauge ~volatile:true
    ~help:"seconds this worker spent applying items in the last map"
    ~labels:[ ("worker", string_of_int worker) ]
    "pool_worker_busy_seconds"

let count ?(by = 1.0) ?(volatile = false) name help =
  Metrics.inc ~by (Metrics.counter ~volatile ~help name)

(** Default worker count: the physical parallelism the runtime recommends,
    bounded to keep domain startup cost below the work saved on small
    candidate sets. *)
let default_workers () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(** A worker application raised: [index] is the failing item's position in
    the input array, [exn] the original exception, and the re-raise in the
    calling domain carries the {e worker's} backtrace (captured at the
    raise site inside the domain, which [Domain.join]-then-[raise] would
    otherwise discard). *)
exception Worker_error of { index : int; exn : exn }

(** A worker application exceeded its [?timeout] deadline: [index] is the
    hung item's position, [seconds] the deadline it blew through.  The
    runaway computation has been abandoned, not cancelled. *)
exception Worker_timeout of { index : int; seconds : float }

let () =
  Printexc.register_printer (function
    | Worker_error { index; exn } ->
        Some
          (Printf.sprintf "Pool.Worker_error(item %d): %s" index
             (Printexc.to_string exn))
    | Worker_timeout { index; seconds } ->
        Some
          (Printf.sprintf "Pool.Worker_timeout(item %d): exceeded %gs" index
             seconds)
    | _ -> None)

(** How one item's application ended.  [Unfilled] is unreachable by
    construction (every index fetched from the atomic counter is written
    exactly once); if it ever surfaces, that is a pool bug and is reported
    as an internal-error diagnostic with provenance, not a bare
    [Invalid_argument]. *)
type 'b slot =
  | Unfilled
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace
  | Timed_out of float

(** Why an item of {!map_result} produced no value. *)
type failure =
  | Failure_raised of { exn : exn; backtrace : Printexc.raw_backtrace }
      (** the application raised; [exn] is wrapped in {!Worker_error} *)
  | Failure_timed_out of { seconds : float }
      (** the application blew its deadline and was abandoned *)

let internal_error ~where message =
  Diag.fail
    [
      Diag.error ~stage:Diag.Driver ~code:Diag.code_internal
        ~context:[ ("where", where) ]
        "internal invariant violated: %s" message;
    ]

let apply_plain f i x =
  match f x with
  | v -> Value v
  | exception e ->
      (* capture the trace here, inside the raising domain, where it still
         exists *)
      let bt = Printexc.get_raw_backtrace () in
      Raised (Worker_error { index = i; exn = e }, bt)

(* ------------------------------------------------------------------ *)
(* Abandoned-domain accounting                                         *)
(* ------------------------------------------------------------------ *)

(* OCaml domains cannot be killed, so a blown deadline {e abandons} its
   sub-domain.  An abandoned domain is a leak until its computation
   finishes: it holds one of the runtime's ~128 domain slots, and once
   enough accumulate [Domain.spawn] fails for everyone — which, left
   unaccounted, would silently strip every future deadline.  So every
   runaway is registered here with a completion probe; each new
   deadline-bearing call first {e reaps} (joins) the runaways whose
   computations have since finished, reclaiming their slots, and the
   count of still-live runaways is capped at [abandoned_budget] — well
   under the runtime's limit, so deadline spawns keep succeeding and
   the degraded state is an explicit, observable refusal
   ({!Deadline_unenforceable}), never a silent loss of enforcement.
   [pool_abandoned_domains] tracks the live count. *)

let abandoned_budget = 64

type runaway = {
  r_domain : unit Domain.t;
  r_done : unit -> bool;  (** the abandoned computation has finished *)
}

let runaways_lock = Mutex.create ()
let runaways : runaway list ref = ref []

let abandoned_gauge n =
  Metrics.set
    (Metrics.gauge ~volatile:true
       ~help:"deadline sub-domains abandoned and not yet reclaimed"
       "pool_abandoned_domains")
    (float_of_int n)

(** Join every abandoned domain whose computation has finished (the
    join is then immediate) and return how many are still running. *)
let reap_abandoned () =
  Mutex.lock runaways_lock;
  let finished, live = List.partition (fun r -> r.r_done ()) !runaways in
  runaways := live;
  Mutex.unlock runaways_lock;
  List.iter (fun r -> Domain.join r.r_domain) finished;
  let n = List.length live in
  abandoned_gauge n;
  n

let abandon d ~is_done =
  Mutex.lock runaways_lock;
  runaways := { r_domain = d; r_done = is_done } :: !runaways;
  let n = List.length !runaways in
  Mutex.unlock runaways_lock;
  abandoned_gauge n

(* A deadline-bearing call that could not spawn its sub-domain ran
   inline with NO deadline (forward progress over isolation).  Rare —
   the abandoned budget keeps domain slots available — but when it
   happens it must be visible, not a silent degradation. *)
let count_deadline_fallback () =
  count ~volatile:true "pool_deadline_fallbacks_total"
    "deadline-bearing calls that ran inline because no sub-domain could \
     be spawned"

(** Run one application in a dedicated sub-domain and poll for completion
    against a wall-clock deadline.  On timeout the sub-domain is abandoned
    (registered for later reaping; see the accounting above): its eventual
    result, if any, is discarded.  If no domain can be spawned, the
    application degrades to running inline without a deadline — forward
    progress over isolation, counted in [pool_deadline_fallbacks_total]. *)
let apply_timed ~seconds f i x =
  ignore (reap_abandoned () : int);
  let cell = Atomic.make None in
  (* DLS does not cross Domain.spawn: re-install the caller's tracing
     context so spans inside the timed application stay correlated. *)
  let ctx = Trace.current_context () in
  match
    Domain.spawn (fun () ->
        Trace.set_context ctx;
        Atomic.set cell (Some (apply_plain f i x)))
  with
  | exception _ ->
      count_deadline_fallback ();
      apply_plain f i x
  | d ->
      let deadline = Unix.gettimeofday () +. seconds in
      let rec wait () =
        match Atomic.get cell with
        | Some r ->
            Domain.join d;
            r
        | None ->
            if Unix.gettimeofday () >= deadline then begin
              abandon d ~is_done:(fun () -> Atomic.get cell <> None);
              Timed_out seconds
            end
            else begin
              Unix.sleepf 0.001;
              wait ()
            end
      in
      wait ()

(* ------------------------------------------------------------------ *)
(* Persistent pool handles                                             *)
(* ------------------------------------------------------------------ *)

(** A reusable pool: [p_size - 1] long-lived worker domains parked on a
    condition variable, plus the submitting caller (worker 0).  One-shot
    {!map} spawns and joins domains per call, which is fine for a single
    search but wasteful for a daemon answering thousands of requests;
    a handle created once with {!create} amortizes domain startup across
    every batch of the process lifetime.

    Protocol: {!create} parks the workers; each submitted batch is a
    self-scheduling closure published under [p_lock] with a fresh
    sequence number ([p_work] broadcast wakes the workers, and the
    sequence number stops a worker from re-entering a batch it already
    ran); the worker that completes the batch's last item clears it and
    broadcasts [p_done], on which the submitter waits.  [p_submit]
    serializes submitters, so concurrent callers' batches queue rather
    than interleave.  {!shutdown} is a graceful drain: it waits for the
    in-flight batch, then wakes every worker to exit and joins them. *)
type t = {
  p_size : int;  (** total workers, including the submitting caller *)
  p_lock : Mutex.t;
  p_work : Condition.t;  (** new batch published, or shutdown *)
  p_done : Condition.t;  (** current batch completed *)
  p_submit : Mutex.t;  (** serializes batch submitters *)
  mutable p_alive : bool;
  mutable p_seq : int;  (** sequence number of the latest batch *)
  mutable p_done_seq : int;  (** sequence number of the latest completed *)
  mutable p_batch : (int -> unit) option;  (** batch body, by worker id *)
  mutable p_domains : unit Domain.t list;
}

let size t = t.p_size

(** The pool still has (or is) a live submitter: [false] once {!shutdown}
    has drained it.  The serve readiness probe reports this. *)
let is_alive t =
  Mutex.lock t.p_lock;
  let a = t.p_alive in
  Mutex.unlock t.p_lock;
  a

(* Domain-local "currently running a pooled batch item" flag.  A nested
   submission from inside a batch item — e.g. the compile service
   dispatches a request batch on the pool and one request is an autotune
   whose search maps on the same pool — would deadlock: the outer
   submitter holds [p_submit] until its batch drains, and the batch
   cannot drain while one of its items is parked waiting for [p_submit].
   With the flag set, {!exec_pooled} runs the nested batch inline in the
   current domain instead (sequential, but deterministic and safe). *)
let in_pooled_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)
let in_pooled_task () = !(Domain.DLS.get in_pooled_key)

let mark_pooled body k =
  let flag = Domain.DLS.get in_pooled_key in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) (fun () -> body k)

(** Why {!with_deadline} produced no value. *)
type deadline_failure =
  | Deadline_expired of float
      (** the call blew its budget; the runaway sub-domain has been
          abandoned (and registered for reaping) *)
  | Deadline_unenforceable of { abandoned : int }
      (** refused before running: [abandoned] runaway domains are still
          live, the [abandoned_budget] is spent, and running without a
          deadline would silently lose enforcement — the caller must
          surface the degraded state instead *)

(** [with_deadline ~seconds f] runs [f ()] in a dedicated sub-domain and
    polls for completion against a wall-clock deadline — the same
    machinery as [?timeout] on {!map}, packaged for a single call.  On
    completion the result (or the original exception, with the raising
    domain's backtrace) propagates; past the deadline the sub-domain is
    {e abandoned} (OCaml domains cannot be killed — a runaway keeps its
    core until its computation ends, when the reaper reclaims the slot)
    and [Error (Deadline_expired seconds)] is returned, counted in
    [pool_timeouts_total].

    When the abandoned-domain budget is already spent — [abandoned_budget]
    runaways still live — the call is {e refused} with
    [Error (Deadline_unenforceable _)] before [f] runs, counted in
    [pool_deadline_refusals_total]: a visible, structured degradation
    instead of a daemon that silently stops enforcing deadlines.  (If
    [Domain.spawn] itself fails for some other reason, [f] runs inline
    with no deadline — forward progress over isolation — counted in
    [pool_deadline_fallbacks_total].)

    The caller's "inside a pooled batch item" flag is propagated into
    the sub-domain, so a nested pool submission under a deadline — the
    compile service bounding a request that autotunes, inside a batch —
    still degrades to an inline run instead of deadlocking on the batch
    submitter's lock. *)
let with_deadline ~seconds (f : unit -> 'a) : ('a, deadline_failure) result =
  let live = reap_abandoned () in
  if live >= abandoned_budget then begin
    count ~volatile:true "pool_deadline_refusals_total"
      "deadline-bearing calls refused because the abandoned-domain \
       budget is spent";
    Error (Deadline_unenforceable { abandoned = live })
  end
  else
    let pooled = in_pooled_task () in
    let ctx = Trace.current_context () in
    let cell = Atomic.make None in
    let task () =
      if pooled then Domain.DLS.get in_pooled_key := true;
      (* correlate spans inside the deadline sub-domain with the
         submitting request (DLS does not cross Domain.spawn) *)
      Trace.set_context ctx;
      let r =
        match f () with
        | v -> Value v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      Atomic.set cell (Some r)
    in
    match Domain.spawn task with
    | exception _ ->
        count_deadline_fallback ();
        Ok (f ())
    | d ->
        let deadline = Unix.gettimeofday () +. seconds in
        let rec wait () =
          match Atomic.get cell with
          | Some (Value v) ->
              Domain.join d;
              Ok v
          | Some (Raised (e, bt)) ->
              Domain.join d;
              Printexc.raise_with_backtrace e bt
          | Some (Unfilled | Timed_out _) | None ->
              if Unix.gettimeofday () >= deadline then begin
                count ~volatile:true "pool_timeouts_total"
                  "pool items abandoned past their deadline";
                abandon d ~is_done:(fun () -> Atomic.get cell <> None);
                Error (Deadline_expired seconds)
              end
              else begin
                Unix.sleepf 0.001;
                wait ()
              end
        in
        wait ()

let rec worker_loop t k last_seen =
  Mutex.lock t.p_lock;
  let rec await () =
    if t.p_alive && (t.p_batch = None || t.p_seq = last_seen) then begin
      Condition.wait t.p_work t.p_lock;
      await ()
    end
  in
  await ();
  if not t.p_alive then Mutex.unlock t.p_lock
  else begin
    let seq = t.p_seq in
    let body = Option.get t.p_batch in
    Mutex.unlock t.p_lock;
    body k;
    worker_loop t k seq
  end

(** Create a persistent pool of [workers] total workers (the caller
    counts as one; [workers - 1] domains are spawned). *)
let create ?workers () =
  let p_size =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  let t =
    {
      p_size;
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_done = Condition.create ();
      p_submit = Mutex.create ();
      p_alive = true;
      p_seq = 0;
      p_done_seq = 0;
      p_batch = None;
      p_domains = [];
    }
  in
  t.p_domains <-
    List.init (p_size - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t (k + 1) 0));
  count ~volatile:true "pool_created_total" "persistent pools created";
  t

(** Graceful drain: wait for any in-flight batch, park further
    submissions, then wake every worker to exit and join them.
    Idempotent — a second shutdown finds no domains to join and returns
    immediately — and a map submitted to a shut-down pool runs inline in
    the caller (structured degradation, never a hang).  Calling it from
    {e inside} a pooled batch item would deadlock on the batch
    submitter's lock, so that is refused with a structured E0904
    diagnostic instead. *)
let shutdown t =
  if in_pooled_task () then
    internal_error ~where:"Pool.shutdown"
      "shutdown requested from inside a pooled task";
  Mutex.lock t.p_submit;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.p_submit)
    (fun () ->
      Mutex.lock t.p_lock;
      t.p_alive <- false;
      Condition.broadcast t.p_work;
      Mutex.unlock t.p_lock;
      List.iter Domain.join t.p_domains;
      t.p_domains <- [])

(** Run one batch body on the persistent pool: publish it, participate as
    worker 0, then wait for the completion broadcast (the caller's own
    share may not be the batch's last item). *)
let exec_pooled_fresh t (body : on_all_done:(unit -> unit) -> int -> unit) =
  Mutex.lock t.p_submit;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.p_submit)
    (fun () ->
      if not t.p_alive then body ~on_all_done:ignore 0
      else begin
        Mutex.lock t.p_lock;
        t.p_seq <- t.p_seq + 1;
        let seq = t.p_seq in
        let on_all_done () =
          Mutex.lock t.p_lock;
          t.p_done_seq <- seq;
          t.p_batch <- None;
          Condition.broadcast t.p_done;
          Mutex.unlock t.p_lock
        in
        let batch = mark_pooled (body ~on_all_done) in
        t.p_batch <- Some batch;
        Condition.broadcast t.p_work;
        Mutex.unlock t.p_lock;
        batch 0;
        Mutex.lock t.p_lock;
        while t.p_done_seq < seq do
          Condition.wait t.p_done t.p_lock
        done;
        Mutex.unlock t.p_lock
      end)

(** Submit one batch to the pool — unless the current domain is itself
    executing a pooled batch item, in which case the nested batch runs
    inline here (see {!in_pooled_task} for why). *)
let exec_pooled t (body : on_all_done:(unit -> unit) -> int -> unit) =
  if in_pooled_task () then body ~on_all_done:ignore 0
  else exec_pooled_fresh t body

(** The self-scheduling core: one slot per item, each filled exactly once
    with how that item's application ended.  With [?pool] the batch runs
    on the persistent handle's parked domains; otherwise [workers - 1]
    domains are spawned for this call and joined before it returns. *)
let run_slots ?timeout ?workers ?pool (f : 'a -> 'b) (items : 'a array) :
    'b slot array =
  let workers =
    match (pool, workers) with
    | Some p, _ -> p.p_size
    | None, Some w -> max 1 w
    | None, None -> default_workers ()
  in
  let n = Array.length items in
  let apply i x =
    match timeout with
    | None -> apply_plain f i x
    | Some seconds -> apply_timed ~seconds f i x
  in
  let slots : 'b slot array = Array.make n Unfilled in
  count ~by:(float_of_int n) "pool_tasks_total"
    "items submitted to the worker pool";
  let submitted = Unix.gettimeofday () in
  (* One span per participating worker (the calling domain is worker 0),
     and per-item queue-wait / per-worker busy-time measurements.  All
     wall-clock, all volatile.  Workers pull indices from the shared
     atomic counter; the worker that finishes the last item reports batch
     completion (one-shot execution ignores it and relies on joins). *)
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  (* The submitter's tracing context rides into every worker body (and is
     restored afterwards, so persistent-pool domains don't leak one
     batch's request id into the next): worker spans under a correlated
     request carry its id. *)
  let submit_ctx = Trace.current_context () in
  let body ~on_all_done k =
    Trace.with_context submit_ctx @@ fun () ->
    Trace.with_span ~cat:"pool"
      ~args:[ ("worker", string_of_int k) ]
      (Printf.sprintf "pool worker %d" k)
      (fun () ->
        let busy = ref 0.0 in
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let t0 = Unix.gettimeofday () in
            Metrics.observe (queue_wait_hist ()) (t0 -. submitted);
            slots.(i) <- apply i items.(i);
            busy := !busy +. (Unix.gettimeofday () -. t0);
            if 1 + Atomic.fetch_and_add completed 1 = n then on_all_done ();
            loop ()
          end
        in
        loop ();
        Metrics.set (busy_gauge k) !busy)
  in
  (if n = 0 then ()
   else
     match pool with
     | Some p -> exec_pooled p body
     | None ->
         if workers = 1 || n = 1 then body ~on_all_done:ignore 0
         else begin
           let spawned =
             List.init
               (min (workers - 1) (n - 1))
               (fun k -> Domain.spawn (fun () -> body ~on_all_done:ignore (k + 1)))
           in
           body ~on_all_done:ignore 0;
           List.iter Domain.join spawned
         end);
  (* Timeout accounting happens here, scanning the filled slot array in
     input order, not inside the racing workers. *)
  Array.iter
    (function
      | Timed_out _ ->
          count ~volatile:true "pool_timeouts_total"
            "pool items abandoned past their deadline"
      | _ -> ())
    slots;
  slots

(** [map ~workers f items] is [Array.map f items], computed by [workers]
    domains.  Results are returned in input order regardless of worker
    count.  If any application fails, the first failure (by item index) is
    re-raised in the calling domain after all workers join: exceptions are
    wrapped in {!Worker_error} with the worker's backtrace preserved, and
    with [?timeout] set a blown deadline raises {!Worker_timeout}.  Callers
    that need per-item failure isolation use {!map_result} instead; callers
    with a persistent {!create}d pool pass it as [?pool] to reuse its
    parked domains instead of spawning per call. *)
let map ?timeout ?workers ?pool (f : 'a -> 'b) (items : 'a array) : 'b array =
  let slots = run_slots ?timeout ?workers ?pool f items in
  Array.iteri
    (fun i s ->
      match s with
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Timed_out seconds -> raise (Worker_timeout { index = i; seconds })
      | Value _ | Unfilled -> ())
    slots;
  Array.map
    (function
      | Value v -> v
      | Unfilled | Raised _ | Timed_out _ ->
          internal_error ~where:"Pool.map" "result slot never filled")
    slots

(** [map_result ?timeout ?workers f items] is {!map} with per-item failure
    isolation: every item yields [Ok value] or [Error failure], and one
    crashing or hung application never poisons the others.  This is the
    entry point the differential oracle drives fuzz cases through. *)
let map_result ?timeout ?workers ?pool (f : 'a -> 'b) (items : 'a array) :
    ('b, failure) result array =
  let slots = run_slots ?timeout ?workers ?pool f items in
  Array.map
    (function
      | Value v -> Ok v
      | Raised (exn, backtrace) -> Error (Failure_raised { exn; backtrace })
      | Timed_out seconds -> Error (Failure_timed_out { seconds })
      | Unfilled ->
          internal_error ~where:"Pool.map_result" "result slot never filled")
    slots

(** Memoization cache shared between workers.  Lookups and inserts hold a
    mutex; the computation itself runs outside it, so two workers may race
    to fill the same key — harmless for pure functions (last write wins
    with an identical value) and far cheaper than blocking every worker on
    one kernel compilation. *)
module Cache = struct
  type 'a t = { tbl : (string, 'a) Hashtbl.t; lock : Mutex.t }

  let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

  let size t =
    Mutex.lock t.lock;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.lock;
    n

  let find_or_compute t key f =
    Mutex.lock t.lock;
    let hit = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.lock;
    match hit with
    | Some v -> v
    | None ->
        let v = f () in
        Mutex.lock t.lock;
        if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
        Mutex.unlock t.lock;
        v
end
