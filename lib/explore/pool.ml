(** Fixed-size [Domain] worker pool with deterministic result ordering,
    plus the mutex-guarded memoization cache the evaluator shares across
    workers.

    Candidate evaluation (compile + resource count + analytic simulation)
    is pure: each result depends only on its candidate.  So parallelism is
    a plain self-scheduling map — workers pull indices from an atomic
    counter and write into a preallocated slot array, which makes the
    output order (and therefore the frontier, the best point, and every
    printed report) independent of the worker count and of scheduling
    interleavings.  OCaml 5 domains give real parallelism; with
    [workers = 1] the map degenerates to a sequential loop with no domain
    spawned, which the bench suite uses as the serial baseline. *)

(** Default worker count: the physical parallelism the runtime recommends,
    bounded to keep domain startup cost below the work saved on small
    candidate sets. *)
let default_workers () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(** A worker application raised: [index] is the failing item's position in
    the input array, [exn] the original exception, and the re-raise in the
    calling domain carries the {e worker's} backtrace (captured at the
    raise site inside the domain, which [Domain.join]-then-[raise] would
    otherwise discard). *)
exception Worker_error of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Worker_error { index; exn } ->
        Some
          (Printf.sprintf "Pool.Worker_error(item %d): %s" index
             (Printexc.to_string exn))
    | _ -> None)

(** [map ~workers f items] is [Array.map f items], computed by [workers]
    domains.  Results are returned in input order regardless of worker
    count.  If any application raises, the first failure (by item index)
    is re-raised in the calling domain after all workers join, wrapped in
    {!Worker_error} with the item's index and the worker's backtrace
    preserved. *)
let map ?workers (f : 'a -> 'b) (items : 'a array) : 'b array =
  let workers = match workers with Some w -> max 1 w | None -> default_workers () in
  let n = Array.length items in
  let apply i x =
    match f x with
    | v -> v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Printexc.raise_with_backtrace (Worker_error { index = i; exn = e }) bt
  in
  if n = 0 then [||]
  else if workers = 1 || n = 1 then Array.mapi apply items
  else begin
    let results : 'b option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
              (* capture the trace here, inside the domain, where it still
                 exists *)
              let bt = Printexc.get_raw_backtrace () in
              errors.(i) <- Some (Worker_error { index = i; exn = e }, bt));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min (workers - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: missing slot")
      results
  end

(** Memoization cache shared between workers.  Lookups and inserts hold a
    mutex; the computation itself runs outside it, so two workers may race
    to fill the same key — harmless for pure functions (last write wins
    with an identical value) and far cheaper than blocking every worker on
    one kernel compilation. *)
module Cache = struct
  type 'a t = { tbl : (string, 'a) Hashtbl.t; lock : Mutex.t }

  let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

  let size t =
    Mutex.lock t.lock;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.lock;
    n

  let find_or_compute t key f =
    Mutex.lock t.lock;
    let hit = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.lock;
    match hit with
    | Some v -> v
    | None ->
        let v = f () in
        Mutex.lock t.lock;
        if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
        Mutex.unlock t.lock;
        v
end
