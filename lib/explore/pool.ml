(** Fixed-size [Domain] worker pool with deterministic result ordering,
    per-task deadlines, and the mutex-guarded memoization cache the
    evaluator shares across workers.

    Candidate evaluation (compile + resource count + analytic simulation)
    is pure: each result depends only on its candidate.  So parallelism is
    a plain self-scheduling map — workers pull indices from an atomic
    counter and write into a preallocated slot array, which makes the
    output order (and therefore the frontier, the best point, and every
    printed report) independent of the worker count and of scheduling
    interleavings.  OCaml 5 domains give real parallelism; with
    [workers = 1] the map degenerates to a sequential loop with no domain
    spawned, which the bench suite uses as the serial baseline.

    {2 Deadlines and hung-worker isolation}

    With [?timeout] set, every application runs in a dedicated sub-domain
    while the worker polls for its completion against a wall-clock
    deadline.  A task that exceeds the deadline is {e abandoned} — OCaml
    domains cannot be killed, so the runaway domain keeps spinning until
    the process exits, but the pool records a structured timeout for that
    item and moves on to the next one.  One wedged task therefore costs
    exactly one slot (plus one burned core), never the whole map.  The
    differential-testing oracle leans on this to survive backends that
    hang on a fuzz case. *)

module Diag = Stardust_diag.Diag
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics

(* Wall-clock-derived pool metrics (queue wait, busy time, timeouts) are
   registered volatile: they are real measurements, so they must never
   appear in the deterministic snapshot that is diffed across runs and
   worker counts. *)
let queue_wait_hist () =
  Metrics.histogram ~volatile:true
    ~help:"seconds between map submission and an item being picked up"
    "pool_queue_wait_seconds"

let busy_gauge worker =
  Metrics.gauge ~volatile:true
    ~help:"seconds this worker spent applying items in the last map"
    ~labels:[ ("worker", string_of_int worker) ]
    "pool_worker_busy_seconds"

let count ?(by = 1.0) ?(volatile = false) name help =
  Metrics.inc ~by (Metrics.counter ~volatile ~help name)

(** Default worker count: the physical parallelism the runtime recommends,
    bounded to keep domain startup cost below the work saved on small
    candidate sets. *)
let default_workers () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(** A worker application raised: [index] is the failing item's position in
    the input array, [exn] the original exception, and the re-raise in the
    calling domain carries the {e worker's} backtrace (captured at the
    raise site inside the domain, which [Domain.join]-then-[raise] would
    otherwise discard). *)
exception Worker_error of { index : int; exn : exn }

(** A worker application exceeded its [?timeout] deadline: [index] is the
    hung item's position, [seconds] the deadline it blew through.  The
    runaway computation has been abandoned, not cancelled. *)
exception Worker_timeout of { index : int; seconds : float }

let () =
  Printexc.register_printer (function
    | Worker_error { index; exn } ->
        Some
          (Printf.sprintf "Pool.Worker_error(item %d): %s" index
             (Printexc.to_string exn))
    | Worker_timeout { index; seconds } ->
        Some
          (Printf.sprintf "Pool.Worker_timeout(item %d): exceeded %gs" index
             seconds)
    | _ -> None)

(** How one item's application ended.  [Unfilled] is unreachable by
    construction (every index fetched from the atomic counter is written
    exactly once); if it ever surfaces, that is a pool bug and is reported
    as an internal-error diagnostic with provenance, not a bare
    [Invalid_argument]. *)
type 'b slot =
  | Unfilled
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace
  | Timed_out of float

(** Why an item of {!map_result} produced no value. *)
type failure =
  | Failure_raised of { exn : exn; backtrace : Printexc.raw_backtrace }
      (** the application raised; [exn] is wrapped in {!Worker_error} *)
  | Failure_timed_out of { seconds : float }
      (** the application blew its deadline and was abandoned *)

let internal_error ~where message =
  Diag.fail
    [
      Diag.error ~stage:Diag.Driver ~code:Diag.code_internal
        ~context:[ ("where", where) ]
        "internal invariant violated: %s" message;
    ]

let apply_plain f i x =
  match f x with
  | v -> Value v
  | exception e ->
      (* capture the trace here, inside the raising domain, where it still
         exists *)
      let bt = Printexc.get_raw_backtrace () in
      Raised (Worker_error { index = i; exn = e }, bt)

(** Run one application in a dedicated sub-domain and poll for completion
    against a wall-clock deadline.  On timeout the sub-domain is abandoned
    (never joined): its eventual result, if any, is discarded.  If no
    domain can be spawned (the runtime's domain budget is exhausted by
    abandoned tasks), the application degrades to running inline without a
    deadline — forward progress over isolation. *)
let apply_timed ~seconds f i x =
  let cell = Atomic.make None in
  match Domain.spawn (fun () -> Atomic.set cell (Some (apply_plain f i x))) with
  | exception _ -> apply_plain f i x
  | d ->
      let deadline = Unix.gettimeofday () +. seconds in
      let rec wait () =
        match Atomic.get cell with
        | Some r ->
            Domain.join d;
            r
        | None ->
            if Unix.gettimeofday () >= deadline then Timed_out seconds
            else begin
              Unix.sleepf 0.001;
              wait ()
            end
      in
      wait ()

(** The self-scheduling core: one slot per item, each filled exactly once
    with how that item's application ended. *)
let run_slots ?timeout ?workers (f : 'a -> 'b) (items : 'a array) :
    'b slot array =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  let n = Array.length items in
  let apply i x =
    match timeout with
    | None -> apply_plain f i x
    | Some seconds -> apply_timed ~seconds f i x
  in
  let slots : 'b slot array = Array.make n Unfilled in
  count ~by:(float_of_int n) "pool_tasks_total"
    "items submitted to the worker pool";
  let submitted = Unix.gettimeofday () in
  (* One span per worker (the calling domain is worker 0), and per-item
     queue-wait / per-worker busy-time measurements.  All wall-clock, all
     volatile. *)
  let worker_body k run =
    Trace.with_span ~cat:"pool"
      ~args:[ ("worker", string_of_int k) ]
      (Printf.sprintf "pool worker %d" k)
      (fun () ->
        let busy = ref 0.0 in
        run (fun i x ->
            let t0 = Unix.gettimeofday () in
            Metrics.observe (queue_wait_hist ()) (t0 -. submitted);
            slots.(i) <- apply i x;
            busy := !busy +. (Unix.gettimeofday () -. t0));
        Metrics.set (busy_gauge k) !busy)
  in
  (if n = 0 then ()
   else if workers = 1 || n = 1 then
     worker_body 0 (fun run -> Array.iteri run items)
   else begin
     let next = Atomic.make 0 in
     let worker k () =
       worker_body k (fun run ->
           let rec loop () =
             let i = Atomic.fetch_and_add next 1 in
             if i < n then begin
               run i items.(i);
               loop ()
             end
           in
           loop ())
     in
     let spawned =
       List.init
         (min (workers - 1) (n - 1))
         (fun k -> Domain.spawn (worker (k + 1)))
     in
     worker 0 ();
     List.iter Domain.join spawned
   end);
  (* Timeout accounting happens here, scanning the filled slot array in
     input order, not inside the racing workers. *)
  Array.iter
    (function
      | Timed_out _ ->
          count ~volatile:true "pool_timeouts_total"
            "pool items abandoned past their deadline"
      | _ -> ())
    slots;
  slots

(** [map ~workers f items] is [Array.map f items], computed by [workers]
    domains.  Results are returned in input order regardless of worker
    count.  If any application fails, the first failure (by item index) is
    re-raised in the calling domain after all workers join: exceptions are
    wrapped in {!Worker_error} with the worker's backtrace preserved, and
    with [?timeout] set a blown deadline raises {!Worker_timeout}.  Callers
    that need per-item failure isolation use {!map_result} instead. *)
let map ?timeout ?workers (f : 'a -> 'b) (items : 'a array) : 'b array =
  let slots = run_slots ?timeout ?workers f items in
  Array.iteri
    (fun i s ->
      match s with
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Timed_out seconds -> raise (Worker_timeout { index = i; seconds })
      | Value _ | Unfilled -> ())
    slots;
  Array.map
    (function
      | Value v -> v
      | Unfilled | Raised _ | Timed_out _ ->
          internal_error ~where:"Pool.map" "result slot never filled")
    slots

(** [map_result ?timeout ?workers f items] is {!map} with per-item failure
    isolation: every item yields [Ok value] or [Error failure], and one
    crashing or hung application never poisons the others.  This is the
    entry point the differential oracle drives fuzz cases through. *)
let map_result ?timeout ?workers (f : 'a -> 'b) (items : 'a array) :
    ('b, failure) result array =
  let slots = run_slots ?timeout ?workers f items in
  Array.map
    (function
      | Value v -> Ok v
      | Raised (exn, backtrace) -> Error (Failure_raised { exn; backtrace })
      | Timed_out seconds -> Error (Failure_timed_out { seconds })
      | Unfilled ->
          internal_error ~where:"Pool.map_result" "result slot never filled")
    slots

(** Memoization cache shared between workers.  Lookups and inserts hold a
    mutex; the computation itself runs outside it, so two workers may race
    to fill the same key — harmless for pure functions (last write wins
    with an identical value) and far cheaper than blocking every worker on
    one kernel compilation. *)
module Cache = struct
  type 'a t = { tbl : (string, 'a) Hashtbl.t; lock : Mutex.t }

  let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

  let size t =
    Mutex.lock t.lock;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.lock;
    n

  let find_or_compute t key f =
    Mutex.lock t.lock;
    let hit = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.lock;
    match hit with
    | Some v -> v
    | None ->
        let v = f () in
        Mutex.lock t.lock;
        if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
        Mutex.unlock t.lock;
        v
end
