(** A point in the Stardust design space.

    The paper's separation of algorithm, format, and schedule (sections 1
    and 8.3) means a kernel's performance-relevant choices collapse into a
    small record: the loop order, the two parallelization factors exposed
    through the [environment] command (section 5.2), an optional split of
    one loop into tiles, and where gathered arrays live on the memory
    hierarchy.  The explorer enumerates and evaluates these records; the
    algorithm and formats stay fixed. *)

(** Memory-region choice for gathered values arrays (the on-chip vs
    off-chip axis of the format language, section 5.1).  [Auto] lets the
    memory analysis decide from its default SRAM budget; [On_chip] forces
    gathered arrays into sparse SRAM when they fit anywhere on the chip;
    [Off_chip] pins them in DRAM behind random-access streams. *)
type gather_region = Auto | On_chip | Off_chip
[@@deriving show { with_path = false }, eq, ord]

type t = {
  order : string list option;
      (** explicit loop order; [None] keeps the canonical nest *)
  outer_par : int;  (** replication of the outer parallel pattern *)
  inner_par : int;  (** vector width of the accelerated inner pattern *)
  split : (string * int) option;
      (** split this loop variable into tiles of the given size *)
  gather : gather_region;
}
[@@deriving show { with_path = false }, eq, ord]

let make ?order ?split ?(gather = Auto) ~outer_par ~inner_par () =
  { order; outer_par; inner_par; split; gather }

(** Compact single-line rendering, e.g. [order=i,k,l,j op=8 ip=16]. *)
let pp_compact ppf t =
  let order =
    match t.order with
    | None -> "(canonical)"
    | Some o -> String.concat "," o
  in
  Fmt.pf ppf "order=%s op=%d ip=%d%s%s" order t.outer_par t.inner_par
    (match t.split with
    | None -> ""
    | Some (v, c) -> Fmt.str " split(%s,%d)" v c)
    (match t.gather with
    | Auto -> ""
    | On_chip -> " gather=on"
    | Off_chip -> " gather=off")

let to_string t = Fmt.str "%a" pp_compact t

(** Stable lowercase name of a gather region, shared by the JSON
    renderers and the strategies' resource-group keys. *)
let gather_name = function
  | Auto -> "auto"
  | On_chip -> "on_chip"
  | Off_chip -> "off_chip"

(** The chip-occupancy knobs of a point: replication times where the
    gathered arrays live.  Budgeted strategies group candidates by this
    signature — points sharing it occupy the same chip fraction, so one
    full evaluation per group suffices to place the group's resource
    column on the Pareto frontier. *)
let resource_signature t = Fmt.str "op=%d,%s" t.outer_par (gather_name t.gather)

(** Canonical fingerprint of the point itself; {!Fingerprint} combines it
    with the problem's identity for the memoization cache. *)
let fingerprint t = to_string t
