(** Candidate generation: enumerate the legal schedule points of one
    kernel.

    The axes are the knobs the paper exposes to the scheduling layer:

    - {b loop orders} — permutations of a plain nest filtered through
      {!Stardust_core.Legality.respects_levels} (compressed levels must
      bind outside-in).  Auto-workspace kernels (mixed additive
      expressions) keep their canonical shape: their nest is not a plain
      permutable forall chain.
    - {b parallelization factors} — [outerPar] replicas and [innerPar]
      vector width, set through the [environment] command.  Inner factors
      are capped at the architecture's vector lanes; outer factors are
      capped at the shuffle network's port count when the kernel gathers
      (section 8.3's Par ≤ 16 rule), both via
      {!Stardust_core.Legality.uses_gather}.
    - {b split/tile sizes} — optional [split_up] of one nest variable.
    - {b gather regions} — on-chip vs off-chip placement of gathered
      values arrays (the format language's memory-region axis).

    The heuristic {!Stardust_core.Autoschedule.decide} point seeds the
    enumeration: it is always the first candidate, so any search strategy
    that evaluates its inputs in order starts from a known-good point and
    can only improve on it. *)

module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
module Auto = Stardust_core.Autoschedule
module Legality = Stardust_core.Legality
module Arch = Stardust_capstan.Arch

type axes = {
  orders : string list option list;
  outer_pars : int list;
  inner_pars : int list;
  splits : (string * int) option list;
  gathers : Point.gather_region list;
}

(** Variables of the canonical nest when it is a plain permutable forall
    chain over exactly the output-then-reduction variables; [None] for
    auto-workspace shapes whose nest must keep its structure. *)
let plain_nest ~formats (a : Ast.assign) =
  let sched = Schedule.of_assign ~formats a in
  let all = Cin.bound_vars (Schedule.stmt sched) in
  let vars = a.Ast.lhs.Ast.indices @ Ast.reduction_vars a in
  if all = vars then Some vars else None

(** The heuristic's choice as a {!Point.t} — the search seed. *)
let seed ?inner_par ?outer_par ~formats (a : Ast.assign) =
  let d = Auto.decide ?inner_par ?outer_par ~formats a in
  Point.make ?order:d.Auto.order ~outer_par:d.Auto.outer_par
    ~inner_par:d.Auto.inner_par ()

(** Build the default axes for an assignment.  [split_factors] defaults to
    empty (the compiled backends do not lower split loops yet; enabling it
    enumerates candidates the pruning layer then rejects, which is useful
    for exercising the pruner but wastes evaluations otherwise).
    [gathers] defaults to the automatic placement only; pass all three
    regions to search the memory axis. *)
let default_axes ?(arch = Arch.default) ?(outer_pars = [ 1; 2; 4; 8; 12; 16 ])
    ?(inner_pars = [ 4; 8; 16 ]) ?(split_factors = [])
    ?(gathers = [ Point.Auto ]) ~formats (a : Ast.assign) =
  let orders =
    match plain_nest ~formats a with
    | None -> [ None ]
    | Some vars ->
        List.map Option.some (Legality.legal_orders ~formats a vars)
  in
  let inner_pars =
    List.filter (fun p -> p >= 1 && p <= arch.Arch.lanes) inner_pars
  in
  let outer_pars =
    let cap =
      if Legality.uses_gather ~formats a then arch.Arch.num_shuffle
      else arch.Arch.num_pcu
    in
    List.filter (fun p -> p >= 1 && p <= cap) outer_pars
  in
  let splits =
    None
    :: (match plain_nest ~formats a with
       | None -> []
       | Some vars ->
           List.concat_map
             (fun v -> List.map (fun c -> Some (v, c)) split_factors)
             vars)
  in
  { orders; outer_pars; inner_pars; splits; gathers }

(** A deliberately wide parallelization grid: every inner vector width
    [1 .. lanes], a dense outer-replication ladder, and both automatic
    and off-chip gather placement.  The search-efficiency bench and the
    budgeted-strategy tests use it so exhaustive evaluation costs well
    over ten times a budgeted strategy's run — the regime ROADMAP item 2
    opens once formats join the space. *)
let efficiency_axes ?(arch = Arch.default) ~formats (a : Ast.assign) =
  default_axes ~arch
    ~outer_pars:[ 1; 2; 3; 4; 6; 8; 10; 12; 14; 16 ]
    ~inner_pars:(List.init arch.Arch.lanes (fun i -> i + 1))
    ~gathers:[ Point.Auto; Point.Off_chip ] ~formats a

(** Enumerate the whole candidate list, seed point first, duplicates
    removed.  The order is deterministic: seed, then the cartesian product
    in axis-major order (orders, outer, inner, split, gather). *)
let points ?inner_par ?outer_par ~formats (a : Ast.assign) (ax : axes) =
  let seed_pt = seed ?inner_par ?outer_par ~formats a in
  let seen = Hashtbl.create 256 in
  let keep pt =
    let fp = Point.fingerprint pt in
    if Hashtbl.mem seen fp then None
    else begin
      Hashtbl.add seen fp ();
      Some pt
    end
  in
  let product =
    List.concat_map
      (fun order ->
        List.concat_map
          (fun op ->
            List.concat_map
              (fun ip ->
                List.concat_map
                  (fun split ->
                    List.map
                      (fun gather ->
                        { Point.order; outer_par = op; inner_par = ip;
                          split; gather })
                      ax.gathers)
                  ax.splits)
              ax.inner_pars)
          ax.outer_pars)
      ax.orders
  in
  List.filter_map keep (seed_pt :: product)
