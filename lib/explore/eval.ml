(** Evaluation layer: cost one candidate point.

    A point is built into a schedule through
    {!Stardust_core.Autoschedule.schedule_point} (so the heuristic's seed
    point evaluates to exactly the heuristic's schedule), compiled,
    pruned ({!Prune}), and finally costed with the analytic simulator
    {!Stardust_capstan.Sim.estimate} — the same oracle the paper's
    benchmarks use at scale.

    Evaluations are memoised in a {!Pool.Cache} keyed by a canonical
    fingerprint of (expression, formats, point, dataset statistics,
    machine configuration): identical queries across search strategies —
    greedy descent revisits its pivot point once per sweep — or across
    repeated [run]s sharing a cache return the stored result.  Evaluation
    is pure, so memoisation cannot change any search outcome, only its
    cost. *)

module Tensor = Stardust_tensor.Tensor
module Format = Stardust_tensor.Format
module Stats_cache = Stardust_tensor.Stats_cache
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Schedule = Stardust_schedule.Schedule
module Auto = Stardust_core.Autoschedule
module Compile = Stardust_core.Compile
module Arch = Stardust_capstan.Arch
module Sim = Stardust_capstan.Sim
module Resources = Stardust_capstan.Resources

(** One search problem: the fixed algorithm/format/data triple the
    explorer searches schedules for. *)
type problem = {
  name : string;
  expr : Ast.assign;
  formats : (string * Format.t) list;
  inputs : (string * Tensor.t) list;
  config : Sim.config;
}

let problem ?(name = "kernel") ?(config = Sim.default_config) ~formats ~inputs
    expr =
  { name; expr; formats; inputs; config }

let problem_of_string ?name ?config ~formats ~inputs s =
  problem ?name ?config ~formats ~inputs (Parser.parse_assign s)

(** Canonical fingerprint of everything that determines a cost, except the
    point: expression, formats, per-tensor dataset fingerprints (dims,
    format, nnz, sampled data hash), and the {e full} machine-config
    fingerprint — [Hashtbl.hash] truncates its input and a collision
    between two configs sharing a cache would silently alias their
    costs. *)
let problem_key (p : problem) =
  let fmts =
    String.concat ","
      (List.map
         (fun (n, f) -> Fmt.str "%s:%s" n (Format.short_name f))
         (List.sort compare p.formats))
  in
  let data =
    String.concat ","
      (List.map
         (fun (n, t) -> Fmt.str "%s:%s" n (Stats_cache.fingerprint t))
         (List.sort (fun (a, _) (b, _) -> compare a b) p.inputs))
  in
  Fmt.str "%a|%s|%s|%s" Ast.pp_assign p.expr fmts data
    (Sim.config_fingerprint p.config)

(* ------------------------------------------------------------------ *)
(* Stats-only lower bound                                              *)
(* ------------------------------------------------------------------ *)

(** Per-problem inputs of {!Sim.estimate_bound}, extracted once per
    search.  [bc_streamed] counts the stored entries of every
    right-hand-side tensor whose last storage level is compressed: the
    estimator streams each such tensor's position/value arrays in full
    ([transfer_total] charges the whole level count even under a sliced
    co-iteration), so they are mandatory DRAM traffic and mandatory
    decode work for any schedule point.  [bc_occ] holds the subset whose
    {e fiber walks} are also mandatory: a tensor co-iterated
    multiplicatively against another sparse tensor over a shared index
    is excluded, because the intersection can visit fewer fibers than
    the tensor's own launch total. *)
type bound_ctx = {
  bc_streamed : float;
  bc_occ : Tensor.t list;
}

(* Tensors appearing under a [Mul] whose other side holds a sparse access
   sharing an index variable: their iteration may be an intersection. *)
let intersected_names (rhs : Ast.expr) ~sparse =
  let tbl = Hashtbl.create 8 in
  let sparse_accs e =
    List.filter (fun (a : Ast.access) -> sparse a.Ast.tensor)
      (Ast.accesses_of_expr e)
  in
  let rec go e =
    match e with
    | Ast.Access _ | Ast.Const _ -> ()
    | Ast.Neg x -> go x
    | Ast.Bin (op, a, b) ->
        go a;
        go b;
        if op = Ast.Mul then
          List.iter
            (fun (x : Ast.access) ->
              List.iter
                (fun (y : Ast.access) ->
                  if
                    List.exists
                      (fun v -> List.mem v y.Ast.indices)
                      x.Ast.indices
                  then begin
                    Hashtbl.replace tbl x.Ast.tensor ();
                    Hashtbl.replace tbl y.Ast.tensor ()
                  end)
                (sparse_accs b))
            (sparse_accs a)
  in
  go rhs;
  tbl

let bound_ctx (p : problem) : bound_ctx =
  let rhs_names =
    List.sort_uniq compare
      (List.map
         (fun (a : Ast.access) -> a.Ast.tensor)
         (Ast.accesses_of_expr p.expr.Ast.rhs))
  in
  let compressed_last n =
    match (List.assoc_opt n p.formats, List.assoc_opt n p.inputs) with
    | Some f, Some t
      when Format.order f > 0
           && Format.level_kind f (Format.order f - 1) = Format.Compressed ->
        Some t
    | _ -> None
  in
  let mandatory = List.filter_map compressed_last rhs_names in
  let sparse n = compressed_last n <> None in
  let intersected = intersected_names p.expr.Ast.rhs ~sparse in
  let occ =
    List.filter_map
      (fun n ->
        if Hashtbl.mem intersected n then None else compressed_last n)
      rhs_names
  in
  let streamed =
    List.fold_left
      (fun acc t ->
        let s = Stats_cache.stats t in
        let last = Array.length s.Stardust_tensor.Stats.dims - 1 in
        acc +. float_of_int s.Stardust_tensor.Stats.level_positions.(last))
      0.0 mandatory
  in
  { bc_streamed = streamed; bc_occ = occ }

(** A problem with its per-search work hoisted: the problem key is
    fingerprinted once, the inputs' dataset statistics are resolved
    into the process-wide {!Stats_cache}, and the lower bound's
    mandatory-traffic context is extracted — so each of the hundreds of
    points a search visits starts from warm statistics instead of
    re-deriving them from the raw tensors. *)
type prepared = { problem : problem; key : string; bound : bound_ctx }

let prepare (p : problem) : prepared =
  List.iter (fun (_, t) -> ignore (Stats_cache.stats t)) p.inputs;
  { problem = p; key = problem_key p; bound = bound_ctx p }

(** Largest mandatory last-level fiber-launch total at the point's inner
    parallelism — the occupancy statistic of {!Sim.estimate_bound}. *)
let occupancy (pre : prepared) ~inner_par =
  List.fold_left
    (fun acc t ->
      let last = Array.length (Tensor.dims t) - 1 in
      Float.max acc (Stats_cache.fiber_launch_total ~par:inner_par t last))
    0.0 pre.bound.bc_occ

(** Admissible lower bound on [Sim.estimate]'s cycles for one point,
    from cached dataset statistics only — roughly three orders of
    magnitude cheaper than a full evaluation.  Counted separately from
    full evaluations so budgeted searches can report both. *)
let lower_bound (pre : prepared) (pt : Point.t) =
  let module Metrics = Stardust_obs.Metrics in
  Metrics.inc
    (Metrics.counter ~help:"stats-only lower bounds computed"
       "explore_bound_evals_total");
  Sim.estimate_bound ~config:pre.problem.config
    ~streamed_elems:pre.bound.bc_streamed
    ~occupancy:(occupancy pre ~inner_par:pt.Point.inner_par)
    ~outer_par:pt.Point.outer_par ~inner_par:pt.Point.inner_par ()

(** Surrogate features of one point: log-scaled parallelism products,
    the log fiber-launch trip count at the point's vector width, and
    the format/memory flags.  Purely structural — no simulation. *)
let features (pre : prepared) (pt : Point.t) =
  let log2 x = Float.log x /. Float.log 2.0 in
  let op = float_of_int (max 1 pt.Point.outer_par)
  and ip = float_of_int (max 1 pt.Point.inner_par) in
  [|
    1.0;
    log2 op;
    log2 ip;
    log2 (op *. ip);
    log2 (1.0 +. occupancy pre ~inner_par:pt.Point.inner_par);
    (match pt.Point.gather with Point.On_chip -> 1.0 | _ -> 0.0);
    (match pt.Point.gather with Point.Off_chip -> 1.0 | _ -> 0.0);
    (match pt.Point.split with None -> 0.0 | Some _ -> 1.0);
    (match pt.Point.split with
    | None -> 0.0
    | Some (_, c) -> log2 (float_of_int (max 1 c)));
    (match pt.Point.order with None -> 0.0 | Some _ -> 1.0);
  |]

type outcome =
  | Feasible of { report : Sim.report; usage : Resources.usage }
  | Infeasible of string  (** pruned, with the pruning reason *)

type eval = { point : Point.t; outcome : outcome }

let cycles (e : eval) =
  match e.outcome with
  | Feasible { report; _ } -> Some report.Sim.cycles
  | Infeasible _ -> None

(** The secondary objective for the Pareto frontier: fraction of the chip
    the point occupies (its limiting resource's share). *)
let resource_frac (e : eval) =
  match e.outcome with
  | Feasible { usage = u; _ } ->
      Some
        (List.fold_left Float.max u.Resources.pcu_frac
           [ u.Resources.pmu_frac; u.Resources.mc_frac;
             u.Resources.shuffle_frac ])
  | Infeasible _ -> None

(** Compile and cost one point (uncached). *)
let compute (p : problem) (pt : Point.t) : eval =
  let arch = p.config.Sim.arch in
  match
    let d =
      { Auto.order = pt.Point.order; inner_par = pt.Point.inner_par;
        outer_par = pt.Point.outer_par }
    in
    let sched = Auto.schedule_point ~formats:p.formats p.expr d in
    let sched =
      match pt.Point.split with
      | None -> sched
      | Some (v, c) -> Schedule.split_up sched v (v ^ "_o") (v ^ "_i") c
    in
    let sram_budget =
      match pt.Point.gather with
      | Point.Auto -> None
      | Point.On_chip -> Some (arch.Arch.num_pmu * Arch.pmu_words arch)
      | Point.Off_chip -> Some 0
    in
    Compile.compile ?sram_budget ~name:p.name sched ~inputs:p.inputs
  with
  | exception Compile.Compile_error m ->
      { point = pt; outcome = Infeasible (Fmt.str "compile: %s" m) }
  | exception Schedule.Schedule_error m ->
      { point = pt; outcome = Infeasible (Fmt.str "schedule: %s" m) }
  | compiled -> (
      match Prune.check ~arch compiled with
      | Prune.Reject reason -> { point = pt; outcome = Infeasible reason }
      | Prune.Pass usage -> (
          match Sim.estimate ~config:p.config compiled with
          | report -> { point = pt; outcome = Feasible { report; usage } }
          | exception Sim.Sim_error { kind; message } ->
              (* a capacity guard the static prune missed — a pruned point,
                 not a search-aborting failure *)
              {
                point = pt;
                outcome =
                  Infeasible
                    (Fmt.str "simulate(%s): %s"
                       (Sim.error_kind_name kind)
                       message);
              }))

(** Memoised evaluation of one point of a {!prepared} problem (the
    per-problem key is fingerprinted once per search, not per point).

    Search metrics are counted here — per {e query}, not per cache fill:
    query counts depend only on the search trajectory, which is
    deterministic, whereas which worker fills a raced cache key is not. *)
let evaluate ~(cache : eval Pool.Cache.t) (pre : prepared) (pt : Point.t) =
  let key = pre.key and p = pre.problem in
  let module Metrics = Stardust_obs.Metrics in
  Metrics.inc
    (Metrics.counter ~help:"candidate evaluations queried"
       "explore_evals_total");
  let e =
    Pool.Cache.find_or_compute cache
      (key ^ "|" ^ Point.fingerprint pt)
      (fun () -> compute p pt)
  in
  (match e.outcome with
  | Infeasible _ ->
      Metrics.inc
        (Metrics.counter
           ~help:"evaluations rejected by pruning or capacity guards"
           "explore_pruned_total")
  | Feasible { report; _ } ->
      (* Debug guard: with STARDUST_CHECK_BOUND=1 every full evaluation
         cross-checks the stats-only lower bound's admissibility.  An
         inadmissible bound would let budgeted searches discard optimal
         points, so a violation is a hard failure, not a warning. *)
      if Sys.getenv_opt "STARDUST_CHECK_BOUND" = Some "1" then begin
        let b = lower_bound pre pt in
        if b > report.Sim.cycles +. 1e-6 then
          Fmt.failwith
            "lower_bound inadmissible: %g > %g cycles at %s (problem %s)" b
            report.Sim.cycles (Point.to_string pt) p.name
      end);
  e
