(** Evaluation layer: cost one candidate point.

    A point is built into a schedule through
    {!Stardust_core.Autoschedule.schedule_point} (so the heuristic's seed
    point evaluates to exactly the heuristic's schedule), compiled,
    pruned ({!Prune}), and finally costed with the analytic simulator
    {!Stardust_capstan.Sim.estimate} — the same oracle the paper's
    benchmarks use at scale.

    Evaluations are memoised in a {!Pool.Cache} keyed by a canonical
    fingerprint of (expression, formats, point, dataset statistics,
    machine configuration): identical queries across search strategies —
    greedy descent revisits its pivot point once per sweep — or across
    repeated [run]s sharing a cache return the stored result.  Evaluation
    is pure, so memoisation cannot change any search outcome, only its
    cost. *)

module Tensor = Stardust_tensor.Tensor
module Format = Stardust_tensor.Format
module Stats_cache = Stardust_tensor.Stats_cache
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Schedule = Stardust_schedule.Schedule
module Auto = Stardust_core.Autoschedule
module Compile = Stardust_core.Compile
module Arch = Stardust_capstan.Arch
module Sim = Stardust_capstan.Sim
module Resources = Stardust_capstan.Resources

(** One search problem: the fixed algorithm/format/data triple the
    explorer searches schedules for. *)
type problem = {
  name : string;
  expr : Ast.assign;
  formats : (string * Format.t) list;
  inputs : (string * Tensor.t) list;
  config : Sim.config;
}

let problem ?(name = "kernel") ?(config = Sim.default_config) ~formats ~inputs
    expr =
  { name; expr; formats; inputs; config }

let problem_of_string ?name ?config ~formats ~inputs s =
  problem ?name ?config ~formats ~inputs (Parser.parse_assign s)

(** Canonical fingerprint of everything that determines a cost, except the
    point: expression, formats, per-tensor dataset fingerprints (dims,
    format, nnz, sampled data hash), and the {e full} machine-config
    fingerprint — [Hashtbl.hash] truncates its input and a collision
    between two configs sharing a cache would silently alias their
    costs. *)
let problem_key (p : problem) =
  let fmts =
    String.concat ","
      (List.map
         (fun (n, f) -> Fmt.str "%s:%s" n (Format.short_name f))
         (List.sort compare p.formats))
  in
  let data =
    String.concat ","
      (List.map
         (fun (n, t) -> Fmt.str "%s:%s" n (Stats_cache.fingerprint t))
         (List.sort (fun (a, _) (b, _) -> compare a b) p.inputs))
  in
  Fmt.str "%a|%s|%s|%s" Ast.pp_assign p.expr fmts data
    (Sim.config_fingerprint p.config)

(** A problem with its per-search work hoisted: the problem key is
    fingerprinted once and the inputs' dataset statistics are resolved
    into the process-wide {!Stats_cache}, so each of the hundreds of
    points a search visits starts from warm statistics instead of
    re-deriving them from the raw tensors. *)
type prepared = { problem : problem; key : string }

let prepare (p : problem) : prepared =
  List.iter (fun (_, t) -> ignore (Stats_cache.stats t)) p.inputs;
  { problem = p; key = problem_key p }

type outcome =
  | Feasible of { report : Sim.report; usage : Resources.usage }
  | Infeasible of string  (** pruned, with the pruning reason *)

type eval = { point : Point.t; outcome : outcome }

let cycles (e : eval) =
  match e.outcome with
  | Feasible { report; _ } -> Some report.Sim.cycles
  | Infeasible _ -> None

(** The secondary objective for the Pareto frontier: fraction of the chip
    the point occupies (its limiting resource's share). *)
let resource_frac (e : eval) =
  match e.outcome with
  | Feasible { usage = u; _ } ->
      Some
        (List.fold_left Float.max u.Resources.pcu_frac
           [ u.Resources.pmu_frac; u.Resources.mc_frac;
             u.Resources.shuffle_frac ])
  | Infeasible _ -> None

(** Compile and cost one point (uncached). *)
let compute (p : problem) (pt : Point.t) : eval =
  let arch = p.config.Sim.arch in
  match
    let d =
      { Auto.order = pt.Point.order; inner_par = pt.Point.inner_par;
        outer_par = pt.Point.outer_par }
    in
    let sched = Auto.schedule_point ~formats:p.formats p.expr d in
    let sched =
      match pt.Point.split with
      | None -> sched
      | Some (v, c) -> Schedule.split_up sched v (v ^ "_o") (v ^ "_i") c
    in
    let sram_budget =
      match pt.Point.gather with
      | Point.Auto -> None
      | Point.On_chip -> Some (arch.Arch.num_pmu * Arch.pmu_words arch)
      | Point.Off_chip -> Some 0
    in
    Compile.compile ?sram_budget ~name:p.name sched ~inputs:p.inputs
  with
  | exception Compile.Compile_error m ->
      { point = pt; outcome = Infeasible (Fmt.str "compile: %s" m) }
  | exception Schedule.Schedule_error m ->
      { point = pt; outcome = Infeasible (Fmt.str "schedule: %s" m) }
  | compiled -> (
      match Prune.check ~arch compiled with
      | Prune.Reject reason -> { point = pt; outcome = Infeasible reason }
      | Prune.Pass usage -> (
          match Sim.estimate ~config:p.config compiled with
          | report -> { point = pt; outcome = Feasible { report; usage } }
          | exception Sim.Sim_error { kind; message } ->
              (* a capacity guard the static prune missed — a pruned point,
                 not a search-aborting failure *)
              {
                point = pt;
                outcome =
                  Infeasible
                    (Fmt.str "simulate(%s): %s"
                       (Sim.error_kind_name kind)
                       message);
              }))

(** Memoised evaluation of one point of a {!prepared} problem (the
    per-problem key is fingerprinted once per search, not per point).

    Search metrics are counted here — per {e query}, not per cache fill:
    query counts depend only on the search trajectory, which is
    deterministic, whereas which worker fills a raced cache key is not. *)
let evaluate ~(cache : eval Pool.Cache.t) (pre : prepared) (pt : Point.t) =
  let key = pre.key and p = pre.problem in
  let module Metrics = Stardust_obs.Metrics in
  Metrics.inc
    (Metrics.counter ~help:"candidate evaluations queried"
       "explore_evals_total");
  let e =
    Pool.Cache.find_or_compute cache
      (key ^ "|" ^ Point.fingerprint pt)
      (fun () -> compute p pt)
  in
  (match e.outcome with
  | Infeasible _ ->
      Metrics.inc
        (Metrics.counter
           ~help:"evaluations rejected by pruning or capacity guards"
           "explore_pruned_total")
  | Feasible _ -> ());
  e
