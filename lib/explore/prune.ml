(** Pruning layer: reject candidate points before paying for simulation.

    Two checks run on the compiled program, in increasing cost order:

    1. {b memory footprint} — the plain sum of on-chip allocation words
       (ignoring replication, so a lower bound on true demand) must fit
       the chip's total PMU capacity.  A kernel that fails this cannot be
       placed under any replication factor.
    2. {b resource capacity} — {!Stardust_capstan.Resources.count} with
       full replica accounting; the point is rejected when any of
       PCU/PMU/MC/shuffle demand exceeds its budget.

    Points that pass return their {!Stardust_capstan.Resources.usage} so
    the evaluator does not count twice.  (A third, implicit prune happens
    upstream: candidates that fail to compile — e.g. split loops, which
    the backends cannot lower yet — never reach this layer.) *)

module Arch = Stardust_capstan.Arch
module Resources = Stardust_capstan.Resources
module Compile = Stardust_core.Compile
open Stardust_spatial.Spatial_ir

type verdict = Pass of Resources.usage | Reject of string

(** Words of on-chip memory the program allocates, ignoring replication:
    SRAM words plus FIFO depths plus bit-vector bits (one word per bit in
    the PMU banking model). *)
let onchip_words (c : Compile.compiled) =
  let words = ref 0 in
  let alloc (a : alloc) =
    match a.kind with
    | Sram_dense | Sram_sparse | Bit_vector ->
        (match a.size with Int n -> words := !words + max 1 n | _ -> ())
    | Fifo depth -> words := !words + depth
    | Reg | Dram_dense | Dram_sparse -> ()
  in
  let rec go (s : stmt) =
    match s with
    | Alloc a -> alloc a
    | Foreach { body; _ }
    | Reduce { body; _ }
    | Foreach_scan { body; _ }
    | Reduce_scan { body; _ } ->
        List.iter go body
    | Comment _ | Let _ | Deq _ | Load_burst _ | Store_burst _ | Write _
    | Enq _ | Gen_bitvector _ ->
        ()
  in
  List.iter go c.Compile.program.accel;
  !words

let check ?(arch = Arch.default) (c : Compile.compiled) =
  let capacity = arch.Arch.num_pmu * Arch.pmu_words arch in
  let footprint = onchip_words c in
  if footprint > capacity then
    Reject
      (Fmt.str "on-chip footprint %d words exceeds chip capacity %d"
         footprint capacity)
  else
    let u = Resources.count arch c in
    if not u.Resources.feasible then
      Reject (Fmt.str "over budget: %a" Resources.pp u)
    else Pass u
