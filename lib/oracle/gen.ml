(** Random well-formed case generation.

    Every case is drawn deterministically from one integer seed (the
    splitmix64 {!Stardust_workloads.Prng}): an expression of 1–4 operand
    accesses mixing additions, subtractions, and multiplications over 0–2
    result variables and 0–3 reduction variables; per-tensor level formats
    (dense/compressed per level, occasionally a permuted mode order); a
    result format; seeded tensor data at a sampled density; and a legal
    schedule point — a loop order drawn from
    {!Stardust_core.Legality.legal_orders} plus [innerPar]/[outerPar]
    environment values.

    Well-formedness invariants the generator maintains (so that every
    backend can at least attempt the case):

    - every index variable appears in at least one input access, so
      extents are inferable by every backend's inference;
    - every additive term either covers the whole reduction space or none
      of it, the shape both the scheduler's workspace transformation and
      the reference evaluator support;
    - the sampled loop order respects every tensor's level ordering
      (compressed fibers are only reachable through their parents);
    - when no loop order over the generated formats is legal, the
      operand formats are densified until one is (fully dense tensors
      admit every order). *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Legality = Stardust_core.Legality
module Prng = Stardust_workloads.Prng

let out_pool = [ "i"; "j" ]
let red_pool = [ "k"; "l"; "m" ]
let tensor_pool = [ "A"; "B"; "C"; "D"; "E"; "F" ]

let take n l = List.filteri (fun i _ -> i < n) l

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(** Split [vars] into 1–3 non-empty chunks of at most 3 (tensor orders
    stay small enough for the dense reference to be cheap). *)
let chunk rng vars =
  let rec go acc = function
    | [] -> List.rev acc
    | rest ->
        let k = min (List.length rest) (1 + Prng.int rng 3) in
        go (take k rest :: acc)
          (List.filteri (fun i _ -> i >= k) rest)
  in
  go [] vars

(** One random level format of the given order: each level dense or
    compressed, with an occasional non-identity mode order. *)
let gen_format rng order =
  if order = 0 then Format.make []
  else
    let levels =
      List.init order (fun _ ->
          if Prng.bool rng 0.5 then Format.Dense else Format.Compressed)
    in
    let mode_order =
      if order >= 2 && Prng.bool rng 0.3 then
        Some (shuffle rng (List.init order Fun.id))
      else None
    in
    Format.make ?mode_order levels

let densify_tensor (ts : Case.tensor_spec) =
  {
    ts with
    Case.fmt =
      Format.make (List.map (fun _ -> Format.Dense) ts.Case.fmt.Format.levels);
  }

(** Random entries over the full coordinate space of [dims] at [density],
    with quarter-integer values in [±0.25, ±2] — exactly representable,
    so cross-backend differences are real bugs, not rounding noise at the
    tolerance boundary. *)
let gen_entries rng dims density =
  let rec cells = function
    | [] -> [ [] ]
    | d :: rest ->
        let tails = cells rest in
        List.concat_map
          (fun c -> List.map (fun tl -> c :: tl) tails)
          (List.init d Fun.id)
  in
  List.filter_map
    (fun coords ->
      if Prng.bool rng density then
        let v = float_of_int (1 + Prng.int rng 8) /. 4.0 in
        Some (coords, if Prng.bool rng 0.5 then -.v else v)
      else None)
    (cells dims)

(** Sample a loop order for [assign] that {!Legality} accepts.  For a
    workspace case ([perfect_nest = false]) the reduction loops execute in
    canonical (appearance) order inside the producer, so only orders whose
    reduction-variable subsequence is canonical are faithful — the rest
    are filtered out before sampling. *)
let sample_order rng ~formats (assign : Ast.assign) =
  let all = Ast.all_vars assign in
  if List.length all < 2 then Some []
  else
    let orders = Legality.legal_orders ~formats assign all in
    let orders =
      if Case.perfect_nest assign then orders
      else
        let rvars = Ast.reduction_vars assign in
        List.filter
          (fun order ->
            List.equal String.equal
              (List.filter (fun v -> List.mem v rvars) order)
              rvars)
          orders
    in
    match orders with
    | [] -> None
    | _ -> Some (List.nth orders (Prng.int rng (List.length orders)))

(** Build the expression skeleton: a covering first term (its accesses
    jointly mention every variable) plus up to two extra terms over the
    result variables only.  Returns the term list as (negated, factors)
    with factors = access index lists. *)
let gen_terms rng ~out_vars ~red_vars =
  let needed = out_vars @ red_vars in
  let covering = chunk rng (shuffle rng needed) in
  (* occasionally multiply in a redundant factor reusing bound vars *)
  let covering =
    if List.length covering < 3 && Prng.bool rng 0.3 && needed <> [] then
      covering @ [ take (1 + Prng.int rng (min 3 (List.length needed)))
                     (shuffle rng needed) ]
    else covering
  in
  let n_extra =
    if out_vars = [] || List.length covering >= 4 then 0 else Prng.int rng 2
  in
  let extras =
    List.init n_extra (fun _ ->
        [ take (1 + Prng.int rng (List.length out_vars)) (shuffle rng out_vars) ])
  in
  let sign () = Prng.bool rng 0.25 in
  (false, covering) :: List.map (fun fs -> (sign (), fs)) extras

(** Generate the raw case for [seed]; [densify] forces every operand
    fully dense (the fallback when no legal order exists otherwise). *)
let attempt ~seed ~densify rng =
  let n_out = Prng.int rng 3 in
  let out_vars = take n_out out_pool in
  let n_red =
    if out_vars = [] then 1 + Prng.int rng 3 else Prng.int rng 4
  in
  let red_vars = take n_red red_pool in
  let extents =
    List.map (fun v -> (v, 2 + Prng.int rng 4)) (out_vars @ red_vars)
  in
  let terms = gen_terms rng ~out_vars ~red_vars in
  (* name each access and build tensor specs *)
  let names = ref tensor_pool in
  let fresh () =
    match !names with
    | n :: rest ->
        names := rest;
        n
    | [] -> "T" ^ string_of_int (Prng.int rng 1000)
  in
  let specs = ref [] in
  let density = 0.25 +. (0.65 *. Prng.float rng) in
  let expr_terms =
    List.map
      (fun (neg, factors) ->
        let accesses =
          List.map
            (fun vars ->
              let tname = fresh () in
              let dims = List.map (fun v -> List.assoc v extents) vars in
              let fmt =
                let f = gen_format rng (List.length vars) in
                if densify then
                  Format.make (List.map (fun _ -> Format.Dense) f.Format.levels)
                else f
              in
              let entries = gen_entries rng dims density in
              specs :=
                { Case.tname; fmt; dims; entries } :: !specs;
              Ast.access tname vars)
            factors
        in
        let product =
          match accesses with
          | [] -> Ast.const 1.0
          | a :: rest -> List.fold_left (fun e x -> Ast.Bin (Ast.Mul, e, x)) a rest
        in
        (* an occasional constant factor exercises Const lowering *)
        let product =
          if Prng.bool rng 0.15 then
            Ast.Bin (Ast.Mul, Ast.const (float_of_int (1 + Prng.int rng 3)), product)
          else product
        in
        (neg, product))
      terms
  in
  let assign =
    {
      Ast.lhs = { Ast.tensor = "Y"; indices = out_vars };
      accum = false;
      rhs = Ast.of_linear_terms expr_terms;
    }
  in
  let tensors = List.rev !specs in
  (* Bias the result toward fully dense: compressed outputs are legal only
     in the restricted positions the planner supports, and a mostly-dense
     result keeps the compiled backends in play on most cases.  Permuted
     result mode orders are not exercised by the paper kernels; keep the
     result's storage order logical. *)
  let result_format =
    let order = List.length out_vars in
    if densify || Prng.bool rng 0.75 then
      Format.make (List.init order (fun _ -> Format.Dense))
    else Format.make (gen_format rng order).Format.levels
  in
  let formats =
    List.map (fun ts -> (ts.Case.tname, ts.Case.fmt)) tensors
    @ [ ("Y", result_format) ]
  in
  match sample_order rng ~formats assign with
  | None -> None
  | Some order ->
      let env =
        List.filter_map
          (fun knob ->
            if Prng.bool rng 0.5 then
              Some (knob, List.nth [ 1; 2; 4 ] (Prng.int rng 3))
            else None)
          [ "innerPar"; "outerPar" ]
      in
      Some
        {
          Case.seed;
          expr = Ast.assign_to_string assign;
          tensors;
          order;
          env;
          result = "Y";
          result_format;
        }

(** [gen ~seed] is the deterministic case for [seed].  Up to five format
    re-rolls are attempted when the sampled formats admit no legal loop
    order (mutually incompatible level orderings); the final fallback
    densifies every operand, which always admits one. *)
let gen ~seed : Case.t =
  let rec try_roll k =
    let rng = Prng.create (seed + (k * 0x9E3779B9)) in
    match attempt ~seed ~densify:false rng with
    | Some c -> c
    | None ->
        if k < 4 then try_roll (k + 1)
        else
          let rng = Prng.create seed in
          (match attempt ~seed ~densify:true rng with
          | Some c -> c
          | None ->
              (* fully dense formats admit every order; unreachable *)
              invalid_arg "Gen.gen: dense fallback produced no case")
  in
  try_roll 0
