(** Run one case through every applicable backend and diff the outputs.

    The dense reference evaluator is the ground truth; the backends under
    test are the CIN interpreter (scheduling semantics), the imperative
    TACO-style CPU interpreter (von Neumann lowering), the Capstan
    functional simulator (the accelerator path), and the {!Fallback}
    driver with the full retile→CPU degradation chain (the production
    entry point).  Each backend runs inside its own exception barrier: a
    crash or a watchdog trip is that backend's verdict for that case,
    never the fuzz run's.

    Structured refusals are distinguished from bugs: compile diagnostics
    and simulator capacity errors make a backend [Skip] (the case asked
    for more than the stack supports — interesting, but not divergence),
    while any other exception is a [Crash] and the simulator watchdog is a
    [Hang]. *)

module Tensor = Stardust_tensor.Tensor
module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Reference = Stardust_vonneumann.Reference
module Cin_interp = Stardust_vonneumann.Cin_interp
module Imp = Stardust_vonneumann.Imp_interp
module Fallback = Stardust_driver.Fallback
module Diag = Stardust_diag.Diag

(** Raised by a backend to refuse a case with a structured reason. *)
exception Skip_backend of string

(** A backend: a name and a function from the prepared case to the result
    tensor.  Tests substitute stubs here to exercise the oracle itself. *)
type backend = {
  bname : string;
  exec : Case.prepared -> Tensor.t;
}

type report = { backend : string; verdict : Differ.verdict }

type outcome = {
  case : Case.t;
  reports : report list;
  failing : bool;  (** any mismatch, crash, or hang *)
}

(** Conservative simulator step budget for fuzz-sized cases: generated
    tensors hold at most a few hundred values, so a case that needs more
    than a few million interpreter steps is wedged, not working. *)
let default_watchdog = 5e6

let render_diags ds = String.concat "; " (List.map Diag.to_string ds)

let find_result name results =
  match List.assoc_opt name results with
  | Some t -> t
  | None ->
      raise
        (Skip_backend
           (Printf.sprintf "backend produced no result tensor %s" name))

(** The production backend set.  Compilation is shared (lazily forced once
    per case); a compile failure skips every compiled backend with the
    diagnostics as the reason. *)
let default_backends ?(watchdog = default_watchdog) () : backend list =
  let compiled = ref None in
  let force (p : Case.prepared) =
    match !compiled with
    | Some r -> r
    | None ->
        let r =
          Compile.compile_result ~name:"fuzz" p.Case.sched
            ~inputs:p.Case.inputs
        in
        compiled := Some r;
        r
  in
  let with_compiled p k =
    match force p with
    | Error ds -> raise (Skip_backend ("compile: " ^ render_diags ds))
    | Ok c -> k c
  in
  [
    {
      bname = "cin-interp";
      exec =
        (fun p ->
          Cin_interp.run p.Case.sched ~inputs:p.Case.inputs
            ~result:p.Case.p_result ~result_format:p.Case.p_result_format);
    };
    {
      bname = "imp-interp";
      exec =
        (fun p ->
          with_compiled p (fun c ->
              let results, _tally, _func =
                Imp.run c.Compile.plan ~inputs:p.Case.inputs
              in
              find_result p.Case.p_result results));
    };
    {
      bname = "capstan-sim";
      exec =
        (fun p ->
          with_compiled p (fun c ->
              let results, _report = Sim.execute ~watchdog c in
              find_result p.Case.p_result results));
    };
    {
      bname = "fallback-cpu";
      exec =
        (fun p ->
          with_compiled p (fun c ->
              match Fallback.run ~policy:Fallback.Cpu ~watchdog c with
              | Ok o -> find_result p.Case.p_result o.Fallback.results
              | Error ds ->
                  raise (Skip_backend ("fallback: " ^ render_diags ds))));
    };
  ]

let verdict_of_exec ~rtol ~atol ~expected exec p =
  match exec p with
  | actual -> Differ.compare_result ~rtol ~atol ~expected actual
  | exception Skip_backend m -> Differ.Skip m
  | exception Sim.Sim_error { kind = Sim.Capacity; message } ->
      Differ.Skip ("capacity: " ^ message)
  | exception Sim.Sim_error { kind = Sim.Watchdog; message } ->
      Differ.Hang message
  | exception e -> Differ.Crash (Printexc.to_string e)

(** Run a prepared case.  The reference evaluator runs first; if it
    crashes, the case fails with a single ["reference"] crash report and
    the backends are skipped (there is nothing sound to diff against). *)
let run_prepared ?backends ?(watchdog = default_watchdog)
    ?(rtol = Differ.default_rtol) ?(atol = Differ.default_atol)
    (p : Case.prepared) : report list =
  let backends =
    match backends with
    | Some bs -> bs
    | None -> default_backends ~watchdog ()
  in
  match
    Reference.eval p.Case.assign ~inputs:p.Case.inputs
      ~result_format:p.Case.p_result_format
  with
  | exception e ->
      { backend = "reference"; verdict = Differ.Crash (Printexc.to_string e) }
      :: List.map
           (fun b ->
             { backend = b.bname; verdict = Differ.Skip "no reference output" })
           backends
  | expected ->
      List.map
        (fun b ->
          {
            backend = b.bname;
            verdict = verdict_of_exec ~rtol ~atol ~expected b.exec p;
          })
        backends

(** Run a raw case end to end.  An unpreparable case reports a single
    ["prepare"] crash (the generator and shrinker treat it as rejected). *)
let run_case ?backends ?watchdog ?rtol ?atol (case : Case.t) : outcome =
  let reports =
    match Case.prepare case with
    | Error m -> [ { backend = "prepare"; verdict = Differ.Crash m } ]
    | Ok p -> run_prepared ?backends ?watchdog ?rtol ?atol p
  in
  {
    case;
    reports;
    failing = List.exists (fun r -> Differ.is_failure r.verdict) reports;
  }

(** Diagnostics describing a failing outcome, one per failing backend,
    tagged with the case's seed (and corpus file when saved). *)
let diags_of_outcome ?file (o : outcome) : Diag.t list =
  let ctx =
    [ ("seed", string_of_int o.case.Case.seed); ("expr", o.case.Case.expr) ]
    @ match file with Some f -> [ ("file", f) ] | None -> []
  in
  List.filter_map
    (fun r ->
      let mk code what =
        Some
          (Diag.error ~stage:Diag.Oracle ~code
             ~context:(("backend", r.backend) :: ctx)
             "backend %s %s on fuzz case %d" r.backend what o.case.Case.seed)
      in
      match r.verdict with
      | Differ.Mismatch d ->
          mk Diag.code_oracle_mismatch
            (Printf.sprintf "disagrees with the reference (max abs diff %g)" d)
      | Differ.Crash m -> mk Diag.code_oracle_crash ("crashed: " ^ m)
      | Differ.Hang m -> mk Diag.code_oracle_hang ("hung: " ^ m)
      | Differ.Pass | Differ.Skip _ -> None)
    o.reports

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "@[<v>%a@,%a@]" Case.pp o.case
    Fmt.(
      list ~sep:cut (fun ppf r ->
          Fmt.pf ppf "  %-14s %a" r.backend Differ.pp_verdict r.verdict))
    o.reports
