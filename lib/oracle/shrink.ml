(** Greedy first-improvement case minimization.

    Given a failing case and a [fails] predicate, repeatedly try the
    smallest structural edits — in the order that shrinks fastest: drop
    whole additive terms, drop product factors, shrink index-variable
    extents, densify one storage level at a time, simplify the schedule
    point, and finally thin the stored entries — accepting the first edit
    that keeps the case failing and strictly reduces {!Case.size}, then
    restarting from the new case.  Strict size decrease plus an
    evaluation budget bounds the search.

    Every candidate is kept inside the generator's well-formedness
    envelope (each additive term covers the whole reduction space or none
    of it, every result variable still appears on the right-hand side),
    so shrinking cannot wander from the original bug into independently
    unsupported shapes. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser

(* ------------------------------------------------------------------ *)
(* Expression surgery                                                  *)
(* ------------------------------------------------------------------ *)

let rec mul_factors = function
  | Ast.Bin (Ast.Mul, a, b) -> mul_factors a @ mul_factors b
  | e -> [ e ]

let rebuild_product = function
  | [] -> Ast.const 1.0
  | f :: rest -> List.fold_left (fun e x -> Ast.Bin (Ast.Mul, e, x)) f rest

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

(** The well-formedness envelope the generator guarantees; candidates
    outside it would fail for reasons unrelated to the bug under
    minimization. *)
let well_formed (a : Ast.assign) =
  let rhs_vars = Ast.indices_of_expr a.Ast.rhs in
  List.for_all (fun v -> List.mem v rhs_vars) a.Ast.lhs.Ast.indices
  &&
  let rvars = Ast.reduction_vars a in
  List.for_all
    (fun (_, t) ->
      let vs = Ast.indices_of_expr t in
      let covered = List.filter (fun v -> List.mem v vs) rvars in
      covered = [] || List.length covered = List.length rvars)
    (Ast.linear_terms a.Ast.rhs)

(** Rebuild a case around an edited assignment: re-render the expression,
    drop tensor specs no longer accessed, and filter the loop order down
    to the surviving variables. *)
let with_assign (c : Case.t) (a : Ast.assign) : Case.t option =
  if not (well_formed a) then None
  else
    let used = Ast.tensors_of_expr a.Ast.rhs in
    let vars = Ast.all_vars a in
    Some
      {
        c with
        Case.expr = Ast.assign_to_string a;
        tensors = List.filter (fun ts -> List.mem ts.Case.tname used) c.Case.tensors;
        order = List.filter (fun v -> List.mem v vars) c.Case.order;
      }

let drop_term_candidates c (a : Ast.assign) =
  let terms = Ast.linear_terms a.Ast.rhs in
  if List.length terms < 2 then []
  else
    List.filter_map
      (fun i ->
        with_assign c
          { a with Ast.rhs = Ast.of_linear_terms (remove_nth i terms) })
      (List.init (List.length terms) Fun.id)

let drop_factor_candidates c (a : Ast.assign) =
  let terms = Ast.linear_terms a.Ast.rhs in
  List.concat
    (List.mapi
       (fun ti (neg, term) ->
         let factors = mul_factors term in
         if List.length factors < 2 then []
         else
           List.filter_map
             (fun fi ->
               let term' = rebuild_product (remove_nth fi factors) in
               let terms' =
                 List.mapi
                   (fun i t -> if i = ti then (neg, term') else t)
                   terms
               in
               with_assign c { a with Ast.rhs = Ast.of_linear_terms terms' })
             (List.init (List.length factors) Fun.id))
       terms)

(* ------------------------------------------------------------------ *)
(* Data surgery                                                        *)
(* ------------------------------------------------------------------ *)

(** The index variables a tensor spec is accessed with (first access
    wins; generated cases use one access per tensor). *)
let access_vars (a : Ast.assign) tname =
  List.find_map
    (fun (acc : Ast.access) ->
      if acc.Ast.tensor = tname then Some acc.Ast.indices else None)
    (Ast.accesses_of_expr a.Ast.rhs)

(** Shrink variable [v] to extent [ext] consistently across every tensor
    dimension indexed by it, dropping out-of-range entries. *)
let with_extent c (a : Ast.assign) v ext : Case.t option =
  if ext < 1 then None
  else
    let changed = ref false in
    let tensors =
      List.map
        (fun (ts : Case.tensor_spec) ->
          match access_vars a ts.Case.tname with
          | None -> ts
          | Some vars ->
              let dims =
                List.map2
                  (fun var d ->
                    if var = v && d > ext then (changed := true; ext) else d)
                  vars ts.Case.dims
              in
              if dims = ts.Case.dims then ts
              else
                {
                  ts with
                  Case.dims;
                  entries =
                    List.filter
                      (fun (coords, _) ->
                        List.for_all2 (fun cd d -> cd < d) coords dims)
                      ts.Case.entries;
                })
        c.Case.tensors
    in
    if !changed then Some { c with Case.tensors } else None

let shrink_dim_candidates c (a : Ast.assign) =
  let exts =
    try Hashtbl.fold (fun v e acc -> (v, e) :: acc) (Case.var_extents c a) []
    with _ -> []
  in
  List.concat_map
    (fun (v, e) ->
      List.filter_map Fun.id
        [
          (if e >= 2 then with_extent c a v (e / 2) else None);
          (if e >= 2 then with_extent c a v (e - 1) else None);
        ])
    (List.sort (fun (_, a) (_, b) -> compare b a) exts)

(* ------------------------------------------------------------------ *)
(* Format and schedule surgery                                         *)
(* ------------------------------------------------------------------ *)

let set_level levels l =
  List.mapi (fun i k -> if i = l then Format.Dense else k) levels

let with_format f levels ~identity_order =
  let mode_order =
    if identity_order then List.init (List.length levels) Fun.id
    else f.Format.mode_order
  in
  Format.make ~mode_order ~region:f.Format.region levels

let densify_candidates c =
  let per_tensor =
    List.concat
      (List.mapi
         (fun ti (ts : Case.tensor_spec) ->
           let f = ts.Case.fmt in
           let one_level =
             List.filter_map
               (fun l ->
                 if List.nth f.Format.levels l = Format.Compressed then
                   Some
                     {
                       c with
                       Case.tensors =
                         List.mapi
                           (fun i t ->
                             if i = ti then
                               { ts with
                                 Case.fmt =
                                   with_format f (set_level f.Format.levels l)
                                     ~identity_order:false }
                             else t)
                           c.Case.tensors;
                     }
                 else None)
               (List.init (Format.order f) Fun.id)
           in
           let identity = List.init (Format.order f) Fun.id in
           let unpermute =
             if List.equal Int.equal f.Format.mode_order identity then []
             else
               [
                 {
                   c with
                   Case.tensors =
                     List.mapi
                       (fun i t ->
                         if i = ti then
                           { ts with
                             Case.fmt =
                               with_format f f.Format.levels
                                 ~identity_order:true }
                         else t)
                       c.Case.tensors;
                 };
               ]
           in
           one_level @ unpermute)
         c.Case.tensors)
  in
  let result =
    let f = c.Case.result_format in
    List.filter_map
      (fun l ->
        if List.nth f.Format.levels l = Format.Compressed then
          Some
            {
              c with
              Case.result_format =
                with_format f (set_level f.Format.levels l)
                  ~identity_order:false;
            }
        else None)
      (List.init (Format.order f) Fun.id)
  in
  per_tensor @ result

let schedule_candidates c =
  (if c.Case.order = [] then [] else [ { c with Case.order = [] } ])
  @ List.mapi
      (fun i _ ->
        { c with Case.env = remove_nth i c.Case.env })
      c.Case.env

let entry_candidates c =
  List.concat
    (List.mapi
       (fun ti (ts : Case.tensor_spec) ->
         let n = List.length ts.Case.entries in
         let keep pred =
           {
             c with
             Case.tensors =
               List.mapi
                 (fun i t ->
                   if i = ti then
                     { ts with
                       Case.entries = List.filteri pred ts.Case.entries }
                   else t)
                 c.Case.tensors;
           }
         in
         if n > 8 then
           [ keep (fun i _ -> i < n / 2); keep (fun i _ -> i >= n / 2) ]
         else if n > 0 then
           List.init (min n 4) (fun d -> keep (fun i _ -> i <> d))
         else [])
       c.Case.tensors)

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)
(* ------------------------------------------------------------------ *)

let candidates (c : Case.t) : Case.t list =
  let structural =
    match Parser.parse_assign c.Case.expr with
    | exception _ -> []
    | a ->
        drop_term_candidates c a
        @ drop_factor_candidates c a
        @ shrink_dim_candidates c a
  in
  structural @ densify_candidates c @ schedule_candidates c
  @ entry_candidates c

(** [minimize ~fails case] greedily minimizes a failing case.  [fails] is
    re-evaluated on every candidate (at most [budget] times); candidates
    that do not strictly reduce {!Case.size} are never evaluated, so the
    loop terminates.  Returns the smallest still-failing case reached. *)
let minimize ?(budget = 200) ~fails (case : Case.t) : Case.t =
  let evals = ref 0 in
  let rec improve current =
    let sz = Case.size current in
    let rec try_next = function
      | [] -> current
      | cand :: rest ->
          if !evals >= budget then current
          else if Case.size cand < sz then begin
            incr evals;
            if fails cand then improve cand else try_next rest
          end
          else try_next rest
    in
    try_next (candidates current)
  in
  improve case
