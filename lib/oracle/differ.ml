(** The oracle's output comparator and per-backend verdicts.

    A backend's output is compared against the dense reference evaluator
    with the shared mixed-tolerance comparison
    ({!Stardust_tensor.Tensor.approx_equal}): the relative term absorbs
    reassociation differences in long reductions, the absolute term
    cancellation near zero.  The generator emits quarter-integer values
    precisely so that genuine divergence lands far outside these
    tolerances. *)

module Tensor = Stardust_tensor.Tensor

let default_rtol = 1e-6
let default_atol = 1e-9

(** How one backend fared on one case. *)
type verdict =
  | Pass
  | Mismatch of float  (** disagreed with the reference; max abs difference *)
  | Crash of string  (** raised an unexpected exception *)
  | Hang of string  (** simulator watchdog or per-case deadline expired *)
  | Skip of string
      (** structured refusal (compile diagnostics, chip capacity):
          no output to compare, but not a bug signal either *)

(** Verdicts that make a case a failure worth persisting. *)
let is_failure = function
  | Mismatch _ | Crash _ | Hang _ -> true
  | Pass | Skip _ -> false

let compare_result ?(rtol = default_rtol) ?(atol = default_atol) ~expected
    actual =
  if Tensor.approx_equal ~rtol ~atol expected actual then Pass
  else Mismatch (Tensor.max_abs_diff expected actual)

let verdict_to_string = function
  | Pass -> "pass"
  | Mismatch d -> Printf.sprintf "mismatch (max abs diff %g)" d
  | Crash m -> "crash: " ^ m
  | Hang m -> "hang: " ^ m
  | Skip m -> "skip: " ^ m

let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)
