(** The fuzzing loop: generate, run, shrink, persist.

    Per-case seeds are drawn from one master {!Stardust_workloads.Prng}
    seeded by the run seed, so [--cases N --seed S] is bit-for-bit
    reproducible regardless of worker count.  Cases run on the
    {!Stardust_explore.Pool} with per-case wall-clock deadlines and
    per-item failure isolation: a backend that crashes yields a verdict,
    a backend that spins past the deadline costs exactly that one case
    (reported as hung), never the run.

    Failing cases are minimized by {!Shrink.minimize} — each candidate
    re-executed under the same deadline — and persisted to the corpus
    with their verdicts and diagnostic trail. *)

module Diag = Stardust_diag.Diag
module Pool = Stardust_explore.Pool
module Prng = Stardust_workloads.Prng
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics

(* Verdict counters are bumped in the post-join [Array.iteri] over the
   slot array — deterministic input order — never inside the racing
   workers. *)
let count ?(by = 1.0) name help = Metrics.inc ~by (Metrics.counter ~help name)

type config = {
  cases : int;
  seed : int;
  corpus_dir : string option;  (** [None] disables persistence *)
  workers : int option;  (** [None]: the pool default *)
  case_timeout : float option;  (** per-case wall-clock deadline, seconds *)
  watchdog : float;  (** simulator step budget per backend run *)
  rtol : float;
  atol : float;
  shrink_budget : int;  (** max shrink-candidate evaluations per failure *)
  mk_backends : (unit -> Runner.backend list) option;
      (** test hook: substitute backends (fresh per case); [None] uses
          {!Runner.default_backends} *)
  log : string -> unit;  (** progress sink (e.g. [print_endline]) *)
}

let default_config =
  {
    cases = 100;
    seed = 42;
    corpus_dir = Some Corpus.default_dir;
    workers = None;
    case_timeout = Some 10.0;
    watchdog = Runner.default_watchdog;
    rtol = Differ.default_rtol;
    atol = Differ.default_atol;
    shrink_budget = 200;
    mk_backends = None;
    log = ignore;
  }

(** One minimized failure, ready to report. *)
type failure = {
  f_seed : int;
  original : Case.t;
  minimized : Case.t;
  outcome : Runner.outcome;  (** verdicts of the {e minimized} case *)
  path : string option;  (** corpus file, when persistence is on *)
}

type stats = {
  total : int;
  passed : int;
  failed : int;  (** disagreements and crashes (after minimization) *)
  hung : int;  (** cases that blew the per-case deadline *)
  skips : int;  (** structured backend refusals across all cases *)
  failures : failure list;
  diags : Diag.t list;  (** one [E08xx] diagnostic per failing backend *)
}

let run_one cfg (case : Case.t) : Runner.outcome =
  let backends = Option.map (fun mk -> mk ()) cfg.mk_backends in
  Runner.run_case ?backends ~watchdog:cfg.watchdog ~rtol:cfg.rtol
    ~atol:cfg.atol case

(** Re-run one candidate under the per-case deadline (a single-item pool
    map, so a hung candidate is abandoned, not inherited). *)
let timed_fails cfg (c : Case.t) : bool =
  match
    Pool.map_result ~workers:1 ?timeout:cfg.case_timeout (run_one cfg) [| c |]
  with
  | [| Ok o |] -> o.Runner.failing
  | _ -> false

let count_skips (o : Runner.outcome) =
  List.length
    (List.filter
       (fun (r : Runner.report) ->
         match r.Runner.verdict with Differ.Skip _ -> true | _ -> false)
       o.Runner.reports)

let persist cfg ~diags (o : Runner.outcome) : string option =
  match cfg.corpus_dir with
  | None -> None
  | Some dir ->
      Some (Corpus.save ~dir ~diags ~reports:o.Runner.reports o.Runner.case)

(** Minimize a failing outcome and persist the result. *)
let handle_failure cfg seed (o : Runner.outcome) : failure * Diag.t list =
  cfg.log
    (Fmt.str "case %d (seed %d) failed; shrinking (size %d)..."
       o.Runner.case.Case.seed seed
       (Case.size o.Runner.case));
  let minimized =
    Shrink.minimize ~budget:cfg.shrink_budget ~fails:(timed_fails cfg)
      o.Runner.case
  in
  let final = run_one cfg minimized in
  (* If the deadline-free rerun no longer fails (flaky timing), report the
     original outcome instead — never lose the evidence. *)
  let final = if final.Runner.failing then final else o in
  let diags = Runner.diags_of_outcome final in
  let path = persist cfg ~diags final in
  cfg.log
    (Fmt.str "  shrunk to size %d%s"
       (Case.size final.Runner.case)
       (match path with Some p -> ", saved " ^ p | None -> ""));
  let diags =
    match path with
    | Some p -> Runner.diags_of_outcome ~file:p final
    | None -> diags
  in
  ({ f_seed = seed; original = o.Runner.case; minimized = final.Runner.case;
     outcome = final; path },
   diags)

let hang_diag seed seconds =
  Diag.error ~stage:Diag.Oracle ~code:Diag.code_oracle_hang
    ~context:[ ("seed", string_of_int seed) ]
    "fuzz case for seed %d exceeded its %gs deadline and was abandoned" seed
    seconds

let crash_diag seed exn =
  Diag.error ~stage:Diag.Oracle ~code:Diag.code_oracle_crash
    ~context:[ ("seed", string_of_int seed) ]
    "fuzz harness crashed on seed %d: %s" seed (Printexc.to_string exn)

(** Persist a case that hung the whole pipeline (no verdicts to record
    beyond the deadline itself); generation is re-run in the calling
    domain — it is bounded and cheap, unlike execution. *)
let persist_hang cfg seed seconds : string option =
  match cfg.corpus_dir with
  | None -> None
  | Some dir -> (
      match Gen.gen ~seed with
      | case ->
          let reports =
            [
              {
                Runner.backend = "pool";
                verdict =
                  Differ.Hang (Fmt.str "exceeded %gs case deadline" seconds);
              };
            ]
          in
          Some (Corpus.save ~dir ~reports case)
      | exception _ -> None)

(** Run the loop.  Returns aggregate statistics; [stats.failures] holds
    every minimized repro in seed order. *)
let run (cfg : config) : stats =
  Trace.with_span ~cat:(Diag.stage_name Diag.Oracle)
    ~args:
      [ ("cases", string_of_int cfg.cases); ("seed", string_of_int cfg.seed) ]
    "fuzz run"
  @@ fun () ->
  let t_start = Unix.gettimeofday () in
  let seeds = Array.make (max 0 cfg.cases) 0 in
  let master = Prng.create cfg.seed in
  for i = 0 to Array.length seeds - 1 do
    seeds.(i) <- Prng.int master 0x3FFFFFFF
  done;
  cfg.log
    (Fmt.str "fuzzing %d cases (seed %d, %s)" cfg.cases cfg.seed
       (match cfg.case_timeout with
       | Some s -> Fmt.str "%gs case deadline" s
       | None -> "no case deadline"));
  let results =
    Pool.map_result ?timeout:cfg.case_timeout ?workers:cfg.workers
      (fun seed -> run_one cfg (Gen.gen ~seed))
      seeds
  in
  let passed = ref 0 and hung = ref 0 and crashed = ref 0 and skips = ref 0 in
  let failures = ref [] and diags = ref [] in
  Array.iteri
    (fun i result ->
      let seed = seeds.(i) in
      match result with
      | Ok o when not o.Runner.failing ->
          incr passed;
          skips := !skips + count_skips o
      | Ok o ->
          skips := !skips + count_skips o;
          let f, ds = handle_failure cfg seed o in
          failures := f :: !failures;
          diags := !diags @ ds
      | Error (Pool.Failure_timed_out { seconds }) ->
          incr hung;
          let path = persist_hang cfg seed seconds in
          let d = hang_diag seed seconds in
          let d =
            match path with
            | Some p -> { d with Diag.context = d.Diag.context @ [ ("file", p) ] }
            | None -> d
          in
          cfg.log (Fmt.str "case for seed %d hung; abandoned" seed);
          diags := !diags @ [ d ]
      | Error (Pool.Failure_raised { exn; _ }) ->
          (* harness-level crash (e.g. the generator itself): no outcome to
             minimize, report the exception as-is *)
          let exn =
            match exn with Pool.Worker_error { exn; _ } -> exn | e -> e
          in
          incr crashed;
          diags := !diags @ [ crash_diag seed exn ];
          cfg.log (Fmt.str "harness crashed on seed %d" seed))
    results;
  let failures = List.rev !failures in
  count ~by:(float_of_int cfg.cases) "fuzz_cases_total" "fuzz cases generated";
  count ~by:(float_of_int !passed) "fuzz_passed_total" "fuzz cases that agreed";
  count
    ~by:(float_of_int (List.length failures + !crashed))
    "fuzz_failed_total" "fuzz cases with disagreements or crashes";
  count ~by:(float_of_int !crashed) "fuzz_crashed_total"
    "fuzz cases where the harness itself crashed";
  count ~by:(float_of_int !hung) "fuzz_hung_total"
    "fuzz cases abandoned past the case deadline";
  count ~by:(float_of_int !skips) "fuzz_skips_total"
    "structured backend refusals across all cases";
  (let elapsed = Unix.gettimeofday () -. t_start in
   if elapsed > 0.0 then
     Metrics.set
       (Metrics.gauge ~volatile:true
          ~help:"fuzz throughput of the last run (wall clock)"
          "fuzz_cases_per_second")
       (float_of_int cfg.cases /. elapsed));
  {
    total = cfg.cases;
    passed = !passed;
    failed = List.length failures + !crashed;
    hung = !hung;
    skips = !skips;
    failures;
    diags = !diags;
  }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "@[<v>%d cases: %d passed, %d failed, %d hung (%d backend skips)%a@]"
    s.total s.passed s.failed s.hung s.skips
    Fmt.(
      list ~sep:Fmt.nop (fun ppf (f : failure) ->
          Fmt.pf ppf "@,@,%a%a" Runner.pp_outcome f.outcome
            (option (fun ppf p -> Fmt.pf ppf "@,  saved: %s" p))
            f.path))
    s.failures
