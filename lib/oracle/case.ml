(** A fuzz case: one fully self-contained differential-testing input.

    A case carries everything needed to re-execute it bit-for-bit — the
    index-notation expression (as the string the parser accepts), every
    input tensor's format, dimensions, and explicit nonzero entries, the
    sampled schedule point (loop order and environment), and the result's
    name and format.  The generator's seed rides along as provenance, but
    replay never re-generates: a shrunk case has drifted arbitrarily far
    from what its seed would produce, so the case file is the truth.

    {!prepare} elaborates a case into the runnable form every backend
    consumes (parsed assignment, canonical schedule with the point
    applied, packed tensors); an unpreparable case is reported as a
    malformed case, never a backend verdict. *)

module Json = Stardust_json.Json
module Tensor = Stardust_tensor.Tensor
module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Schedule = Stardust_schedule.Schedule
module Diag = Stardust_diag.Diag
module Trace = Stardust_obs.Trace

type tensor_spec = {
  tname : string;
  fmt : Format.t;
  dims : int list;
  entries : (int list * float) list;  (** explicit nonzeros, any order *)
}

type t = {
  seed : int;  (** generator seed (provenance only; replay uses the data) *)
  expr : string;  (** index-notation assignment, e.g. ["Y(i) = A(i,j) * x(j)"] *)
  tensors : tensor_spec list;
  order : string list;
      (** sampled loop order over every index variable; [[]] = canonical *)
  env : (string * int) list;  (** environment knobs, e.g. [innerPar] *)
  result : string;
  result_format : Format.t;
}

(** The runnable elaboration of a case. *)
type prepared = {
  p_seed : int;  (** the case's seed, for provenance in backend stubs *)
  assign : Ast.assign;
  sched : Schedule.t;  (** canonical schedule + reorder + environment *)
  inputs : (string * Tensor.t) list;
  p_result : string;
  p_result_format : Format.t;
}

(* ------------------------------------------------------------------ *)
(* Format codec                                                        *)
(* ------------------------------------------------------------------ *)

(** Compact format spelling for corpus files: one char per level ([d]
    dense, [c] compressed) plus [:DIGITS] when the mode order is not the
    identity — ["dc"] is CSR, ["dc:10"] is CSC, ["scalar"] is order 0. *)
let format_to_string (f : Format.t) =
  if Format.order f = 0 then "scalar"
  else
    let levels =
      String.concat ""
        (List.map
           (function Format.Dense -> "d" | Format.Compressed -> "c")
           f.Format.levels)
    in
    let identity = List.init (Format.order f) Fun.id in
    if List.equal Int.equal f.Format.mode_order identity then levels
    else
      levels ^ ":"
      ^ String.concat "" (List.map string_of_int f.Format.mode_order)

let format_of_string s =
  if s = "scalar" then Format.make []
  else
    let levels_s, order_s =
      match String.index_opt s ':' with
      | None -> (s, None)
      | Some i ->
          ( String.sub s 0 i,
            Some (String.sub s (i + 1) (String.length s - i - 1)) )
    in
    let levels =
      List.init (String.length levels_s) (fun i ->
          match levels_s.[i] with
          | 'd' -> Format.Dense
          | 'c' -> Format.Compressed
          | c -> invalid_arg (Printf.sprintf "Case.format_of_string: %C" c))
    in
    let mode_order =
      Option.map
        (fun os ->
          List.init (String.length os) (fun i -> Char.code os.[i] - Char.code '0'))
        order_s
    in
    Format.make ?mode_order levels

(* ------------------------------------------------------------------ *)
(* Structure queries                                                   *)
(* ------------------------------------------------------------------ *)

(** Total operand accesses on the right-hand side (the "operand count" the
    shrinker minimizes). *)
let num_operands (c : t) =
  match Parser.parse_assign c.expr with
  | a -> List.length (Ast.accesses_of_expr a.Ast.rhs)
  | exception _ -> max_int

(** A strictly-decreasing measure of case complexity: the shrinker only
    accepts steps that reduce it, which bounds the search and defines
    "smaller".  Operands weigh most (dropping one simplifies every
    backend's trace), then extents, stored entries, compressed levels, and
    schedule-point structure. *)
let size (c : t) =
  let operands = num_operands c in
  let operands = if operands = max_int then 1000 else operands in
  (100 * operands)
  + List.fold_left
      (fun acc ts ->
        acc
        + List.fold_left ( + ) 0 ts.dims
        + List.length ts.entries
        + Format.num_compressed ts.fmt
        + (let identity = List.init (Format.order ts.fmt) Fun.id in
           if List.equal Int.equal ts.fmt.Format.mode_order identity then 0
           else 1))
      0 c.tensors
  + Format.num_compressed c.result_format
  + (if c.order = [] then 0 else 1)
  + List.length c.env

(** Does every additive term of [a] cover the full reduction space?  When
    true the canonical CIN is one perfect forall nest over every index
    variable (so a full loop order can be applied by [reorder]); when
    false the scheduler introduces a scalar workspace and only the result
    variables form the outer nest. *)
let perfect_nest (a : Ast.assign) =
  let rvars = Ast.reduction_vars a in
  rvars = []
  || List.for_all
       (fun (_, t) ->
         List.for_all
           (fun v -> List.mem v (Ast.indices_of_expr t))
           rvars)
       (Ast.linear_terms a.Ast.rhs)

(** The extent of every index variable, as implied by the input tensors.
    @raise Invalid_argument on a conflict (a malformed case). *)
let var_extents (c : t) (a : Ast.assign) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (acc : Ast.access) ->
      match List.find_opt (fun ts -> ts.tname = acc.tensor) c.tensors with
      | None -> ()
      | Some ts ->
          List.iteri
            (fun d v ->
              let n = List.nth ts.dims d in
              match Hashtbl.find_opt tbl v with
              | None -> Hashtbl.add tbl v n
              | Some n' when n' = n -> ()
              | Some n' ->
                  invalid_arg
                    (Printf.sprintf
                       "Case.var_extents: %s is both %d and %d" v n' n))
            acc.indices)
    (Ast.accesses_of_expr a.Ast.rhs);
  tbl

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

(** [prepare c] parses, schedules (applying the case's loop order and
    environment), and packs the input tensors.  Any failure — parse
    error, illegal schedule point, inconsistent tensor data — is a
    malformed case: [Error reason], never an exception. *)
let prepare (c : t) : (prepared, string) result =
  match
    let assign =
      Trace.with_span ~cat:(Diag.stage_name Diag.Parse) "parse case"
        (fun () -> Parser.parse_assign c.expr)
    in
    let formats =
      List.map (fun ts -> (ts.tname, ts.fmt)) c.tensors
      @ [ (c.result, c.result_format) ]
    in
    let sched =
      Trace.with_span ~cat:(Diag.stage_name Diag.Schedule) "schedule case"
        (fun () -> Schedule.of_assign ~formats assign)
    in
    let sched =
      match c.order with
      | [] -> sched
      | order ->
          (* The reorderable nest is every variable for a perfect nest,
             and just the result variables when a workspace was
             introduced (the reduction loops then live in the producer,
             whose order stays canonical). *)
          let nest =
            if perfect_nest assign then order
            else
              List.filter
                (fun v -> List.mem v assign.Ast.lhs.Ast.indices)
                order
          in
          if List.length nest < 2 then sched else Schedule.reorder sched nest
    in
    let sched =
      List.fold_left
        (fun s (k, v) -> Schedule.set_environment s k v)
        sched c.env
    in
    let inputs =
      List.map
        (fun ts ->
          ( ts.tname,
            Tensor.of_entries ~name:ts.tname ~format:ts.fmt ~dims:ts.dims
              ts.entries ))
        c.tensors
    in
    { p_seed = c.seed; assign; sched; inputs; p_result = c.result;
      p_result_format = c.result_format }
  with
  | p -> Ok p
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let tensor_to_json ts =
  Json.Obj
    [
      ("name", Json.Str ts.tname);
      ("format", Json.Str (format_to_string ts.fmt));
      ("dims", Json.Arr (List.map (fun d -> Json.Num (float_of_int d)) ts.dims));
      ( "entries",
        Json.Arr
          (List.map
             (fun (coords, v) ->
               Json.Arr
                 [
                   Json.Arr
                     (List.map (fun c -> Json.Num (float_of_int c)) coords);
                   Json.Num v;
                 ])
             ts.entries) );
    ]

let to_json (c : t) =
  Json.Obj
    [
      ("seed", Json.Num (float_of_int c.seed));
      ("expr", Json.Str c.expr);
      ("result", Json.Str c.result);
      ("result_format", Json.Str (format_to_string c.result_format));
      ("order", Json.Arr (List.map (fun v -> Json.Str v) c.order));
      ( "env",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) c.env)
      );
      ("tensors", Json.Arr (List.map tensor_to_json c.tensors));
    ]

let tensor_of_json j =
  {
    tname = Json.to_str (Json.member_exn "name" j);
    fmt = format_of_string (Json.to_str (Json.member_exn "format" j));
    dims = List.map Json.to_int (Json.to_list (Json.member_exn "dims" j));
    entries =
      List.map
        (fun e ->
          match Json.to_list e with
          | [ coords; v ] ->
              (List.map Json.to_int (Json.to_list coords), Json.to_float v)
          | _ -> raise (Json.Parse_error ("malformed entry", 0)))
        (Json.to_list (Json.member_exn "entries" j));
  }

let of_json j =
  {
    seed = Json.to_int (Json.member_exn "seed" j);
    expr = Json.to_str (Json.member_exn "expr" j);
    result = Json.to_str (Json.member_exn "result" j);
    result_format =
      format_of_string (Json.to_str (Json.member_exn "result_format" j));
    order = List.map Json.to_str (Json.to_list (Json.member_exn "order" j));
    env =
      List.map
        (fun (k, v) -> (k, Json.to_int v))
        (Json.to_obj (Json.member_exn "env" j));
    tensors =
      List.map tensor_of_json (Json.to_list (Json.member_exn "tensors" j));
  }

let equal (a : t) (b : t) = to_json a = to_json b

let pp ppf (c : t) =
  Fmt.pf ppf "@[<v>case (seed %d): %s@,schedule: order=[%a] env=[%a]@,%a@]"
    c.seed c.expr
    Fmt.(list ~sep:comma string)
    c.order
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    c.env
    Fmt.(
      list ~sep:cut (fun ppf ts ->
          Fmt.pf ppf "  %s: %s %a, %d nnz" ts.tname (format_to_string ts.fmt)
            (brackets (list ~sep:(any "x") int))
            ts.dims (List.length ts.entries)))
    c.tensors
