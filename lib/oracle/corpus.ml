(** The crash corpus: failing cases persisted as JSON files.

    Each file is self-contained — the minimized case (everything replay
    needs), the original seed, the per-backend verdicts observed when the
    case was found, and the diagnostic trail — so a corpus entry is a
    bug report that re-executes deterministically with
    [stardustc replay corpus/<file>.json].

    File names are content-addressed ([case_<seed>_<hash8>.json]): the
    same minimized case found from the same seed lands on the same path,
    so repeated fuzz runs do not pile up duplicates. *)

module Json = Stardust_json.Json
module Diag = Stardust_diag.Diag

let default_dir = "corpus"

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Corpus: %s exists and is not a directory" dir)

(* A tiny stable content hash (FNV-1a, 64-bit) — only used to make file
   names unique and reproducible, never for security. *)
let fnv1a64 (s : string) =
  let p = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) p)
    s;
  !h

let filename (c : Case.t) =
  let h = fnv1a64 (Json.to_string (Case.to_json c)) in
  Printf.sprintf "case_%d_%08Lx.json" c.Case.seed
    (Int64.logand h 0xFFFFFFFFL)

let entry_json ?(diags = []) ~(reports : Runner.report list) (c : Case.t) =
  Json.Obj
    [
      ("case", Case.to_json c);
      ( "verdicts",
        Json.Arr
          (List.map
             (fun (r : Runner.report) ->
               Json.Obj
                 [
                   ("backend", Json.Str r.Runner.backend);
                   ( "verdict",
                     Json.Str (Differ.verdict_to_string r.Runner.verdict) );
                 ])
             reports) );
      ("diags", Json.Arr (List.map (fun d -> Json.Str (Diag.to_string d)) diags));
    ]

(** Persist a failing case; returns the path written. *)
let save ?(dir = default_dir) ?diags ~reports (c : Case.t) : string =
  ensure_dir dir;
  let path = Filename.concat dir (filename c) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (entry_json ?diags ~reports c));
      output_string oc "\n");
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load a corpus entry (or a bare case file) back into a {!Case.t}. *)
let load path : Case.t =
  let j = Json.parse (read_file path) in
  match Json.member "case" j with
  | Some cj -> Case.of_json cj
  | None -> Case.of_json j

(** The verdict strings recorded when the entry was saved (informational;
    replay recomputes fresh ones). *)
let load_verdicts path : (string * string) list =
  let j = Json.parse (read_file path) in
  match Json.member "verdicts" j with
  | None -> []
  | Some (Json.Arr l) ->
      List.filter_map
        (fun v ->
          match (Json.member "backend" v, Json.member "verdict" v) with
          | Some (Json.Str b), Some (Json.Str s) -> Some (b, s)
          | _ -> None)
        l
  | Some _ -> []

let list ?(dir = default_dir) () : string list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat dir)
