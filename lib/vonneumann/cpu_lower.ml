(** Lowering scheduled CIN to imperative (von Neumann) code — the TACO CPU
    path the paper uses as its baseline.

    The same compilation plan that drives the Spatial backend drives this
    one, but the lowering follows the imperative programming model of
    Figure 4a: foralls become for-loops (position loops over compressed
    fibers), compressed-compressed co-iteration becomes a two-way merge
    while-loop with specialized branches (TACO's iteration-lattice
    decomposition of unions into disjoint regions), and sparse outputs are
    appended element-at-a-time with explicit counters. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
module Plan = Stardust_core.Plan
module Coiter = Stardust_core.Coiter
open Imperative_ir

exception Cpu_lower_error of string

let err fmt = Fmt.kstr (fun s -> raise (Cpu_lower_error s)) fmt

let n_pos x l = Printf.sprintf "%s%d_pos" x (l + 1)
let n_crd x l = Printf.sprintf "%s%d_crd" x (l + 1)
let n_vals x = x ^ "_vals"
let n_cnt x l = Printf.sprintf "%s%d_cnt" x (l + 1)
let n_cursor v x = Printf.sprintf "p%s_%s" x v
let n_bound v x = Printf.sprintf "p%s_%s_end" x v

type env = {
  coord : (string * exp) list;
  pos : ((string * int) * exp) list;  (** global positions *)
  absent : string list;  (** tensors with no entry at the current point *)
}

let empty_env = { coord = []; pos = []; absent = [] }

type state = { plan : Plan.t; mutable counters : string list }

let sched st = st.plan.Plan.sched
let fmt_of st x = Schedule.format_of (sched st) x
let is_temp st x = List.mem x (sched st).Schedule.temporaries
let is_result st x = List.mem x st.plan.Plan.results

let coord_of env v =
  match List.assoc_opt v env.coord with
  | Some e -> e
  | None -> err "coordinate of %s unavailable" v

let pos_of env x l =
  if l < 0 then int 0
  else
    match List.assoc_opt (x, l) env.pos with
    | Some e -> e
    | None -> err "position of %s level %d unavailable" x l

let set_pos env x l e = { env with pos = ((x, l), e) :: env.pos }

let dim_of_level st x l =
  let m = Plan.meta st.plan x in
  m.Plan.dims.(Format.dim_of_level m.Plan.fmt l)

(** Update positions of dense levels bound to [v] (same rule as the Spatial
    lowerer, but all positions are global). *)
let extend_dense st env v coord =
  let env = { env with coord = (v, coord) :: env.coord } in
  List.fold_left
    (fun env (x, _) ->
      if List.mem x env.absent then env
      else
        let fmt = (Plan.meta st.plan x).Plan.fmt in
        let rec levels env l =
          if l >= Format.order fmt then env
          else
            let d = Format.dim_of_level fmt l in
            let idx = Plan.access_indices st.plan x in
            if List.nth idx d = v && Format.level_kind fmt l = Format.Dense then
              let parent = pos_of env x (l - 1) in
              let dim = dim_of_level st x l in
              let g =
                match parent with
                | Const 0.0 -> coord
                | p -> (p *: int dim) +: coord
              in
              levels (set_pos env x l g) (l + 1)
            else levels env (l + 1)
        in
        levels env 0)
    env st.plan.Plan.metas

(* -------------------------------------------------------------------- *)
(* Expressions                                                           *)
(* -------------------------------------------------------------------- *)

let read_vals st env x =
  if List.mem x env.absent then Const 0.0
  else
    let fmt = fmt_of st x in
    if Format.order fmt = 0 then
      (* scalar temporaries are locals; scalar results are 1-cell arrays *)
      if is_temp st x then Var (n_vals x) else Idx (n_vals x, int 0)
    else Idx (n_vals x, pos_of env x (Format.order fmt - 1))

let rec lower_expr st env (e : Ast.expr) : exp =
  match e with
  | Ast.Access { tensor; _ } -> read_vals st env tensor
  | Ast.Const f -> Const f
  | Ast.Neg e -> Neg (lower_expr st env e)
  | Ast.Bin (op, a, b) ->
      let o = match op with Ast.Add -> `Add | Ast.Sub -> `Sub | Ast.Mul -> `Mul in
      Bin (o, lower_expr st env a, lower_expr st env b)

(* -------------------------------------------------------------------- *)
(* Assignments and result assembly                                       *)
(* -------------------------------------------------------------------- *)

let lower_assign st env (a : Ast.assign) : stmt list =
  let r = a.Ast.lhs.Ast.tensor in
  let value = lower_expr st env a.Ast.rhs in
  let fmt = fmt_of st r in
  if Format.order fmt = 0 then
    if is_temp st r then
      if a.Ast.accum then [ Assign (n_vals r, Var (n_vals r) +: value) ]
      else [ Assign (n_vals r, value) ]
    else [ Store { arr = n_vals r; idx = int 0; value; accum = a.Ast.accum } ]
  else begin
    let last = Format.order fmt - 1 in
    match Format.level_kind fmt last with
    | Format.Dense ->
        [ Store { arr = n_vals r; idx = pos_of env r last; value;
                  accum = a.Ast.accum } ]
    | Format.Compressed ->
        if a.Ast.accum then
          err "cannot accumulate into appended sparse output %s" r;
        let v_last = Plan.level_var st.plan r last in
        let p = pos_of env r last in
        [
          Store { arr = n_vals r; idx = p; value; accum = false };
          Store { arr = n_crd r last; idx = p; value = coord_of env v_last;
                  accum = false };
        ]
  end

(** Coordinate enqueue for mid-level compressed result levels at [v]. *)
let mid_level_appends st env v =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else
        let fmt = fmt_of st r in
        let n = Format.order fmt in
        List.concat
          (List.init n (fun l ->
               if
                 l < n - 1
                 && Format.level_kind fmt l = Format.Compressed
                 && Plan.level_var st.plan r l = v
               then
                 [ Store { arr = n_crd r l; idx = pos_of env r l;
                           value = coord_of env v; accum = false } ]
               else [])))
    st.plan.Plan.results

(** Position-array finalisation after the loop over [v] (in the parent
    scope): [R{l}_pos[p+1] = cnt]. *)
let pos_finalize st env v =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else
        let fmt = fmt_of st r in
        List.concat
          (List.init (Format.order fmt) (fun l ->
               if
                 Format.level_kind fmt l = Format.Compressed
                 && Plan.level_var st.plan r l = v
               then
                 let parent = pos_of env r (l - 1) in
                 [ Store { arr = n_pos r l; idx = parent +: int 1;
                           value = Var (n_cnt r l); accum = false } ]
               else [])))
    st.plan.Plan.results

(** Position expressions for result levels at [v]: sparse outputs advance
    an explicit counter. *)
let result_positions st env v =
  List.fold_left
    (fun env r ->
      if is_temp st r then env
      else
        let fmt = fmt_of st r in
        let rec levels env l =
          if l >= Format.order fmt then env
          else if
            Format.level_kind fmt l = Format.Compressed
            && Plan.level_var st.plan r l = v
          then begin
            if not (List.mem (n_cnt r l) st.counters) then
              st.counters <- n_cnt r l :: st.counters;
            levels (set_pos env r l (Var (n_cnt r l))) (l + 1)
          end
          else levels env (l + 1)
        in
        levels env 0)
    env st.plan.Plan.results

(** Counter bumps after one iteration of the loop over [v]. *)
let counter_bumps st v =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else
        let fmt = fmt_of st r in
        List.concat
          (List.init (Format.order fmt) (fun l ->
               if
                 Format.level_kind fmt l = Format.Compressed
                 && Plan.level_var st.plan r l = v
               then [ Incr (n_cnt r l) ]
               else [])))
    st.plan.Plan.results

(* -------------------------------------------------------------------- *)
(* Statement lowering                                                    *)
(* -------------------------------------------------------------------- *)

let rec lower_stmt st env (s : Cin.stmt) : stmt list =
  match s with
  | Cin.Sequence l -> List.concat_map (lower_stmt st env) l
  | Cin.Where { consumer; producer } ->
      let temp_decls =
        List.concat_map
          (fun x ->
            if is_temp st x && Format.order (fmt_of st x) = 0 then
              [ Decl { var = n_vals x; init = Const 0.0; is_int = false } ]
            else [])
          (Cin.tensors_written producer)
      in
      temp_decls @ lower_stmt st env producer @ lower_stmt st env consumer
  | Cin.Mapped { body; _ } ->
      (* backend mappings are a no-op on the CPU: lower the semantics *)
      lower_stmt st env body
  | Cin.Assign a -> lower_assign st env a
  | Cin.Forall { index; body } -> lower_forall st env index body

and lower_forall st env v body : stmt list =
  let info = Plan.loop_info st.plan v in
  (* Remove iterators of currently-absent tensors (lattice specialization:
     inside a union branch where one operand has no fiber, co-iteration
     degenerates). *)
  let filter_its its =
    List.filter
      (fun (it : Coiter.iterator) -> not (List.mem it.Coiter.tensor env.absent))
      its
  in
  let plan =
    match info.Plan.plan with
    | Coiter.Scan_plan { op; a; b; dense } -> (
        match filter_its [ a; b ] with
        | [ x; y ] -> Some (Coiter.Scan_plan { op; a = x; b = y; dense })
        | [ x ] -> Some (Coiter.Pos_plan { lead = x; dense })
        | _ -> None)
    | Coiter.Pos_plan { lead; dense } -> (
        match filter_its [ lead ] with
        | [ x ] -> Some (Coiter.Pos_plan { lead = x; dense })
        | _ -> None)
    | p -> Some p
  in
  let parallel = info.Plan.depth = 0 in
  match plan with
  | None ->
      (* Every fiber driving this loop belongs to a tensor that is absent
         in the current lattice branch: the loop runs zero iterations (an
         empty intersection, or a union sub-fiber that contributes
         nothing).  Emit only what an empty loop would have left behind —
         the result-position finalization. *)
      pos_finalize st env v
  | Some plan ->
  match plan with
  | Coiter.Dense_plan _ ->
      let env' = extend_dense st env v (Var v) in
      let env' = result_positions st env' v in
      let inner =
        mid_level_appends st env' v
        @ lower_stmt st env' body
        @ counter_bumps st v
      in
      For { var = v; lo = int 0; hi = int info.Plan.extent; body = inner; parallel }
      :: pos_finalize st env v
  | Coiter.Pos_plan { lead; _ } ->
      let x = lead.Coiter.tensor and l = lead.Coiter.level in
      let q = n_cursor v x in
      let parent = pos_of env x (l - 1) in
      let coord_decl = Decl { var = v; init = Idx (n_crd x l, Var q); is_int = true } in
      let env' = { env with coord = (v, Var v) :: env.coord } in
      let env' = set_pos env' x l (Var q) in
      let env' = extend_dense st env' v (Var v) in
      (* Compressed result levels are appended through explicit counters
         (uniform with the merge branches, as TACO generates). *)
      let env' = result_positions st env' v in
      let inner =
        (coord_decl :: mid_level_appends st env' v)
        @ lower_stmt st env' body
        @ counter_bumps st v
      in
      For
        {
          var = q;
          lo = Idx (n_pos x l, parent);
          hi = Idx (n_pos x l, parent +: int 1);
          body = inner;
          parallel;
        }
      :: pos_finalize st env v
  | Coiter.Scan_plan { op; a; b; _ } -> lower_merge st env v body ~op ~a ~b

(** Two-way merge co-iteration (TACO's while-loop strategy).  Union merges
    emit three specialized branches plus two tail loops; intersections
    advance the lagging cursor. *)
and lower_merge st env v body ~op ~(a : Coiter.iterator) ~(b : Coiter.iterator) :
    stmt list =
  let xa = a.Coiter.tensor and la = a.Coiter.level in
  let xb = b.Coiter.tensor and lb = b.Coiter.level in
  let ca = n_cursor v xa and cb = n_cursor v xb in
  let ea = n_bound v xa and eb = n_bound v xb in
  let header =
    [
      Decl { var = ca; init = Idx (n_pos xa la, pos_of env xa (la - 1)); is_int = true };
      Decl { var = ea; init = Idx (n_pos xa la, pos_of env xa (la - 1) +: int 1); is_int = true };
      Decl { var = cb; init = Idx (n_pos xb lb, pos_of env xb (lb - 1)); is_int = true };
      Decl { var = eb; init = Idx (n_pos xb lb, pos_of env xb (lb - 1) +: int 1); is_int = true };
    ]
  in
  (* Specialized body for one region of the merge lattice. *)
  let branch_body ~absent coord =
    let env' = { env with absent = absent @ env.absent } in
    let env' = { env' with coord = (v, coord) :: env'.coord } in
    let env' =
      if List.mem xa absent then env' else set_pos env' xa la (Var ca)
    in
    let env' =
      if List.mem xb absent then env' else set_pos env' xb lb (Var cb)
    in
    let env' = extend_dense st env' v coord in
    let env' = result_positions st env' v in
    mid_level_appends st env' v @ lower_stmt st env' body @ counter_bumps st v
  in
  match op with
  | `And ->
      let va = Printf.sprintf "%s_%s" v xa and vb = Printf.sprintf "%s_%s" v xb in
      header
      @ [
          While
            {
              cond = And (Var ca <: Var ea, Var cb <: Var eb);
              body =
                [
                  Decl { var = va; init = Idx (n_crd xa la, Var ca); is_int = true };
                  Decl { var = vb; init = Idx (n_crd xb lb, Var cb); is_int = true };
                  If
                    {
                      cond = Var va =: Var vb;
                      then_ = branch_body ~absent:[] (Var va) @ [ Incr ca; Incr cb ];
                      else_ =
                        [
                          If
                            {
                              cond = Var va <: Var vb;
                              then_ = [ Incr ca ];
                              else_ = [ Incr cb ];
                            };
                        ];
                    };
                ];
            };
        ]
      @ pos_finalize st env v
  | `Or ->
      let va = Printf.sprintf "%s_%s" v xa and vb = Printf.sprintf "%s_%s" v xb in
      let tail cursor bound crd_arr absent =
        While
          {
            cond = Var cursor <: Var bound;
            body =
              (Decl { var = v; init = Idx (crd_arr, Var cursor); is_int = true }
               :: branch_body ~absent (Var v))
              @ [ Incr cursor ];
          }
      in
      header
      @ [
          While
            {
              cond = And (Var ca <: Var ea, Var cb <: Var eb);
              body =
                [
                  Decl { var = va; init = Idx (n_crd xa la, Var ca); is_int = true };
                  Decl { var = vb; init = Idx (n_crd xb lb, Var cb); is_int = true };
                  If
                    {
                      cond = Var va =: Var vb;
                      then_ = branch_body ~absent:[] (Var va) @ [ Incr ca; Incr cb ];
                      else_ =
                        [
                          If
                            {
                              cond = Var va <: Var vb;
                              then_ = branch_body ~absent:[ xb ] (Var va) @ [ Incr ca ];
                              else_ = branch_body ~absent:[ xa ] (Var vb) @ [ Incr cb ];
                            };
                        ];
                    };
                ];
            };
          tail ca ea (n_crd xa la) [ xb ];
          tail cb eb (n_crd xb lb) [ xa ];
        ]
      @ pos_finalize st env v

(* -------------------------------------------------------------------- *)
(* Kernel assembly                                                       *)
(* -------------------------------------------------------------------- *)

let array_length (m : Plan.meta) = function
  | `Pos l -> (if l = 0 then 1 else m.Plan.level_counts.(l - 1)) + 1
  | `Crd l -> max 1 m.Plan.level_counts.(l)
  | `Vals -> max 1 m.Plan.num_vals

(** Lower a full compilation plan to an imperative kernel. *)
let lower ?(name = "compute") (plan : Plan.t) : func =
  let st = { plan; counters = [] } in
  let stmt = Schedule.stmt (sched st) in
  (* Body first (it discovers the counters), then prepend declarations. *)
  let body = lower_stmt st empty_env stmt in
  let counter_decls =
    List.rev_map
      (fun c -> Decl { var = c; init = int 0; is_int = true })
      st.counters
  in
  (* Zero-initialise dense outputs (the explicit init TACO emits — the
     cost the paper highlights for the GPU's fully dense outputs). *)
  let init_outputs =
    List.concat_map
      (fun r ->
        if is_temp st r then []
        else
          let m = Plan.meta st.plan r in
          if Format.order m.Plan.fmt = 0 then []
          else if Format.is_fully_dense m.Plan.fmt then
            [
              Comment (r ^ " is dense: zero-initialise");
              For
                {
                  var = "pinit_" ^ r;
                  lo = int 0;
                  hi = int m.Plan.num_vals;
                  body =
                    [ Store { arr = n_vals r; idx = Var ("pinit_" ^ r);
                              value = Const 0.0; accum = false } ];
                  parallel = true;
                };
            ]
          else []
      )
      st.plan.Plan.results
  in
  (* Scalar temporaries that live at kernel scope (no enclosing where in a
     loop) are declared by the where-lowering itself. *)
  let arrays =
    List.concat_map
      (fun (x, (m : Plan.meta)) ->
        let fmt = m.Plan.fmt in
        if Format.is_on_chip fmt then []
        else begin
          let out = is_result st x in
          let n = Format.order fmt in
          List.concat
            (List.init n (fun l ->
                 if Format.level_kind fmt l = Format.Compressed then
                   [
                     { aname = n_pos x l; length = array_length m (`Pos l);
                       is_output = out };
                     { aname = n_crd x l; length = array_length m (`Crd l);
                       is_output = out };
                   ]
                 else []))
          @ [ { aname = n_vals x; length = array_length m `Vals; is_output = out } ]
        end)
      st.plan.Plan.metas
  in
  { fname = name; arrays; scalars = []; body = init_outputs @ counter_decls @ body }
