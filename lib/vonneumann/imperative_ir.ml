(** Imperative IR — the von Neumann target.

    This is the programming model TACO lowers to (paper Figure 4a): counted
    for-loops over positions, two-way merge while-loops for union
    co-iteration, element-at-a-time loads/stores, and accumulation as
    repeated variable modification.  The IR prints as self-contained C (the
    paper's CPU baseline is TACO-generated C compiled with GCC/OpenMP) and
    is executed directly by {!Imp_interp} as the von Neumann oracle. *)

type rel = Lt | Le | Eq | Ne [@@deriving show { with_path = false }, eq]

type exp =
  | Const of float
  | Var of string
  | Idx of string * exp  (** [arr\[e\]] *)
  | Bin of [ `Add | `Sub | `Mul | `Div | `Min | `Max ] * exp * exp
  | Neg of exp
  | Cmp of rel * exp * exp
  | And of exp * exp
  | Or of exp * exp
[@@deriving show { with_path = false }, eq]

type stmt =
  | Decl of { var : string; init : exp; is_int : bool }
  | Assign of string * exp
  | Store of { arr : string; idx : exp; value : exp; accum : bool }
  | For of { var : string; lo : exp; hi : exp; body : stmt list; parallel : bool }
  | While of { cond : exp; body : stmt list }
  | If of { cond : exp; then_ : stmt list; else_ : stmt list }
  | Incr of string
  | Comment of string
[@@deriving show { with_path = false }, eq]

(** An array parameter of the kernel: name, element kind, length. *)
type array_decl = { aname : string; length : int; is_output : bool }
[@@deriving show { with_path = false }, eq]

type func = {
  fname : string;
  arrays : array_decl list;
  scalars : (string * int) list;  (** named size constants *)
  body : stmt list;
}
[@@deriving show { with_path = false }, eq]

(* -------------------------------------------------------------------- *)
(* Convenience constructors                                              *)
(* -------------------------------------------------------------------- *)

let int n = Const (float_of_int n)
let ( +: ) a b = Bin (`Add, a, b)
let ( -: ) a b = Bin (`Sub, a, b)
let ( *: ) a b = Bin (`Mul, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( =: ) a b = Cmp (Eq, a, b)
let var v = Var v
let idx a e = Idx (a, e)

(* -------------------------------------------------------------------- *)
(* C pretty-printer                                                      *)
(* -------------------------------------------------------------------- *)

let rec pp_exp ppf = function
  | Const f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Fmt.pf ppf "%d" (int_of_float f)
      else Fmt.pf ppf "%g" f
  | Var v -> Fmt.string ppf v
  | Idx (a, e) -> Fmt.pf ppf "%s[%a]" a pp_exp e
  | Bin (`Min, a, b) -> Fmt.pf ppf "TACO_MIN(%a, %a)" pp_exp a pp_exp b
  | Bin (`Max, a, b) -> Fmt.pf ppf "TACO_MAX(%a, %a)" pp_exp a pp_exp b
  | Bin (op, a, b) ->
      let s =
        match op with
        | `Add -> "+"
        | `Sub -> "-"
        | `Mul -> "*"
        | `Div -> "/"
        | (`Min | `Max) as op ->
            (* Min/Max are matched by the TACO_MIN/TACO_MAX branches
               above; reaching here means a printer branch was reordered *)
            Fmt.invalid_arg
              "Imperative_ir.pp_exp: %s is not an infix operator"
              (match op with `Min -> "min" | `Max -> "max")
      in
      Fmt.pf ppf "(%a %s %a)" pp_exp a s pp_exp b
  | Neg e -> Fmt.pf ppf "(-%a)" pp_exp e
  | Cmp (r, a, b) ->
      let s = match r with Lt -> "<" | Le -> "<=" | Eq -> "==" | Ne -> "!=" in
      Fmt.pf ppf "(%a %s %a)" pp_exp a s pp_exp b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_exp a pp_exp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_exp a pp_exp b

let rec pp_stmt ind ppf s =
  let pad = String.make ind ' ' in
  match s with
  | Decl { var; init; is_int } ->
      Fmt.pf ppf "%s%s %s = %a;@," pad (if is_int then "int32_t" else "double")
        var pp_exp init
  | Assign (v, e) -> Fmt.pf ppf "%s%s = %a;@," pad v pp_exp e
  | Store { arr; idx; value; accum } ->
      if accum then Fmt.pf ppf "%s%s[%a] += %a;@," pad arr pp_exp idx pp_exp value
      else Fmt.pf ppf "%s%s[%a] = %a;@," pad arr pp_exp idx pp_exp value
  | For { var; lo; hi; body; parallel } ->
      if parallel then
        Fmt.pf ppf "%s#pragma omp parallel for schedule(dynamic, 16)@," pad;
      Fmt.pf ppf "%sfor (int32_t %s = %a; %s < %a; %s++) {@,%a%s}@," pad var
        pp_exp lo var pp_exp hi var (pp_body (ind + 2)) body pad
  | While { cond; body } ->
      Fmt.pf ppf "%swhile (%a) {@,%a%s}@," pad pp_exp cond (pp_body (ind + 2))
        body pad
  | If { cond; then_; else_ = [] } ->
      Fmt.pf ppf "%sif (%a) {@,%a%s}@," pad pp_exp cond (pp_body (ind + 2))
        then_ pad
  | If { cond; then_; else_ } ->
      Fmt.pf ppf "%sif (%a) {@,%a%s} else {@,%a%s}@," pad pp_exp cond
        (pp_body (ind + 2)) then_ pad (pp_body (ind + 2)) else_ pad
  | Incr v -> Fmt.pf ppf "%s%s++;@," pad v
  | Comment c -> Fmt.pf ppf "%s// %s@," pad c

and pp_body ind ppf body = List.iter (pp_stmt ind ppf) body

let pp_func ppf (f : func) =
  Fmt.pf ppf "@[<v>// %s — C code generated by the Stardust CPU path (TACO-style)@," f.fname;
  Fmt.pf ppf "#include <stdint.h>@,";
  Fmt.pf ppf "#define TACO_MIN(a, b) ((a) < (b) ? (a) : (b))@,";
  Fmt.pf ppf "#define TACO_MAX(a, b) ((a) > (b) ? (a) : (b))@,@,";
  List.iter (fun (n, v) -> Fmt.pf ppf "#define %s %d@," n v) f.scalars;
  let arg (a : array_decl) =
    Printf.sprintf "%sdouble* restrict %s" (if a.is_output then "" else "const ") a.aname
  in
  Fmt.pf ppf "@,int %s(%s) {@," f.fname
    (String.concat ", " (List.map arg f.arrays));
  pp_body 2 ppf f.body;
  Fmt.pf ppf "  return 0;@,}@]"

let to_string f = Fmt.str "%a" pp_func f

(** Non-blank generated lines (for LoC accounting). *)
let lines_of_code f =
  to_string f |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
