(** Analytic workload profile for the von Neumann baselines.

    Summarises a compiled kernel's execution on imperative hardware:
    per-loop total iteration counts (derived from the compilation plan and
    exact dataset statistics, the same way the Capstan estimator works),
    split into irregular (sparse position/merge) iterations and
    vectorizable dense-inner iterations, plus memory-traffic and
    gather-count estimates.  {!Cpu_model} and {!Gpu_model} convert these
    into times. *)

module Tensor = Stardust_tensor.Tensor
module Stats_cache = Stardust_tensor.Stats_cache
module Format = Stardust_tensor.Format
module Plan = Stardust_core.Plan
module Coiter = Stardust_core.Coiter
module Memory = Stardust_core.Memory

(** One random-access (gather) source: how many gathers, how many
    contiguous words each pulls (1 for a vector element, a whole row for a
    factor-matrix access), and how large the gathered table is — the CPU
    model prices small resident tables far below cache-missing ones. *)
type gather = { count : float; words_each : int; table_bytes : float }

type t = {
  loop_totals : (string * float) list;  (** per loop variable *)
  pos_iters : float;  (** single-iterator position-loop iterations *)
  merge_and_iters : float;
      (** intersection merge while-loop iterations (mismatches skip fast) *)
  merge_or_iters : float;  (** union merge iterations (every branch works) *)
  output_appends : float;
      (** sparse coordinate/value appends assembling the result *)
  dense_inner_iters : float;  (** innermost dense (vectorizable) iterations *)
  flops : float;  (** arithmetic in innermost bodies *)
  input_bytes : float;  (** bytes of input arrays touched (cold cache) *)
  output_words : float;  (** words written to the result *)
  output_dense_words : float;
      (** words of a {e fully dense} result image — what TACO's GPU path
          must zero-initialise regardless of sparsity *)
  gathers : gather list;
  parallel_outer : bool;  (** the outermost loop parallelizes *)
}

(** Total random accesses across all gather sources. *)
let total_gathers t = List.fold_left (fun a g -> a +. g.count) 0.0 t.gathers

let merge_iters t = t.merge_and_iters +. t.merge_or_iters

let err fmt = Fmt.kstr failwith fmt

(** Total iterations of every loop in the plan, exact from dataset
    statistics. *)
let loop_totals (plan : Plan.t) ~(inputs : (string * Tensor.t) list) =
  let tensor n =
    match List.assoc_opt n inputs with
    | Some t -> t
    | None -> err "profile: %s is not an input" n
  in
  let memo = Hashtbl.create 16 in
  let coiter ~union (a : Coiter.iterator) (b : Coiter.iterator) =
    let key = (union, a.Coiter.tensor, b.Coiter.tensor, a.Coiter.level) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        let v =
          float_of_int
            (Stats_cache.prefix_coiter_count ~union (tensor a.Coiter.tensor)
               (tensor b.Coiter.tensor) ~depth:a.Coiter.level)
        in
        Hashtbl.add memo key v;
        v
  in
  let totals = Hashtbl.create 16 in
  let rec total_of v =
    match Hashtbl.find_opt totals v with
    | Some t -> t
    | None ->
        let info = Plan.loop_info plan v in
        let parent_total =
          match info.Plan.above with
          | Memory.Kernel_start -> 1.0
          | Memory.Above_loop w -> total_of w
        in
        let t =
          match info.Plan.plan with
          | Coiter.Dense_plan _ -> parent_total *. float_of_int info.Plan.extent
          | Coiter.Pos_plan { lead; _ } ->
              float_of_int
                (Plan.meta plan lead.Coiter.tensor).Plan.level_counts.(lead.Coiter.level)
          | Coiter.Scan_plan { op; a; b; _ } -> coiter ~union:(op = `Or) a b
        in
        Hashtbl.add totals v t;
        t
  in
  List.map (fun (v, _) -> (v, total_of v)) plan.Plan.loops

(** Arithmetic operation count of an index-notation expression. *)
let rec expr_ops (e : Stardust_ir.Ast.expr) =
  match e with
  | Stardust_ir.Ast.Access _ | Stardust_ir.Ast.Const _ -> 0
  | Stardust_ir.Ast.Neg e -> 1 + expr_ops e
  | Stardust_ir.Ast.Bin (_, a, b) -> 1 + expr_ops a + expr_ops b

let of_plan (plan : Plan.t) ~(inputs : (string * Tensor.t) list) =
  let totals = loop_totals plan ~inputs in
  let total v = List.assoc v totals in
  let loops = plan.Plan.loops in
  (* Innermost loops and their classification. *)
  let pos_iters = ref 0.0
  and merge_and = ref 0.0
  and merge_or = ref 0.0
  and dense_inner = ref 0.0 in
  List.iter
    (fun (v, (info : Plan.loop_info)) ->
      match info.Plan.plan with
      | Coiter.Dense_plan _ ->
          if info.Plan.is_innermost then dense_inner := !dense_inner +. total v
      | Coiter.Pos_plan _ -> pos_iters := !pos_iters +. total v
      | Coiter.Scan_plan { op; a; b; _ } ->
          (* a two-way merge visits every element of both operand streams
             once (plus the matched iterations themselves) *)
          let count (it : Coiter.iterator) =
            float_of_int
              (Plan.meta plan it.Coiter.tensor).Plan.level_counts.(it.Coiter.level)
          in
          let iters = Float.max (total v) (count a +. count b) in
          if op = `Or then merge_or := !merge_or +. iters
          else merge_and := !merge_and +. iters)
    loops;
  (* Flops: innermost iterations x ops of the assignments they run. *)
  let stmt = Stardust_schedule.Schedule.stmt plan.Plan.sched in
  let ops_per_assign =
    match Stardust_ir.Cin.assignments stmt with
    | [] -> 1
    | l ->
        max 1
          (List.fold_left (fun acc (a : Stardust_ir.Ast.assign) ->
               acc + expr_ops a.Stardust_ir.Ast.rhs) 0 l
          / List.length l)
  in
  let innermost_total =
    List.fold_left
      (fun acc (v, (i : Plan.loop_info)) ->
        if i.Plan.is_innermost then acc +. total v else acc)
      0.0 loops
  in
  let flops = innermost_total *. float_of_int (ops_per_assign + 1) in
  (* Memory traffic: inputs touched once (cold cache), outputs written.
     TACO C uses 8-byte values and 4-byte indices. *)
  let input_bytes =
    List.fold_left
      (fun acc (n, _) ->
        match List.assoc_opt n inputs with
        | None -> acc
        | Some x ->
            let fmt = Tensor.format x in
            let idx_bytes =
              List.fold_left ( + ) 0
                (List.init (Tensor.order x) (fun l ->
                     if Format.level_kind fmt l = Format.Compressed then
                       4 * (Tensor.num_positions x l + Array.length (Tensor.pos_array x l))
                     else 0))
            in
            acc +. float_of_int ((8 * Tensor.num_vals x) + idx_bytes))
      0.0 plan.Plan.metas
  in
  (* Gathers: each dense (universe) access looked up at the sparse
     coordinates of a position loop is one random access per iteration.
     Its granularity is the span of the accessed tensor's levels below
     the gathered level (a trailing row), and its table is the whole
     values array. *)
  let depth_of v =
    match List.assoc_opt v loops with
    | Some (i : Plan.loop_info) -> i.Plan.depth
    | None -> max_int
  in
  let gathers =
    List.concat_map
      (fun (v, (info : Plan.loop_info)) ->
        match info.Plan.plan with
        | Coiter.Pos_plan { dense; _ } ->
            List.map
              (fun (it : Coiter.iterator) ->
                let m = Plan.meta plan it.Coiter.tensor in
                let fmt = m.Plan.fmt in
                let indices = Plan.access_indices plan it.Coiter.tensor in
                (* Granularity: the contiguous row spanned by the levels
                   below the gathered one whose loops run deeper (they
                   consume the row after this gather pulls it).  Levels
                   whose variables are already fixed above contribute
                   nothing. *)
                let words_each =
                  List.fold_left ( * ) 1
                    (List.init (Format.order fmt) (fun l ->
                         let lv =
                           List.nth indices (Format.dim_of_level fmt l)
                         in
                         if l > it.Coiter.level && depth_of lv > info.Plan.depth
                         then m.Plan.dims.(Format.dim_of_level fmt l)
                         else 1))
                in
                (* Working set: the span the random coordinate selects
                   from, times the row granularity — what must stay
                   resident for the gathers to hit in cache. *)
                let span =
                  m.Plan.dims.(Format.dim_of_level fmt it.Coiter.level)
                in
                { count = total v;
                  words_each;
                  table_bytes = 8.0 *. float_of_int (span * words_each) })
              dense
        | _ -> [])
      loops
  in
  let result_meta r = Plan.meta plan r in
  (* appended sparse coordinates: every compressed result level writes its
     crd (and the deepest one its value) element-at-a-time *)
  let output_appends =
    List.fold_left
      (fun acc r ->
        if
          List.mem r (plan.Plan.sched : Stardust_schedule.Schedule.t)
                     .Stardust_schedule.Schedule.temporaries
        then acc
        else
          let m = result_meta r in
          let fmt = m.Plan.fmt in
          acc
          +. List.fold_left ( +. ) 0.0
               (List.init (Format.order fmt) (fun l ->
                    if Format.level_kind fmt l = Format.Compressed then
                      float_of_int m.Plan.level_counts.(l)
                    else 0.0)))
      0.0 plan.Plan.results
  in
  let output_words, output_dense_words =
    List.fold_left
      (fun (w, dw) r ->
        if List.mem r (plan.Plan.sched : Stardust_schedule.Schedule.t)
                       .Stardust_schedule.Schedule.temporaries
        then (w, dw)
        else
          let m = result_meta r in
          let dense_words =
            Array.fold_left (fun a d -> a *. float_of_int d) 1.0 m.Plan.dims
          in
          (w +. float_of_int m.Plan.num_vals, dw +. dense_words))
      (0.0, 0.0) plan.Plan.results
  in
  (* TACO's OpenMP parallelization applies only when the outermost loop is
     a dense forall, the kernel assembles no sparse output (the append
     counters would race), and there is no workspace (where) producer in
     the loop nest.  Of the paper's ten kernels only SpMV qualifies —
     which is why its CPU baseline is an order of magnitude closer to
     Capstan than the others (Table 6). *)
  let outer_dense =
    match loops with
    | (_, { Plan.depth = 0; plan = Coiter.Dense_plan _; _ }) :: _ -> true
    | _ -> false
  in
  let has_where =
    Stardust_ir.Cin.fold
      (fun acc s -> acc || match s with Stardust_ir.Cin.Where _ -> true | _ -> false)
      false stmt
  in
  let outputs_dense =
    List.for_all
      (fun r ->
        List.mem r (plan.Plan.sched : Stardust_schedule.Schedule.t)
                   .Stardust_schedule.Schedule.temporaries
        ||
        let m = Plan.meta plan r in
        Format.order m.Plan.fmt > 0 && Format.is_fully_dense m.Plan.fmt)
      plan.Plan.results
  in
  let parallel_outer = outer_dense && (not has_where) && outputs_dense in
  {
    loop_totals = totals;
    pos_iters = !pos_iters;
    merge_and_iters = !merge_and;
    merge_or_iters = !merge_or;
    output_appends;
    dense_inner_iters = !dense_inner;
    flops;
    input_bytes;
    output_words;
    output_dense_words;
    gathers;
    parallel_outer;
  }

let pp ppf p =
  Fmt.pf ppf
    "pos=%.3e merge=%.3e dense_inner=%.3e flops=%.3e in_bytes=%.3e out=%.3e dense_out=%.3e gathers=%.3e par=%b"
    p.pos_iters (merge_iters p) p.dense_inner_iters p.flops p.input_bytes
    p.output_words p.output_dense_words (total_gathers p) p.parallel_outer
