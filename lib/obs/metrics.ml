(** A process-global metrics registry: named counters, gauges, and
    histograms with optional labels, rendered either as Prometheus
    exposition text ({!render_text}) or as a deterministic JSON snapshot
    ({!snapshot_json}).

    {2 Determinism contract}

    Metrics derived from the analytic model (case counts, prune counts,
    simulated-cycle totals) must be bit-identical across runs and across
    worker counts.  Two rules make that hold:

    - snapshots render metrics sorted by (name, labels), so registration
      order — which can vary with domain scheduling — never shows;
    - metrics whose value is wall-clock-derived (busy seconds, queue
      wait, cases/sec) are registered with [~volatile:true] and excluded
      from the deterministic snapshot ({!snapshot_json} with
      [~deterministic:true], the default for tooling that diffs runs).

    Counter increments commute exactly as long as the values involved
    are integers below 2{^53} (float addition of small integers is exact
    in any order), which every deterministic counter in the stack
    respects: they count events, not accumulate measurements.

    All operations are guarded by one registry mutex; handles may be
    shared freely across domains. *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(** Default histogram buckets: log-spaced seconds, Prometheus style. *)
let default_buckets =
  [ 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 50.0 ]

type hist = {
  bounds : float array;  (** ascending upper bounds *)
  counts : float array;  (** one per bound, plus the +Inf overflow slot *)
  mutable h_sum : float;
  mutable h_count : float;
}

type value = Scalar of float ref | Hist of hist

type t = {
  m_name : string;
  m_labels : (string * string) list;  (** sorted by key *)
  m_help : string;
  m_kind : kind;
  m_volatile : bool;
  m_value : value;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let key name labels =
  name
  ^ String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "|%s=%s" k v) labels)

let register ~kind ~help ~volatile ~labels name mk_value =
  let labels = List.sort compare labels in
  let k = key name labels in
  locked (fun () ->
      match Hashtbl.find_opt registry k with
      | Some m ->
          if m.m_kind <> kind then
            invalid_arg
              (Printf.sprintf "metric %s re-registered as a %s (was a %s)"
                 name (kind_name kind) (kind_name m.m_kind));
          m
      | None ->
          let m =
            {
              m_name = name;
              m_labels = labels;
              m_help = help;
              m_kind = kind;
              m_volatile = volatile;
              m_value = mk_value ();
            }
          in
          Hashtbl.add registry k m;
          m)

(** Monotonically increasing event count. *)
let counter ?(help = "") ?(labels = []) ?(volatile = false) name =
  register ~kind:Counter ~help ~volatile ~labels name (fun () ->
      Scalar (ref 0.0))

(** Point-in-time value (set, not accumulated). *)
let gauge ?(help = "") ?(labels = []) ?(volatile = false) name =
  register ~kind:Gauge ~help ~volatile ~labels name (fun () ->
      Scalar (ref 0.0))

(** Distribution with cumulative buckets. *)
let histogram ?(help = "") ?(labels = []) ?(volatile = false)
    ?(buckets = default_buckets) name =
  let bounds = Array.of_list (List.sort_uniq compare buckets) in
  register ~kind:Histogram ~help ~volatile ~labels name (fun () ->
      Hist
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0.0;
          h_sum = 0.0;
          h_count = 0.0;
        })

let inc ?(by = 1.0) m =
  match m.m_value with
  | Scalar r -> locked (fun () -> r := !r +. by)
  | Hist _ -> invalid_arg "Metrics.inc on a histogram"

let set m v =
  match m.m_value with
  | Scalar r -> locked (fun () -> r := v)
  | Hist _ -> invalid_arg "Metrics.set on a histogram"

let observe m v =
  match m.m_value with
  | Scalar _ -> invalid_arg "Metrics.observe on a counter/gauge"
  | Hist h ->
      locked (fun () ->
          let n = Array.length h.bounds in
          let rec slot i = if i < n && v > h.bounds.(i) then slot (i + 1) else i in
          let i = slot 0 in
          h.counts.(i) <- h.counts.(i) +. 1.0;
          h.h_sum <- h.h_sum +. v;
          h.h_count <- h.h_count +. 1.0)

(** Current value of a counter or gauge. *)
let value m =
  match m.m_value with
  | Scalar r -> locked (fun () -> !r)
  | Hist h -> locked (fun () -> h.h_count)

(** Drop every registered metric (tests and fresh CLI runs). *)
let reset () = locked (fun () -> Hashtbl.reset registry)

let sorted_metrics () =
  let all = locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.sort
    (fun a b ->
      match compare a.m_name b.m_name with
      | 0 -> compare a.m_labels b.m_labels
      | c -> c)
    all

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(** Round-trippable number text: integers without a decimal point (the
    common case for deterministic counters), %.17g otherwise. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* Prometheus text-format escaping (exposition format 0.0.4) draws a
   distinction the first cut of this renderer missed: label *values*
   escape backslash, double-quote, and newline, while HELP text escapes
   only backslash and newline — a quote in HELP is emitted verbatim. *)
let prom_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let help_escape s =
  String.concat ""
    (List.map
       (function
         | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let label_text ?extra labels =
  let labels = match extra with Some kv -> labels @ [ kv ] | None -> labels in
  match labels with
  | [] -> ""
  | l ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) l)
      ^ "}"

(** Prometheus exposition format (one [# HELP]/[# TYPE] header per metric
    family even when labeled series differ, histograms expanded to
    [_bucket]/[_sum]/[_count] with the [+Inf] bucket last).  With
    [~include_volatile:false], wall-clock-derived families are dropped,
    giving a scrape whose byte length is deterministic — the bench
    suite's [serve-http] section pins it. *)
let render_text ?(include_volatile = true) () =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if include_volatile || not m.m_volatile then begin
      if not (Hashtbl.mem seen_header m.m_name) then begin
        Hashtbl.add seen_header m.m_name ();
        if m.m_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" m.m_name (help_escape m.m_help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_name m.m_kind))
      end;
      match m.m_value with
      | Scalar r ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.m_name (label_text m.m_labels)
               (number_to_string (locked (fun () -> !r))))
      | Hist h ->
          let bounds, counts, sum, count =
            locked (fun () ->
                (h.bounds, Array.copy h.counts, h.h_sum, h.h_count))
          in
          let cum = ref 0.0 in
          Array.iteri
            (fun i b ->
              cum := !cum +. counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %s\n" m.m_name
                   (label_text ~extra:("le", number_to_string b) m.m_labels)
                   (number_to_string !cum)))
            bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %s\n" m.m_name
               (label_text ~extra:("le", "+Inf") m.m_labels)
               (number_to_string count));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.m_name (label_text m.m_labels)
               (number_to_string sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %s\n" m.m_name (label_text m.m_labels)
               (number_to_string count))
      end)
    (sorted_metrics ());
  Buffer.contents buf

let json_escape = Trace.json_escape

let json_of_metric m =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\"" (json_escape m.m_name)
       (kind_name m.m_kind));
  (match m.m_labels with
  | [] -> ()
  | ls ->
      Buffer.add_string buf ",\"labels\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        ls;
      Buffer.add_char buf '}');
  (match m.m_value with
  | Scalar r ->
      Buffer.add_string buf
        (Printf.sprintf ",\"value\":%s"
           (number_to_string (locked (fun () -> !r))))
  | Hist h ->
      let bounds, counts, sum, count =
        locked (fun () -> (h.bounds, Array.copy h.counts, h.h_sum, h.h_count))
      in
      Buffer.add_string buf ",\"buckets\":[";
      Array.iteri
        (fun i b ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (number_to_string b))
        bounds;
      Buffer.add_string buf "],\"counts\":[";
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (number_to_string c))
        counts;
      Buffer.add_string buf
        (Printf.sprintf "],\"sum\":%s,\"count\":%s" (number_to_string sum)
           (number_to_string count)));
  Buffer.add_char buf '}';
  Buffer.contents buf

(** JSON snapshot of the registry, sorted by (name, labels).  With
    [~deterministic:true] (the default) wall-clock-derived metrics
    (registered [~volatile:true]) are excluded, so the snapshot is
    bit-identical across runs and worker counts. *)
let snapshot_json ?(deterministic = true) () =
  let ms =
    List.filter
      (fun m -> not (deterministic && m.m_volatile))
      (sorted_metrics ())
  in
  "{\"metrics\":[" ^ String.concat "," (List.map json_of_metric ms) ^ "]}"
