(** Hierarchical execution tracing with a Chrome [trace_event] exporter.

    A {e span} is one timed region of work — a compiler stage, a pool
    worker's lifetime, one simulated kernel — recorded as a Chrome
    "complete" ([ph = "X"]) event: name, category, microsecond start
    timestamp, duration, and the recording domain's id as the [tid].
    The exported JSON loads directly in [chrome://tracing] and Perfetto,
    which reconstruct the nesting per thread from the timestamps.

    Tracing is {b off by default} and costs one boolean load per
    {!with_span} while off, so instrumentation can stay in hot paths
    unconditionally.  When on, events are appended to a global
    mutex-guarded buffer: spans from every domain (pool workers, timed
    sub-domains) land in the same trace.

    Span balance is exception-safe: a span whose body raises is still
    recorded (tagged [raised=true]) and the per-domain depth counter is
    restored, so one failing compile cannot skew every later span's
    nesting. *)

(** One recorded event.  Timestamps and durations are microseconds
    relative to the {!start} call (Chrome's native unit). *)
type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : string;  (** ["X"] complete span, ["i"] instant *)
  ev_ts : float;
  ev_dur : float;  (** 0 for instants *)
  ev_tid : int;  (** recording domain id *)
  ev_args : (string * string) list;
}

type state = {
  mutable on : bool;
  mutable t0 : float;  (** wall-clock origin of the trace *)
  mutable rev_events : event list;
  lock : Mutex.t;
}

let st = { on = false; t0 = 0.0; rev_events = []; lock = Mutex.create () }

let enabled () = st.on

(** Enable collection, dropping any previously buffered events and
    re-anchoring the time origin. *)
let start () =
  Mutex.lock st.lock;
  st.t0 <- Unix.gettimeofday ();
  st.rev_events <- [];
  st.on <- true;
  Mutex.unlock st.lock

(** Stop collecting.  Buffered events stay exportable. *)
let stop () = st.on <- false

(** Stop and drop everything. *)
let reset () =
  Mutex.lock st.lock;
  st.on <- false;
  st.rev_events <- [];
  Mutex.unlock st.lock

let record ev =
  Mutex.lock st.lock;
  if st.on then st.rev_events <- ev :: st.rev_events;
  Mutex.unlock st.lock

let now_us () = (Unix.gettimeofday () -. st.t0) *. 1e6
let tid () = (Domain.self () :> int)

(* Per-domain span nesting depth: purely observational (Chrome infers
   nesting from timestamps), but it lets tests assert balance and lets
   renderers indent live progress. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let depth () = !(Domain.DLS.get depth_key)

(* ------------------------------------------------------------------ *)
(* Ambient context and per-request collectors                          *)
(* ------------------------------------------------------------------ *)

(** A bounded per-request span buffer.  Installed via {!set_context} it
    receives every span recorded on that domain (with its nesting depth
    at entry), even when global tracing is off, so the flight recorder
    can keep one request's span tree without turning on whole-process
    tracing.  Mutex-guarded: an abandoned deadline sub-domain may still
    be appending after the parent snapshots it. *)
type collector = {
  c_cap : int;
  c_lock : Mutex.t;
  mutable c_rev : (int * event) list;  (** (depth at entry, event) *)
  mutable c_len : int;
  mutable c_dropped : int;
}

let new_collector ?(cap = 512) () =
  { c_cap = cap; c_lock = Mutex.create (); c_rev = []; c_len = 0; c_dropped = 0 }

let collector_add c depth ev =
  Mutex.lock c.c_lock;
  if c.c_len < c.c_cap then begin
    c.c_rev <- (depth, ev) :: c.c_rev;
    c.c_len <- c.c_len + 1
  end
  else c.c_dropped <- c.c_dropped + 1;
  Mutex.unlock c.c_lock

(** Snapshot: events in recording order (completion order — children
    before parents) with their entry depths, plus the drop count. *)
let collector_events c =
  Mutex.lock c.c_lock;
  let evs = List.rev c.c_rev and dropped = c.c_dropped in
  Mutex.unlock c.c_lock;
  (evs, dropped)

(** Ambient tracing context for the current domain: [ctx_args] are
    appended to every event recorded while the context is installed
    (request correlation — e.g. [("request_id", id)]), and
    [ctx_collector], when present, additionally captures those events
    per-request.  The context is domain-local; {!Explore.Pool}
    re-installs the caller's context inside worker bodies and deadline
    sub-domains, since DLS does not cross [Domain.spawn]. *)
type context = {
  ctx_args : (string * string) list;
  ctx_collector : collector option;
}

let context_key : context option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_context () = !(Domain.DLS.get context_key)
let set_context c = Domain.DLS.get context_key := c

(** [with_context ctx f] installs [ctx] for the duration of [f] and
    restores the previous context even if [f] raises. *)
let with_context ctx f =
  let cell = Domain.DLS.get context_key in
  let saved = !cell in
  cell := ctx;
  Fun.protect ~finally:(fun () -> cell := saved) f

let context_args () =
  match current_context () with None -> [] | Some c -> c.ctx_args

let dispatch ~depth ev =
  record ev;
  match current_context () with
  | Some { ctx_collector = Some c; _ } -> collector_add c depth ev
  | _ -> ()

(** [with_span ~cat name f] times [f ()] as one span.  The event is
    recorded even when [f] raises (with an extra [raised=true] argument)
    and the exception is re-raised unchanged.  Spans are captured when
    global tracing is on {e or} the current domain has a collector
    installed; ambient context args ride on every captured event. *)
let with_span ?(cat = "stardust") ?(args = []) name f =
  let ctx = current_context () in
  let collecting =
    match ctx with Some { ctx_collector = Some _; _ } -> true | _ -> false
  in
  if not (st.on || collecting) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    incr d;
    let entry_depth = !d in
    let ts = now_us () in
    let raised = ref false in
    Fun.protect
      ~finally:(fun () ->
        decr d;
        let args = if !raised then ("raised", "true") :: args else args in
        let args =
          args @ (match ctx with None -> [] | Some c -> c.ctx_args)
        in
        dispatch ~depth:entry_depth
          {
            ev_name = name;
            ev_cat = cat;
            ev_ph = "X";
            ev_ts = ts;
            ev_dur = now_us () -. ts;
            ev_tid = tid ();
            ev_args = args;
          })
      (fun () ->
        try f ()
        with e ->
          raised := true;
          raise e)
  end

(** Zero-duration marker event. *)
let instant ?(cat = "stardust") ?(args = []) name =
  let ctx = current_context () in
  let collecting =
    match ctx with Some { ctx_collector = Some _; _ } -> true | _ -> false
  in
  if st.on || collecting then
    dispatch ~depth:(depth () + 1)
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = "i";
        ev_ts = now_us ();
        ev_dur = 0.0;
        ev_tid = tid ();
        ev_args = args @ (match ctx with None -> [] | Some c -> c.ctx_args);
      }

(** Events in recording order (oldest first). *)
let events () =
  Mutex.lock st.lock;
  let evs = List.rev st.rev_events in
  Mutex.unlock st.lock;
  evs

let event_count () =
  Mutex.lock st.lock;
  let n = List.length st.rev_events in
  Mutex.unlock st.lock;
  n

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_event buf (e : event) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (json_escape e.ev_name) (json_escape e.ev_cat) (json_escape e.ev_ph)
       e.ev_ts e.ev_tid);
  if e.ev_ph = "X" then
    Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" e.ev_dur);
  (* instants need a scope for Chrome to render them *)
  if e.ev_ph = "i" then Buffer.add_string buf ",\"s\":\"t\"";
  (match e.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

(** The whole buffer as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]), loadable in [chrome://tracing] and
    Perfetto. *)
let export_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      write_event buf e)
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(** Write {!export_json} to [path]. *)
let save path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_json ()))
