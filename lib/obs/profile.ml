(** Attributed cycle trees: where a kernel's simulated cycles go,
    loop by loop.

    The Capstan analytic simulator walks the generated Spatial program
    charging pipeline occupancy and DRAM traffic per statement; profiling
    keeps those charges attached to the loop nest instead of collapsing
    them into run totals.  The result is a {!node} tree mirroring the
    program structure where every node carries its {e self} costs —
    exactly the cycles charged at that node, excluding children — so the
    self costs over the whole tree sum to the run totals (the invariant
    the test suite checks against [Sim.report]).

    A node's {e attributed} cycles ({!field-self_cycles}) are the
    component on the kernel's critical path: the builder picks the
    compute or the memory decomposition wholesale depending on which
    bound the roofline, so percentages printed against the kernel total
    are meaningful.  Both components are always carried
    ({!field-self_compute_cycles}, {!field-self_dram_cycles}) for the
    compute-vs-DRAM breakdown. *)

type node = {
  label : string;  (** loop binder, transfer target, or kernel name *)
  kind : string;
      (** ["kernel"], ["foreach"], ["reduce"], ["scan"], ["burst"],
          ["bitvector"], with the iteration class suffixed for loops
          (e.g. ["foreach/coiter"]) *)
  self_cycles : float;  (** attributed cycles charged at this node *)
  self_compute_cycles : float;
  self_dram_cycles : float;
  iterations : float;  (** scalar iterations this node launched *)
  children : node list;
}

let make ?(children = []) ?(iterations = 0.0) ~label ~kind ~self_cycles
    ~self_compute_cycles ~self_dram_cycles () =
  {
    label;
    kind;
    self_cycles;
    self_compute_cycles;
    self_dram_cycles;
    iterations;
    children;
  }

let rec fold f acc n = List.fold_left (fold f) (f acc n) n.children

(** Total attributed cycles of the subtree (self + descendants). *)
let total n = fold (fun acc n -> acc +. n.self_cycles) 0.0 n
let total_compute n = fold (fun acc n -> acc +. n.self_compute_cycles) 0.0 n
let total_dram n = fold (fun acc n -> acc +. n.self_dram_cycles) 0.0 n
let node_count n = fold (fun acc _ -> acc + 1) 0 n

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let si f =
  let a = Float.abs f in
  if a >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if a >= 1e4 then Printf.sprintf "%.1fk" (f /. 1e3)
  else Printf.sprintf "%.0f" f

(** Render the tree with per-node subtree cycles, share of the kernel
    total, and the compute/DRAM split.  [grand] defaults to the root's
    subtree total. *)
let render ?grand ppf root =
  let grand =
    match grand with Some g -> g | None -> Float.max (total root) 1e-9
  in
  let pct c = 100.0 *. c /. grand in
  let rec go prefix is_last n =
    let sub = total n in
    let branch, cont =
      if prefix = "" && n.kind = "kernel" then ("", "")
      else if is_last then (prefix ^ "`- ", prefix ^ "   ")
      else (prefix ^ "|- ", prefix ^ "|  ")
    in
    Fmt.pf ppf "%s%s [%s]  %s cycles (%.1f%%)  compute %s  dram %s%s@,"
      branch n.label n.kind (si sub) (pct sub) (si (total_compute n))
      (si (total_dram n))
      (if n.iterations > 0.0 then Printf.sprintf "  %s iters" (si n.iterations)
       else "");
    let rec children = function
      | [] -> ()
      | [ c ] -> go cont true c
      | c :: rest ->
          go cont false c;
          children rest
    in
    children n.children
  in
  Fmt.pf ppf "@[<v>";
  go "" true root;
  Fmt.pf ppf "@]"

let to_string root = Fmt.str "%a" (render ?grand:None) root

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let number = Metrics.number_to_string

let rec to_json n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"label\":\"%s\",\"kind\":\"%s\",\"self_cycles\":%s,\"self_compute_cycles\":%s,\"self_dram_cycles\":%s,\"iterations\":%s,\"total_cycles\":%s"
       (Trace.json_escape n.label)
       (Trace.json_escape n.kind)
       (number n.self_cycles)
       (number n.self_compute_cycles)
       (number n.self_dram_cycles)
       (number n.iterations) (number (total n)));
  (match n.children with
  | [] -> ()
  | cs ->
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (to_json c))
        cs;
      Buffer.add_char buf ']');
  Buffer.add_char buf '}';
  Buffer.contents buf
