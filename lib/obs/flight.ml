(** A bounded in-memory flight recorder for the compile service.

    Keeps the last [capacity] request summaries (request id, op, cached
    bit, outcome, diagnostic codes, latency, queue wait) in a ring, plus
    the full span trees of the last [failed_capacity] {e failed}
    requests — enough to answer "what just happened to request X" from
    [/debug/requests] and [/debug/trace?id=...] without whole-process
    tracing, and bounded so an E1005 storm cannot grow memory without
    limit.

    All mutation happens under one mutex; readers snapshot under the
    same mutex and render outside it.  A {e deterministic} snapshot mode
    (sorted multiset of the correlation-relevant fields, wall-clock and
    generated ids omitted) lets the chaos harness assert the recorder's
    contents are a pure function of the well-formed request multiset,
    identical across worker counts. *)

type entry = {
  f_request_id : string;
  f_generated : bool;  (** id was minted by the server, not the client *)
  f_op : string;
  f_cached : bool option;  (** [None] for ops with no cache semantics *)
  f_ok : bool;
  f_codes : string list;  (** diagnostic codes, failure outcomes only *)
  f_latency_s : float;
  f_queue_wait_s : float;
  f_spans : (int * Trace.event) list;
      (** (entry depth, event), completion order; kept for failures *)
  f_spans_dropped : int;
}

type t = {
  capacity : int;
  failed_capacity : int;
  lock : Mutex.t;
  ring : entry option array;
  mutable head : int;  (** next write slot *)
  mutable len : int;
  mutable failed : entry list;  (** newest first, with spans *)
  mutable failed_len : int;
  mutable total : int;  (** lifetime recorded count *)
}

let create ?(capacity = 256) ?(failed_capacity = 16) () =
  if capacity < 1 || failed_capacity < 0 then
    invalid_arg "Flight.create: capacity";
  {
    capacity;
    failed_capacity;
    lock = Mutex.create ();
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    failed = [];
    failed_len = 0;
    total = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

(** Record one finished request.  [spans] (with its drop count) is
    retained only when the request failed; the ring summary always drops
    spans so memory stays proportional to [failed_capacity], not to
    traffic. *)
let record t ~request_id ~generated ~op ?cached ~ok ~codes ~latency_s
    ~queue_wait_s ?(spans = ([], 0)) () =
  let span_list, dropped = spans in
  let base =
    {
      f_request_id = request_id;
      f_generated = generated;
      f_op = op;
      f_cached = cached;
      f_ok = ok;
      f_codes = codes;
      f_latency_s = latency_s;
      f_queue_wait_s = queue_wait_s;
      f_spans = [];
      f_spans_dropped = dropped;
    }
  in
  locked t (fun () ->
      t.ring.(t.head) <- Some base;
      t.head <- (t.head + 1) mod t.capacity;
      if t.len < t.capacity then t.len <- t.len + 1;
      t.total <- t.total + 1;
      if (not ok) && t.failed_capacity > 0 then begin
        t.failed <- { base with f_spans = span_list } :: t.failed;
        if t.failed_len < t.failed_capacity then
          t.failed_len <- t.failed_len + 1
        else t.failed <- take t.failed_capacity t.failed
      end)

(** Ring contents, oldest first. *)
let entries t =
  locked t (fun () ->
      let out = ref [] in
      for i = t.len - 1 downto 0 do
        let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
        match t.ring.(idx) with Some e -> out := e :: !out | None -> ()
      done;
      List.rev !out)

(** (ring occupancy, failed-trace occupancy, lifetime recorded). *)
let occupancy t = locked t (fun () -> (t.len, t.failed_len, t.total))

(** Most recent recorded entry for [id]: the failed list first (it has
    spans), then the ring. *)
let find t id =
  locked t (fun () ->
      match List.find_opt (fun e -> e.f_request_id = id) t.failed with
      | Some e -> Some e
      | None ->
          let found = ref None in
          (* scan newest first *)
          (try
             for i = 0 to t.len - 1 do
               let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
               match t.ring.(idx) with
               | Some e when e.f_request_id = id ->
                   found := Some e;
                   raise Exit
               | _ -> ()
             done
           with Exit -> ());
          !found)

let clear t =
  locked t (fun () ->
      Array.fill t.ring 0 t.capacity None;
      t.head <- 0;
      t.len <- 0;
      t.failed <- [];
      t.failed_len <- 0;
      t.total <- 0)

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled, like the rest of lib/obs)              *)
(* ------------------------------------------------------------------ *)

let esc = Trace.json_escape

let codes_json codes =
  "[" ^ String.concat "," (List.map (fun c -> "\"" ^ esc c ^ "\"") codes) ^ "]"

let cached_json = function
  | None -> "null"
  | Some true -> "true"
  | Some false -> "false"

let entry_summary_json ?(deterministic = false) e =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  if not (deterministic && e.f_generated) then
    Buffer.add_string buf
      (Printf.sprintf "\"request_id\":\"%s\"," (esc e.f_request_id));
  Buffer.add_string buf
    (Printf.sprintf "\"generated\":%b,\"op\":\"%s\",\"cached\":%s,\"ok\":%b"
       e.f_generated (esc e.f_op) (cached_json e.f_cached) e.f_ok);
  Buffer.add_string buf (",\"codes\":" ^ codes_json e.f_codes);
  if not deterministic then
    Buffer.add_string buf
      (Printf.sprintf ",\"latency_s\":%.6f,\"queue_wait_s\":%.6f" e.f_latency_s
         e.f_queue_wait_s);
  Buffer.add_char buf '}';
  Buffer.contents buf

(** The ring as a JSON document.  Default mode is the [/debug/requests]
    dump: oldest first, wall-clock latencies included.  Deterministic
    mode renders the sorted multiset of correlation-relevant fields only
    (no latencies, no server-generated ids), so it is bit-identical
    across runs and worker counts for the same request multiset. *)
let entries_json ?(deterministic = false) t =
  let es = entries t in
  let ring_len, failed_len, total = occupancy t in
  let rendered = List.map (entry_summary_json ~deterministic) es in
  let rendered =
    if deterministic then List.sort compare rendered else rendered
  in
  Printf.sprintf
    "{\"capacity\":%d,\"occupancy\":%d,\"failed_traces\":%d,\"recorded_total\":%d,\"entries\":[%s]}"
    t.capacity ring_len failed_len total
    (String.concat "," rendered)

(* Span-tree reconstruction.  Collector events arrive in completion
   order (children before parents) tagged with their entry depth, which
   is per-domain; so the forest is built per tid with a stack: an event
   at depth [d] adopts every already-built node deeper than [d]. *)
type node = { n_ev : Trace.event; n_children : node list }

let build_forest evs =
  let stack = ref [] in
  List.iter
    (fun (d, ev) ->
      let children, rest =
        let rec split acc = function
          | (d', n) :: tl when d' > d -> split (n :: acc) tl
          | rest -> (acc, rest)
        in
        split [] !stack
      in
      stack := (d, { n_ev = ev; n_children = children }) :: rest)
    evs;
  List.rev_map snd !stack

let rec node_json n =
  let e = n.n_ev in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ts_us\":%.3f,\"dur_us\":%.3f"
       (esc e.Trace.ev_name) (esc e.Trace.ev_cat) e.Trace.ev_ts
       e.Trace.ev_dur);
  (match e.Trace.ev_args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v)))
        args;
      Buffer.add_char buf '}');
  (match n.n_children with
  | [] -> ()
  | cs ->
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (node_json c))
        cs;
      Buffer.add_char buf ']');
  Buffer.add_char buf '}';
  Buffer.contents buf

(** Span tree for a recorded request, grouped by recording domain
    ([threads]); [None] when the id was never recorded. *)
let trace_json t id =
  match find t id with
  | None -> None
  | Some e ->
      let by_tid = Hashtbl.create 4 in
      let tids = ref [] in
      List.iter
        (fun (d, ev) ->
          let tid = ev.Trace.ev_tid in
          if not (Hashtbl.mem by_tid tid) then begin
            Hashtbl.add by_tid tid (ref []);
            tids := tid :: !tids
          end;
          let cell = Hashtbl.find by_tid tid in
          cell := (d, ev) :: !cell)
        e.f_spans;
      let threads =
        List.rev_map
          (fun tid ->
            let evs = List.rev !(Hashtbl.find by_tid tid) in
            let forest = build_forest evs in
            Printf.sprintf "{\"tid\":%d,\"spans\":[%s]}" tid
              (String.concat "," (List.map node_json forest)))
          !tids
      in
      Some
        (Printf.sprintf
           "{\"request_id\":\"%s\",\"op\":\"%s\",\"ok\":%b,\"codes\":%s,\"spans_dropped\":%d,\"threads\":[%s]}"
           (esc e.f_request_id) (esc e.f_op) e.f_ok (codes_json e.f_codes)
           e.f_spans_dropped
           (String.concat "," threads))
