(** Growable typed arrays for streaming ingestion.

    The streaming readers parse coordinate files in a single pass without
    knowing the entry count up front (FROSTT [.tns] files have no size
    header).  These buffers amortize growth by doubling, hold unboxed
    [int]/[float] payloads, and hand back a right-sized [Array] copy at
    finalization — no intermediate lists, no per-entry boxing. *)

module Ints = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 1024) () =
    { data = Array.make (max 1 capacity) 0; len = 0 }

  let length t = t.len

  let ensure t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while n > !cap do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t v =
    ensure t (t.len + 1);
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Growable.Ints.get";
    t.data.(i)

  let to_array t = Array.sub t.data 0 t.len
end

module Floats = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 1024) () =
    { data = Array.make (max 1 capacity) 0.0; len = 0 }

  let length t = t.len

  let ensure t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while n > !cap do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0.0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t v =
    ensure t (t.len + 1);
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Growable.Floats.get";
    t.data.(i)

  let to_array t = Array.sub t.data 0 t.len
end
