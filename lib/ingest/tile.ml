(** Out-of-core coordinate tiling.

    Capstan's on-chip capacity is hard: 200 PMUs of 16 x 4096 words
    (paper Table 5).  A real SuiteSparse matrix routinely exceeds that
    footprint, and no retiled mapping can fix it — the data itself does
    not fit.  This module implements the degradation the paper's memory
    analysis implies: shard the iteration space on the result's outermost
    free index variable into coordinate-range tiles, restrict {e every}
    tensor indexed by that variable to each range, compile and simulate
    every tile independently on the {!Stardust_explore.Pool}, and reduce
    the per-tile partial results back into one tensor.

    Sharding a {e free} variable partitions the iteration space, so the
    reduction is exact for any expression — multiplicative terms see
    disjoint coordinate ranges and additive terms never cross tiles; a
    scalar result (the variable is then a reduction variable) reduces by
    summation, which the {!Stardust_tensor.Coo} builder's
    duplicate-summing finalize provides for free. *)

module Tensor = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
module Compile = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Resources = Stardust_capstan.Resources
module Pool = Stardust_explore.Pool
module Diag = Stardust_diag.Diag
module Metrics = Stardust_obs.Metrics
module Trace = Stardust_obs.Trace

let count ?(by = 1.0) name help = Metrics.inc ~by (Metrics.counter ~help name)

(* ------------------------------------------------------------------ *)
(* Footprint model                                                     *)
(* ------------------------------------------------------------------ *)

(** Words of storage a tensor occupies on chip: every value plus the
    pos/crd metadata of each compressed level (one 32-bit word each,
    matching {!Resources}'s SRAM accounting). *)
let footprint_words t =
  let fmt = Tensor.format t in
  let meta = ref 0 in
  for l = 0 to Tensor.order t - 1 do
    if Format.level_kind fmt l = Format.Compressed then
      meta :=
        !meta
        + Array.length (Tensor.pos_array t l)
        + Array.length (Tensor.crd_array t l)
  done;
  !meta + Tensor.num_vals t

(** Total on-chip SRAM of the chip, in words. *)
let budget_words (arch : Arch.t) = Arch.pmu_words arch * arch.Arch.num_pmu

(* ------------------------------------------------------------------ *)
(* Shard analysis                                                      *)
(* ------------------------------------------------------------------ *)

(** How one kernel shards: the index variable to slice, its extent, the
    result mode it maps to (if any), and the modes it pins in each input
    tensor. *)
type shard = {
  var : string;
  extent : int;
  result : string;
  result_mode : int option;
      (** [None] for a scalar result: partials are summed instead of
          concatenated *)
  tensor_modes : (string * int list) list;
      (** input tensors restricted per tile, with the modes sliced *)
}

(** Modes of [access] bound to [var]. *)
let modes_of access var =
  List.mapi (fun m v -> (m, v)) access.Ast.indices
  |> List.filter_map (fun (m, v) -> if v = var then Some m else None)

(** Decide whether (and how) [c] can shard.  [Error reason] is
    human-readable and becomes a note in the fallback trail. *)
let shard_of (c : Compile.compiled) : (shard, string) result =
  match Cin.assignments (Schedule.stmt c.Compile.schedule) with
  | [] -> Error "schedule has no assignment"
  | _ :: _ :: _ -> Error "multi-assignment schedules (precompute) do not tile"
  | [ a ] -> (
      let rhs_accesses = Ast.accesses_of_expr a.Ast.rhs in
      let var =
        match a.Ast.lhs.Ast.indices with
        | v :: _ -> Some v
        | [] -> (
            match Ast.indices_of_expr a.Ast.rhs with
            | v :: _ -> Some v
            | [] -> None)
      in
      match var with
      | None -> Error "kernel has no index variable to shard"
      | Some var ->
          if not (List.exists (fun ac -> List.mem var ac.Ast.indices) rhs_accesses)
          then Error (Fmt.str "shard variable %s is never read" var)
          else
            (* every access of a tensor must pin [var] to the same modes,
               or slicing that tensor would corrupt the other access *)
            let per_tensor = Hashtbl.create 8 in
            let consistent = ref true in
            List.iter
              (fun ac ->
                let ms = modes_of ac var in
                match Hashtbl.find_opt per_tensor ac.Ast.tensor with
                | None -> Hashtbl.add per_tensor ac.Ast.tensor ms
                | Some ms' -> if ms <> ms' then consistent := false)
              rhs_accesses;
            if not !consistent then
              Error
                (Fmt.str
                   "tensor accessed with inconsistent %s placement; cannot \
                    slice"
                   var)
            else
              let tensor_modes =
                Hashtbl.fold
                  (fun t ms acc -> if ms = [] then acc else (t, ms) :: acc)
                  per_tensor []
                |> List.sort compare
              in
              let extent =
                List.fold_left
                  (fun acc (tname, ms) ->
                    match (acc, List.assoc_opt tname c.Compile.inputs) with
                    | Some e, _ -> Some e
                    | None, Some t -> Some (Tensor.dim t (List.hd ms))
                    | None, None -> None)
                  None tensor_modes
              in
              (match extent with
              | None -> Error "no input tensor binds the shard variable"
              | Some extent when extent < 2 ->
                  Error (Fmt.str "extent of %s is %d; nothing to shard" var extent)
              | Some extent ->
                  let result = a.Ast.lhs.Ast.tensor in
                  let result_mode =
                    match modes_of a.Ast.lhs var with
                    | m :: _ -> Some m
                    | [] -> None
                  in
                  if result_mode = None && a.Ast.lhs.Ast.indices <> [] then
                    Error
                      (Fmt.str
                         "result does not index the shard variable %s" var)
                  else Ok { var; extent; result; result_mode; tensor_modes }))

(** Even coordinate ranges covering [0, extent). *)
let ranges ~extent ~tiles =
  let tiles = max 1 (min tiles extent) in
  List.init tiles (fun k ->
      let lo = k * extent / tiles and hi = (k + 1) * extent / tiles in
      (lo, hi))
  |> List.filter (fun (lo, hi) -> hi > lo)

(** The tile plan: how many coordinate slices bring the sharded data
    under the chip's SRAM budget.  [None] when the kernel's whole
    footprint already fits — tiling cannot help a structural
    infeasibility, only a capacity one. *)
let plan (arch : Arch.t) (c : Compile.compiled) =
  match shard_of c with
  | Error reason -> Error reason
  | Ok shard ->
      let budget = budget_words arch in
      let total =
        List.fold_left
          (fun acc (_, t) -> acc + footprint_words t)
          0 c.Compile.inputs
      in
      if total <= budget then
        Error
          (Fmt.str
             "inputs fit on chip (%d of %d words); infeasibility is \
              structural, not capacity"
             total budget)
      else
        let sharded, fixed =
          List.fold_left
            (fun (s, f) (name, t) ->
              if List.mem_assoc name shard.tensor_modes then
                (s + footprint_words t, f)
              else (s, f + footprint_words t))
            (0, 0) c.Compile.inputs
        in
        if sharded = 0 then
          Error "the oversized data is not indexed by the shard variable"
        else
          let headroom = max 1 (budget - fixed) in
          let tiles = (sharded + headroom - 1) / headroom in
          let tiles = max 2 (min tiles (min shard.extent 64)) in
          Ok (shard, ranges ~extent:shard.extent ~tiles)

(* ------------------------------------------------------------------ *)
(* Slicing and reduction                                               *)
(* ------------------------------------------------------------------ *)

(** Restrict [t] to coordinates [lo <= c < hi] on [modes], remapping the
    sliced modes to a [hi - lo] extent. *)
let restrict t ~modes ~lo ~hi =
  let dims = Tensor.dims t in
  List.iter (fun m -> dims.(m) <- hi - lo) modes;
  let coo = Coo.create dims in
  Tensor.iter_nonzeros
    (fun coords v ->
      if List.for_all (fun m -> coords.(m) >= lo && coords.(m) < hi) modes
      then begin
        let c = Array.copy coords in
        List.iter (fun m -> c.(m) <- c.(m) - lo) modes;
        Coo.add coo c v
      end)
    t;
  Tensor.of_coo ~name:(Tensor.name t) ~format:(Tensor.format t) coo

let tile_inputs shard (c : Compile.compiled) ~lo ~hi =
  List.map
    (fun (name, t) ->
      match List.assoc_opt name shard.tensor_modes with
      | Some modes -> (name, restrict t ~modes ~lo ~hi)
      | None -> (name, t))
    c.Compile.inputs

(** Merge per-tile partial results into the full-extent result tensor. *)
let reduce shard ~partials =
  match shard.result_mode with
  | None ->
      (* scalar result: the shard variable was a reduction variable *)
      let sum =
        List.fold_left
          (fun acc (_, _, t) -> acc +. Tensor.scalar_value t)
          0.0 partials
      in
      Tensor.rename shard.result (Tensor.scalar sum)
  | Some p ->
      let _, _, first = List.hd partials in
      let dims = Tensor.dims first in
      dims.(p) <- shard.extent;
      let coo = Coo.create dims in
      List.iter
        (fun (lo, _, t) ->
          Tensor.iter_nonzeros
            (fun coords v ->
              if v <> 0.0 then begin
                let c = Array.copy coords in
                c.(p) <- c.(p) + lo;
                Coo.add coo c v
              end)
            t)
        partials;
      Tensor.of_coo ~name:shard.result ~format:(Tensor.format first) coo

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = {
  tiles : int;
  shard_var : string;
  results : (string * Tensor.t) list;
  notes : Diag.t list;  (** per-tile provenance, demoted to notes *)
}

let diag_of_sim_error ~name kind message =
  let code =
    match (kind : Sim.error_kind) with
    | Sim.Capacity -> Diag.code_sim_capacity
    | Sim.Watchdog -> Diag.code_sim_watchdog
    | Sim.Fault -> Diag.code_sim_fault
    | Sim.Runtime -> Diag.code_sim_runtime
  in
  Diag.error ~stage:Diag.Simulate ~code ~context:[ ("kernel", name) ] "%s"
    message

(** Compile and simulate one coordinate tile.  Raises {!Diag.Fail} on any
    structured failure so the pool's per-item isolation can carry it. *)
let run_tile ~config ~watchdog ~faults shard (c : Compile.compiled) (k, lo, hi)
    =
  let name = Fmt.str "%s[%s:%d..%d)" c.Compile.name shard.var lo hi in
  Trace.with_span ~cat:"ingest" ("tile " ^ name) @@ fun () ->
  count "tiling_tiles_total" "coordinate tiles simulated";
  let inputs = tile_inputs shard c ~lo ~hi in
  match
    Compile.compile_result ~name:c.Compile.name c.Compile.schedule ~inputs
  with
  | Error ds -> Diag.fail ds
  | Ok c' -> (
      let u = Resources.count config.Sim.arch c' in
      if not u.Resources.feasible then
        Diag.fail
          [
            Diag.error ~stage:Diag.Driver ~code:Diag.code_infeasible
              ~context:
                [ ("kernel", name); ("limiting", u.Resources.limiting) ]
              "tile %d does not fit the chip: %a" k Resources.pp u;
          ]
      else
        match Sim.execute ~config ~watchdog ~faults c' with
        | results, _report -> (
            match List.assoc_opt shard.result results with
            | Some t -> (lo, hi, t)
            | None ->
                Diag.fail
                  [
                    Diag.error ~stage:Diag.Driver ~code:Diag.code_internal
                      ~context:[ ("kernel", name) ]
                      "tile produced no result tensor %S" shard.result;
                  ])
        | exception Sim.Sim_error { kind; message } ->
            Diag.fail [ diag_of_sim_error ~name kind message ])

let diags_of_failure shard ~kernel (k, lo, hi) = function
  | Pool.Failure_raised { exn = Diag.Fail ds; _ } -> ds
  | Pool.Failure_raised { exn; _ } ->
      [
        Diag.error ~stage:Diag.Driver ~code:Diag.code_unexpected
          ~context:
            [ ("kernel", kernel);
              ("tile", Fmt.str "%d:%s=%d..%d" k shard.var lo hi) ]
          "tile execution died: %s" (Printexc.to_string exn);
      ]
  | Pool.Failure_timed_out { seconds } ->
      [
        Diag.error ~stage:Diag.Driver ~code:Diag.code_worker_timeout
          ~context:
            [ ("kernel", kernel);
              ("tile", Fmt.str "%d:%s=%d..%d" k shard.var lo hi) ]
          "tile exceeded its %.1fs deadline" seconds;
      ]

(** Attempt the out-of-core tiling rung: plan, simulate every tile on the
    pool, reduce.  All-or-nothing — one failed tile fails the attempt
    (with its diagnostics), because a partial result would be silently
    wrong. *)
let attempt ?workers ?timeout ?(config = Sim.default_config)
    ?(watchdog = Sim.default_watchdog) ?(faults = []) (c : Compile.compiled)
    : (outcome, Diag.t list) result =
  count "tiling_attempts_total" "out-of-core tiling attempts";
  match plan config.Sim.arch c with
  | Error reason ->
      Error
        [
          Diag.note ~stage:Diag.Ingest ~code:Diag.code_infeasible
            ~context:[ ("kernel", c.Compile.name) ]
            "tiling not applicable: %s" reason;
        ]
  | Ok (shard, rs) -> (
      let items =
        Array.of_list (List.mapi (fun k (lo, hi) -> (k, lo, hi)) rs)
      in
      let slots =
        Pool.map_result ?timeout ?workers
          (run_tile ~config ~watchdog ~faults shard c)
          items
      in
      let failures = ref [] and partials = ref [] in
      Array.iteri
        (fun i slot ->
          match slot with
          | Ok p -> partials := p :: !partials
          | Error f ->
              failures :=
                diags_of_failure shard ~kernel:c.Compile.name items.(i) f
                :: !failures)
        slots;
      if !failures <> [] then Error (List.concat (List.rev !failures))
      else begin
          count "tiling_success_total" "kernels completed via tiling";
          let partials =
            List.sort (fun (a, _, _) (b, _, _) -> compare a b) !partials
          in
          let result = reduce shard ~partials in
          Ok
            {
              tiles = List.length rs;
              shard_var = shard.var;
              results = [ (shard.result, result) ];
              notes =
                [
                  Diag.note ~stage:Diag.Ingest ~code:Diag.code_fallback_tiled
                    ~context:
                      [ ("kernel", c.Compile.name);
                        ("shard", shard.var);
                        ("tiles", string_of_int (List.length rs)) ]
                    "kernel %s simulated as %d coordinate tiles over %s"
                    c.Compile.name (List.length rs) shard.var;
                ];
            }
      end)
