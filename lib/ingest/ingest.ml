(** Streaming dataset ingestion.

    The paper's evaluation runs on real SuiteSparse/FROSTT datasets; this
    module is the hardened path those files come in through.  Unlike the
    legacy {!Stardust_tensor.Tensor_io} readers (kept for their
    exception-style API), these readers

    - parse in a {b single bounded-memory pass}: each line is tokenized
      with a hand-rolled splitter into {!Growable} typed arrays or
      directly into a {!Stardust_tensor.Coo} builder — no intermediate
      lists, no [List.nth] scans;
    - enforce {b hard resource budgets} ([max_nnz], [max_bytes]) so a
      hostile or mislabeled file cannot OOM the process;
    - map {b every} malformed-input path to a stable [E021x]
      {!Stardust_diag.Diag} code carrying the file, line number and a
      byte-offset span, so [run --diag-json] reports ingestion failures
      structurally instead of dying on a stringly exception;
    - support {b fault injection} (truncation, byte corruption, denied
      opens) mirroring [Sim.execute ?faults], so the degradation path is
      testable without hand-corrupting files on disk;
    - account for themselves through [ingest_*] metrics and trace spans,
      including an open-fd gauge that a leak audit can assert returns to
      zero. *)

module Tensor = Stardust_tensor.Tensor
module Coo = Stardust_tensor.Coo
module Format = Stardust_tensor.Format
module Diag = Stardust_diag.Diag
module Metrics = Stardust_obs.Metrics
module Trace = Stardust_obs.Trace

(* ------------------------------------------------------------------ *)
(* Budgets and faults                                                  *)
(* ------------------------------------------------------------------ *)

(** Hard resource ceilings for one ingestion.  [None] means unlimited. *)
type budget = { max_nnz : int option; max_bytes : int option }

let no_budget = { max_nnz = None; max_bytes = None }
let budget ?max_nnz ?max_bytes () = { max_nnz; max_bytes }

(** Injected file-level adversities, mirroring [Sim.execute ?faults]:
    the reader behaves exactly as if the file on disk were damaged. *)
type fault =
  | Truncate_at of int
      (** the file appears to end after this many bytes *)
  | Corrupt_byte of { at : int; value : char }
      (** the byte at this offset reads back as [value] *)
  | Deny_open
      (** opening the file fails as if permission were denied *)

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

(* metric handles are looked up per use so [Metrics.reset] (tests, fresh
   CLI runs) never leaves this module holding a detached ref *)
let count ?(by = 1.0) name help = Metrics.inc ~by (Metrics.counter ~help name)

let fd_gauge () =
  Metrics.gauge
    ~help:
      "file descriptors currently held by the streaming readers; a leak \
       audit asserts this returns to zero"
    "ingest_open_fds"

(** Current reader-held fd count — the fuzzer's leak audit asserts this
    returns to zero after every case. *)
let open_fds () = int_of_float (Metrics.value (fd_gauge ()))

(* ------------------------------------------------------------------ *)
(* Structured failure                                                  *)
(* ------------------------------------------------------------------ *)

exception Reject of Diag.t

let reject ?span ~path ~line ~code fmt =
  Fmt.kstr
    (fun m ->
      raise
        (Reject
           (Diag.make ~severity:Diag.Error ?span ~stage:Diag.Ingest ~code
              ~context:
                [ ("file", path); ("line", string_of_int line) ]
              m)))
    fmt

(* ------------------------------------------------------------------ *)
(* Faulting line source                                                *)
(* ------------------------------------------------------------------ *)

(** A line-oriented reader over an [in_channel] that tracks byte offsets
    and line numbers, applies injected faults, and enforces the byte
    budget.  All reads go through {!next_line}; the channel is closed by
    the caller's [Fun.protect]. *)
type source = {
  path : string;
  ic : in_channel;
  faults : fault list;
  max_bytes : int option;
  mutable offset : int;  (** bytes consumed so far *)
  mutable lineno : int;  (** 1-based line of the most recent {!next_line} *)
  mutable line_start : int;  (** byte offset where that line began *)
  mutable truncated : bool;  (** a [Truncate_at] fault has fired *)
}

let truncate_point faults =
  List.fold_left
    (fun acc f ->
      match f with
      | Truncate_at n -> Some (match acc with Some m -> min m n | None -> n)
      | _ -> acc)
    None faults

let corrupt_line src line =
  let start = src.line_start in
  let len = String.length line in
  let patched = ref None in
  List.iter
    (fun f ->
      match f with
      | Corrupt_byte { at; value } when at >= start && at < start + len ->
          let b =
            match !patched with
            | Some b -> b
            | None ->
                let b = Bytes.of_string line in
                patched := Some b;
                b
          in
          Bytes.set b (at - start) value
      | _ -> ())
    src.faults;
  match !patched with Some b -> Bytes.to_string b | None -> line

(** Next line, or [None] at (possibly injected) end of file.  Raises
    {!Reject} with [E0214] when the byte budget is exceeded. *)
let next_line src =
  if src.truncated then None
  else
    match input_line src.ic with
    | exception End_of_file -> None
    | line ->
        src.lineno <- src.lineno + 1;
        src.line_start <- src.offset;
        let consumed = String.length line + 1 in
        src.offset <- src.offset + consumed;
        let line =
          match truncate_point src.faults with
          | Some n when src.line_start >= n ->
              src.truncated <- true;
              ""
          | Some n when src.offset > n ->
              src.truncated <- true;
              String.sub line 0 (n - src.line_start)
          | _ -> line
        in
        if src.truncated && line = "" then None
        else begin
          (match src.max_bytes with
          | Some b when src.offset > b ->
              reject ~path:src.path ~line:src.lineno
                ~span:{ Diag.start = src.line_start; stop = src.offset }
                ~code:Diag.code_ingest_budget
                "byte budget exceeded: read %d bytes of a %d-byte allowance"
                src.offset b
          | _ -> ());
          Some (corrupt_line src line)
        end

let line_span src =
  { Diag.start = src.line_start; stop = src.offset }

(* ------------------------------------------------------------------ *)
(* Tokenizing                                                          *)
(* ------------------------------------------------------------------ *)

let is_ws c = c = ' ' || c = '\t' || c = '\r'

(** Split [line] on runs of whitespace without building lists of empty
    fields; at most [max_fields + 1] tokens are returned so ragged lines
    are detectable without unbounded allocation. *)
let tokenize ?(max_fields = 64) line =
  let n = String.length line in
  let fields = ref [] and count = ref 0 in
  let i = ref 0 in
  while !i < n && !count <= max_fields do
    while !i < n && is_ws line.[!i] do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while !i < n && not (is_ws line.[!i]) do
        incr i
      done;
      fields := String.sub line start (!i - start) :: !fields;
      incr count
    end
  done;
  Array.of_list (List.rev !fields)

let is_comment line =
  let n = String.length line in
  let rec first i = if i < n && is_ws line.[i] then first (i + 1) else i in
  let i = first 0 in
  i >= n || line.[i] = '%' || line.[i] = '#'

let parse_int src what s =
  match int_of_string s with
  | v -> v
  | exception _ ->
      reject ~path:src.path ~line:src.lineno ~span:(line_span src)
        ~code:Diag.code_ingest_entry "%s is not an integer: %S" what s

let parse_value src s =
  match float_of_string s with
  | v -> v
  | exception _ ->
      reject ~path:src.path ~line:src.lineno ~span:(line_span src)
        ~code:Diag.code_ingest_entry "value is not a number: %S" s

let parse_coord src ~mode ~dim s =
  let c = parse_int src (Fmt.str "coordinate (mode %d)" mode) s in
  if c < 1 then
    reject ~path:src.path ~line:src.lineno ~span:(line_span src)
      ~code:Diag.code_ingest_entry "coordinate %d (mode %d) is not positive" c
      mode;
  if dim > 0 && c > dim then
    reject ~path:src.path ~line:src.lineno ~span:(line_span src)
      ~code:Diag.code_ingest_entry
      "coordinate %d (mode %d) exceeds the declared dimension %d" c mode dim;
  c - 1

(* ------------------------------------------------------------------ *)
(* Duplicate detection                                                 *)
(* ------------------------------------------------------------------ *)

(** Duplicate keys are packed into a single [int] when the coordinate
    space fits 62 bits (virtually always); otherwise a string key keeps
    correctness at some allocation cost. *)
type dedup =
  | Packed of (int, unit) Hashtbl.t * int array  (** multipliers *)
  | Keyed of (string, unit) Hashtbl.t

let dedup_create dims =
  let fits =
    Array.fold_left
      (fun acc d ->
        match acc with
        | None -> None
        | Some p ->
            if d <= 0 || p > max_int / d then None else Some (p * d))
      (Some 1) dims
  in
  match fits with
  | Some _ -> Packed (Hashtbl.create 1024, dims)
  | None -> Keyed (Hashtbl.create 1024)

(** [true] when the coordinate was fresh (and is now recorded). *)
let dedup_add d coords =
  match d with
  | Packed (tbl, dims) ->
      let key = ref 0 in
      Array.iteri (fun m c -> key := (!key * dims.(m)) + c) coords;
      if Hashtbl.mem tbl !key then false
      else begin
        Hashtbl.add tbl !key ();
        true
      end
  | Keyed tbl ->
      let key =
        String.concat "," (Array.to_list (Array.map string_of_int coords))
      in
      if Hashtbl.mem tbl key then false
      else begin
        Hashtbl.add tbl key ();
        true
      end

(* ------------------------------------------------------------------ *)
(* Reader scaffolding                                                  *)
(* ------------------------------------------------------------------ *)

(* a file whose order disagrees with the requested format must be a
   structured reject, not an Invalid_argument out of [Tensor.of_coo] *)
let check_format_order src ~format ~order =
  let fo = Format.order format in
  if fo <> order then
    reject ~path:src.path ~line:src.lineno
      ~code:Diag.code_ingest_entry
      "file holds an order-%d tensor but the requested format has order %d"
      order fo

let check_nnz_budget src ~budget n =
  match budget.max_nnz with
  | Some b when n > b ->
      reject ~path:src.path ~line:src.lineno ~span:(line_span src)
        ~code:Diag.code_ingest_budget
        "entry budget exceeded: %d entries over a max-nnz allowance of %d" n b
  | _ -> ()

(** Open [path], run [f] over a faulting source, and guarantee the
    channel is closed and the fd gauge rebalanced on every exit path. *)
let with_source ?(budget = no_budget) ?(faults = []) path f =
  if List.mem Deny_open faults then
    raise
      (Reject
         (Diag.error ~stage:Diag.Ingest ~code:Diag.code_ingest_unreadable
            ~context:[ ("file", path); ("line", "0") ]
            "cannot open %s: permission denied (injected fault)" path));
  match open_in path with
  | exception Sys_error m ->
      raise
        (Reject
           (Diag.error ~stage:Diag.Ingest ~code:Diag.code_ingest_unreadable
              ~context:[ ("file", path); ("line", "0") ]
              "cannot open %s: %s" path m))
  | ic ->
      Metrics.inc (fd_gauge ());
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          Metrics.inc ~by:(-1.0) (fd_gauge ()))
        (fun () ->
          let src =
            {
              path;
              ic;
              faults;
              max_bytes = budget.max_bytes;
              offset = 0;
              lineno = 0;
              line_start = 0;
              truncated = false;
            }
          in
          let r = f src in
          count ~by:(float_of_int src.offset) "ingest_bytes_total"
            "bytes consumed by the streaming readers";
          r)

let run_reader name f =
  Trace.with_span ~cat:"ingest" name (fun () ->
      match f () with
      | t ->
          count "ingest_files_total" "files ingested successfully";
          count
            ~by:(float_of_int (Tensor.num_vals t))
            "ingest_entries_total" "coordinate entries ingested";
          Ok t
      | exception Reject d ->
          count "ingest_rejects_total"
            "ingestions rejected with a structured E021x code";
          Error [ d ]
      | exception Diag.Fail ds ->
          count "ingest_rejects_total"
            "ingestions rejected with a structured E021x code";
          Error ds)

(* ------------------------------------------------------------------ *)
(* Matrix Market                                                       *)
(* ------------------------------------------------------------------ *)

type mm_header = { symmetric : bool; pattern : bool }

let parse_mm_header src =
  match next_line src with
  | None ->
      reject ~path:src.path ~line:1 ~code:Diag.code_ingest_header
        "unexpected end of file: missing MatrixMarket header"
  | Some line ->
      let fields = tokenize (String.lowercase_ascii line) in
      if
        Array.length fields < 1
        || fields.(0) <> "%%matrixmarket"
      then
        reject ~path:src.path ~line:src.lineno ~span:(line_span src)
          ~code:Diag.code_ingest_header
          "missing MatrixMarket header (first line must start with \
           %%%%MatrixMarket)";
      if Array.length fields < 5 then
        reject ~path:src.path ~line:src.lineno ~span:(line_span src)
          ~code:Diag.code_ingest_header
          "truncated MatrixMarket header: want object format field symmetry";
      let mem s = Array.exists (String.equal s) fields in
      if not (mem "matrix" && mem "coordinate") then
        reject ~path:src.path ~line:src.lineno ~span:(line_span src)
          ~code:Diag.code_ingest_header
          "unsupported MatrixMarket header %S: only coordinate matrices are \
           supported"
          line;
      if not (mem "real" || mem "integer" || mem "pattern") then
        reject ~path:src.path ~line:src.lineno ~span:(line_span src)
          ~code:Diag.code_ingest_header
          "unsupported MatrixMarket field in %S: want real, integer or \
           pattern"
          line;
      if not (mem "general" || mem "symmetric") then
        reject ~path:src.path ~line:src.lineno ~span:(line_span src)
          ~code:Diag.code_ingest_header
          "unsupported MatrixMarket symmetry in %S: want general or symmetric"
          line;
      { symmetric = mem "symmetric"; pattern = mem "pattern" }

let rec next_data_line src =
  match next_line src with
  | None -> None
  | Some l when is_comment l -> next_data_line src
  | Some l -> Some l

(** Streaming Matrix Market reader.  One pass: header, size line, then
    [nnz] entries straight into a {!Coo} builder created from the size
    line — duplicate detection (including mirrored symmetric duplicates)
    happens inline. *)
let read_matrix_market_result ?(name = "mtx") ?(budget = no_budget)
    ?(faults = []) ~format path =
  run_reader ("ingest.mtx " ^ path) @@ fun () ->
  with_source ~budget ~faults path @@ fun src ->
  let hdr = parse_mm_header src in
  let rows, cols, nnz =
    match next_data_line src with
    | None ->
        reject ~path ~line:src.lineno ~code:Diag.code_ingest_header
          "unexpected end of file: missing size line"
    | Some line -> (
        match tokenize line with
        | [| r; c; n |] ->
            let r = parse_int src "row count" r
            and c = parse_int src "column count" c
            and n = parse_int src "entry count" n in
            if r < 1 || c < 1 || n < 0 then
              reject ~path ~line:src.lineno ~span:(line_span src)
                ~code:Diag.code_ingest_header
                "bad size line: %d x %d with %d entries" r c n;
            (r, c, n)
        | _ ->
            reject ~path ~line:src.lineno ~span:(line_span src)
              ~code:Diag.code_ingest_header
              "bad size line %S: want ROWS COLS NNZ" line)
  in
  check_nnz_budget src ~budget nnz;
  check_format_order src ~format ~order:2;
  let dims = [| rows; cols |] in
  let coo = Coo.create dims in
  let dedup = dedup_create dims in
  let add_checked i j v =
    if not (dedup_add dedup [| i; j |]) then
      reject ~path ~line:src.lineno ~span:(line_span src)
        ~code:Diag.code_ingest_duplicate "duplicate entry (%d, %d)" (i + 1)
        (j + 1);
    Coo.add coo [| i; j |] v
  in
  let seen = ref 0 in
  let rec entries () =
    match next_data_line src with
    | None ->
        if !seen < nnz then
          reject ~path ~line:src.lineno ~span:(line_span src)
            ~code:Diag.code_ingest_truncated
            "truncated file: %d of %d entries" !seen nnz
    | Some line ->
        if !seen >= nnz then
          reject ~path ~line:src.lineno ~span:(line_span src)
            ~code:Diag.code_ingest_entry "trailing garbage after %d entries"
            nnz;
        let fields = tokenize line in
        let want = if hdr.pattern then 2 else 3 in
        if Array.length fields <> want then
          (if hdr.pattern && Array.length fields > 2 then
             reject ~path ~line:src.lineno ~span:(line_span src)
               ~code:Diag.code_ingest_entry
               "pattern entry carries a value: %S" line
           else
             reject ~path ~line:src.lineno ~span:(line_span src)
               ~code:Diag.code_ingest_entry
               "malformed entry %S: want %d fields" line want);
        let i = parse_coord src ~mode:0 ~dim:rows fields.(0) in
        let j = parse_coord src ~mode:1 ~dim:cols fields.(1) in
        let v = if hdr.pattern then 1.0 else parse_value src fields.(2) in
        add_checked i j v;
        if hdr.symmetric && i <> j then add_checked j i v;
        incr seen;
        entries ()
  in
  entries ();
  Tensor.of_coo ~name ~format coo

(* ------------------------------------------------------------------ *)
(* FROSTT .tns                                                         *)
(* ------------------------------------------------------------------ *)

(** Streaming FROSTT reader.  [.tns] files carry no size header, so the
    single pass accumulates coordinates and values into {!Growable}
    arrays (inferring the order from the first entry and the dimensions
    from coordinate maxima unless [dims] pins them), then builds the
    tensor once the extent is known. *)
let read_tns_result ?(name = "tns") ?dims ?(budget = no_budget)
    ?(faults = []) ~format path =
  run_reader ("ingest.tns " ^ path) @@ fun () ->
  with_source ~budget ~faults path @@ fun src ->
  let declared = Option.map Array.of_list dims in
  let order = ref (match declared with Some d -> Array.length d | None -> 0) in
  let coords = Growable.Ints.create () in
  let vals = Growable.Floats.create () in
  let maxima = ref [||] in
  let rec entries () =
    match next_data_line src with
    | None -> ()
    | Some line ->
        let fields = tokenize line in
        let nf = Array.length fields in
        if !order = 0 then begin
          if nf < 2 then
            reject ~path ~line:src.lineno ~span:(line_span src)
              ~code:Diag.code_ingest_entry
              "malformed entry %S: want COORDS.. VALUE" line;
          order := nf - 1;
          maxima := Array.make !order 0
        end
        else if Array.length !maxima = 0 then maxima := Array.make !order 0;
        if nf <> !order + 1 then
          reject ~path ~line:src.lineno ~span:(line_span src)
            ~code:Diag.code_ingest_entry
            "ragged entry %S: want %d coordinates and a value" line !order;
        for m = 0 to !order - 1 do
          let dim =
            match declared with Some d -> d.(m) | None -> 0
          in
          let c = parse_coord src ~mode:m ~dim fields.(m) in
          !maxima.(m) <- max !maxima.(m) (c + 1);
          Growable.Ints.push coords c
        done;
        Growable.Floats.push vals (parse_value src fields.(!order));
        check_nnz_budget src ~budget (Growable.Floats.length vals);
        entries ()
  in
  entries ();
  let n = Growable.Floats.length vals in
  if n = 0 then
    reject ~path ~line:src.lineno ~code:Diag.code_ingest_truncated
      "no entries in %s" path;
  (match declared with
  | Some d when Array.length d <> !order ->
      reject ~path ~line:src.lineno ~code:Diag.code_ingest_entry
        "entries have %d modes but dims declares %d" !order (Array.length d)
  | _ -> ());
  check_format_order src ~format ~order:!order;
  let dims = match declared with Some d -> d | None -> !maxima in
  let dedup = dedup_create dims in
  let coo = Coo.create dims in
  let entry = Array.make !order 0 in
  let dup = ref None in
  (try
     for e = 0 to n - 1 do
       for m = 0 to !order - 1 do
         entry.(m) <- Growable.Ints.get coords ((e * !order) + m)
       done;
       if not (dedup_add dedup entry) then begin
         dup := Some (Array.copy entry);
         raise Exit
       end;
       Coo.add coo entry (Growable.Floats.get vals e)
     done
   with Exit -> ());
  (match !dup with
  | Some c ->
      reject ~path ~line:src.lineno ~code:Diag.code_ingest_duplicate
        "duplicate entry %s"
        (String.concat " "
           (Array.to_list (Array.map (fun c -> string_of_int (c + 1)) c)))
  | None -> ());
  Tensor.of_coo ~name ~format coo

(* ------------------------------------------------------------------ *)
(* Dispatch and raising shims                                          *)
(* ------------------------------------------------------------------ *)

(** Read a tensor file, dispatching on its extension ([.mtx] vs
    [.tns]). *)
let read_file_result ?name ?dims ?budget ?faults ~format path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".mtx" | ".mm" -> read_matrix_market_result ?name ?budget ?faults ~format path
  | ".tns" -> read_tns_result ?name ?dims ?budget ?faults ~format path
  | ext ->
      count "ingest_rejects_total"
        "ingestions rejected with a structured E021x code";
      Error
        [
          Diag.error ~stage:Diag.Ingest ~code:Diag.code_ingest_unreadable
            ~context:[ ("file", path); ("line", "0") ]
            "unknown tensor file extension %S (want .mtx or .tns)" ext;
        ]

(** Raising shim over {!read_file_result} for callers already speaking
    {!Diag.Fail}. *)
let read_file ?name ?dims ?budget ?faults ~format path =
  match read_file_result ?name ?dims ?budget ?faults ~format path with
  | Ok t -> t
  | Error ds -> Diag.fail ds
