(** Byte-wise mutation fuzzing of the streaming dataset readers.

    The robustness contract of {!Ingest} is an {e envelope}: for any
    input bytes whatsoever, [read_file_result] either returns a tensor or
    a structured [E021x] diagnostic — never a raw [Scanf] failure, a
    [Stack_overflow], an uncaught [Failure], or a leaked file
    descriptor.  This fuzzer hammers that contract: it generates
    well-formed [.mtx]/[.tns] files, applies random byte-level mutations
    (overwrites, insertions, deletions, truncations, line duplications),
    sometimes layers injected faults on top, and audits every outcome
    against the envelope.

    Runs are bit-for-bit reproducible from the seed: the generator is a
    private {!Random.State} and case files are rewritten in place. *)

module Diag = Stardust_diag.Diag

(** Everything a run learned.  [failures] holds one human-readable line
    per envelope escape; the run is green iff it is empty. *)
type stats = {
  cases : int;
  ok : int;  (** mutants that still parsed *)
  rejected : int;  (** mutants rejected with a structured E021x *)
  failures : string list;
}

let pp_stats ppf s =
  Fmt.pf ppf "ingest fuzz: %d cases, %d parsed, %d rejected, %d escapes"
    s.cases s.ok s.rejected (List.length s.failures)

(* ------------------------------------------------------------------ *)
(* Well-formed file generation                                         *)
(* ------------------------------------------------------------------ *)

let gen_mtx rng =
  let rows = 1 + Random.State.int rng 8
  and cols = 1 + Random.State.int rng 8 in
  let symmetric = rows = cols && Random.State.bool rng in
  let pattern = Random.State.bool rng in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%%%%MatrixMarket matrix coordinate %s %s\n"
       (if pattern then "pattern" else "real")
       (if symmetric then "symmetric" else "general"));
  if Random.State.bool rng then Buffer.add_string buf "% a comment line\n";
  (* distinct coordinates, lower-triangular when symmetric *)
  let seen = Hashtbl.create 16 in
  let entries = ref [] in
  let want = 1 + Random.State.int rng 12 in
  for _ = 1 to want do
    let i = 1 + Random.State.int rng rows in
    let j = 1 + Random.State.int rng cols in
    let i, j = if symmetric && j > i then (j, i) else (i, j) in
    if not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      entries := (i, j) :: !entries
    end
  done;
  let entries = List.rev !entries in
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" rows cols (List.length entries));
  List.iter
    (fun (i, j) ->
      if pattern then Buffer.add_string buf (Printf.sprintf "%d %d\n" i j)
      else
        Buffer.add_string buf
          (Printf.sprintf "%d %d %.3f\n" i j
             (Random.State.float rng 10.0 -. 5.0)))
    entries;
  Buffer.contents buf

let gen_tns rng =
  let order = 1 + Random.State.int rng 3 in
  let dims = Array.init order (fun _ -> 1 + Random.State.int rng 6) in
  let buf = Buffer.create 256 in
  if Random.State.bool rng then Buffer.add_string buf "# a comment line\n";
  let seen = Hashtbl.create 16 in
  let want = 1 + Random.State.int rng 12 in
  for _ = 1 to want do
    let c = Array.map (fun d -> 1 + Random.State.int rng d) dims in
    let key = String.concat "," (Array.to_list (Array.map string_of_int c)) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Array.iter (fun x -> Buffer.add_string buf (string_of_int x ^ " ")) c;
      Buffer.add_string buf
        (Printf.sprintf "%.3f\n" (Random.State.float rng 10.0 -. 5.0))
    end
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Byte-level mutation                                                 *)
(* ------------------------------------------------------------------ *)

let mutate rng s =
  let n = String.length s in
  if n = 0 then s
  else
    match Random.State.int rng 5 with
    | 0 ->
        (* overwrite one byte with anything, printable or not *)
        let b = Bytes.of_string s in
        Bytes.set b (Random.State.int rng n)
          (Char.chr (Random.State.int rng 256));
        Bytes.to_string b
    | 1 ->
        (* insert a byte *)
        let at = Random.State.int rng (n + 1) in
        String.sub s 0 at
        ^ String.make 1 (Char.chr (Random.State.int rng 256))
        ^ String.sub s at (n - at)
    | 2 ->
        (* delete a byte *)
        let at = Random.State.int rng n in
        String.sub s 0 at ^ String.sub s (at + 1) (n - at - 1)
    | 3 ->
        (* truncate *)
        String.sub s 0 (Random.State.int rng n)
    | _ -> (
        (* duplicate a whole line somewhere *)
        match String.split_on_char '\n' s with
        | [] | [ _ ] -> s
        | lines ->
            let lines = Array.of_list lines in
            let src = Random.State.int rng (Array.length lines) in
            let parts = Array.to_list lines in
            String.concat "\n" (parts @ [ lines.(src) ]))

(* ------------------------------------------------------------------ *)
(* The envelope audit                                                  *)
(* ------------------------------------------------------------------ *)

let envelope_codes =
  [
    Diag.code_ingest_unreadable;
    Diag.code_ingest_header;
    Diag.code_ingest_entry;
    Diag.code_ingest_duplicate;
    Diag.code_ingest_budget;
    Diag.code_ingest_truncated;
  ]

let in_envelope (d : Diag.t) = List.mem d.Diag.code envelope_codes

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(** Run [cases] mutation cases ([log] gets one line per escape as it is
    found).  Budgets are set loose enough that most mutants exercise the
    parsers rather than the budget check, but tight enough that a mutant
    which inflates the file still lands on a structured [E0214]. *)
let run ?(cases = 200) ?(seed = 42) ?(log = ignore) () =
  let rng = Random.State.make [| seed; 0x16e57 |] in
  let budget = Ingest.budget ~max_nnz:100_000 ~max_bytes:1_000_000 () in
  let dir = Filename.get_temp_dir_name () in
  let base =
    Filename.concat dir
      (Printf.sprintf "stardust-ingest-fuzz-%d-%d" (Unix.getpid ()) seed)
  in
  let ok = ref 0 and rejected = ref 0 and failures = ref [] in
  let fail case fmt =
    Fmt.kstr
      (fun m ->
        let m = Printf.sprintf "case %d: %s" case m in
        log m;
        failures := m :: !failures)
      fmt
  in
  for case = 1 to cases do
    let is_mtx = Random.State.bool rng in
    let path = base ^ if is_mtx then ".mtx" else ".tns" in
    let pristine = if is_mtx then gen_mtx rng else gen_tns rng in
    let mutations = Random.State.int rng 4 in
    let bytes = ref pristine in
    for _ = 1 to mutations do
      bytes := mutate rng !bytes
    done;
    write_file path !bytes;
    (* one case in four also layers an injected fault on the mutant *)
    let faults =
      match Random.State.int rng 8 with
      | 0 -> [ Ingest.Truncate_at (Random.State.int rng 64) ]
      | 1 ->
          [
            Ingest.Corrupt_byte
              {
                at = Random.State.int rng (max 1 (String.length !bytes));
                value = Char.chr (Random.State.int rng 256);
              };
          ]
      | _ -> []
    in
    let format =
      if is_mtx then Stardust_tensor.Format.csr ()
      else Stardust_tensor.Format.ucc ()
    in
    (match
       Ingest.read_file_result ~name:"fuzz" ~budget ~faults ~format path
     with
    | Ok _ -> incr ok
    | Error [] -> fail case "empty diagnostic list"
    | Error ds ->
        if List.for_all in_envelope ds then incr rejected
        else
          List.iter
            (fun d ->
              if not (in_envelope d) then
                fail case "diagnostic outside the E021x envelope: %s (%s)"
                  d.Diag.code d.Diag.message)
            ds
    | exception e ->
        fail case "reader escaped with exception %s" (Printexc.to_string e));
    let fds = Ingest.open_fds () in
    if fds <> 0 then fail case "fd leak: ingest_open_fds = %d after case" fds
  done;
  (try Sys.remove (base ^ ".mtx") with Sys_error _ -> ());
  (try Sys.remove (base ^ ".tns") with Sys_error _ -> ());
  { cases; ok = !ok; rejected = !rejected; failures = List.rev !failures }
