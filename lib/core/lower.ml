(** Lowering scheduled CIN to the Spatial parallel-pattern IR
    (paper sections 6.2 and 7.2).

    The lowerer traverses the CIN top-down.  At every [forall] it consults
    the loop plan chosen by the co-iteration rewrite system and emits the
    matching declarative pattern: a dense [Foreach]/[Reduce], a position
    loop over one compressed fiber, or a bit-vector [Scan] co-iterating two
    fibers.  At every site it emits the allocations and DRAM transfers the
    memory analysis scheduled there, so data always arrives in the pattern
    body where it is consumed — the push model the paper contrasts with von
    Neumann pull-based code generation. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
open Stardust_spatial.Spatial_ir
open Coiter

exception Lower_error = Coiter.Lower_error

let err fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

(* -------------------------------------------------------------------- *)
(* Naming                                                                *)
(* -------------------------------------------------------------------- *)

let n_start x l = Printf.sprintf "%s%d_start" x (l + 1)
let n_end x l = Printf.sprintf "%s%d_end" x (l + 1)
let n_len x l = Printf.sprintf "%s%d_len" x (l + 1)
let n_bv x l = Printf.sprintf "%s%d_bv" x (l + 1)
let n_cnt x l = Printf.sprintf "%s%d_cnt" x (l + 1)
let n_base x l = Printf.sprintf "%s%d_base" x (l + 1)
let n_val x = x ^ "_hoisted"
let n_bind v = v ^ "_pos"

(* -------------------------------------------------------------------- *)
(* Environment threaded through the traversal                            *)
(* -------------------------------------------------------------------- *)

(** Positions are tracked per (tensor, level) as a {e local} expression —
    an index into the currently staged fiber — together with the fiber's
    global [base].  Dense levels always carry [base = 0] and a global
    expression.  [predicated] marks positions that may be [-1] (absent
    union lanes). *)
type posinfo = { local : exp; base : exp; predicated : bool }

type env = {
  coord : (string * exp) list;  (** var -> coordinate value *)
  pos : ((string * int) * posinfo) list;
  hoisted : (string * exp) list;  (** tensor -> FIFO-popped value *)
}

let empty_env = { coord = []; pos = []; hoisted = [] }

let coord_of env v =
  match List.assoc_opt v env.coord with
  | Some e -> e
  | None -> err "coordinate of %s is not available here" v

let posinfo_of env x l =
  if l < 0 then { local = Int 0; base = Int 0; predicated = false }
  else
    match List.assoc_opt (x, l) env.pos with
    | Some p -> p
    | None -> err "position of %s level %d is not available here" x l

let global_pos env x l =
  let p = posinfo_of env x l in
  match p.base with Int 0 -> p.local | b -> b +: p.local

let set_pos env x l pi = { env with pos = ((x, l), pi) :: env.pos }

(* -------------------------------------------------------------------- *)
(* Lowering state                                                        *)
(* -------------------------------------------------------------------- *)

type state = {
  plan : Plan.t;
  mutable bulk_staged : string list;
      (** tensors staged whole on-chip by a bulk-transfer producer *)
  mutable result_sites : (string * Memory.site) list;
      (** adjusted allocation site for result values (hoisted above
          reduction loops) *)
}

let sched st = st.plan.Plan.sched
let fmt_of st x = Schedule.format_of (sched st) x
let meta st x = Plan.meta st.plan x
let is_result st x = List.mem x st.plan.Plan.results
let is_temp st x = List.mem x (sched st).Stardust_schedule.Schedule.temporaries

let binding st x arr =
  let b = Plan.binding st.plan x arr in
  if Memory.equal_sub_array arr Memory.Vals && is_result st x then
    match List.assoc_opt x st.result_sites with
    | Some site -> { b with Memory.site }
    | None -> b
  else b

let dim_of_level st x l =
  let m = meta st x in
  m.Plan.dims.(Format.dim_of_level m.Plan.fmt l)

let last_level st x = Format.order (meta st x).Plan.fmt - 1

(** The loop variable bound to level [l] of tensor [x]. *)
let var_of_level st x l = Plan.level_var st.plan x l

(** Loops whose header sits at the given site. *)
let loops_at st site =
  List.filter
    (fun (_, (i : Plan.loop_info)) -> Memory.equal_site i.above site)
    st.plan.Plan.loops
  |> List.map snd

(* -------------------------------------------------------------------- *)
(* Result-site adjustment                                                *)
(* -------------------------------------------------------------------- *)

(** Hoist a result's values allocation above the outermost reduction loop
    feeding it, so accumulation survives across reduction iterations
    (e.g. TTM's output row lives above the [l] loop). *)
let adjust_result_sites st =
  let stmt = Schedule.stmt (sched st) in
  List.iter
    (fun (a : Ast.assign) ->
      if a.Ast.accum then begin
        let r = a.Ast.lhs.Ast.tensor in
        if
          (not (is_temp st r))
          && Format.order (fmt_of st r) > 0
          && (Plan.binding st.plan r Memory.Vals).Memory.transfer
             = Memory.Per_fiber
        then begin
          let rvars = Ast.reduction_vars a in
          (* Outermost (lowest-depth) reduction-variable loop. *)
          let outermost =
            List.filter_map
              (fun v ->
                Option.map (fun i -> (i.Plan.depth, i)) (List.assoc_opt v st.plan.Plan.loops))
              rvars
            |> List.sort compare
          in
          match outermost with
          | (_, info) :: _ ->
              st.result_sites <- (r, info.Plan.above) :: st.result_sites
          | [] -> ()
        end
      end)
    (Cin.assignments stmt)

(* -------------------------------------------------------------------- *)
(* Reading tensor values                                                 *)
(* -------------------------------------------------------------------- *)

let read_vals st env x =
  let fmt = fmt_of st x in
  if Format.order fmt = 0 then
    (* Scalar: register. *)
    reg_read (Memory.onchip_name x Memory.Vals)
  else if List.mem x st.bulk_staged then
    Read (Memory.onchip_name x Memory.Vals, [ global_pos env x (last_level st x) ])
  else
    let b = binding st x Memory.Vals in
    let last = last_level st x in
    match b.Memory.kind with
    | Reg -> reg_read (Memory.onchip_name x Memory.Vals)
    | Fifo _ -> (
        match List.assoc_opt x env.hoisted with
        | Some e -> e
        | None -> err "FIFO value of %s was not hoisted at its level" x)
    | Sram_dense | Sram_sparse ->
        let name = Memory.onchip_name x Memory.Vals in
        let idx =
          match b.Memory.transfer with
          | Memory.Per_fiber ->
              (* Staged per parent iteration: index locally. *)
              if Format.level_kind fmt last = Format.Dense then
                coord_of env (var_of_level st x last)
              else (posinfo_of env x last).local
          | _ -> global_pos env x last
        in
        Read (name, [ idx ])
    | Dram_sparse -> Read (Memory.dram_name x Memory.Vals, [ global_pos env x last ])
    | Dram_dense | Bit_vector -> err "values of %s bound to a non-readable memory" x

let rec lower_expr st env (e : Ast.expr) : exp =
  match e with
  | Ast.Access { tensor; _ } -> read_vals st env tensor
  | Ast.Const f -> Flt f
  | Ast.Neg e -> Neg (lower_expr st env e)
  | Ast.Bin (op, a, b) ->
      let o = match op with Ast.Add -> Add | Ast.Sub -> Sub | Ast.Mul -> Mul in
      Bin (o, lower_expr st env a, lower_expr st env b)

(* -------------------------------------------------------------------- *)
(* Sizing                                                                *)
(* -------------------------------------------------------------------- *)

let dram_size st x = function
  | Memory.Pos l -> (meta st x).Plan.level_counts |> fun c ->
      (if l = 0 then 1 else c.(l - 1)) + 1
  | Memory.Crd l -> max 1 (meta st x).Plan.level_counts.(l)
  | Memory.Vals -> max 1 (meta st x).Plan.num_vals

(** On-chip capacity for a binding (in words). *)
let onchip_size st x (b : Memory.binding) =
  let m = meta st x in
  match (b.Memory.array, b.Memory.transfer) with
  | Memory.Pos l, (Memory.Whole_array | Memory.No_transfer) ->
      dram_size st x (Memory.Pos l)
  | Memory.Pos l, _ ->
      (* slice covering one parent fiber *)
      (if l = 0 then 1 else m.Plan.max_fiber.(l - 1)) + 1
  | Memory.Crd _, _ -> 16 (* FIFO depth *)
  | Memory.Vals, Memory.Whole_array -> max 1 m.Plan.num_vals
  | Memory.Vals, _ -> (
      match b.Memory.kind with
      | Fifo d -> d
      | Reg -> 1
      | _ ->
          let n = Format.order m.Plan.fmt in
          if n = 0 then 1 else max 1 m.Plan.max_fiber.(n - 1))

(* -------------------------------------------------------------------- *)
(* Fiber lets and site emission                                          *)
(* -------------------------------------------------------------------- *)

(** Read a position array entry at parent position [p] (local or global per
    the pos binding's staging), with [Mux] predication when the parent lane
    may be absent. *)
let pos_read st env x l ~offset =
  let b = binding st x (Memory.Pos l) in
  let parent = posinfo_of env x (l - 1) in
  let idx =
    match b.Memory.transfer with
    | Memory.Whole_array | Memory.No_transfer ->
        (* Whole array on-chip: index by global parent position. *)
        (match parent.base with Int 0 -> parent.local | b -> b +: parent.local)
    | _ -> parent.local
  in
  let idx = if offset = 0 then idx else idx +: Int offset in
  let read = Read (Memory.onchip_name x (Memory.Pos l), [ idx ]) in
  if parent.predicated then Mux (parent.local, read, Int 0) else read

(** Emit [val X{l}_start / _end / _len] for the fiber of compressed level
    [l] of tensor [x] under the current parent position. *)
let fiber_lets st env x l =
  [
    Let (n_start x l, pos_read st env x l ~offset:0);
    Let (n_end x l, pos_read st env x l ~offset:1);
    Let (n_len x l, var (n_end x l) -: var (n_start x l));
  ]

(** Fiber-slice bounds for a transfer of sub-array [arr] of [x] (the DRAM
    range to burst in at the current loop position). *)
let slice_bounds st env x (arr : Memory.sub_array) =
  let fmt = fmt_of st x in
  match arr with
  | Memory.Pos l ->
      (* Slice covering the parent fiber's positions, plus one. *)
      if l = 0 then (Int 0, Int 2)
      else (var (n_start x (l - 1)), var (n_end x (l - 1)) +: Int 1)
  | Memory.Crd l -> (var (n_start x l), var (n_end x l))
  | Memory.Vals ->
      let last = Format.order fmt - 1 in
      if Format.level_kind fmt last = Format.Compressed then
        (var (n_start x last), var (n_end x last))
      else
        (* Dense row under the last compressed/dense parent. *)
        let parent = if last = 0 then Int 0 else global_pos env x (last - 1) in
        let d = dim_of_level st x last in
        (parent *: Int d, (parent +: Int 1) *: Int d)

(** Allocation + inbound transfer statements for one binding of tensor [x],
    to be emitted at the binding's site. *)
let emit_binding st env x (b : Memory.binding) =
  let name = Memory.onchip_name x b.Memory.array in
  match b.Memory.kind with
  | Dram_sparse | Dram_dense -> []  (* accessed directly, no staging *)
  | Reg -> [ Alloc { mem = name; kind = Reg; size = Int 1 } ]
  | kind -> (
      let alloc = Alloc { mem = name; kind; size = Int (onchip_size st x b) } in
      if is_result st x then
        (* Results are produced on-chip and drained outward; never load
           their DRAM images in. *)
        [ alloc ]
      else
      match b.Memory.transfer with
      | Memory.No_transfer | Memory.Direct -> [ alloc ]
      | Memory.Whole_array ->
          let size = dram_size st x b.Memory.array in
          [
            alloc;
            Load_burst
              {
                dst = name;
                src = Memory.dram_name x b.Memory.array;
                lo = Int 0;
                hi = Int size;
                par = st.plan.Plan.inner_par;
              };
          ]
      | Memory.Per_fiber ->
          let lo, hi = slice_bounds st env x b.Memory.array in
          [
            alloc;
            Load_burst
              {
                dst = name;
                src = Memory.dram_name x b.Memory.array;
                lo;
                hi;
                par = (match b.Memory.kind with Fifo _ -> 1 | _ -> st.plan.Plan.inner_par);
              };
          ])

(** Every statement scheduled at [site], in dependency order: whole-array
    allocations/loads first (position arrays and gather arrays, which the
    fiber lets read), then the fiber lets of loops headed here, then the
    per-fiber transfers (which use those lets), then result counters. *)
let emit_site st env site =
  let bindings_here =
    List.concat_map
      (fun (x, bs) ->
        if List.mem x st.bulk_staged then []
        else
          List.filter_map
            (fun (b : Memory.binding) ->
              (* Scalar temporaries are allocated at their where-node. *)
              if b.Memory.kind = Reg && is_temp st x then None
              else if
                Memory.equal_site (binding st x b.Memory.array).Memory.site site
              then Some (x, b)
              else None)
            bs)
      st.plan.Plan.bindings
  in
  let is_per_fiber (_, (b : Memory.binding)) =
    b.Memory.transfer = Memory.Per_fiber
  in
  let whole, per_fiber = List.partition (Fun.negate is_per_fiber) bindings_here in
  let emit = List.concat_map (fun (x, b) -> emit_binding st env x b) in
  (* fiber lets for each compressed iterator of loops headed at this site *)
  let lets =
    List.concat_map
      (fun (info : Plan.loop_info) ->
        List.concat_map
          (fun (it : Coiter.iterator) -> fiber_lets st env it.tensor it.level)
          (Coiter.plan_compressed info.Plan.plan))
      (loops_at st site)
  in
  let allocs = emit whole @ lets @ emit per_fiber in
  (* 3. counter registers for scan-style results at kernel start *)
  let counters =
    if site <> Memory.Kernel_start then []
    else
      List.concat_map
        (fun r ->
          let fmt = fmt_of st r in
          List.concat
            (List.init (Format.order fmt) (fun l ->
                 if Format.level_kind fmt l = Format.Compressed then
                   let v = var_of_level st r l in
                   match (List.assoc_opt v st.plan.Plan.loops : Plan.loop_info option) with
                   | Some { plan = Scan_plan _; _ } ->
                       [ Alloc { mem = n_cnt r l; kind = Reg; size = Int 1 } ]
                   | _ -> []
                 else [])))
        st.plan.Plan.results
  in
  (allocs @ counters, env)

(* -------------------------------------------------------------------- *)
(* Parallelization factors                                               *)
(* -------------------------------------------------------------------- *)

let par_of st (info : Plan.loop_info) =
  if info.Plan.depth = 0 then st.plan.Plan.outer_par
  else if info.Plan.is_innermost then st.plan.Plan.inner_par
  else 1

(* -------------------------------------------------------------------- *)
(* Result assembly                                                       *)
(* -------------------------------------------------------------------- *)

(** Statements draining a per-fiber result staged at [site]: stream stores
    of value/coordinate fibers, position-array updates. *)
let drain_results st env site =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else begin
        let fmt = fmt_of st r in
        let n = Format.order fmt in
        if n = 0 then []
        else begin
          let vb = binding st r Memory.Vals in
          if not (Memory.equal_site vb.Memory.site site) then []
          else begin
            let last = n - 1 in
            let v_last = var_of_level st r last in
            let info : Plan.loop_info = Plan.loop_info st.plan v_last in
            match Format.level_kind fmt last with
            | Format.Dense when vb.Memory.transfer = Memory.Per_fiber ->
                (* One dense row per parent position (e.g. TTM). *)
                let d = dim_of_level st r last in
                let parent =
                  if last = 0 then Int 0 else global_pos env r (last - 1)
                in
                [
                  Store_burst
                    {
                      dst = Memory.dram_name r Memory.Vals;
                      src = Memory.onchip_name r Memory.Vals;
                      lo = parent *: Int d;
                      len = Int d;
                      par = st.plan.Plan.inner_par;
                    };
                ]
            | Format.Dense -> []  (* whole-array: stored at kernel end *)
            | Format.Compressed ->
                let base, len =
                  match info.Plan.plan with
                  | Pos_plan { lead; _ } ->
                      ( var (n_start lead.tensor lead.level),
                        var (n_len lead.tensor lead.level) )
                  | Scan_plan _ ->
                      ( var (n_base r last),
                        reg_read (n_cnt r last) -: var (n_base r last) )
                  | Dense_plan _ ->
                      err "compressed result level under dense loop"
                in
                [
                  Store_burst
                    {
                      dst = Memory.dram_name r Memory.Vals;
                      src = Memory.onchip_name r Memory.Vals;
                      lo = base;
                      len;
                      par = 1;
                    };
                  Store_burst
                    {
                      dst = Memory.dram_name r (Memory.Crd last);
                      src = Memory.onchip_name r (Memory.Crd last);
                      lo = base;
                      len;
                      par = 1;
                    };
                ]
                @
                (* position update: R{last}_pos[parent + 1] = end count *)
                let parent_pos =
                  if last = 0 then Int 0 else global_pos env r (last - 1)
                in
                let end_count =
                  match info.Plan.plan with
                  | Pos_plan { lead; _ } -> var (n_end lead.tensor lead.level)
                  | Scan_plan _ -> reg_read (n_cnt r last)
                  | Dense_plan _ ->
                      err
                        "result %s: compressed last level %d is driven by a \
                         dense loop plan, so its position count has no \
                         source (the level kinds and the loop plan disagree)"
                        r last
                in
                [
                  Write
                    {
                      mem = Memory.onchip_name r (Memory.Pos last);
                      idx = Some (parent_pos +: Int 1);
                      value = end_count;
                      accum = false;
                    };
                ]
          end
        end
      end)
    st.plan.Plan.results

(** Mid-level compressed result positions (levels other than the last, e.g.
    Plus2's level 1): write their position arrays and store their
    coordinate fibers when leaving the level's loop.  Emitted at [site] —
    the body enclosing that loop — after the loop itself. *)
let drain_mid_level_pos st env site =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else
        let fmt = fmt_of st r in
        let n = Format.order fmt in
        List.concat
          (List.init n (fun l ->
               let at_site v =
                 match List.assoc_opt v st.plan.Plan.loops with
                 | Some (i : Plan.loop_info) -> Memory.equal_site i.above site
                 | None -> false
               in
               if
                 l < n - 1
                 && Format.level_kind fmt l = Format.Compressed
                 && at_site (var_of_level st r l)
               then begin
                 let v = var_of_level st r l in
                 let parent_pos =
                   if l = 0 then Int 0 else global_pos env r (l - 1)
                 in
                 let info = Plan.loop_info st.plan v in
                 let end_count, crd_store =
                   match info.Plan.plan with
                   | Scan_plan _ ->
                       ( reg_read (n_cnt r l),
                         [
                           Store_burst
                             {
                               dst = Memory.dram_name r (Memory.Crd l);
                               src = Memory.onchip_name r (Memory.Crd l);
                               lo = var (n_base r l);
                               len = reg_read (n_cnt r l) -: var (n_base r l);
                               par = 1;
                             };
                         ] )
                   | Pos_plan { lead; _ } ->
                       ( var (n_end lead.tensor lead.level),
                         [
                           Store_burst
                             {
                               dst = Memory.dram_name r (Memory.Crd l);
                               src = Memory.onchip_name r (Memory.Crd l);
                               lo = var (n_start lead.tensor lead.level);
                               len = var (n_len lead.tensor lead.level);
                               par = 1;
                             };
                         ] )
                   | Dense_plan _ -> err "compressed mid level under dense loop"
                 in
                 crd_store
                 @ [
                     Write
                       {
                         mem = Memory.onchip_name r (Memory.Pos l);
                         idx = Some (parent_pos +: Int 1);
                         value = end_count;
                         accum = false;
                       };
                   ]
               end
               else [])))
    st.plan.Plan.results

(** Coordinate enqueues (and counter bumps) for compressed result levels
    other than the last, once per iteration of their loop over [v]. *)
let mid_level_enqs st env v (info : Plan.loop_info) =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else
        let fmt = fmt_of st r in
        let n = Format.order fmt in
        List.concat
          (List.init n (fun l ->
               if
                 l < n - 1
                 && Format.level_kind fmt l = Format.Compressed
                 && var_of_level st r l = v
               then
                 Enq (Memory.onchip_name r (Memory.Crd l), coord_of env v)
                 ::
                 (match info.Plan.plan with
                 | Scan_plan _ ->
                     [ Write { mem = n_cnt r l; idx = None; value = Int 1;
                               accum = true } ]
                 | _ -> [])
               else [])))
    st.plan.Plan.results

(* -------------------------------------------------------------------- *)
(* Position-environment updates at a loop                                *)
(* -------------------------------------------------------------------- *)

(** Extend [env] for the body of the loop over [v], given the loop plan and
    the expressions for the loop ordinal(s) and coordinate. *)
let extend_env st env v (info : Plan.loop_info) ~coord ~ordinals =
  let env = { env with coord = (v, coord) :: env.coord } in
  (* Iterator tensors (leads / scan operands). *)
  let env =
    List.fold_left2
      (fun env (it : Coiter.iterator) (ord, predicated) ->
        set_pos env it.tensor it.level
          { local = ord; base = var (n_start it.tensor it.level); predicated })
      env
      (Coiter.plan_compressed info.Plan.plan)
      ordinals
  in
  (* Dense levels of every accessed tensor bound to v (includes plan.dense
     and dense result levels). *)
  let env =
    List.fold_left
      (fun env (x, _) ->
        let fmt = fmt_of st x in
        let rec levels env l =
          if l >= Format.order fmt then env
          else
            let d = Format.dim_of_level fmt l in
            let idx = Plan.access_indices st.plan x in
            if List.nth idx d = v && Format.level_kind fmt l = Format.Dense
            then
              let parent =
                if l = 0 then Int 0
                else
                  let p = posinfo_of env x (l - 1) in
                  match p.base with Int 0 -> p.local | b -> b +: p.local
              in
              let dim = dim_of_level st x l in
              let global =
                match parent with
                | Int 0 -> coord
                | p -> (p *: Int dim) +: coord
              in
              levels
                (set_pos env x l { local = global; base = Int 0; predicated = false })
                (l + 1)
            else levels env (l + 1)
        in
        levels env 0)
      env st.plan.Plan.metas
  in
  (* Compressed result levels bound to v (mirror or counter-based). *)
  let env =
    List.fold_left
      (fun env r ->
        if is_temp st r then env
        else
          let fmt = fmt_of st r in
          let rec levels env l =
            if l >= Format.order fmt then env
            else if
              Format.level_kind fmt l = Format.Compressed
              && var_of_level st r l = v
              && not (List.exists
                        (fun (it : Coiter.iterator) -> it.tensor = r && it.level = l)
                        (Coiter.plan_compressed info.Plan.plan))
            then
              let pi =
                match (info.Plan.plan, ordinals) with
                | Pos_plan { lead; _ }, (ord, _) :: _ ->
                    (* mirror the lead's structure *)
                    { local = ord;
                      base = var (n_start lead.tensor lead.level);
                      predicated = false }
                | Scan_plan _, _ ->
                    (* counter-based: base let + scan output ordinal *)
                    { local = Var (v ^ "_out");
                      base = var (n_base r l);
                      predicated = false }
                | Dense_plan _, _ ->
                    err "result %s: compressed level under dense loop" r
                | _, [] -> err "no ordinals for loop %s" v
              in
              levels (set_pos env r l pi) (l + 1)
            else levels env (l + 1)
          in
          levels env 0)
      env st.plan.Plan.results
  in
  env

(** Hoist FIFO-bound values of tensors whose innermost level is [v]'s loop:
    emit one [Deq] and record the popped value. *)
let hoist_fifo_vals st env v =
  List.fold_left
    (fun (stmts, env) (x, _) ->
      if is_result st x || List.mem x st.bulk_staged then (stmts, env)
      else
        let fmt = fmt_of st x in
        let n = Format.order fmt in
        if n = 0 then (stmts, env)
        else
          let last = n - 1 in
          if var_of_level st x last <> v then (stmts, env)
          else
            match (binding st x Memory.Vals).Memory.kind with
            | Fifo _ ->
                let name = n_val x in
                ( stmts @ [ Deq (name, Memory.onchip_name x Memory.Vals) ],
                  { env with hoisted = (x, Var name) :: env.hoisted } )
            | _ -> (stmts, env))
    ([], env) st.plan.Plan.metas

(* -------------------------------------------------------------------- *)
(* Scan construction                                                     *)
(* -------------------------------------------------------------------- *)

let scan_of st v (info : Plan.loop_info) ~need_out =
  match info.Plan.plan with
  | Scan_plan { op; a; b; _ } ->
      let bv_stmts =
        List.concat_map
          (fun (it : Coiter.iterator) ->
            [
              Alloc { mem = n_bv it.tensor it.level; kind = Bit_vector;
                      size = Int info.Plan.extent };
              Gen_bitvector
                {
                  bv = n_bv it.tensor it.level;
                  crd_mem = Memory.onchip_name it.tensor (Memory.Crd it.level);
                  count = var (n_len it.tensor it.level);
                  trip = Trip_fiber { tensor = it.tensor; level = it.level };
                };
            ])
          [ a; b ]
      in
      let scan =
        {
          op = (match op with `And -> Scan_and | `Or -> Scan_or);
          bvs = [ n_bv a.tensor a.level; n_bv b.tensor b.level ];
          scan_par = st.plan.Plan.inner_par;
          scan_len = Int info.Plan.extent;
          bind_pos = [ v ^ "_" ^ a.tensor; v ^ "_" ^ b.tensor ];
          bind_out = (if need_out then Some (v ^ "_out") else None);
          bind_coord = v;
        }
      in
      (bv_stmts, scan, [ (Var (v ^ "_" ^ a.tensor), op = `Or);
                         (Var (v ^ "_" ^ b.tensor), op = `Or) ])
  | _ -> err "scan_of: loop %s is not a scan" v

(** Does any result have a scan-counted compressed level at [v]? *)
let result_needs_out st v =
  List.exists
    (fun r ->
      (not (is_temp st r))
      && (let fmt = fmt_of st r in
          List.exists
            (fun l ->
              Format.level_kind fmt l = Format.Compressed
              && var_of_level st r l = v)
            (List.init (Format.order fmt) Fun.id)))
    st.plan.Plan.results

(** Base lets for counter-tracked result levels at loop [v] (read the
    counters before the loop starts). *)
let counter_bases st env v (info : Plan.loop_info) =
  match info.Plan.plan with
  | Scan_plan _ ->
      List.concat_map
        (fun r ->
          if is_temp st r then []
          else
            let fmt = fmt_of st r in
            List.concat
              (List.init (Format.order fmt) (fun l ->
                   if
                     Format.level_kind fmt l = Format.Compressed
                     && var_of_level st r l = v
                   then [ Let (n_base r l, reg_read (n_cnt r l)) ]
                   else [])))
        st.plan.Plan.results
  | _ -> ignore env; []

(* -------------------------------------------------------------------- *)
(* Statement lowering                                                    *)
(* -------------------------------------------------------------------- *)

let rec lower_stmt st env (s : Cin.stmt) : stmt list =
  match s with
  | Cin.Sequence l -> List.concat_map (lower_stmt st env) l
  | Cin.Where { consumer; producer } ->
      (* Allocate scalar temporaries written by the producer here, so each
         enclosing iteration gets a fresh (zeroed) register. *)
      let temp_allocs =
        List.concat_map
          (fun x ->
            if is_temp st x && Format.order (fmt_of st x) = 0 then
              [ Alloc { mem = Memory.onchip_name x Memory.Vals; kind = Reg;
                        size = Int 1 } ]
            else [])
          (Cin.tensors_written producer)
      in
      temp_allocs @ lower_stmt st env producer @ lower_stmt st env consumer
  | Cin.Mapped { func = Cin.Reduction; body; _ } ->
      (* The contained forall lowers to a Reduce (its loop_info carries the
         accumulation target). *)
      lower_stmt st env body
  | Cin.Mapped { func = Cin.Bulk_load; body; _ } -> lower_bulk st env body ~load:true
  | Cin.Mapped { func = Cin.Bulk_store; body; _ } -> lower_bulk st env body ~load:false
  | Cin.Mapped { func = Cin.Custom_func f; _ } ->
      err "no lowering for custom backend function %s" f
  | Cin.Assign a -> lower_assign st env a
  | Cin.Forall { index; body } -> lower_forall st env index body

and lower_bulk st _env body ~load =
  match body with
  | Cin.Forall
      { body = Cin.Assign { lhs = { tensor = dst; _ };
                            rhs = Ast.Access { tensor = src; _ }; _ }; _ } ->
      let onchip, offchip = if load then (dst, src) else (src, dst) in
      let m = meta st onchip in
      let size = max 1 m.Plan.num_vals in
      let name = Memory.onchip_name onchip Memory.Vals in
      let stmts =
        if List.mem onchip st.bulk_staged then []
        else begin
          st.bulk_staged <- onchip :: st.bulk_staged;
          [ Alloc { mem = name; kind = Sram_dense; size = Int size } ]
        end
      in
      stmts
      @
      if load then
        [ Load_burst
            { dst = name; src = Memory.dram_name offchip Memory.Vals;
              lo = Int 0; hi = Int size; par = st.plan.Plan.inner_par } ]
      else
        [ Store_burst
            { dst = Memory.dram_name offchip Memory.Vals; src = name;
              lo = Int 0; len = Int size; par = st.plan.Plan.inner_par } ]
  | _ -> err "bulk transfer body must be a single copy loop"

and lower_assign st env (a : Ast.assign) : stmt list =
  let r = a.Ast.lhs.Ast.tensor in
  let value = lower_expr st env a.Ast.rhs in
  let fmt = fmt_of st r in
  if Format.order fmt = 0 then
    [ Write { mem = Memory.onchip_name r Memory.Vals; idx = None; value;
              accum = a.Ast.accum } ]
  else begin
    let last = Format.order fmt - 1 in
    match Format.level_kind fmt last with
    | Format.Dense ->
        let b = binding st r Memory.Vals in
        let idx =
          match b.Memory.transfer with
          | Memory.Per_fiber -> coord_of env (var_of_level st r last)
          | _ -> global_pos env r last
        in
        [ Write { mem = Memory.onchip_name r Memory.Vals; idx = Some idx;
                  value; accum = a.Ast.accum } ]
    | Format.Compressed ->
        if a.Ast.accum then
          err "cannot accumulate into streaming sparse output %s: \
               precompute a workspace first" r;
        let v_last = var_of_level st r last in
        let info = Plan.loop_info st.plan v_last in
        let counter =
          match info.Plan.plan with
          | Scan_plan _ ->
              [ Write { mem = n_cnt r last; idx = None; value = Int 1;
                        accum = true } ]
          | _ -> []
        in
        [
          Enq (Memory.onchip_name r Memory.Vals, value);
          Enq (Memory.onchip_name r (Memory.Crd last), coord_of env v_last);
        ]
        @ counter
  end

and lower_forall st env v body : stmt list =
  let info = Plan.loop_info st.plan v in
  let par = par_of st info in
  (* statements at this loop's body-entry site *)
  let site = Memory.Above_loop v in
  match info.Plan.reduce_target with
  | Some target -> lower_reduce st env v body info ~target
  | None -> (
      let need_out = result_needs_out st v in
      match info.Plan.plan with
      | Dense_plan _ ->
          let coord = Var v in
          let env' = extend_env st env v info ~coord ~ordinals:[] in
          let pre, env' = emit_site st env' site in
          let bases = counter_bases st env v info in
          let hoists, env' = hoist_fifo_vals st env' v in
          let enqs = mid_level_enqs st env' v info in
          let inner = lower_body st env' body in
          let after = drain_results st env' site @ drain_mid_level_pos st env' site in
          bases
          @ [ Foreach { len = Int info.Plan.extent; par; bind = v;
                        body = pre @ hoists @ enqs @ inner @ after;
                        trip = Trip_const info.Plan.extent } ]
      | Pos_plan { lead; _ } ->
          let bind = n_bind v in
          let deq_coord =
            Deq (v, Memory.onchip_name lead.tensor (Memory.Crd lead.level))
          in
          let coord = Var v in
          let env' =
            extend_env st env v info ~coord ~ordinals:[ (Var bind, false) ]
          in
          let pre, env' = emit_site st env' site in
          let bases = counter_bases st env v info in
          let hoists, env' = hoist_fifo_vals st env' v in
          let enqs = mid_level_enqs st env' v info in
          let inner = lower_body st env' body in
          let after = drain_results st env' site @ drain_mid_level_pos st env' site in
          bases
          @ [ Foreach
                { len = var (n_len lead.tensor lead.level); par; bind;
                  body = (deq_coord :: pre) @ hoists @ enqs @ inner @ after;
                  trip = Trip_fiber { tensor = lead.tensor; level = lead.level } } ]
      | Scan_plan { op; a; b; _ } ->
          let bv_stmts, scan, ordinals = scan_of st v info ~need_out in
          let coord = Var v in
          let env' = extend_env st env v info ~coord ~ordinals in
          let pre, env' = emit_site st env' site in
          let bases = counter_bases st env v info in
          let hoists, env' = hoist_fifo_vals st env' v in
          let enqs = mid_level_enqs st env' v info in
          let inner = lower_body st env' body in
          let after = drain_results st env' site @ drain_mid_level_pos st env' site in
          let trip =
            Trip_coiter
              { union = op = `Or;
                tensors = [ (a.tensor, a.level); (b.tensor, b.level) ] }
          in
          bases @ bv_stmts
          @ [ Foreach_scan { scan; body = pre @ hoists @ enqs @ inner @ after; trip } ])

(** Lower a loop body: emit site statements for nested loops come from the
    nested [lower_forall] calls; here we only need to lower the CIN. *)
and lower_body st env (body : Cin.stmt) : stmt list = lower_stmt st env body

and lower_reduce st env v body (info : Plan.loop_info) ~target : stmt list =
  (* The mapped accumulation: extract its expression. *)
  let expr_of body =
    match body with
    | Cin.Assign { lhs = { tensor; indices = [] }; accum = true; rhs }
      when tensor = target -> rhs
    | _ -> err "Reduce-mapped loop body must be `%s += e`" target
  in
  let e = expr_of body in
  let site = Memory.Above_loop v in
  let reg = Memory.onchip_name target Memory.Vals in
  match info.Plan.plan with
  | Dense_plan _ ->
      let coord = Var v in
      let env' = extend_env st env v info ~coord ~ordinals:[] in
      let pre, env' = emit_site st env' site in
      let hoists, env' = hoist_fifo_vals st env' v in
      [ Reduce
          { target = reg; init = Flt 0.; len = Int info.Plan.extent;
            par = st.plan.Plan.inner_par; bind = v; body = pre @ hoists;
            expr = lower_expr st env' e;
            trip = Trip_const info.Plan.extent } ]
  | Pos_plan { lead; _ } ->
      let bind = n_bind v in
      let deq_coord =
        Deq (v, Memory.onchip_name lead.tensor (Memory.Crd lead.level))
      in
      let env' = extend_env st env v info ~coord:(Var v)
          ~ordinals:[ (Var bind, false) ] in
      let pre, env' = emit_site st env' site in
      let hoists, env' = hoist_fifo_vals st env' v in
      [ Reduce
          { target = reg; init = Flt 0.;
            len = var (n_len lead.tensor lead.level);
            par = st.plan.Plan.inner_par; bind;
            body = (deq_coord :: pre) @ hoists;
            expr = lower_expr st env' e;
            trip = Trip_fiber { tensor = lead.tensor; level = lead.level } } ]
  | Scan_plan { op; a; b; _ } ->
      let bv_stmts, scan, ordinals = scan_of st v info ~need_out:false in
      let env' = extend_env st env v info ~coord:(Var v) ~ordinals in
      let pre, env' = emit_site st env' site in
      let hoists, env' = hoist_fifo_vals st env' v in
      let trip =
        Trip_coiter
          { union = op = `Or;
            tensors = [ (a.tensor, a.level); (b.tensor, b.level) ] }
      in
      bv_stmts
      @ [ Reduce_scan
            { target = reg; init = Flt 0.; scan; body = pre @ hoists;
              expr = lower_expr st env' e; trip } ]

(* -------------------------------------------------------------------- *)
(* Program assembly                                                      *)
(* -------------------------------------------------------------------- *)

(** DRAM declarations for every off-chip tensor's sub-arrays. *)
let dram_decls st =
  List.concat_map
    (fun (x, (m : Plan.meta)) ->
      let fmt = m.Plan.fmt in
      if Format.is_on_chip fmt then []
      else begin
        let n = Format.order fmt in
        let vals_kind =
          if n > 0 && not (is_result st x) then
            match (Plan.binding st.plan x Memory.Vals).Memory.kind with
            | Dram_sparse -> Dram_sparse
            | _ -> Dram_dense
          else Dram_dense
        in
        List.concat
          (List.init n (fun l ->
               if Format.level_kind fmt l = Format.Compressed then
                 [
                   { mem = Memory.dram_name x (Memory.Pos l); kind = Dram_dense;
                     size = Int (dram_size st x (Memory.Pos l)) };
                   { mem = Memory.dram_name x (Memory.Crd l); kind = Dram_dense;
                     size = Int (dram_size st x (Memory.Crd l)) };
                 ]
               else []))
        @ [ { mem = Memory.dram_name x Memory.Vals; kind = vals_kind;
              size = Int (dram_size st x Memory.Vals) } ]
      end)
    st.plan.Plan.metas

(** Final whole-array stores: fully dense results, result position arrays,
    and scalar results. *)
let final_stores st =
  List.concat_map
    (fun r ->
      if is_temp st r then []
      else begin
        let fmt = fmt_of st r in
        let n = Format.order fmt in
        let pos_stores =
          List.concat
            (List.init n (fun l ->
                 if Format.level_kind fmt l = Format.Compressed then begin
                   (* The array holds one entry per parent position plus
                      one; scan-counted parents know their exact count in
                      the counter register, others are exact statically. *)
                   let parent_count =
                     if l = 0 then Int 1
                     else
                       let vp = var_of_level st r (l - 1) in
                       match (Plan.loop_info st.plan vp).Plan.plan with
                       | Scan_plan _ -> reg_read (n_cnt r (l - 1))
                       | _ -> Int ((meta st r).Plan.level_counts.(l - 1))
                   in
                   [ Store_burst
                       { dst = Memory.dram_name r (Memory.Pos l);
                         src = Memory.onchip_name r (Memory.Pos l);
                         lo = Int 0;
                         len = parent_count +: Int 1;
                         par = st.plan.Plan.inner_par } ]
                 end
                 else []))
        in
        let val_store =
          if n = 0 then
            [ Store_burst
                { dst = Memory.dram_name r Memory.Vals;
                  src = Memory.onchip_name r Memory.Vals;
                  lo = Int 0; len = Int 1; par = 1 } ]
          else
            let b = binding st r Memory.Vals in
            match (b.Memory.kind, b.Memory.transfer) with
            | Sram_dense, Memory.Whole_array ->
                [ Store_burst
                    { dst = Memory.dram_name r Memory.Vals;
                      src = Memory.onchip_name r Memory.Vals;
                      lo = Int 0; len = Int (dram_size st r Memory.Vals);
                      par = st.plan.Plan.inner_par } ]
            | _ -> []
        in
        pos_stores @ val_store
      end)
    st.plan.Plan.results

(** Lower a full compilation plan to a Spatial program. *)
let lower ?(name = "kernel") (plan : Plan.t) : program =
  let st = { plan; bulk_staged = []; result_sites = [] } in
  adjust_result_sites st;
  let top, env = emit_site st empty_env Memory.Kernel_start in
  let body = lower_stmt st env (Schedule.stmt (sched st)) in
  (* results whose loops sit at kernel depth drain at the end *)
  let body =
    body
    @ drain_results st env Memory.Kernel_start
    @ drain_mid_level_pos st env Memory.Kernel_start
  in
  {
    name;
    env =
      [ ("ip", plan.Plan.inner_par); ("op", plan.Plan.outer_par) ]
      @ Schedule.environment (sched st);
    host_params = [];
    dram = dram_decls st;
    accel = top @ body @ final_stores st;
  }
