(** Compilation planning: loop analysis and tensor metadata.

    Before emitting Spatial code, Stardust walks the scheduled CIN once to
    decide, for every [forall], how it will iterate (via the co-iteration
    rewrite system of {!Coiter}) and, for every tensor, where each sub-array
    will live (via {!Memory}).  This module computes those tables plus the
    metadata — dimensions, per-level position counts, fiber bounds — that
    size every DRAM and on-chip allocation. *)

module Format = Stardust_tensor.Format
module Tensor = Stardust_tensor.Tensor
module Stats = Stardust_tensor.Stats
module Stats_cache = Stardust_tensor.Stats_cache
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
module Relation = Stardust_schedule.Relation

open Coiter

(** Size and structure metadata for one tensor (input or result). *)
type meta = {
  fmt : Format.t;
  dims : int array;
  level_counts : int array;
      (** per level, an upper bound on the number of positions *)
  max_fiber : int array;  (** per level, the largest single fiber *)
  num_vals : int;  (** bound on leaf values *)
  is_input : bool;
}

(** How one loop iterates. *)
type loop_info = {
  var : string;
  plan : Coiter.plan;
  result_it : Coiter.iterator option;  (** lhs iterator over this var *)
  above : Memory.site;  (** site just above this loop's header *)
  depth : int;
  is_innermost : bool;  (** no loops nested inside *)
  extent : int;  (** dense extent of the variable *)
  reduce_target : string option;
      (** set when this loop was [map]ped to a [Reduce] whose accumulator
          is the named scalar temporary *)
}

type t = {
  sched : Schedule.t;
  metas : (string * meta) list;
  loops : (string * loop_info) list;  (** by variable *)
  bindings : (string * Memory.binding list) list;  (** by tensor *)
  extents : (string * int) list;  (** by variable *)
  results : string list;  (** tensors written *)
  inner_par : int;
  outer_par : int;
}

exception Plan_error of string

let err fmt = Fmt.kstr (fun s -> raise (Plan_error s)) fmt

let loop_info t v =
  match List.assoc_opt v t.loops with
  | Some i -> i
  | None -> err "no loop over variable %s" v

let meta t name =
  match List.assoc_opt name t.metas with
  | Some m -> m
  | None -> err "no metadata for tensor %s" name

let bindings t name =
  match List.assoc_opt name t.bindings with
  | Some b -> b
  | None -> err "no memory bindings for tensor %s" name

let binding t name array =
  match Memory.find_binding (bindings t name) array with
  | Some b -> b
  | None ->
      err "no binding for %s.%s" name (Fmt.str "%a" Memory.pp_sub_array array)

(* -------------------------------------------------------------------- *)
(* Access collection                                                     *)
(* -------------------------------------------------------------------- *)

(** Unique access of each tensor in the statement.  The compiler requires a
    tensor to be accessed with a single index pattern per kernel. *)
let collect_accesses stmt =
  let add acc (a : Ast.access) =
    match List.assoc_opt a.tensor acc with
    | None -> acc @ [ (a.tensor, a.indices) ]
    | Some idx ->
        if idx <> a.indices then
          err "tensor %s accessed with conflicting index patterns" a.tensor
        else acc
  in
  List.fold_left
    (fun acc (asg : Ast.assign) ->
      let acc = add acc asg.Ast.lhs in
      List.fold_left add acc (Ast.accesses_of_expr asg.Ast.rhs))
    [] (Cin.assignments stmt)

(* -------------------------------------------------------------------- *)
(* Variable extents                                                      *)
(* -------------------------------------------------------------------- *)

(** Extent of every index variable, inferred from input tensor dimensions
    (and split/fuse relations).  Conflicting dimensions are an error. *)
let infer_extents sched (input_metas : (string * meta) list) stmt =
  let accesses = collect_accesses stmt in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (tname, indices) ->
      match List.assoc_opt tname input_metas with
      | None -> ()  (* temporaries: dims derive from their index vars *)
      | Some m ->
          List.iteri
            (fun d v ->
              let n = m.dims.(d) in
              match Hashtbl.find_opt tbl v with
              | None -> Hashtbl.add tbl v n
              | Some n' when n' = n -> ()
              | Some n' ->
                  err "variable %s has conflicting extents %d and %d" v n' n)
            indices)
    accesses;
  let base v = Hashtbl.find_opt tbl v in
  let vars = Cin.bound_vars stmt in
  List.map
    (fun v ->
      match Relation.extent_of (Schedule.relations sched) base v with
      | Some n -> (v, n)
      | None -> err "cannot infer the extent of variable %s" v)
    vars
  @ Hashtbl.fold
      (fun v n acc -> if List.mem v vars then acc else (v, n) :: acc)
      tbl []

(* -------------------------------------------------------------------- *)
(* Metadata                                                              *)
(* -------------------------------------------------------------------- *)

(* Input metadata comes from the process-wide statistics cache: a search
   rebuilds the plan for every candidate point, but the inputs are fixed,
   so the O(nnz) scans behind [Stats.of_tensor] and [max_fiber_len] run
   once per tensor per process.  The cached arrays are shared, not
   copied — plan metadata is read-only downstream. *)
let meta_of_tensor (x : Tensor.t) =
  let s = Stats_cache.stats x in
  {
    fmt = Tensor.format x;
    dims = s.Stats.dims;
    level_counts = s.Stats.level_positions;
    max_fiber = Stats_cache.max_fiber_lens x;
    num_vals = s.Stats.num_vals;
    is_input = true;
  }

(** Upper-bound metadata for a tensor the kernel produces.  Mirror results
    (driven by a single lead iterator) inherit the lead tensor's counts;
    scan results take the sum (union) or minimum (intersection) of their
    operands'; dense levels multiply by the dimension. *)
let infer_result_meta ~fmt ~indices ~loops ~extents ~input_metas name =
  let n = Format.order fmt in
  let dims =
    Array.of_list
      (List.map
         (fun v ->
           match List.assoc_opt v extents with
           | Some e -> e
           | None -> err "result %s: unknown extent for %s" name v)
         indices)
  in
  let counts = Array.make n 0 in
  let fibers = Array.make n 0 in
  let parent = ref 1 in
  for l = 0 to n - 1 do
    let d = Format.dim_of_level fmt l in
    let v = List.nth indices d in
    let dim = dims.(d) in
    (match Format.level_kind fmt l with
    | Format.Dense ->
        counts.(l) <- !parent * dim;
        fibers.(l) <- dim
    | Format.Compressed -> (
        let info : loop_info =
          match List.assoc_opt v loops with
          | Some i -> i
          | None -> err "result %s: no loop over %s" name v
        in
        let level_bound (it : Coiter.iterator) =
          match List.assoc_opt it.tensor input_metas with
          | Some m -> (m.level_counts.(it.level), m.max_fiber.(it.level))
          | None -> err "result bound: %s is not an input" it.tensor
        in
        match info.plan with
        | Pos_plan { lead; _ } ->
            let c, f = level_bound lead in
            counts.(l) <- c;
            fibers.(l) <- f
        | Scan_plan { op; a; b; _ } ->
            let ca, fa = level_bound a and cb, fb = level_bound b in
            (match op with
            | `Or ->
                counts.(l) <- ca + cb;
                fibers.(l) <- min dim (fa + fb)
            | `And ->
                counts.(l) <- min ca cb;
                fibers.(l) <- min fa fb)
        | Dense_plan _ ->
            err "result %s: compressed level %d under a dense loop" name l));
    parent := counts.(l)
  done;
  {
    fmt;
    dims;
    level_counts = counts;
    max_fiber = fibers;
    num_vals = (if n = 0 then 1 else counts.(n - 1));
    is_input = false;
  }

(* -------------------------------------------------------------------- *)
(* Loop planning                                                         *)
(* -------------------------------------------------------------------- *)

let build_loops sched extents stmt =
  let formats = List.map (fun v -> (v, Schedule.format_of sched v)) in
  let fmts =
    formats (Cin.all_tensors stmt)
  in
  let loops = ref [] in
  let rec has_loop = function
    | Cin.Forall _ -> true
    | Cin.Assign _ -> false
    | Cin.Where { consumer; producer } -> has_loop consumer || has_loop producer
    | Cin.Sequence l -> List.exists has_loop l
    | Cin.Mapped { body; _ } -> has_loop body
  in
  let rec go above depth reduce_target s =
    match s with
    | Cin.Forall { index; body } ->
        let plan, result_it = Coiter.analyze fmts index body in
        let extent =
          match List.assoc_opt index extents with
          | Some e -> e
          | None -> err "no extent for loop variable %s" index
        in
        loops :=
          ( index,
            {
              var = index;
              plan;
              result_it;
              above;
              depth;
              is_innermost = not (has_loop body);
              extent;
              reduce_target;
            } )
          :: !loops;
        go (Memory.Above_loop index) (depth + 1) None body
    | Cin.Assign _ -> ()
    | Cin.Where { consumer; producer } ->
        go above depth None producer;
        go above depth None consumer
    | Cin.Sequence l -> List.iter (go above depth None) l
    | Cin.Mapped { func = Cin.Reduction; body; _ } ->
        (* The reduce accumulator is the scalar left-hand side of the
           mapped accumulation. *)
        let target =
          match Cin.assignments body with
          | [ { lhs = { tensor; indices = [] }; accum = true; _ } ] -> Some tensor
          | _ -> err "Reduce-mapped statement must be a scalar accumulation"
        in
        go above depth target body
    | Cin.Mapped { body; _ } -> go above depth None body
  in
  go Memory.Kernel_start 0 None stmt;
  List.rev !loops

(* -------------------------------------------------------------------- *)
(* Whole-plan construction                                               *)
(* -------------------------------------------------------------------- *)

let style_of_plan = function
  | Dense_plan _ -> Memory.Affine_loop
  | Pos_plan _ -> Memory.Stream_loop
  | Scan_plan _ -> Memory.Scan_loop

(** Build the full compilation plan for a scheduled kernel over the given
    input tensors.  [sram_budget] bounds on-chip staging of gather arrays
    (defaults to 4 PMUs' worth of words). *)
let build ?(sram_budget = 4 * 16 * 4096) sched ~(inputs : (string * Tensor.t) list) =
  let stmt = Schedule.stmt sched in
  let input_metas = List.map (fun (n, x) -> (n, meta_of_tensor x)) inputs in
  (* Sanity: declared formats must match the supplied tensors. *)
  List.iter
    (fun (n, (m : meta)) ->
      if Schedule.has_tensor sched n then begin
        let f = Schedule.format_of sched n in
        if not (Format.equal { f with region = m.fmt.Format.region } m.fmt) then
          err "tensor %s: supplied data does not match its declared format" n
      end)
    input_metas;
  let extents = infer_extents sched input_metas stmt in
  let loops = build_loops sched extents stmt in
  let accesses = collect_accesses stmt in
  let results = Cin.tensors_written stmt in
  (* Metadata for every tensor (inputs as measured; others bounded). *)
  let metas =
    List.map
      (fun (name, indices) ->
        match List.assoc_opt name input_metas with
        | Some m -> (name, m)
        | None ->
            let fmt = Schedule.format_of sched name in
            if Format.order fmt = 0 then
              ( name,
                {
                  fmt;
                  dims = [||];
                  level_counts = [||];
                  max_fiber = [||];
                  num_vals = 1;
                  is_input = false;
                } )
            else
              ( name,
                infer_result_meta ~fmt ~indices ~loops ~extents ~input_metas
                  name ))
      accesses
  in
  (* Memory bindings per tensor. *)
  let bindings =
    List.map
      (fun (name, indices) ->
        let m = List.assoc name metas in
        let level_var l =
          let d = Format.dim_of_level m.fmt l in
          List.nth_opt indices d
        in
        let lookup_loop v = List.assoc_opt v loops in
        let ctx : Memory.access_ctx =
          {
            fmt = m.fmt;
            is_result = List.mem name results;
            level_var;
            level_style =
              (fun l ->
                match level_var l with
                | None -> Memory.Affine_loop
                | Some v -> (
                    match lookup_loop v with
                    | Some i -> style_of_plan i.plan
                    | None -> Memory.Affine_loop));
            leads_level =
              (fun l ->
                match level_var l with
                | None -> false
                | Some v -> (
                    match lookup_loop v with
                    | Some i ->
                        List.exists
                          (fun (it : Coiter.iterator) ->
                            it.tensor = name && it.level = l)
                          (Coiter.plan_compressed i.plan)
                    | None -> false));
            var_loop_above =
              (fun v ->
                match lookup_loop v with
                | Some i -> i.above
                | None -> Memory.Kernel_start);
            total_words = (if Format.order m.fmt = 0 then 1 else m.num_vals);
            sram_budget;
          }
        in
        (name, Memory.analyze ctx))
      accesses
  in
  let ip = Schedule.env_value ~default:16 sched "innerPar" in
  let op = Schedule.env_value ~default:1 sched "outerPar" in
  {
    sched;
    metas;
    loops;
    bindings;
    extents;
    results;
    inner_par = ip;
    outer_par = op;
  }

(** The access indices (loop variables, logical order) of a tensor. *)
let access_indices t name =
  match List.assoc_opt name (collect_accesses (Schedule.stmt t.sched)) with
  | Some idx -> idx
  | None -> err "tensor %s is not accessed" name

(** Loop variable bound to storage level [l] of tensor [name]. *)
let level_var t name l =
  let m = meta t name in
  let d = Format.dim_of_level m.fmt l in
  List.nth (access_indices t name) d
