(** Host orchestration of multi-stage kernels.

    A Stardust program may span several accelerator invocations — Plus3 is
    mapped as two two-input additions (section 8.1), and applications chain
    kernels (each PageRank step is an SpMV; each ALS sweep is several
    MTTKRPs).  This module runs a kernel's stages in order, materialising
    each stage's result (the host round-trip the paper's off-chip formats
    denote) and accumulating the per-stage reports.

    {!run_result} is the structured-error surface: every stage failure —
    compile or execute — is reported as stage-tagged diagnostics carrying
    the stage index and expression, and a retry policy re-attempts flaky
    [execute] calls (the simulator's fault-injection hook produces exactly
    such transients) before giving up.  {!run} is the raising shim. *)

module Tensor = Stardust_tensor.Tensor
module Diag = Stardust_diag.Diag
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics

type stage_result = {
  stage_expr : string;
  compiled : Compile.compiled;
  outputs : (string * Tensor.t) list;
  retries_used : int;  (** times [execute] was retried for this stage *)
}

type t = {
  stages : stage_result list;
  results : (string * Tensor.t) list;  (** final tensor pool *)
  warnings : Diag.t list;  (** retry notices and other non-fatal events *)
}

exception Pipeline_error of string

(** Context every stage diagnostic carries. *)
let stage_ctx ~index (st : Kernels.stage) extra =
  ("stage", string_of_int index)
  :: ("expr", st.Kernels.expr)
  :: extra

(** [run_result spec ~inputs ~execute] compiles and executes every stage
    of [spec], feeding each stage's outputs into later stages' inputs.
    [execute] maps a compiled stage to its result tensors — pass
    [Stardust_capstan.Sim] execution from the application (this library
    does not depend on the simulator).

    [retries] (default 0) is the per-stage retry budget for [execute]:
    when it raises, the stage is re-executed up to [retries] more times
    before the failure becomes a diagnostic; each retry emits a warning
    diagnostic.  Compilation failures are never retried (they are
    deterministic). *)
let run_result ?(retries = 0) (spec : Kernels.spec)
    ~(inputs : (string * Tensor.t) list)
    ~(execute : Compile.compiled -> (string * Tensor.t) list) :
    (t, Diag.t list) result =
  let warnings = ref [] in
  let pool = ref inputs in
  let exception Stage_failed of Diag.t list in
  try
    let stages =
      List.mapi
        (fun index (st : Kernels.stage) ->
         Trace.with_span
           ~cat:(Diag.stage_name Diag.Driver)
           ~args:
             [ ("stage", string_of_int index); ("expr", st.Kernels.expr) ]
           (Fmt.str "stage %d: %s" index st.Kernels.expr)
           (fun () ->
          Metrics.inc
            (Metrics.counter ~help:"pipeline stages entered"
               "pipeline_stages_total");
          let fail ds = raise (Stage_failed ds) in
          let stage_inputs =
            List.filter_map
              (fun (n, _) ->
                if n = st.Kernels.result then None
                else
                  match List.assoc_opt n !pool with
                  | Some t -> Some (n, Tensor.rename n t)
                  | None ->
                      if String.length n > 0 && n.[0] = '_' then None
                      else
                        fail
                          [
                            Diag.error ~stage:Diag.Driver
                              ~code:Diag.code_pipeline_stage
                              ~context:(stage_ctx ~index st [])
                              "stage %d (%s): missing input tensor %s" index
                              st.Kernels.expr n;
                          ])
              st.Kernels.formats
          in
          let compiled =
            match
              Kernels.compile_stage_result spec st ~inputs:stage_inputs
            with
            | Ok c -> c
            | Error ds ->
                fail
                  (List.map
                     (fun (d : Diag.t) ->
                       { d with Diag.context = stage_ctx ~index st d.Diag.context })
                     ds)
          in
          (* Execute with the retry policy: transient faults (e.g. the
             simulator's injected DRAM storms) get [retries] more
             attempts. *)
          let rec attempt k =
            match execute compiled with
            | outputs -> (outputs, k)
            | exception e ->
                if k < retries then begin
                  Metrics.inc
                    (Metrics.counter ~help:"pipeline stage execution retries"
                       "pipeline_retries_total");
                  warnings :=
                    Diag.warning ~stage:Diag.Driver ~code:Diag.code_retry
                      ~context:
                        (stage_ctx ~index st
                           [ ("exception", Printexc.to_string e) ])
                      "stage %d (%s): execution attempt %d failed; retrying"
                      index st.Kernels.expr (k + 1)
                    :: !warnings;
                  attempt (k + 1)
                end
                else
                  fail
                    [
                      Diag.error ~stage:Diag.Driver
                        ~code:Diag.code_pipeline_stage
                        ~context:
                          (stage_ctx ~index st
                             [ ("exception", Printexc.to_string e);
                               ("attempts", string_of_int (k + 1)) ])
                        "stage %d (%s): execution failed" index
                        st.Kernels.expr;
                    ]
          in
          let outputs, retries_used = attempt 0 in
          List.iter
            (fun (n, t) -> pool := (n, t) :: List.remove_assoc n !pool)
            outputs;
          { stage_expr = st.Kernels.expr; compiled; outputs; retries_used }))
        spec.Kernels.stages
    in
    Ok { stages; results = !pool; warnings = List.rev !warnings }
  with Stage_failed ds -> Error (List.rev_append !warnings ds)

(** Raising shim over {!run_result}.
    @raise Pipeline_error on the first stage failure. *)
let run ?retries (spec : Kernels.spec) ~(inputs : (string * Tensor.t) list)
    ~(execute : Compile.compiled -> (string * Tensor.t) list) : t =
  match run_result ?retries spec ~inputs ~execute with
  | Ok t -> t
  | Error ds ->
      raise
        (Pipeline_error
           (String.concat "; "
              (List.map Diag.to_string
                 (List.filter Diag.is_error ds))))

(** The final result tensor of the last stage. *)
let final t =
  match List.rev t.stages with
  | [] -> raise (Pipeline_error "empty pipeline")
  | last :: _ -> (
      match last.outputs with
      | (_, r) :: _ -> r
      | [] -> raise (Pipeline_error "last stage produced no output"))

(** Sum a per-stage metric (e.g. simulated seconds) over the pipeline. *)
let total t f = List.fold_left (fun acc s -> acc +. f s.compiled) 0.0 t.stages
