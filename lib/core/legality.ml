(** Schedule-legality predicates shared by the auto-scheduler heuristic
    ({!Autoschedule}) and the design-space explorer ([Stardust_explore]).

    A schedule point is more than a tuple of knob values: most loop orders
    are illegal for a given set of formats (compressed fibers are reachable
    only through their parents), and parallelization factors interact with
    the shuffle network.  These predicates answer, for an index-notation
    assignment and a format environment, which points are even candidates —
    one implementation, used both to drive the heuristic's choices and to
    filter the explorer's candidate enumeration. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast

(** Reduction variables ordered so that dense (vectorizable) dimensions
    come last: a variable is dense if {e every} tensor accessing it stores
    the corresponding dimension in a dense level.  Returns the reordered
    variable list and whether anything moved. *)
let dense_last ~formats (a : Ast.assign) vars =
  let is_dense v =
    List.for_all
      (fun (acc : Ast.access) ->
        match List.find_index (String.equal v) acc.indices with
        | None -> true
        | Some d -> (
            match List.assoc_opt acc.tensor formats with
            | None -> true
            | Some fmt ->
                Format.level_kind fmt (Format.level_of_dim fmt d) = Format.Dense))
      (a.Ast.lhs :: Ast.accesses_of_expr a.Ast.rhs)
  in
  let sparse, dense = List.partition (fun v -> not (is_dense v)) vars in
  (sparse @ dense, dense <> [])

(** A loop order is usable only if every tensor's storage levels bind
    outside-in: the variable of level [l] must come before the variable of
    level [l+1] (compressed fibers are reachable only through their
    parents). *)
let respects_levels ~formats (a : Ast.assign) order =
  let pos v = List.find_index (String.equal v) order in
  List.for_all
    (fun (acc : Ast.access) ->
      match List.assoc_opt acc.tensor formats with
      | None -> true
      | Some fmt ->
          let n = Format.order fmt in
          let var_of_level l =
            List.nth acc.indices (Format.dim_of_level fmt l)
          in
          List.for_all
            (fun l ->
              match (pos (var_of_level l), pos (var_of_level (l + 1))) with
              | Some p1, Some p2 -> p1 < p2
              | _ -> true)
            (if n < 2 then [] else List.init (n - 1) Fun.id))
    (a.Ast.lhs :: Ast.accesses_of_expr a.Ast.rhs)

(** Does any access gather a dense tensor at sparse coordinates?  (Then
    outer parallelization is capped by the shuffle network's port count —
    section 8.3's reason SDDMM stops at Par = 12/16.) *)
let uses_gather ~formats (a : Ast.assign) =
  let var_sparse v =
    List.exists
      (fun (acc : Ast.access) ->
        match List.find_index (String.equal v) acc.indices with
        | None -> false
        | Some d -> (
            match List.assoc_opt acc.tensor formats with
            | None -> false
            | Some fmt ->
                Format.level_kind fmt (Format.level_of_dim fmt d)
                = Format.Compressed))
      (Ast.accesses_of_expr a.Ast.rhs)
  in
  List.exists
    (fun (acc : Ast.access) ->
      match List.assoc_opt acc.tensor formats with
      | None -> false
      | Some fmt ->
          Format.is_fully_dense fmt
          && List.exists var_sparse acc.indices)
    (Ast.accesses_of_expr a.Ast.rhs)

(** All legal loop orders for [vars]: the permutations that satisfy
    {!respects_levels}.  The candidate generator enumerates these; callers
    should keep [vars] small (loop nests are at most 4-5 deep in practice,
    and the legality filter prunes most permutations of sparse kernels). *)
let legal_orders ~formats (a : Ast.assign) vars =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun p -> x :: p)
              (perms (List.filter (fun y -> y <> x) l)))
          l
  in
  List.filter (respects_levels ~formats a) (perms vars)
