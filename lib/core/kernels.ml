(** The ten benchmark kernels of the paper (Table 3), with the formats and
    schedules Stardust compiles them under.

    Each kernel is a list of {e stages}; all but Plus3 are single-stage.
    Plus3 is mapped as an iterated two-input addition (section 8.1): a
    native three-way union would use only half of Capstan at a time, so the
    compiler runs [T = B + C] then [A = T + D].

    The [outer_par] values are the paper's Table 5 "Par" column; schedules
    follow section 5's recipes — scalar-workspace [precompute] plus
    [accelerate(..., Reduction, innerPar)] for every contraction kernel,
    and loop [reorder]s that move dense vectorizable dimensions innermost
    for TTM and MTTKRP. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule

type stage = {
  expr : string;  (** index notation *)
  formats : (string * Format.t) list;
  result : string;
  result_format : Format.t;
  schedule : Schedule.t -> Schedule.t;  (** kernel-specific transformations *)
  baseline_reorder : string list option;
      (** loop order the TACO CPU/GPU baselines use (the
          architecture-independent part of the schedule; the paper's
          baselines come from the CPU-scheduled TACO kernels) *)
}

type spec = {
  kname : string;
  paper_expr : string;  (** as printed in Table 3 *)
  stages : stage list;
  inner_par : int;
  outer_par : int;  (** Table 5's Par column *)
}

let on_scalar = Format.make ~region:Format.On_chip []

(** Schedule helper: precompute the whole right-hand side product into a
    scalar workspace and accelerate the reduction loop over [red_var] as a
    Spatial [Reduce] (Figure 5's recipe). *)
let reduce_schedule ~expr_str ~red_vars sched =
  let a = Parser.parse_assign expr_str in
  let e = a.Ast.rhs in
  let sched = Schedule.precompute sched e [] [] ("ws", on_scalar) in
  let target =
    Cin.foralls red_vars
      (Cin.Assign { lhs = { tensor = "ws"; indices = [] }; accum = true; rhs = e })
  in
  (* Accelerate the innermost forall of the workspace accumulation. *)
  let rec innermost = function
    | Cin.Forall { index; body = Cin.Forall _ as b } ->
        let t, inner = innermost b in
        (t, index :: inner)
    | Cin.Forall { index; body } -> (Cin.forall index body, [ index ])
    | s -> (s, [])
  in
  let inner_target, _ = innermost target in
  Schedule.accelerate sched inner_target Cin.Spatial Cin.Reduction
    (Some (Cin.Cvar "innerPar"))

(** Accelerate the auto-introduced [_rs] workspace reduction of a mixed
    additive expression (MatTransMul, Residual). *)
let accelerate_rs ~red_var ~red_expr sched =
  let target =
    Cin.forall red_var
      (Cin.Assign
         { lhs = { tensor = "_rs"; indices = [] }; accum = true; rhs = red_expr })
  in
  Schedule.accelerate sched target Cin.Spatial Cin.Reduction
    (Some (Cin.Cvar "innerPar"))

let spmv =
  let expr = "y(i) = A(i,j) * x(j)" in
  {
    kname = "SpMV";
    paper_expr = "y_i = sum_j A_ij x_j";
    inner_par = 16;
    outer_par = 16;
    stages =
      [
        {
          expr;
          formats = [ ("y", Format.dv ()); ("A", Format.csr ()); ("x", Format.dv ()) ];
          result = "y";
          result_format = Format.dv ();
          schedule = reduce_schedule ~expr_str:expr ~red_vars:[ "j" ];
          baseline_reorder = None;
        };
      ];
  }

let plus3 =
  let csr = Format.csr () in
  {
    kname = "Plus3";
    paper_expr = "A_ij = B_ij + C_ij + D_ij";
    inner_par = 16;
    outer_par = 8;
    stages =
      [
        {
          expr = "T(i,j) = B(i,j) + C(i,j)";
          formats = [ ("T", csr); ("B", csr); ("C", csr) ];
          result = "T";
          result_format = csr;
          schedule = Fun.id;
          baseline_reorder = None;
        };
        {
          expr = "A(i,j) = T(i,j) + D(i,j)";
          formats = [ ("A", csr); ("T", csr); ("D", csr) ];
          result = "A";
          result_format = csr;
          schedule = Fun.id;
          baseline_reorder = None;
        };
      ];
  }

let sddmm =
  let expr = "A(i,j) = B(i,j) * C(i,k) * D(j,k)" in
  {
    kname = "SDDMM";
    paper_expr = "A_ij = sum_k B_ij C_ik D_jk";
    inner_par = 16;
    outer_par = 12;
    stages =
      [
        {
          expr;
          formats =
            [
              ("A", Format.csr ()); ("B", Format.csr ());
              ("C", Format.rm ()); ("D", Format.rm ());
            ];
          result = "A";
          result_format = Format.csr ();
          schedule = reduce_schedule ~expr_str:expr ~red_vars:[ "k" ];
          baseline_reorder = None;
        };
      ];
  }

let mattransmul =
  (* y = alpha * A^T x + beta * z, with A stored CSC so the transposed rows
     are its compressed columns; alpha/beta are scalar constants. *)
  let expr = "y(i) = 0.5 * A(j,i) * x(j) + 0.25 * z(i)" in
  {
    kname = "MatTransMul";
    paper_expr = "y_i = sum_j alpha A^T_ij x_j + beta z_i";
    inner_par = 16;
    outer_par = 16;
    stages =
      [
        {
          expr;
          formats =
            [
              ("y", Format.dv ()); ("A", Format.csc ());
              ("x", Format.dv ()); ("z", Format.dv ());
            ];
          result = "y";
          result_format = Format.dv ();
          schedule =
            accelerate_rs ~red_var:"j"
              ~red_expr:
                Ast.(const 0.5 * access "A" [ "j"; "i" ] * access "x" [ "j" ]);
          baseline_reorder = None;
        };
      ];
  }

let residual =
  let expr = "y(i) = b(i) - A(i,j) * x(j)" in
  {
    kname = "Residual";
    paper_expr = "y_i = b_i - sum_j A_ij x_j";
    inner_par = 16;
    outer_par = 16;
    stages =
      [
        {
          expr;
          formats =
            [
              ("y", Format.dv ()); ("b", Format.dv ());
              ("A", Format.csr ()); ("x", Format.dv ());
            ];
          result = "y";
          result_format = Format.dv ();
          schedule =
            accelerate_rs ~red_var:"j"
              ~red_expr:Ast.(neg (access "A" [ "i"; "j" ] * access "x" [ "j" ]));
          baseline_reorder = None;
        };
      ];
  }

let ttv =
  let expr = "A(i,j) = B(i,j,k) * c(k)" in
  {
    kname = "TTV";
    paper_expr = "A_ij = sum_k B_ijk c_k";
    inner_par = 16;
    outer_par = 16;
    stages =
      [
        {
          expr;
          formats =
            [
              ("A", Format.csf 2); ("B", Format.csf 3); ("c", Format.dv ());
            ];
          result = "A";
          result_format = Format.csf 2;
          schedule = reduce_schedule ~expr_str:expr ~red_vars:[ "k" ];
          baseline_reorder = None;
        };
      ];
  }

let ttm =
  (* Dense output dimension k is vectorized innermost; the contraction
     dimension l streams B's fibers.  C is column-major so C(k,l) is
     contiguous in k. *)
  let expr = "A(i,j,k) = B(i,j,l) * C(k,l)" in
  {
    kname = "TTM";
    paper_expr = "A_ijk = sum_l B_ijl C_kl";
    inner_par = 16;
    outer_par = 12;
    stages =
      [
        {
          expr;
          formats =
            [
              ("A", Format.make [ Format.Compressed; Format.Compressed; Format.Dense ]);
              ("B", Format.csf 3); ("C", Format.cm ());
            ];
          result = "A";
          result_format =
            Format.make [ Format.Compressed; Format.Compressed; Format.Dense ];
          schedule = (fun s -> Schedule.reorder s [ "i"; "j"; "l"; "k" ]);
          baseline_reorder = Some [ "i"; "j"; "l"; "k" ];
        };
      ];
  }

let mttkrp =
  (* Factor-matrix dimension j is vectorized innermost; C and D are
     row-major so C(k,j) / D(l,j) rows are contiguous in j. *)
  let expr = "A(i,j) = B(i,k,l) * C(k,j) * D(l,j)" in
  {
    kname = "MTTKRP";
    paper_expr = "A_ij = sum_kl B_ikl C_kj D_lj";
    inner_par = 16;
    outer_par = 8;
    stages =
      [
        {
          expr;
          formats =
            [
              ("A", Format.rm ()); ("B", Format.csf 3);
              ("C", Format.rm ()); ("D", Format.rm ());
            ];
          result = "A";
          result_format = Format.rm ();
          schedule = (fun s -> Schedule.reorder s [ "i"; "k"; "l"; "j" ]);
          baseline_reorder = Some [ "i"; "k"; "l"; "j" ];
        };
      ];
  }

let innerprod =
  let expr = "alpha = B(i,j,k) * C(i,j,k)" in
  {
    kname = "InnerProd";
    paper_expr = "alpha = sum_ijk B_ijk C_ijk";
    inner_par = 16;
    outer_par = 8;
    stages =
      [
        {
          expr;
          formats =
            [
              ("alpha", Format.make []); ("B", Format.ucc ()); ("C", Format.ucc ());
            ];
          result = "alpha";
          result_format = Format.make [];
          schedule = reduce_schedule ~expr_str:expr ~red_vars:[ "i"; "j"; "k" ];
          baseline_reorder = None;
        };
      ];
  }

let plus2 =
  {
    kname = "Plus2";
    paper_expr = "A_ijk = B_ijk + C_ijk";
    inner_par = 16;
    outer_par = 1;
    stages =
      [
        {
          expr = "A(i,j,k) = B(i,j,k) + C(i,j,k)";
          formats =
            [ ("A", Format.ucc ()); ("B", Format.ucc ()); ("C", Format.ucc ()) ];
          result = "A";
          result_format = Format.ucc ();
          schedule = Fun.id;
          baseline_reorder = None;
        };
      ];
  }

let all =
  [ spmv; plus3; sddmm; mattransmul; residual; ttv; ttm; mttkrp; innerprod; plus2 ]

let find name =
  List.find_opt
    (fun k -> String.lowercase_ascii k.kname = String.lowercase_ascii name)
    all

(** Build the scheduled program of one stage, applying environment
    parallelization factors then the stage's transformations. *)
let schedule_stage spec (st : stage) =
  let a = Parser.parse_assign st.expr in
  let sched = Schedule.of_assign ~formats:st.formats a in
  let sched = Schedule.set_environment sched "innerPar" spec.inner_par in
  let sched = Schedule.set_environment sched "outerPar" spec.outer_par in
  st.schedule sched

(** Compile one stage against concrete inputs. *)
let compile_stage ?sram_budget spec (st : stage) ~inputs =
  let sched = schedule_stage spec st in
  Compile.compile ?sram_budget
    ~name:(String.lowercase_ascii spec.kname)
    sched ~inputs

(** Diagnostic-returning variant of {!compile_stage}: scheduling and
    compilation failures come back as stage-tagged diagnostics instead of
    exceptions. *)
let compile_stage_result ?sram_budget spec (st : stage) ~inputs =
  let name = String.lowercase_ascii spec.kname in
  match schedule_stage spec st with
  | sched -> Compile.compile_result ?sram_budget ~name sched ~inputs
  | exception e -> Error [ Compile.diag_of_exn ~name e ]
