(** Co-iteration analysis and the lowering rewrite system of section 7.

    For every [forall] node the lowerer forms the {e tensor iterator
    contraction set} I = T1 ∘ T2 ∘ ... ∘ Tn (∘ ∈ {∪, ∩}): the per-level
    iterators of every access that uses the forall's index variable,
    combined by the expression structure (multiplication intersects
    coordinates, addition/subtraction unions them).  The rewrite rules of
    Figure 10 then map the contraction set to a declarative iteration
    strategy: a dense counter loop, a single compressed position loop, or a
    bit-vector scan. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin

exception Lower_error of string

let err fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

(** One tensor's iterator over one loop variable. *)
type iterator = {
  tensor : string;
  level : int;  (** storage level bound to the loop variable *)
  kind : [ `U | `C ];  (** universe (dense) or compressed *)
}
[@@deriving show { with_path = false }, eq]

(** Contraction-set tree mirroring the expression structure. *)
type tree =
  | Empty  (** no access in this sub-expression uses the variable *)
  | Univ
      (** an additive term is constant in the variable (a broadcast): it is
          generically nonzero at {e every} coordinate, so the union must
          cover the whole dimension — the universe of Figure 10's
          [U ∪ x = U] rule, without any tensor supplying the universe *)
  | Leaf of iterator
  | Node of [ `And | `Or ] * tree * tree
[@@deriving show { with_path = false }, eq]

(** The iterator of access [a] over variable [v] (if [v] indexes [a]). *)
let iterator_of_access formats v (a : Ast.access) =
  match List.find_index (String.equal v) a.indices with
  | None -> None
  | Some dim ->
      let fmt =
        match List.assoc_opt a.tensor formats with
        | Some f -> f
        | None -> err "no format for tensor %s" a.tensor
      in
      let level = Format.level_of_dim fmt dim in
      let kind =
        match Format.level_kind fmt level with
        | Format.Dense -> `U
        | Format.Compressed -> `C
      in
      Some { tensor = a.tensor; level; kind }

(** Build the contraction-set tree of expression [e] over variable [v]. *)
let rec tree_of_expr formats v (e : Ast.expr) =
  match e with
  | Ast.Access a -> (
      match iterator_of_access formats v a with
      | Some it -> Leaf it
      | None -> Empty)
  | Ast.Const _ -> Empty
  | Ast.Neg e -> tree_of_expr formats v e
  | Ast.Bin (op, a, b) -> (
      let ta = tree_of_expr formats v a and tb = tree_of_expr formats v b in
      match (op, ta, tb) with
      | _, Empty, Empty -> Empty
      (* Multiplication: a factor constant in [v] scales the other side
         without changing which coordinates are nonzero. *)
      | Ast.Mul, Empty, t | Ast.Mul, t, Empty -> t
      | Ast.Mul, Univ, t | Ast.Mul, t, Univ -> t
      (* Addition/subtraction: a term constant in [v] (including one whose
         sub-tree already collapsed to the universe) is generically nonzero
         at every coordinate, so the sum is too: U ∪ x = U. *)
      | (Ast.Add | Ast.Sub), Empty, _
      | (Ast.Add | Ast.Sub), _, Empty
      | (Ast.Add | Ast.Sub), Univ, _
      | (Ast.Add | Ast.Sub), _, Univ ->
          Univ
      | op, ta, tb ->
          let o = match op with Ast.Mul -> `And | Ast.Add | Ast.Sub -> `Or in
          Node (o, ta, tb))

(** Contraction set of a whole CIN statement body over [v]: the union of
    all its assignments' right-hand sides (assignments in a body execute for
    every coordinate any of them touches). *)
let tree_of_stmt formats v (s : Cin.stmt) =
  List.fold_left
    (fun acc (a : Ast.assign) ->
      let t = tree_of_expr formats v a.Ast.rhs in
      match (acc, t) with
      | Empty, t | t, Empty -> t
      | Univ, _ | _, Univ -> Univ
      | acc, t -> Node (`Or, acc, t))
    Empty
    (Cin.assignments s)

let rec leaves = function
  | Empty | Univ -> []
  | Leaf it -> [ it ]
  | Node (_, a, b) -> leaves a @ leaves b

(* -------------------------------------------------------------------- *)
(* The rewrite system (Figure 10)                                        *)
(* -------------------------------------------------------------------- *)

(** The declarative iteration strategy chosen for one forall (the
    right-hand sides of Figure 10's rules). *)
type plan =
  | Dense_plan of { dense : iterator list }
      (** counter loop over the full dimension; all-universe, or a union
          that contains the universe *)
  | Pos_plan of { lead : iterator; dense : iterator list }
      (** position loop over the single compressed iterator [lead]; dense
          iterators are accessed at its coordinates *)
  | Scan_plan of {
      op : [ `And | `Or ];
      a : iterator;
      b : iterator;
      dense : iterator list;
    }
      (** bit-vector scan co-iterating two compressed iterators *)
[@@deriving show { with_path = false }, eq]

let plan_dense = function
  | Dense_plan { dense } -> dense
  | Pos_plan { dense; _ } -> dense
  | Scan_plan { dense; _ } -> dense

let plan_compressed = function
  | Dense_plan _ -> []
  | Pos_plan { lead; _ } -> [ lead ]
  | Scan_plan { a; b; _ } -> [ a; b ]

(** [rewrite tree] implements lowerIter: collapse universes by the identity
    rules ([U ∩ x = x], [U ∪ x = U]), keep at most two compressed iterators
    for a scan, and fall back per Figure 10's fold rule.

    Dense (universe) iterators eliminated by [∩] are still returned in
    [dense] — their tensors are accessed at the loop's coordinates even
    though they do not constrain iteration.

    @raise Lower_error on contraction sets the backend cannot iterate
    (e.g. mixed [(C ∪ C) ∩ C] nests, or three-way compressed unions —
    Capstan's scanner takes at most two bit-vectors; the paper maps such
    leftovers to the host, which we reject instead). *)
let rewrite tree =
  (* Flatten a same-operator spine; mixed operators are unsupported. *)
  let rec flatten op = function
    | Empty -> []
    | Univ ->
        (* Unreachable: [tree_of_expr]/[tree_of_stmt] collapse any
           combination involving the universe before a [Node] forms. *)
        err "rewrite: universe inside a contraction node"
    | Leaf it -> [ it ]
    | Node (o, a, b) when o = op -> flatten op a @ flatten op b
    | Node (o, _, _) ->
        err "unsupported mixed contraction (%s under %s)"
          (match o with `And -> "intersection" | `Or -> "union")
          (match op with `And -> "union" | `Or -> "intersection")
  in
  match tree with
  | Empty ->
      err
        "rewrite: no tensor iterates this variable — loop transformations \
         that introduce derived variables (split_up/split_down/fuse) are \
         supported by the CIN interpreter but not yet by the compiled \
         backends"
  | Univ ->
      (* Some additive term is constant in the variable, so every
         coordinate of the dimension is (generically) nonzero: iterate the
         full dimension.  Compressed operands would need per-coordinate
         lookups, which the backends reject when they lower the accesses —
         better an honest refusal than iterating only a sparse operand's
         pattern and silently dropping the broadcast term's contributions. *)
      Dense_plan { dense = [] }
  | Leaf it -> (
      match it.kind with
      | `U -> Dense_plan { dense = [ it ] }
      | `C -> Pos_plan { lead = it; dense = [] })
  | Node (op, _, _) -> (
      let its = flatten op tree in
      let dense = List.filter (fun i -> i.kind = `U) its in
      let comp = List.filter (fun i -> i.kind = `C) its in
      match (op, comp) with
      | `And, [] -> Dense_plan { dense }
      | `And, [ c ] -> Pos_plan { lead = c; dense }
      | `And, [ a; b ] -> Scan_plan { op = `And; a; b; dense }
      | `And, _ ->
          err "intersection of %d compressed iterators exceeds scanner arity"
            (List.length comp)
      | `Or, _ when dense <> [] ->
          (* U ∪ _ => U: dense iteration covers every coordinate; the
             compressed operands are looked up at each coordinate. *)
          Dense_plan { dense }
      | `Or, [ a; b ] -> Scan_plan { op = `Or; a; b; dense = [] }
      | `Or, [ c ] -> Pos_plan { lead = c; dense = [] }
      | `Or, [] -> err "rewrite: union with no iterators"
      | `Or, _ ->
          err "union of %d compressed iterators exceeds scanner arity"
            (List.length comp))

(** Analyse variable [v] for the loop body [s]: contraction tree, rewrite
    plan, and the result iterator (the left-hand side's iterator over [v],
    if the result tensor has a level bound to [v]). *)
let analyze formats v (s : Cin.stmt) =
  let tree = tree_of_stmt formats v s in
  let plan = rewrite tree in
  let result =
    match Cin.assignments s with
    | [] -> None
    | a :: _ -> iterator_of_access formats v a.Ast.lhs
  in
  (plan, result)
