(** A first-cut auto-scheduler.

    The paper argues (sections 1 and 8.3) that the clean separation of
    algorithm, format, and schedule enables auto-scheduling, and estimates
    that an auto-scheduler would cut SpMV's input from 10 lines to 6 by
    deriving the schedule.  This module implements the deterministic part
    of that derivation — the recipes a performance engineer applies
    mechanically:

    - every reduction whose result is scalar-per-output-point gets a
      scalar-workspace [precompute] and an accelerated [Reduce] over its
      innermost reduction loop (the Figure 5 recipe);
    - mixed additive expressions already receive their workspace from
      {!Stardust_schedule.Schedule.of_assign}; the reduction part is then
      accelerated the same way;
    - dense dimensions are moved innermost ([reorder]) so they vectorize
      affinely instead of forcing gathers (the TTM/MTTKRP recipe);
    - parallelization factors are chosen from the co-iteration structure:
      full vector width inside, and an outer factor that respects the
      16-port shuffle limit when the kernel gathers.

    The recipe is split into two halves so the design-space explorer
    ([Stardust_explore]) can reuse it: {!decide} computes the knob values
    the heuristic would pick (a {!decision}), and {!schedule_point} builds
    the schedule for {e any} decision — the heuristic's or an explorer
    candidate's.  {!schedule} composes the two; combined with
    {!Stardust_capstan.Sim.estimate} it is the starting point the explorer
    refines.  Legality predicates live in {!Legality}, shared with the
    explorer's candidate generator. *)

module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule

let on_scalar = Format.make ~region:Format.On_chip []

(** One point in the schedule space the heuristic ranges over: an optional
    explicit loop order (applied only when the nest is plain and the order
    passes {!Legality.respects_levels}; [None] keeps the canonical
    concretization order) and the two parallelization factors. *)
type decision = {
  order : string list option;
  inner_par : int;
  outer_par : int;
}

(** The knob values the heuristic picks for an assignment: dense-innermost
    loop order when legal, full vector width inside, shuffle-limited outer
    factor when the kernel gathers. *)
let decide ?(inner_par = 16) ?outer_par ~formats (a : Ast.assign) =
  let sched = Schedule.of_assign ~formats a in
  let out_vars = a.Ast.lhs.Ast.indices in
  let rvars = Ast.reduction_vars a in
  let all = Cin.bound_vars (Schedule.stmt sched) in
  let reordered, moved = Legality.dense_last ~formats a (out_vars @ rvars) in
  let order =
    (* only reorder plain nests (auto-workspace kernels keep their shape),
       and only when the new order keeps every tensor's levels outside-in *)
    if
      moved
      && all = out_vars @ rvars
      && reordered <> all
      && Legality.respects_levels ~formats a reordered
    then Some reordered
    else None
  in
  let outer_par =
    match outer_par with
    | Some p -> p
    | None -> if Legality.uses_gather ~formats a then 16 else 8
  in
  { order; inner_par; outer_par }

(** Build the complete schedule for an assignment at one {!decision}: loop
    order, parallelization factors, workspace insertion, and Reduce
    acceleration.  Orders that are illegal for the formats, or that target
    a non-plain nest, are ignored (the canonical order is kept), so every
    decision yields a valid schedule. *)
let schedule_point ~formats (a : Ast.assign) (d : decision) =
  let sched = Schedule.of_assign ~formats a in
  let rvars = Ast.reduction_vars a in
  (* 1. loop order *)
  let out_vars = a.Ast.lhs.Ast.indices in
  let all = Cin.bound_vars (Schedule.stmt sched) in
  let sched =
    match d.order with
    | Some order
      when all = out_vars @ rvars
           && order <> all
           && Legality.respects_levels ~formats a order ->
        Schedule.reorder sched order
    | _ -> sched
  in
  (* 2. parallelization factors, through the environment command *)
  let sched = Schedule.set_environment sched "innerPar" d.inner_par in
  let sched = Schedule.set_environment sched "outerPar" d.outer_par in
  (* 3. accelerate the reduction as a Reduce pattern *)
  if rvars = [] then sched
  else if Schedule.has_tensor sched "_rs" then begin
    (* mixed additive expression: of_assign already made the workspace *)
    let red =
      List.filter
        (fun (_, t) ->
          List.exists (fun v -> List.mem v rvars) (Ast.indices_of_expr t))
        (Ast.linear_terms a.Ast.rhs)
    in
    let target =
      Cin.forall (List.hd (List.rev rvars))
        (Cin.Assign
           { lhs = { tensor = "_rs"; indices = [] }; accum = true;
             rhs = Ast.of_linear_terms red })
    in
    try
      Schedule.accelerate sched target Cin.Spatial Cin.Reduction
        (Some (Cin.Cvar "innerPar"))
    with Schedule.Schedule_error _ -> sched
  end
  else begin
    (* plain contraction: workspace + accelerate the innermost loop *)
    let nest = Cin.bound_vars (Schedule.stmt sched) in
    let innermost_rvar =
      List.fold_left (fun acc v -> if List.mem v rvars then Some v else acc)
        None nest
    in
    match innermost_rvar with
    | None -> sched
    | Some v -> (
        (* Dense-result accumulations (e.g. TTM's k-innermost row) do not
           need a scalar workspace; only reduce when v is truly innermost
           after reordering. *)
        match List.rev nest with
        | last :: _ when last = v -> (
            let sched' =
              Schedule.precompute sched a.Ast.rhs [] [] ("ws", on_scalar)
            in
            let target =
              Cin.forall v
                (Cin.Assign
                   { lhs = { tensor = "ws"; indices = [] }; accum = true;
                     rhs = a.Ast.rhs })
            in
            try
              Schedule.accelerate sched' target Cin.Spatial Cin.Reduction
                (Some (Cin.Cvar "innerPar"))
            with Schedule.Schedule_error _ -> sched)
        | _ -> sched)
  end

(** Derive a complete schedule for an index-notation assignment: the
    heuristic {!decide} followed by {!schedule_point}.  This is the 6-line
    input mode of section 8.3 — the user supplies only formats and the
    algorithm. *)
let schedule ?inner_par ?outer_par ~formats (a : Ast.assign) =
  schedule_point ~formats a (decide ?inner_par ?outer_par ~formats a)

(** Auto-schedule and compile in one step. *)
let compile ?name ?inner_par ?outer_par ~formats ~inputs expr =
  let a = Stardust_ir.Parser.parse_assign expr in
  let sched = schedule ?inner_par ?outer_par ~formats a in
  Compile.compile ?name sched ~inputs
