(** The Stardust compiler driver — the public entry point.

    [compile] takes the three Stardust inputs — a tensor-algebra expression
    (already scheduled: a {!Stardust_schedule.Schedule.t}) and the concrete
    input tensors — and produces a {!Stardust_spatial.Spatial_ir.program}
    together with the compilation plan that sized it.  Convenience helpers
    parse expressions from strings and build default schedules.

    Two API surfaces:

    - {!compile_result} / {!compile_string_result} return
      [(compiled, Diag.t list) result]: every stage exception
      ([Parse_error], [Schedule_error], [Plan_error], [Lower_error],
      Spatial validation) is converted into located, stage-tagged
      {!Stardust_diag.Diag.t} diagnostics, and even unexpected exceptions
      are captured rather than escaping.
    - {!compile} / {!compile_string} are thin raising shims kept for
      existing callers: they raise {!Compile_error} with the rendered
      diagnostic text. *)

module Tensor = Stardust_tensor.Tensor
module Format = Stardust_tensor.Format
module Ast = Stardust_ir.Ast
module Parser = Stardust_ir.Parser
module Cin = Stardust_ir.Cin
module Schedule = Stardust_schedule.Schedule
module Diag = Stardust_diag.Diag
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics

(* Span categories follow the [Diag.stage] enum, so trace viewers and
   diagnostics speak the same stage vocabulary. *)
let span_cat stage = Diag.stage_name stage

(* Handles are looked up per event rather than cached: registration is a
   mutex-guarded hashtable hit, and re-resolving keeps the counters live
   across a [Metrics.reset] (the test suite resets between cases). *)
let count name help = Metrics.inc (Metrics.counter ~help name)

type compiled = {
  name : string;
  schedule : Schedule.t;
  plan : Plan.t;
  program : Stardust_spatial.Spatial_ir.program;
  inputs : (string * Tensor.t) list;
}

exception Compile_error of string

(* ------------------------------------------------------------------ *)
(* Diagnostic-producing driver                                         *)
(* ------------------------------------------------------------------ *)

(** Convert one caught stage exception into its diagnostic.  [name] tags
    every diagnostic with the kernel being compiled. *)
let diag_of_exn ~name (e : exn) : Diag.t =
  let ctx = [ ("kernel", name) ] in
  match e with
  | Parser.Parse_error (m, off) ->
      Diag.error ~stage:Diag.Parse ~code:Diag.code_parse
        ~span:{ Diag.start = off; stop = off + 1 }
        ~context:ctx "%s" m
  | Schedule.Schedule_error m ->
      Diag.error ~stage:Diag.Schedule ~code:Diag.code_schedule ~context:ctx
        "%s" m
  | Plan.Plan_error m ->
      Diag.error ~stage:Diag.Plan ~code:Diag.code_plan ~context:ctx "%s" m
  | Coiter.Lower_error m ->
      Diag.error ~stage:Diag.Lower ~code:Diag.code_lower ~context:ctx "%s" m
  | Compile_error m ->
      Diag.error ~stage:Diag.Driver ~code:Diag.code_unexpected ~context:ctx
        "%s" m
  | e ->
      Diag.error ~stage:Diag.Driver ~code:Diag.code_unexpected
        ~context:(("exception", Printexc.to_string e) :: ctx)
        "unexpected exception during compilation"

(** [compile_result ~name sched ~inputs] runs planning (co-iteration
    analysis and memory binding) and lowering, returning either the
    compiled kernel or the accumulated diagnostics.  No stage exception
    escapes. *)
let compile_result ?(name = "kernel") ?sram_budget (sched : Schedule.t)
    ~(inputs : (string * Tensor.t) list) :
    (compiled, Diag.t list) result =
  count "compile_total" "kernels entering the compile driver";
  let c = Diag.Collector.create () in
  let result =
  match
    let plan =
      Trace.with_span ~cat:(span_cat Diag.Plan)
        ~args:[ ("kernel", name) ]
        ("plan " ^ name)
        (fun () -> Plan.build ?sram_budget sched ~inputs)
    in
    let program =
      Trace.with_span ~cat:(span_cat Diag.Lower)
        ~args:[ ("kernel", name) ]
        ("lower " ^ name)
        (fun () -> Lower.lower ~name plan)
    in
    (plan, program)
  with
  | exception Diag.Fail ds -> Error ds
  | exception e -> Error [ diag_of_exn ~name e ]
  | plan, program -> (
      match
        Trace.with_span ~cat:(span_cat Diag.Codegen)
          ~args:[ ("kernel", name) ]
          ("validate " ^ name)
          (fun () -> Stardust_spatial.Spatial_ir.validate program)
      with
      | [] -> Ok { name; schedule = sched; plan; program; inputs }
      | errs ->
          (* validation reports every structural defect, not just the
             first: one diagnostic each *)
          List.iter
            (fun m ->
              Diag.Collector.add c
                (Diag.error ~stage:Diag.Codegen ~code:Diag.code_codegen
                   ~context:[ ("kernel", name) ]
                   "generated Spatial program is invalid: %s" m))
            errs;
          Error (Diag.Collector.to_list c))
  in
  (match result with
  | Error _ ->
      count "compile_errors_total"
        "compilations that produced error diagnostics"
  | Ok _ -> ());
  result

(** Parse an index-notation string into its canonical schedule, reporting
    parse and scheduling failures as located diagnostics. *)
let schedule_of_string_result ~formats s : (Schedule.t, Diag.t list) result =
  match
    Trace.with_span ~cat:(span_cat Diag.Parse) "parse" (fun () ->
        Parser.parse_assign s)
  with
  | a -> (
      match
        Trace.with_span ~cat:(span_cat Diag.Schedule) "schedule" (fun () ->
            Schedule.of_assign ~formats a)
      with
      | sched -> Ok sched
      | exception e -> Error [ diag_of_exn ~name:"kernel" e ])
  | exception e -> Error [ diag_of_exn ~name:"kernel" e ]

(** One-call convenience: parse, schedule canonically, and compile, with
    all failures as diagnostics.  The parse span refers to [s]. *)
let compile_string_result ?name ?sram_budget ~formats ~inputs s :
    (compiled, Diag.t list) result =
  match schedule_of_string_result ~formats s with
  | Error ds -> Error ds
  | Ok sched -> compile_result ?name ?sram_budget sched ~inputs

(* ------------------------------------------------------------------ *)
(* Raising shims (legacy API)                                          *)
(* ------------------------------------------------------------------ *)

let render_diags ds =
  String.concat "; " (List.map Diag.to_string ds)

(** Raising shim over {!compile_result}.
    @raise Compile_error when planning, lowering, or validation fails. *)
let compile ?name ?sram_budget (sched : Schedule.t)
    ~(inputs : (string * Tensor.t) list) : compiled =
  match compile_result ?name ?sram_budget sched ~inputs with
  | Ok c -> c
  | Error ds -> raise (Compile_error (render_diags ds))

(** Parse an index-notation string and build its canonical schedule.
    [formats] must cover every tensor named in the expression. *)
let schedule_of_string ~formats s =
  match schedule_of_string_result ~formats s with
  | Ok sched -> sched
  | Error ds -> raise (Compile_error (render_diags ds))

(** One-call convenience: parse, schedule canonically, and compile. *)
let compile_string ?name ?sram_budget ~formats ~inputs s =
  match compile_string_result ?name ?sram_budget ~formats ~inputs s with
  | Ok c -> c
  | Error ds -> raise (Compile_error (render_diags ds))

(* ------------------------------------------------------------------ *)
(* Reporting helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** The generated Spatial source text. *)
let spatial_code c = Stardust_spatial.Codegen.to_string c.program

(** Generated lines of code (Table 3's "Spatial" column). *)
let spatial_loc c = Stardust_spatial.Codegen.lines_of_code c.program

(** Input lines of code (Table 3's "Input" column): format declarations +
    algorithm + scheduling commands + one output statement, matching the
    paper's accounting in section 8.3. *)
let input_loc c =
  let formats =
    List.length c.schedule.Stardust_schedule.Schedule.formats
    - List.length c.schedule.Stardust_schedule.Schedule.temporaries
  in
  let commands = List.length (Schedule.trace c.schedule) in
  (* trace includes the algorithm line; +1 for compile/output *)
  formats + commands + 1
