(** Graceful capacity degradation: the fallback chain.

    The paper's memory analysis exists because Capstan has hard PMU/SRAM
    capacity limits that real kernels routinely exceed.  Rather than dying
    when {!Stardust_capstan.Resources.count} reports an infeasible mapping
    or the simulator trips a capacity guard, this driver walks a fallback
    chain and reports what it did as warning diagnostics:

    {ol
    {- {b Capstan} — the kernel as scheduled.}
    {- {b Tiled} — when the {e data} is what does not fit, shard the
       iteration space into coordinate-range tiles
       ({!Stardust_ingest.Tile}), simulate each tile independently, and
       reduce the partials.  Preserves on-chip locality, unlike forcing
       everything to DRAM.}
    {- {b Retile} — recompile with every gatherable region forced
       off-chip ([sram_budget = 0]) and progressively shrunk
       parallelization factors: smaller replication means fewer PMU/PCU
       replicas and smaller on-chip footprints.}
    {- {b CPU baseline} — execute the TACO-style von Neumann lowering of
       the same plan on the host.  Always feasible; the kernel still
       produces its result, just not on the accelerator.}}

    How far the chain walks is the caller's [policy], ordered by how much
    degradation it permits: [No_fallback] reports the first failure as
    structured diagnostics, [Retile] permits only the retile rung,
    [Tiled] additionally permits out-of-core tiling, [Cpu] walks to the
    end.  The tiled rung runs {e before} retiling (it keeps data on-chip)
    but only when {!Stardust_ingest.Tile.plan} judges the failure a data
    capacity problem rather than a structural one. *)

module Tensor = Stardust_tensor.Tensor
module Schedule = Stardust_schedule.Schedule
module Compile = Stardust_core.Compile
module Plan = Stardust_core.Plan
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Resources = Stardust_capstan.Resources
module Imp = Stardust_vonneumann.Imp_interp
module Tile = Stardust_ingest.Tile
module Diag = Stardust_diag.Diag
module Metrics = Stardust_obs.Metrics

let count name help = Metrics.inc (Metrics.counter ~help name)

type policy = No_fallback | Retile | Tiled | Cpu

let policy_name = function
  | No_fallback -> "none"
  | Retile -> "retile"
  | Tiled -> "tiled"
  | Cpu -> "cpu"

let policy_of_string = function
  | "none" -> Some No_fallback
  | "retile" -> Some Retile
  | "tiled" -> Some Tiled
  | "cpu" -> Some Cpu
  | _ -> None

(** Which rung of the chain actually ran the kernel. *)
type backend =
  | Capstan  (** as scheduled *)
  | Capstan_tiled of string
      (** description of the coordinate tiling that fit *)
  | Capstan_retiled of string  (** description of the retile that fit *)
  | Cpu_baseline

let backend_name = function
  | Capstan -> "capstan"
  | Capstan_tiled d -> "capstan-tiled(" ^ d ^ ")"
  | Capstan_retiled d -> "capstan-retiled(" ^ d ^ ")"
  | Cpu_baseline -> "cpu"

type outcome = {
  backend : backend;
  compiled : Compile.compiled;  (** the kernel that actually ran *)
  results : (string * Tensor.t) list;
  report : Sim.report option;  (** [None] on the CPU baseline *)
  diags : Diag.t list;
      (** warnings naming the fallback taken, plus notes recording each
          abandoned attempt *)
}

let diag_of_sim_error ~name kind message =
  let code =
    match (kind : Sim.error_kind) with
    | Sim.Capacity -> Diag.code_sim_capacity
    | Sim.Watchdog -> Diag.code_sim_watchdog
    | Sim.Fault -> Diag.code_sim_fault
    | Sim.Runtime -> Diag.code_sim_runtime
  in
  Diag.error ~stage:Diag.Simulate ~code ~context:[ ("kernel", name) ] "%s"
    message

(** Is this failure the kind more resources or less parallelism could fix
    (as opposed to a compiler bug)? *)
let recoverable = function
  | Sim.Sim_error { kind = Sim.Capacity | Sim.Watchdog; _ } -> true
  | _ -> false

(** Try to run [c] on Capstan: resource feasibility first (the static
    analysis SARA would enforce at place-and-route), then functional
    execution with its capacity guards live. *)
let try_capstan ~config ~watchdog ~faults (c : Compile.compiled) :
    (((string * Tensor.t) list * Sim.report), Diag.t list) result =
  let u = Resources.count config.Sim.arch c in
  if not u.Resources.feasible then
    Error
      [
        Diag.error ~stage:Diag.Driver ~code:Diag.code_infeasible
          ~context:
            [ ("kernel", c.Compile.name);
              ("limiting", u.Resources.limiting);
              ("usage", Fmt.str "%a" Resources.pp u) ]
          "kernel %s does not fit the chip: %a" c.Compile.name Resources.pp u;
      ]
  else
    match Sim.execute ~config ~watchdog ~faults c with
    | results -> Ok results
    | exception Sim.Sim_error { kind; message } ->
        Error [ diag_of_sim_error ~name:c.Compile.name kind message ]

(** The retile ladder: progressively gentler mappings of the same
    schedule.  Every rung forces gather regions off-chip
    ([sram_budget = 0]); later rungs also shed parallel replication. *)
let retile_attempts (c : Compile.compiled) =
  let sched = c.Compile.schedule in
  let ip = Schedule.env_value ~default:16 sched "innerPar" in
  let op = Schedule.env_value ~default:1 sched "outerPar" in
  List.filter_map
    (fun (label, ip', op') ->
      if ip' = ip && op' = op && label <> "off-chip gather regions" then None
      else Some (label, ip', op'))
    [
      ("off-chip gather regions", ip, op);
      ("quarter parallelism", max 1 (ip / 4), max 1 (op / 4));
      ("serial", 1, 1);
    ]

let recompile_retiled (c : Compile.compiled) ~ip ~op =
  let sched = c.Compile.schedule in
  let sched = Schedule.set_environment sched "innerPar" ip in
  let sched = Schedule.set_environment sched "outerPar" op in
  Compile.compile_result ~name:c.Compile.name ~sram_budget:0 sched
    ~inputs:c.Compile.inputs

(** Run the CPU baseline: the von Neumann lowering of the same plan,
    interpreted on the host. *)
let try_cpu (c : Compile.compiled) :
    ((string * Tensor.t) list, Diag.t list) result =
  match Imp.run c.Compile.plan ~inputs:c.Compile.inputs with
  | results, _tally, _func -> Ok results
  | exception e ->
      Error
        [
          Diag.error ~stage:Diag.Driver ~code:Diag.code_unexpected
            ~context:
              [ ("kernel", c.Compile.name);
                ("exception", Printexc.to_string e) ]
            "CPU baseline execution failed";
        ]

(** Walk the fallback chain for an already-compiled kernel.

    On success the outcome's [diags] hold a warning naming any fallback
    taken (code [W0101]/[W0102]) and notes for each abandoned attempt; on
    failure every accumulated diagnostic is returned, so the caller can
    see the whole chain's story, not just its last link. *)
let run ?(policy = No_fallback) ?(config = Sim.default_config)
    ?(watchdog = Sim.default_watchdog) ?(faults = [])
    (c : Compile.compiled) : (outcome, Diag.t list) result =
  let name = c.Compile.name in
  let trail = Diag.Collector.create () in
  let demote (d : Diag.t) = { d with Diag.severity = Diag.Note } in
  match try_capstan ~config ~watchdog ~faults c with
  | Ok (results, report) ->
      Ok
        {
          backend = Capstan;
          compiled = c;
          results;
          report = Some report;
          diags = Diag.Collector.to_list trail;
        }
  | Error ds when policy = No_fallback -> Error ds
  | Error ds -> (
      (* record why Capstan was abandoned, demoted to notes *)
      Diag.Collector.add_all trail (List.map demote ds);
      let tiled =
        (* before retiling: if the failure is a data-capacity problem,
           coordinate tiling keeps each slice on-chip instead of forcing
           everything to DRAM *)
        if policy <> Tiled && policy <> Cpu then None
        else
          match Tile.attempt ~config ~watchdog ~faults c with
          | Ok o -> Some o
          | Error ds ->
              Diag.Collector.add_all trail (List.map demote ds);
              None
      in
      match tiled with
      | Some o ->
          count "fallback_tiled_total"
            "kernels degraded to out-of-core coordinate tiling (W0105)";
          let desc = Fmt.str "%s x %d" o.Tile.shard_var o.Tile.tiles in
          Diag.Collector.add_all trail o.Tile.notes;
          Diag.Collector.add trail
            (Diag.warning ~stage:Diag.Driver ~code:Diag.code_fallback_tiled
               ~context:
                 [ ("kernel", name);
                   ("shard", o.Tile.shard_var);
                   ("tiles", string_of_int o.Tile.tiles) ]
               "kernel %s does not fit on chip as one piece; degraded to \
                out-of-core tiling (%d tiles over %s)"
               name o.Tile.tiles o.Tile.shard_var);
          Ok
            {
              backend = Capstan_tiled desc;
              compiled = c;
              results = o.Tile.results;
              report = None;
              diags = Diag.Collector.to_list trail;
            }
      | None ->
      let rec retile = function
        | [] -> None
        | (label, ip, op) :: rest -> (
            match recompile_retiled c ~ip ~op with
            | Error ds ->
                Diag.Collector.add_all trail (List.map demote ds);
                retile rest
            | Ok c' -> (
                match try_capstan ~config ~watchdog ~faults c' with
                | Ok (results, report) -> Some (label, c', results, report)
                | Error ds ->
                    Diag.Collector.add_all trail (List.map demote ds);
                    retile rest))
      in
      match retile (retile_attempts c) with
      | Some (label, c', results, report) ->
          count "fallback_retile_total"
            "kernels degraded to a retiled mapping (W0101)";
          Diag.Collector.add trail
            (Diag.warning ~stage:Diag.Driver ~code:Diag.code_fallback_retile
               ~context:[ ("kernel", name); ("retile", label) ]
               "kernel %s did not fit as scheduled; degraded to a retiled \
                mapping (%s)"
               name label);
          Ok
            {
              backend = Capstan_retiled label;
              compiled = c';
              results;
              report = Some report;
              diags = Diag.Collector.to_list trail;
            }
      | None when policy = Cpu -> (
          match try_cpu c with
          | Ok results ->
              count "fallback_cpu_total"
                "kernels degraded to the CPU baseline (W0102)";
              Diag.Collector.add trail
                (Diag.warning ~stage:Diag.Driver ~code:Diag.code_fallback_cpu
                   ~context:[ ("kernel", name) ]
                   "kernel %s does not fit Capstan under any attempted \
                    mapping; fell back to the CPU baseline"
                   name);
              Ok
                {
                  backend = Cpu_baseline;
                  compiled = c;
                  results;
                  report = None;
                  diags = Diag.Collector.to_list trail;
                }
          | Error ds ->
              Diag.Collector.add_all trail ds;
              Error (Diag.Collector.to_list trail))
      | None ->
          Diag.Collector.add trail
            (Diag.error ~stage:Diag.Driver ~code:Diag.code_infeasible
               ~context:[ ("kernel", name); ("policy", policy_name policy) ]
               "kernel %s does not fit Capstan under any retiled mapping \
                (fallback policy %S stops short of the CPU baseline)"
               name (policy_name policy));
          Error (Diag.Collector.to_list trail))

(** Compile-then-run convenience: compilation diagnostics and fallback
    diagnostics share one error channel. *)
let compile_and_run ?policy ?config ?watchdog ?faults ?name ?sram_budget
    sched ~inputs : (outcome, Diag.t list) result =
  match Compile.compile_result ?name ?sram_budget sched ~inputs with
  | Error ds -> Error ds
  | Ok c -> run ?policy ?config ?watchdog ?faults c
