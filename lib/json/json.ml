(** A minimal JSON value type with a printer and a recursive-descent
    parser, shared by every Stardust tool that reads or writes JSON —
    the oracle's corpus files, the benchmark suite's perf-diff documents,
    and the compile service's request/response protocol — so none of
    them pulls a JSON dependency into the build or re-implements
    encoding.  Numbers are floats (the documents only carry small
    integers and tensor values); strings support the escapes
    {!Stardust_diag.Diag}'s renderer emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string * int  (** message, character offset *)

(** Maximum container-nesting depth the parser accepts.  The parser is
    recursive-descent, so its stack use is proportional to the input's
    nesting; past this bound it raises {!Parse_error} instead of
    letting a hostile line like [\[\[\[\[…] run the OCaml stack out
    ([Stack_overflow] escapes exception filters tuned for I/O errors —
    the compile service in particular must see a parse error here,
    never an asynchronous-looking crash).  512 levels is far beyond any
    document our own printers emit. *)
let max_depth = 512

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render a number: integers without a trailing ".", everything else in
    round-trippable %.17g. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        l;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* corpus files only carry ASCII; decode the BMP point
                      as a raw byte when it fits, '?' otherwise *)
                   Buffer.add_char buf
                     (if code < 0x100 then Char.chr code else '?');
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    if !pos = start then fail "expected a number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let too_deep depth =
    (* [depth] counts enclosing containers; a container opening at the
       bound would nest its children one past it *)
    if depth >= max_depth then
      fail (Printf.sprintf "nesting deeper than %d levels" max_depth)
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        too_deep depth;
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value (depth + 1) :: !items;
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        too_deep depth;
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            (k, parse_value (depth + 1))
          in
          let items = ref [ member () ] in
          let rec go () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := member () :: !items;
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !items)
        end
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after JSON value";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (raise [Parse_error] on shape mismatch)                   *)
(* ------------------------------------------------------------------ *)

let shape_fail what = raise (Parse_error ("expected " ^ what, 0))
let member k = function
  | Obj l -> List.assoc_opt k l
  | _ -> shape_fail "an object"

let member_exn k v =
  match member k v with
  | Some x -> x
  | None -> shape_fail (Printf.sprintf "member %S" k)

let to_float = function Num f -> f | _ -> shape_fail "a number"
let to_int v = int_of_float (to_float v)
let to_str = function Str s -> s | _ -> shape_fail "a string"
let to_list = function Arr l -> l | _ -> shape_fail "an array"
let to_obj = function Obj l -> l | _ -> shape_fail "an object"
