(** Transport layer of the compile service: newline-delimited JSON over
    stdin/stdout or a Unix-domain socket.

    One request per line; a line holding a JSON array is a batch,
    dispatched across the service's worker pool and answered by an
    array in request order on a single line.  Blank lines are ignored.
    A line that is not valid JSON is answered with an [E1001] error
    response, and a line longer than the transport's bound is drained
    and answered with [E1006] (never a crash, a dropped connection, or
    unbounded buffering against a slow-loris writer).

    {2 Concurrency model}

    The socket listener accepts connections concurrently: each accepted
    connection is served by its own thread, bounded by
    [?max_connections].  Threads (not domains) carry connections
    because a connection handler is I/O-shaped — it blocks on reads
    from its client, releasing the runtime lock — while the CPU-shaped
    parallelism budget stays where it was: request batches and autotune
    searches fan out on the service's domain pool.  A slow, idle, or
    malicious client therefore costs one thread blocked on a read,
    never the accept loop or another client's request.

    Beyond the bound the daemon {e sheds}: the excess connection is
    answered with a one-line stable [E1004] response and closed instead
    of queuing unboundedly.  [serve_connections_active] and
    [serve_shed_total] track the bound; a client that disconnects
    mid-request or mid-response is counted in [serve_disconnects_total]
    and never takes the daemon down.

    {2 Shutdown}

    A [shutdown] request — or a SIGTERM/SIGINT after
    {!install_stop_signals} — flips the service's stop flag; the accept
    loop (which polls the flag between accepts) stops taking
    connections, waits up to [?drain_grace] seconds for in-flight
    connections to finish, then shuts stragglers' sockets down (an
    idle client parked on a read would otherwise hold the drain
    forever; [shutdown] wakes the blocked reader, and the handler
    thread itself performs its fd's single close).  In stdin mode the
    flag is only checked between lines — see
    {!install_stop_signals}.  The plan
    cache spills at fill time, so there is nothing to flush: a drained
    daemon — or a [kill -9]'d one — restarts warm from [--cache-dir]. *)

module Json = Stardust_json.Json
module Metrics = Stardust_obs.Metrics
module P = Protocol

let default_max_connections = 16
let default_max_line_bytes = 1 lsl 20
let default_drain_grace = 5.0

(* Connection-level metrics are wall-clock truth — how clients arrive
   and leave depends on scheduling — so all of them are volatile: never
   part of the deterministic snapshot the tests and CI diff. *)
let m_active () =
  Metrics.gauge ~volatile:true ~help:"connections currently being served"
    "serve_connections_active"

let m_accepted () =
  Metrics.counter ~volatile:true ~help:"connections accepted by the listener"
    "serve_connections_total"

let m_shed () =
  Metrics.counter ~volatile:true
    ~help:"connections shed at the --max-connections bound (E1004)"
    "serve_shed_total"

let m_disconnects () =
  Metrics.counter ~volatile:true
    ~help:"clients that disconnected mid-request or mid-response"
    "serve_disconnects_total"

let m_oversized () =
  Metrics.counter ~volatile:true
    ~help:"request lines rejected at the line-length bound (E1006)"
    "serve_oversized_total"

(** Answer one request line.  Returns the response line (no trailing
    newline). *)
let handle_line t line : string =
  match P.parse_line line with
  | Error ds -> Json.to_string (Service.handle_line_error t (P.error_body ds))
  | Ok (Json.Arr items) ->
      Json.to_string (Json.Arr (Service.handle_batch t items))
  | Ok j -> Json.to_string (Service.handle_request t j)

(* ------------------------------------------------------------------ *)
(* Bounded line reading                                                *)
(* ------------------------------------------------------------------ *)

type read_line = Line of string | Too_long | Eof

(** Read one newline-terminated line from [ic], refusing to buffer more
    than [max_line_bytes]: past the bound the rest of the line is
    drained (bounded memory even against a byte-at-a-time writer that
    never sends a newline) and [Too_long] is returned, leaving the
    channel positioned at the next line. *)
let read_line_bounded ic ~max_line_bytes : read_line =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> ()
    | '\n' -> ()
    | _ -> drain ()
  in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
        if Buffer.length buf = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= max_line_bytes then begin
          drain ();
          Too_long
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

(** Serve NDJSON requests from [ic] to [oc] until EOF or a [shutdown]
    request.  Responses are flushed per line, so interactive clients
    (and the CI's scripted sessions) can pipeline. *)
let serve_channels ?(max_line_bytes = default_max_line_bytes) t ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if not (Service.stopping t) then
      match read_line_bounded ic ~max_line_bytes with
      | Eof -> ()
      | Line "" -> loop ()
      | Too_long ->
          Metrics.inc (m_oversized ());
          respond
            (Json.to_string
               (Service.handle_line_error t
                  (P.line_too_long_body ~limit:max_line_bytes)));
          loop ()
      | Line line ->
          respond (handle_line t line);
          loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Unix-socket listener                                                *)
(* ------------------------------------------------------------------ *)

(** Install SIGTERM/SIGINT handlers that request a graceful stop (drain
    in-flight work, then return from the serve loop).  Handlers only
    flip the service's stop flag — async-signal-safe by construction.

    Socket mode notices the flag within the accept loop's 100 ms select
    tick.  Stdin mode checks it {e between} lines: OCaml's buffered
    channels retry [EINTR], so a signal that arrives while the daemon
    is blocked reading stdin takes effect only once the client sends
    its next line (or EOF).  Deployments that need prompt termination
    of an idle stdin daemon should close its stdin — or use the socket
    transport, which is the production path. *)
let install_stop_signals t =
  let stop = Sys.Signal_handle (fun _ -> Service.request_stop t) in
  List.iter
    (fun s ->
      try Sys.set_signal s stop with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

(* Open connections, keyed by an id, so the drain can force-disconnect
   clients parked on reads.  Guarded by one mutex; handlers remove
   themselves (under the lock, before closing their fd) on exit.

   Ownership discipline: the handler thread owns its fd's one and only
   [Unix.close].  The drain never closes — it calls [Unix.shutdown],
   which wakes a thread blocked in [read] (a bare [close] does not, on
   Linux) and cannot invalidate a reused descriptor number: the
   shutdown happens while the registry lock is held, and a handler can
   only close after its [reg_remove] has taken that same lock, so a
   registered fd is always still the connection it was registered as. *)
type registry = {
  reg_lock : Mutex.t;
  reg : (int, Unix.file_descr) Hashtbl.t;
  mutable reg_next : int;
}

let reg_add rg fd =
  Mutex.lock rg.reg_lock;
  let id = rg.reg_next in
  rg.reg_next <- id + 1;
  Hashtbl.replace rg.reg id fd;
  Mutex.unlock rg.reg_lock;
  id

let reg_remove rg id =
  Mutex.lock rg.reg_lock;
  Hashtbl.remove rg.reg id;
  Mutex.unlock rg.reg_lock

let reg_shutdown_all rg =
  Mutex.lock rg.reg_lock;
  Hashtbl.iter
    (fun _ fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    rg.reg;
  Hashtbl.reset rg.reg;
  Mutex.unlock rg.reg_lock

(* Best-effort one-line E1004 to a connection shed at the bound: a
   single non-blocking write, then close — a shed client that refuses
   to read must not be able to block the accept loop. *)
let shed_connection ~max_connections conn =
  Metrics.inc (m_shed ());
  let line = Json.to_string (P.overloaded_response ~max_connections) ^ "\n" in
  (try
     Unix.set_nonblock conn;
     ignore (Unix.write_substring conn line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

(** Bind [path] and serve connections concurrently (one thread each, at
    most [max_connections] at a time; excess connections are shed with
    [E1004]); returns after a [shutdown] request or a stop signal, once
    in-flight connections have drained.  A stale socket file from a
    dead daemon is unlinked before binding. *)
let serve_unix_socket ?(max_connections = default_max_connections)
    ?(max_line_bytes = default_max_line_bytes)
    ?(drain_grace = default_drain_grace) t path =
  (match Sys.file_exists path with
  | true -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | false -> ());
  (* a client that disconnects mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let max_connections = max 1 max_connections in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let active = Atomic.make 0 in
  let rg = { reg_lock = Mutex.create (); reg = Hashtbl.create 16; reg_next = 0 } in
  let handle_connection id conn =
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    (* The cleanup must run no matter what escapes the serve loop —
       losing it leaks the [active] slot and the fd permanently, and
       enough leaks shed every future connection.  [reg_remove] comes
       before the close (see the registry's ownership discipline). *)
    Fun.protect
      ~finally:(fun () ->
        reg_remove rg id;
        (try Unix.close conn with Unix.Unix_error _ -> ());
        Metrics.set (m_active ())
          (float_of_int (Atomic.fetch_and_add active (-1) - 1)))
      (fun () ->
        try serve_channels ~max_line_bytes t ic oc with
        | Sys_error _ | End_of_file | Unix.Unix_error _ ->
            (* mid-request/mid-response disconnect (EPIPE, ECONNRESET, a
               half-written line, or our own drain shutting the socket
               down): count it — unless the daemon itself is stopping —
               and keep serving everyone else *)
            if not (Service.stopping t) then Metrics.inc (m_disconnects ())
        | _ ->
            (* anything else — e.g. an asynchronous exception such as
               [Out_of_memory] surfacing in this thread — must not kill
               the cleanup; drop the connection and keep the daemon up *)
            if not (Service.stopping t) then Metrics.inc (m_disconnects ()))
  in
  let drain () =
    (* grace for in-flight connections to finish their current request
       and notice the stop flag *)
    let deadline = Unix.gettimeofday () +. drain_grace in
    while Atomic.get active > 0 && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.02
    done;
    (* stragglers are parked on reads (idle clients, slow-loris): shut
       their sockets down — which wakes a blocked reader with EOF,
       where a close would not — and give the threads a beat to unwind
       and run their own cleanup (including the fd's single close) *)
    reg_shutdown_all rg;
    let hard = Unix.gettimeofday () +. 1.0 in
    while Atomic.get active > 0 && Unix.gettimeofday () < hard do
      Unix.sleepf 0.02
    done
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock (max_connections + 16);
      let rec accept_loop () =
        if not (Service.stopping t) then begin
          (* select with a short timeout so a stop flag flipped by a
             signal or a shutdown request on some connection is noticed
             without another client having to connect *)
          match Unix.select [ sock ] [] [] 0.1 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ -> accept_loop ()
          | _ -> (
              match Unix.accept sock with
              | exception Unix.Unix_error _ -> accept_loop ()
              | conn, _ ->
                  Metrics.inc (m_accepted ());
                  if Atomic.get active >= max_connections then
                    shed_connection ~max_connections conn
                  else begin
                    Metrics.set (m_active ())
                      (float_of_int (1 + Atomic.fetch_and_add active 1));
                    let id = reg_add rg conn in
                    ignore (Thread.create (fun () -> handle_connection id conn) ())
                  end;
                  accept_loop ())
        end
      in
      accept_loop ();
      drain ())
