(** Transport layer of the compile service: newline-delimited JSON over
    stdin/stdout or a Unix-domain socket.

    One request per line; a line holding a JSON array is a batch,
    dispatched across the service's worker pool and answered by an
    array in request order on a single line.  Blank lines are ignored.
    A line that is not valid JSON is answered with an [E1001] error
    response (never a crash or a dropped connection).

    The socket listener accepts connections sequentially — the
    parallelism budget lives inside the service (batches and autotune
    searches fan out on the domain pool), not in concurrent
    connections.  A [shutdown] request is answered, then the current
    connection and the listener close. *)

module Json = Stardust_json.Json
module P = Protocol

(** Answer one request line.  Returns the response line (no trailing
    newline). *)
let handle_line t line : string =
  match P.parse_line line with
  | Error ds -> Json.to_string (P.envelope ~id:Json.Null ~op:"invalid" (P.error_body ds))
  | Ok (Json.Arr items) ->
      Json.to_string (Json.Arr (Service.handle_batch t items))
  | Ok j -> Json.to_string (Service.handle_request t j)

(** Serve NDJSON requests from [ic] to [oc] until EOF or a [shutdown]
    request.  Responses are flushed per line, so interactive clients
    (and the CI's scripted sessions) can pipeline. *)
let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | "" -> loop ()
    | line ->
        output_string oc (handle_line t line);
        output_char oc '\n';
        flush oc;
        if not (Service.stopping t) then loop ()
  in
  loop ()

(** Bind [path], accept connections one at a time, and serve each until
    its EOF; returns after a [shutdown] request.  A stale socket file
    from a dead daemon is unlinked before binding. *)
let serve_unix_socket t path =
  (match Sys.file_exists path with
  | true -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | false -> ());
  (* a client that disconnects mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let rec accept_loop () =
        if not (Service.stopping t) then begin
          let conn, _ = Unix.accept sock in
          let ic = Unix.in_channel_of_descr conn in
          let oc = Unix.out_channel_of_descr conn in
          (try serve_channels t ic oc
           with Sys_error _ | Unix.Unix_error _ -> ());
          (try Unix.close conn with Unix.Unix_error _ -> ());
          accept_loop ()
        end
      in
      accept_loop ())
