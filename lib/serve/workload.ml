(** Request-input construction shared by the CLI driver and the compile
    service: format names, ["A=64x64@0.05"] data specs, ["A=@path.mtx"]
    file specs, and the paper-shaped random inputs for a named kernel
    stage.  Input generation is fully deterministic — the same spec
    always produces the same tensor — which is what makes request
    fingerprints content-addressed: two clients sending the same request
    text hit the same plan-cache entry.  (File-spec tensors stay
    content-addressed too: the plan-cache key folds in each input's
    {!Stardust_tensor.Stats_cache} fingerprint, which covers the file's
    actual contents.)

    File specs resolve inside an explicit [data_root] sandbox; without
    one they are refused, so exposing the daemon never exposes the
    filesystem. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module D = Stardust_workloads.Datasets
module Ingest = Stardust_ingest.Ingest

let format_of_string = function
  | "csr" -> F.csr ()
  | "csc" -> F.csc ()
  | "dv" -> F.dv ()
  | "sv" -> F.sv ()
  | "rm" | "dense" -> F.rm ()
  | "cm" -> F.cm ()
  | "csf2" -> F.csf 2
  | "csf3" | "csf" -> F.csf 3
  | "ucc" -> F.ucc ()
  | "scalar" -> F.make []
  | s ->
      Fmt.failwith "unknown format %S (try csr csc dv sv rm cm csf ucc scalar)"
        s

(** The one table mapping autotune strategy names to explorer
    strategies, shared by the CLI's [--strategy] flag and the serve
    protocol's ["strategy"] field so the two surfaces can never drift.
    [grid] is the historical name for exhaustive enumeration. *)
let strategy_names =
  [ "grid"; "exhaustive"; "greedy"; "random"; "halving"; "anneal"; "surrogate" ]

let strategy_of_string ~samples ~seed name :
    (Stardust_explore.Explore.strategy, string) result =
  let module E = Stardust_explore.Explore in
  match name with
  | "grid" | "exhaustive" -> Ok E.Exhaustive
  | "greedy" -> Ok E.Greedy
  | "random" -> Ok (E.Random { samples; seed })
  | "halving" -> Ok E.Halving
  | "anneal" -> Ok (E.Anneal { seed })
  | "surrogate" -> Ok E.Surrogate
  | s ->
      Error
        (Fmt.str "unknown autotune strategy %S (try %s)" s
           (String.concat "/" strategy_names))

(** Parse one ["NAME=FMT"] binding. *)
let parse_format_binding s =
  match String.split_on_char '=' s with
  | [ n; f ] -> (n, format_of_string f)
  | _ -> Fmt.failwith "bad format binding %S (want NAME=FMT)" s

(** Where one data spec's tensor comes from. *)
type source =
  | Random of { dims : int list; density : float option }
      (** ["A=8x8@0.3"] or ["x=8"] (dense when no density given) *)
  | File of string  (** ["A=@path.mtx"]: a real dataset, sandbox-relative *)

(** Parse one data spec: ["A=8x8@0.3"], ["x=8"], or ["A=@path.mtx"]. *)
let parse_data_spec s =
  match String.split_on_char '=' s with
  | [ name; rest ] when String.length rest > 1 && rest.[0] = '@' ->
      (name, File (String.sub rest 1 (String.length rest - 1)))
  | [ name; rest ] ->
      let dims_s, density =
        match String.split_on_char '@' rest with
        | [ d ] -> (d, None)
        | [ d; dens ] -> (d, Some (float_of_string dens))
        | _ -> Fmt.failwith "bad data spec %S" s
      in
      let dims =
        try List.map int_of_string (String.split_on_char 'x' dims_s)
        with Failure _ ->
          Fmt.failwith
            "bad data spec %S (want NAME=DIMSxDIMS[@DENSITY] or NAME=@PATH)" s
      in
      (name, Random { dims; density })
  | _ ->
      Fmt.failwith
        "bad data spec %S (want NAME=DIMSxDIMS[@DENSITY] or NAME=@PATH)" s

(** Resolve a file spec inside the [data_root] sandbox.  Absolute paths
    and [..] traversal are refused outright — a compile service must not
    be an arbitrary-file-read oracle.  Refusals are structured [E0210]
    ingestion diagnostics, the same envelope as an unreadable file. *)
let resolve_data_path ~data_root rel =
  let refuse fmt =
    Fmt.kstr
      (fun m ->
        Stardust_diag.Diag.fail
          [
            Stardust_diag.Diag.error ~stage:Stardust_diag.Diag.Ingest
              ~code:Stardust_diag.Diag.code_ingest_unreadable
              ~context:[ ("file", rel); ("line", "0") ]
              "%s" m;
          ])
      fmt
  in
  match data_root with
  | None ->
      refuse "file data spec @%s needs --data-root (file access is sandboxed)"
        rel
  | Some root ->
      if not (Filename.is_relative rel) then
        refuse "file data spec @%s must be a relative path" rel
      else if
        List.exists
          (String.equal Filename.parent_dir_name)
          (String.split_on_char '/' rel)
      then refuse "file data spec @%s must not traverse with .." rel
      else Filename.concat root rel

let gen_tensor name fmt dims density seed =
  match density with
  | Some d -> D.small_random ~seed ~name ~format:fmt ~dims ~density:d ()
  | None -> (
      match dims with
      | [ n ] -> D.dense_vector ~seed ~name ~dim:n ()
      | [ r; c ] when F.is_fully_dense fmt ->
          D.dense_matrix ~seed ~name ~format:fmt ~rows:r ~cols:c ()
      | _ -> D.small_random ~seed ~name ~format:fmt ~dims ~density:1.0 ())

(** Build the inputs of a list of ["NAME=DIMS[@DENSITY]"] /
    ["NAME=@PATH"] specs against format bindings; seeds are positional,
    matching the CLI's historical behavior, so spec lists are
    reproducible verbatim.  File specs stream through
    {!Stardust_ingest.Ingest} under [budget] and raise
    {!Stardust_diag.Diag.Fail} with stable [E021x] codes on malformed
    files. *)
let inputs_of_specs ?data_root ?(budget = Ingest.no_budget) ~formats specs =
  List.mapi
    (fun i s ->
      let name, source = parse_data_spec s in
      let fmt =
        match List.assoc_opt name formats with
        | Some f -> f
        | None -> Fmt.failwith "no format for tensor %s" name
      in
      match source with
      | Random { dims; density } ->
          (name, gen_tensor name fmt dims density (i + 1))
      | File rel ->
          let path = resolve_data_path ~data_root rel in
          (name, Ingest.read_file ~name ~budget ~format:fmt path))
    specs

(** Paper-shaped random inputs for one kernel stage at scale [n] (shared
    by the CLI's [kernel]/[run]/[autotune]/[profile] subcommands and the
    service's kernel-mode requests). *)
let stage_random_inputs (st : K.stage) n =
  List.filter_map
    (fun (tname, fmt) ->
      if tname = st.K.result || (String.length tname > 0 && tname.[0] = '_')
      then None
      else
        let order = F.order fmt in
        let dims = List.init order (fun _ -> n) in
        let t =
          if F.is_fully_dense fmt then
            if order = 1 then D.dense_vector ~name:tname ~dim:n ()
            else if order = 2 then
              D.dense_matrix ~name:tname ~format:fmt ~rows:n ~cols:n ()
            else D.small_random ~name:tname ~format:fmt ~dims ~density:1.0 ()
          else
            D.small_random
              ~seed:(Hashtbl.hash tname)
              ~name:tname ~format:fmt ~dims ~density:0.1 ()
        in
        Some (tname, t))
    st.K.formats
