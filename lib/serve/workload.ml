(** Request-input construction shared by the CLI driver and the compile
    service: format names, ["A=64x64@0.05"] data specs, and the
    paper-shaped random inputs for a named kernel stage.  Input
    generation is fully deterministic — the same spec always produces
    the same tensor — which is what makes request fingerprints
    content-addressed: two clients sending the same request text hit the
    same plan-cache entry. *)

module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module K = Stardust_core.Kernels
module D = Stardust_workloads.Datasets

let format_of_string = function
  | "csr" -> F.csr ()
  | "csc" -> F.csc ()
  | "dv" -> F.dv ()
  | "sv" -> F.sv ()
  | "rm" | "dense" -> F.rm ()
  | "cm" -> F.cm ()
  | "csf2" -> F.csf 2
  | "csf3" | "csf" -> F.csf 3
  | "ucc" -> F.ucc ()
  | "scalar" -> F.make []
  | s ->
      Fmt.failwith "unknown format %S (try csr csc dv sv rm cm csf ucc scalar)"
        s

(** Parse one ["NAME=FMT"] binding. *)
let parse_format_binding s =
  match String.split_on_char '=' s with
  | [ n; f ] -> (n, format_of_string f)
  | _ -> Fmt.failwith "bad format binding %S (want NAME=FMT)" s

(** Parse one data spec: ["A=8x8@0.3"] or ["x=8"] (dense when no density
    given). *)
let parse_data_spec s =
  match String.split_on_char '=' s with
  | [ name; rest ] ->
      let dims_s, density =
        match String.split_on_char '@' rest with
        | [ d ] -> (d, None)
        | [ d; dens ] -> (d, Some (float_of_string dens))
        | _ -> Fmt.failwith "bad data spec %S" s
      in
      let dims = List.map int_of_string (String.split_on_char 'x' dims_s) in
      (name, dims, density)
  | _ -> Fmt.failwith "bad data spec %S (want NAME=DIMSxDIMS[@DENSITY])" s

let gen_tensor name fmt dims density seed =
  match density with
  | Some d -> D.small_random ~seed ~name ~format:fmt ~dims ~density:d ()
  | None -> (
      match dims with
      | [ n ] -> D.dense_vector ~seed ~name ~dim:n ()
      | [ r; c ] when F.is_fully_dense fmt ->
          D.dense_matrix ~seed ~name ~format:fmt ~rows:r ~cols:c ()
      | _ -> D.small_random ~seed ~name ~format:fmt ~dims ~density:1.0 ())

(** Build the inputs of a list of ["NAME=DIMS[@DENSITY]"] specs against
    format bindings; seeds are positional, matching the CLI's historical
    behavior, so spec lists are reproducible verbatim. *)
let inputs_of_specs ~formats specs =
  List.mapi
    (fun i s ->
      let name, dims, density = parse_data_spec s in
      let fmt =
        match List.assoc_opt name formats with
        | Some f -> f
        | None -> Fmt.failwith "no format for tensor %s" name
      in
      (name, gen_tensor name fmt dims density (i + 1)))
    specs

(** Paper-shaped random inputs for one kernel stage at scale [n] (shared
    by the CLI's [kernel]/[run]/[autotune]/[profile] subcommands and the
    service's kernel-mode requests). *)
let stage_random_inputs (st : K.stage) n =
  List.filter_map
    (fun (tname, fmt) ->
      if tname = st.K.result || (String.length tname > 0 && tname.[0] = '_')
      then None
      else
        let order = F.order fmt in
        let dims = List.init order (fun _ -> n) in
        let t =
          if F.is_fully_dense fmt then
            if order = 1 then D.dense_vector ~name:tname ~dim:n ()
            else if order = 2 then
              D.dense_matrix ~name:tname ~format:fmt ~rows:n ~cols:n ()
            else D.small_random ~name:tname ~format:fmt ~dims ~density:1.0 ()
          else
            D.small_random
              ~seed:(Hashtbl.hash tname)
              ~name:tname ~format:fmt ~dims ~density:0.1 ()
        in
        Some (tname, t))
    st.K.formats
