(** Chaos harness for the compile service: adversarial clients hammering
    a live daemon concurrently with well-formed traffic.

    The harness asserts the three hardening invariants end to end:

    - the daemon {e never crashes} — after the storm it still answers a
      [ping] and a [metrics] request on a fresh connection;
    - every well-formed request is {e eventually answered} — clients
      retry on shed connections ([E1004]) and dropped sockets, and a
      request that runs out of retries is a reported failure;
    - the {e deterministic} metrics snapshot stays a pure function of
      the well-formed request multiset — adversarial lines (garbage,
      half-written, oversized) die before the request counter, valid
      requests are retried until answered exactly once, and the
      send-then-slam attack uses a shape error ([E1002]) so that a
      mid-response disconnect never moves a deterministic series.

    Attacks, all derived from one seeded PRNG so a run is reproducible:
    garbage bytes, a half-written line followed by an abrupt close, a
    line past the daemon's [--max-line-bytes] bound (expects [E1006]),
    a slow-loris writer dripping a valid [ping] one byte at a time,
    deeply nested JSON within the line bound (a stack-smashing attempt
    on the recursive parser; expects [E1001] from the nesting bound),
    and a valid-JSON/invalid-shape request whose sender slams the
    socket shut without reading the response (mid-response [EPIPE] on
    the daemon).  Everything is driven over threads, like the server's
    own connection handlers. *)

module Json = Stardust_json.Json

type config = {
  socket : string;  (** path of the daemon's Unix socket *)
  seed : int;  (** PRNG seed; same seed, same request/attack schedule *)
  clients : int;  (** well-formed client threads *)
  requests_per_client : int;
  adversaries : int;  (** adversarial threads *)
  attacks_per_adversary : int;
  max_line_bytes : int;  (** the daemon's bound, to build oversized lines *)
}

let default_config ~socket =
  {
    socket;
    seed = 42;
    clients = 4;
    requests_per_client = 25;
    adversaries = 3;
    attacks_per_adversary = 12;
    max_line_bytes = Server.default_max_line_bytes;
  }

type report = {
  wellformed_sent : int;
  wellformed_answered : int;
  wellformed_retries : int;  (** reconnect-and-resend events (shed/drop) *)
  attacks_run : int;
  failures : string list;  (** empty iff the daemon held every invariant *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "chaos: %d/%d well-formed answered (%d retries), %d attacks, %d failures"
    r.wellformed_answered r.wellformed_sent r.wellformed_retries r.attacks_run
    (List.length r.failures);
  List.iter (fun f -> Fmt.pf ppf "@.  FAIL %s" f) r.failures

(* ------------------------------------------------------------------ *)
(* Seeded PRNG (splitmix64) — private so runs never depend on global
   [Random] state the rest of the process might touch.                 *)
(* ------------------------------------------------------------------ *)

let mix (s : int64 ref) : int64 =
  let open Int64 in
  let z = add !s 0x9E3779B97F4A7C15L in
  s := z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rand_int st bound =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (mix st) 1) (Int64.of_int bound))

(* ------------------------------------------------------------------ *)
(* Shared failure sink                                                 *)
(* ------------------------------------------------------------------ *)

type sink = { mutable fs : string list; lock : Mutex.t }

let fail sink fmt =
  Fmt.kstr
    (fun m ->
      Mutex.lock sink.lock;
      sink.fs <- m :: sink.fs;
      Mutex.unlock sink.lock)
    fmt

(* ------------------------------------------------------------------ *)
(* Well-formed traffic                                                 *)
(* ------------------------------------------------------------------ *)

(* Small, fast requests over a handful of plan-cache keys: mostly hits
   after first touch, so the soak measures the serving path rather than
   compile throughput. *)
let menu =
  [|
    (fun id -> Json.Obj [ ("id", id); ("op", Json.Str "ping") ]);
    (fun id ->
      Json.Obj
        [
          ("id", id);
          ("op", Json.Str "compile");
          ("kernel", Json.Str "spmv");
          ("n", Json.Num 8.0);
        ]);
    (fun id ->
      Json.Obj
        [
          ("id", id);
          ("op", Json.Str "estimate");
          ("kernel", Json.Str "spmv");
          ("n", Json.Num 8.0);
        ]);
    (fun id ->
      Json.Obj
        [
          ("id", id);
          ("op", Json.Str "compile");
          ("kernel", Json.Str "plus2");
          ("n", Json.Num 8.0);
        ]);
    (fun id ->
      Json.Obj
        [
          ("id", id);
          ("op", Json.Str "stats");
          ("kernel", Json.Str "spmv");
          ("n", Json.Num 8.0);
        ]);
  |]

(* One request, retried across shed connections and dropped sockets
   until a real answer arrives.  [E1004] and a dead socket both mean
   the request never reached the parser, so a resend cannot double a
   deterministic counter. *)
let rpc_until_answered sink conn socket req ~who ~retries =
  let max_tries = 200 in
  let rec attempt n =
    if n > max_tries then begin
      fail sink "%s: gave up after %d tries on %s" who max_tries
        (Json.to_string req);
      None
    end
    else
      let c =
        match !conn with
        | Some c -> Ok c
        | None -> (
            match Client.connect_retry socket with
            | Ok c ->
                conn := Some c;
                Ok c
            | Error e -> Error e)
      in
      match c with
      | Error e ->
          fail sink "%s: cannot connect: %s" who e;
          None
      | Ok c -> (
          match Client.try_rpc c req with
          | Error `Closed ->
              Client.close c;
              conn := None;
              Atomic.incr retries;
              Unix.sleepf 0.01;
              attempt (n + 1)
          | Error (`Bad_response msg) ->
              fail sink "%s: response is not JSON: %s" who msg;
              None
          | Ok r -> (
              match Client.error_code r with
              | Some "E1004" ->
                  (* shed at accept: daemon never saw the request *)
                  Client.close c;
                  conn := None;
                  Atomic.incr retries;
                  Unix.sleepf 0.02;
                  attempt (n + 1)
              | _ -> Some r))
  in
  attempt 0

let run_client cfg sink ~answered ~retries idx =
  let st = ref (Int64.of_int ((cfg.seed * 1_000_003) + idx)) in
  let conn = ref None in
  for i = 0 to cfg.requests_per_client - 1 do
    let id = Json.Num (float_of_int ((idx * 100_000) + i)) in
    let req = menu.(rand_int st (Array.length menu)) id in
    match
      rpc_until_answered sink conn cfg.socket req
        ~who:(Fmt.str "client %d" idx) ~retries
    with
    | None -> ()
    | Some (Json.Obj fields) ->
        if List.assoc_opt "id" fields <> Some id then
          fail sink "client %d: response id mismatch for %s" idx
            (Json.to_string req)
        else Atomic.incr answered
    | Some _ -> fail sink "client %d: response is not an object" idx
  done;
  Option.iter Client.close !conn

(* ------------------------------------------------------------------ *)
(* Attacks                                                             *)
(* ------------------------------------------------------------------ *)

let send_raw c s =
  output_string c.Client.oc s;
  flush c.Client.oc

let read_response c =
  match input_line c.Client.ic with
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> None
  | line -> ( match Json.parse line with
    | j -> Some j
    | exception Json.Parse_error _ -> None)

let with_conn socket f =
  match Client.connect_retry socket with
  | Error _ -> ()  (* daemon busy shedding; the attack just fizzles *)
  | Ok c ->
      (try f c
       with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
      Client.close c

(** Garbage bytes: must come back as a structured [E1001] (or a shed
    [E1004]); an [ok] answer to garbage is a harness failure. *)
let attack_garbage sink socket =
  with_conn socket (fun c ->
      send_raw c "%% this is not JSON at all {{{\n";
      match read_response c with
      | None -> ()
      | Some r -> (
          match Client.error_code r with
          | Some ("E1001" | "E1004") -> ()
          | Some other ->
              fail sink "garbage line answered with %s, wanted E1001" other
          | None -> fail sink "garbage line answered ok"))

(** Half-written request, then slam the socket shut. *)
let attack_half_line socket =
  with_conn socket (fun c -> send_raw c "{\"op\": \"comp")

(** A line past the daemon's bound: expect [E1006] if answered at all. *)
let attack_oversized sink socket ~max_line_bytes =
  with_conn socket (fun c ->
      send_raw c (String.make (max_line_bytes + 64) 'x');
      send_raw c "\n";
      match read_response c with
      | None -> ()
      | Some r -> (
          match Client.error_code r with
          | Some ("E1006" | "E1004") -> ()
          | Some other ->
              fail sink "oversized line answered with %s, wanted E1006" other
          | None -> fail sink "oversized line answered ok"))

(** Slow-loris: a valid [ping] dripped one byte at a time.  Retried on
    shed so the ping lands in the deterministic request multiset exactly
    once per attack. *)
let attack_slow_loris sink socket ~retries =
  let line = "{\"op\": \"ping\"}\n" in
  let max_tries = 50 in
  let rec attempt n =
    if n > max_tries then fail sink "slow-loris: gave up after %d tries" max_tries
    else
      match Client.connect_retry socket with
      | Error e -> fail sink "slow-loris: cannot connect: %s" e
      | Ok c ->
          let outcome =
            try
              String.iter
                (fun ch ->
                  output_char c.Client.oc ch;
                  flush c.Client.oc;
                  Unix.sleepf 0.001)
                line;
              read_response c
            with End_of_file | Sys_error _ | Unix.Unix_error _ -> None
          in
          Client.close c;
          (match outcome with
          | Some r -> (
              match Client.error_code r with
              | Some "E1004" ->
                  Atomic.incr retries;
                  Unix.sleepf 0.02;
                  attempt (n + 1)
              | Some other -> fail sink "slow-loris ping answered with %s" other
              | None -> ())
          | None ->
              Atomic.incr retries;
              Unix.sleepf 0.02;
              attempt (n + 1))
  in
  attempt 0

(** Send a request, slam the socket shut without reading: the daemon's
    response write hits a dead peer ([EPIPE]).  The request is valid
    JSON but an invalid shape ([E1002]), which dies before the request
    counter — so the disconnect can never move a deterministic series
    whether or not the daemon got to parse it. *)
let attack_send_and_slam socket =
  with_conn socket (fun c ->
      send_raw c "{\"op\": \"no-such-op\", \"id\": \"slam\"}\n")

(** Deeply nested JSON within the line bound: a stack-smashing attempt
    on the recursive-descent parser.  The parser's nesting bound must
    turn it into a structured [E1001] — a [Stack_overflow] would escape
    I/O-shaped exception filters and kill the handler (leaking its
    connection slot), which is exactly the failure mode this attack
    regresses against. *)
let attack_deep_nesting sink socket ~max_line_bytes =
  let depth = min 100_000 ((max_line_bytes - 64) / 2) in
  with_conn socket (fun c ->
      send_raw c (String.make depth '[');
      send_raw c (String.make depth ']');
      send_raw c "\n";
      match read_response c with
      | None -> ()
      | Some r -> (
          match Client.error_code r with
          | Some ("E1001" | "E1004") -> ()
          | Some other ->
              fail sink "deep nesting answered with %s, wanted E1001" other
          | None -> fail sink "deep nesting answered ok"))

let run_adversary cfg sink ~attacks ~retries idx =
  let st = ref (Int64.of_int ((cfg.seed * 7_368_787) + idx)) in
  for _ = 1 to cfg.attacks_per_adversary do
    (match rand_int st 6 with
    | 0 -> attack_garbage sink cfg.socket
    | 1 -> attack_half_line cfg.socket
    | 2 -> attack_oversized sink cfg.socket ~max_line_bytes:cfg.max_line_bytes
    | 3 -> attack_slow_loris sink cfg.socket ~retries
    | 4 ->
        attack_deep_nesting sink cfg.socket
          ~max_line_bytes:cfg.max_line_bytes
    | _ -> attack_send_and_slam cfg.socket);
    Atomic.incr attacks
  done

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Run the storm against a daemon already listening on [cfg.socket];
    returns once every client and adversary has finished and the
    post-storm liveness probes have answered. *)
let run (cfg : config) : report =
  let sink = { fs = []; lock = Mutex.create () } in
  let answered = Atomic.make 0 and retries = Atomic.make 0 in
  let attacks = Atomic.make 0 in
  let clients =
    List.init cfg.clients (fun i ->
        Thread.create (fun () -> run_client cfg sink ~answered ~retries i) ())
  in
  let adversaries =
    List.init cfg.adversaries (fun i ->
        Thread.create
          (fun () -> run_adversary cfg sink ~attacks ~retries i)
          ())
  in
  List.iter Thread.join clients;
  List.iter Thread.join adversaries;
  (* liveness: the daemon must still answer a fresh connection *)
  (match Client.connect_retry cfg.socket with
  | Error e -> fail sink "post-storm connect failed: %s" e
  | Ok c ->
      (match Client.try_rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
      | Ok (Json.Obj fields)
        when List.assoc_opt "ok" fields = Some (Json.Bool true) ->
          ()
      | Ok r -> fail sink "post-storm ping not ok: %s" (Json.to_string r)
      | Error _ -> fail sink "post-storm ping dropped");
      (match Client.try_rpc c (Json.Obj [ ("op", Json.Str "metrics") ]) with
      | Ok (Json.Obj fields)
        when List.assoc_opt "ok" fields = Some (Json.Bool true) ->
          ()
      | Ok r -> fail sink "post-storm metrics not ok: %s" (Json.to_string r)
      | Error _ -> fail sink "post-storm metrics dropped");
      Client.close c);
  {
    wellformed_sent = cfg.clients * cfg.requests_per_client;
    wellformed_answered = Atomic.get answered;
    wellformed_retries = Atomic.get retries;
    attacks_run = Atomic.get attacks;
    failures = List.rev sink.fs;
  }
