(** Wire protocol of the compile service: newline-delimited JSON.

    Each request line is one JSON object (or an array of objects — a
    batch, answered by an array in the same order):

    {v
    {"id": 1, "op": "compile", "kernel": "spmv", "n": 64}
    {"id": 2, "op": "estimate",
     "expr": "y(i) = A(i,j) * x(j)",
     "formats": {"A": "csr", "x": "dv", "y": "dv"},
     "data": ["A=64x64@0.05", "x=64"]}
    {"id": 3, "op": "metrics"}
    {"id": 4, "op": "shutdown"}
    v}

    Every response echoes the request [id] (null when absent), names the
    [op], and carries either [{"ok": true, "result": ...}] or
    [{"ok": false, "error": {"code": ..., "diagnostics": [...]}}] where
    the diagnostics are exactly the stable-coded objects
    [stardustc run --diag-json] emits.  Cacheable operations add
    ["cached": true|false] — whether the plan cache answered without
    recompiling.

    Protocol failures use the serve code range: a line that is not valid
    JSON is [E1001], a request whose shape is wrong (unknown op, missing
    or ill-typed field) is [E1002], a handler that dies on an unhandled
    exception is [E1003] (with the daemon-side backtrace in the
    diagnostic context when [OCAMLRUNPARAM=b] records one), a connection
    shed at the daemon's [--max-connections] bound is [E1004], a request
    that blows its deadline ([--request-timeout] or a per-request
    ["deadline_ms"] field) is [E1005], a request line longer than
    the daemon's line bound is [E1006], and a deadline-bearing request
    refused because too many earlier runaways are still holding the
    pool's abandoned-domain budget is [E1007] (degraded but honest:
    the daemon never pretends to enforce a deadline it cannot).  None
    of them crash the service. *)

module Json = Stardust_json.Json
module Diag = Stardust_diag.Diag

type op =
  | Ping  (** liveness probe; answers ["pong"] *)
  | Compile  (** lower to Spatial; result carries the requested sections *)
  | Estimate  (** compile + analytic cycle estimate *)
  | Autotune  (** design-space search on the service's worker pool *)
  | Stats  (** per-tensor dataset statistics and fingerprints *)
  | Metrics  (** metrics snapshot + cache counters *)
  | Shutdown  (** answer, then stop the service loop *)

let op_name = function
  | Ping -> "ping"
  | Compile -> "compile"
  | Estimate -> "estimate"
  | Autotune -> "autotune"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "ping" -> Some Ping
  | "compile" -> Some Compile
  | "estimate" -> Some Estimate
  | "autotune" -> Some Autotune
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "shutdown" -> Some Shutdown
  | _ -> None

(** The problem a request addresses, still textual: either a named paper
    kernel at a scale, or an expression with format bindings and data
    specs (the same [NAME=FMT] / [NAME=DIMS\@DENSITY] grammar as the
    CLI).  Resolution to tensors happens in the service so that a
    resolution failure is an [E1002] response, not a parse failure. *)
type spec = {
  kernel : string option;
  scale : int;  (** random-input scale for kernel mode *)
  expr : string option;
  formats : (string * string) list;
  data : string list;
}

type request = {
  id : Json.t;  (** echoed verbatim in the response; [Null] when absent *)
  request_id : string option;
      (** client-supplied correlation id; the service mints one when
          absent.  Echoed in the response, stamped on every span and
          diagnostic under this request, and keyed in the flight
          recorder. *)
  op : op;
  spec : spec;
  emit : string list;  (** compile sections: subset of cin/code/resources *)
  strategy : string;
      (** autotune search strategy name; resolved (and rejected with
          [E1008]) by the service via {!Workload.strategy_of_string}, so
          the protocol layer stays in sync with the explorer's list *)
  samples : int;  (** autotune --strategy random *)
  seed : int;  (** autotune --strategy random|anneal *)
  budget : int;
      (** autotune: cap on full simulator evaluations; 0 = the
          strategy's own default *)
  pmus : int;  (** chip override; 0 = default *)
  pcus : int;  (** chip override; 0 = default *)
  dram : string;  (** hbm2e | ddr4 | ideal *)
  volatile : bool;  (** metrics: include volatile series *)
  deadline_ms : int;  (** per-request deadline; 0 = the daemon's default *)
}

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let bad fmt = Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_request fmt

exception Invalid of Diag.t

let invalid fmt = Fmt.kstr (fun m -> raise (Invalid (bad "%s" m))) fmt

(** [parse_line s] is the JSON value of one request line, or the [E1001]
    diagnostic for a line that is not JSON (with the failing offset as
    its span, so clients can caret it). *)
let parse_line s : (Json.t, Diag.t list) result =
  match Json.parse s with
  | j -> Ok j
  | exception Json.Parse_error (msg, pos) ->
      Error
        [
          Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_parse
            ~span:{ Diag.start = pos; stop = pos + 1 }
            "request line is not valid JSON: %s" msg;
        ]

(** Request [id]s must be null, a number, or a string — anything the
    client can correlate on; structured ids are rejected so responses
    stay greppable. *)
let id_of j =
  match j with
  | Json.Obj fields -> (
      match List.assoc_opt "id" fields with
      | Some (Json.(Null | Num _ | Str _) as id) -> id
      | Some _ | None -> Json.Null)
  | _ -> Json.Null

(* Correlation ids must stay greppable in NDJSON output, safe inside a
   [/debug/trace?id=...] query string, and bounded: printable ASCII, no
   spaces or quotes, at most 128 bytes. *)
let valid_request_id s =
  let n = String.length s in
  n >= 1 && n <= 128
  && String.for_all
       (fun c ->
         let code = Char.code c in
         code > 0x20 && code < 0x7f && c <> '"' && c <> '\\')
       s

(** Lenient extraction of a client-supplied correlation id, usable even
    when the request's shape is otherwise invalid (so an [E1002]
    response can still echo the id the client sent). *)
let request_id_of j =
  match j with
  | Json.Obj fields -> (
      match List.assoc_opt "request_id" fields with
      | Some (Json.Str s) when valid_request_id s -> Some s
      | _ -> None)
  | _ -> None

let str_field obj name ~default =
  match List.assoc_opt name obj with
  | None -> default
  | Some (Json.Str s) -> s
  | Some _ -> invalid "field %S must be a string" name

let opt_str_field obj name =
  match List.assoc_opt name obj with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> invalid "field %S must be a string" name

let int_field obj name ~default =
  match List.assoc_opt name obj with
  | None -> default
  | Some (Json.Num f) when Float.is_integer f -> int_of_float f
  | Some _ -> invalid "field %S must be an integer" name

let bool_field obj name ~default =
  match List.assoc_opt name obj with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> invalid "field %S must be a boolean" name

let str_list_field obj name ~default =
  match List.assoc_opt name obj with
  | None -> default
  | Some (Json.Arr items) ->
      List.map
        (function
          | Json.Str s -> s
          | _ -> invalid "field %S must be an array of strings" name)
        items
  | Some _ -> invalid "field %S must be an array of strings" name

let str_obj_field obj name =
  match List.assoc_opt name obj with
  | None -> []
  | Some (Json.Obj fields) ->
      List.map
        (fun (k, v) ->
          match v with
          | Json.Str s -> (k, s)
          | _ -> invalid "field %S must map names to strings" name)
        fields
  | Some _ -> invalid "field %S must be an object" name

let enum_field obj name ~default ~allowed =
  let v = str_field obj name ~default in
  if List.mem v allowed then v
  else
    invalid "field %S must be one of %s" name (String.concat "/" allowed)

let all_sections = [ "cin"; "code"; "resources" ]

(** [request_of_json j] validates one request object.  Shape errors are
    [E1002] diagnostics; field values that need the tensor layer (format
    names, data specs, kernel names) are validated later by the service
    under the same code. *)
let request_of_json (j : Json.t) : (request, Diag.t list) result =
  try
    let obj =
      match j with
      | Json.Obj fields -> fields
      | _ -> invalid "request must be a JSON object"
    in
    let op =
      match opt_str_field obj "op" with
      | None -> invalid "request needs an \"op\" field"
      | Some name -> (
          match op_of_string name with
          | Some op -> op
          | None ->
              invalid "unknown op %S (try ping/compile/estimate/autotune/stats/metrics/shutdown)"
                name)
    in
    let emit = str_list_field obj "emit" ~default:[ "code"; "resources" ] in
    List.iter
      (fun s ->
        if not (List.mem s all_sections) then
          invalid "unknown emit section %S (try cin/code/resources)" s)
      emit;
    let request_id =
      match List.assoc_opt "request_id" obj with
      | None | Some Json.Null -> None
      | Some (Json.Str s) ->
          if valid_request_id s then Some s
          else
            invalid
              "field \"request_id\" must be 1-128 printable ASCII characters \
               (no spaces, quotes, or backslashes)"
      | Some _ -> invalid "field \"request_id\" must be a string"
    in
    Ok
      {
        id = id_of j;
        request_id;
        op;
        spec =
          {
            kernel = opt_str_field obj "kernel";
            scale = int_field obj "n" ~default:32;
            expr = opt_str_field obj "expr";
            formats = str_obj_field obj "formats";
            data = str_list_field obj "data" ~default:[];
          };
        emit;
        strategy = str_field obj "strategy" ~default:"grid";
        samples = int_field obj "samples" ~default:64;
        seed = int_field obj "seed" ~default:42;
        budget =
          (let b = int_field obj "budget" ~default:0 in
           if b < 0 then invalid "field \"budget\" must be >= 0" else b);
        pmus = int_field obj "pmus" ~default:0;
        pcus = int_field obj "pcus" ~default:0;
        dram =
          enum_field obj "dram" ~default:"hbm2e"
            ~allowed:[ "hbm2e"; "ddr4"; "ideal" ];
        volatile = bool_field obj "volatile" ~default:false;
        deadline_ms =
          (let d = int_field obj "deadline_ms" ~default:0 in
           if d < 0 then invalid "field \"deadline_ms\" must be >= 0" else d);
      }
  with Invalid d -> Error [ d ]

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(** Diagnostics rendered through the same [Diag.to_json] the CLI's
    [--diag-json] uses, re-parsed into the tree so they nest in the
    response (the round-trip is loss-free: both ends are our own
    renderer). *)
let diags_json ds = Json.parse (Diag.list_to_json ds)

let ok_body result = Json.Obj [ ("ok", Json.Bool true); ("result", result) ]

let error_body ds =
  let code =
    match List.find_opt Diag.is_error ds with
    | Some d -> d.Diag.code
    | None -> Diag.code_serve_internal
  in
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.Str code); ("diagnostics", diags_json ds) ] );
    ]

(** Wrap a body ([ok_body] or [error_body]) into the response envelope:
    [id] first, then [op], then — for cacheable operations — whether the
    plan cache answered.  The correlation [request_id] (client-supplied
    or service-minted) rides last, so the historical field prefix
    clients and CI grep on is unchanged. *)
let envelope ~id ~op ?cached ?request_id body =
  let fields =
    match body with
    | Json.Obj fields -> fields
    | j -> [ ("ok", Json.Bool true); ("result", j) ]
  in
  let cached_field =
    match cached with None -> [] | Some c -> [ ("cached", Json.Bool c) ]
  in
  let rid_field =
    match request_id with
    | None -> []
    | Some r -> [ ("request_id", Json.Str r) ]
  in
  Json.Obj
    ((("id", id) :: ("op", Json.Str op) :: cached_field) @ fields @ rid_field)

(** The one-line answer a connection shed at the daemon's connection
    bound receives before its socket closes: a stable [E1004] so clients
    can tell overload (retry later) from a malformed request (don't). *)
let overloaded_response ~max_connections =
  envelope ~id:Json.Null ~op:"overloaded"
    (error_body
       [
         Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_overloaded
           ~context:[ ("max_connections", string_of_int max_connections) ]
           "daemon at its connection bound; request shed, retry later";
       ])

(** [E1005] body for a request that blew through its deadline: the
    computation has been abandoned on the pool's timeout machinery
    ([E0905] — the runaway domain is parked, the daemon keeps serving). *)
let deadline_body ~seconds =
  error_body
    [
      Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_deadline
        ~context:
          [
            ("deadline_s", Fmt.str "%g" seconds);
            ("pool_timeout_code", Diag.code_worker_timeout);
          ]
        "request exceeded its deadline and was abandoned";
    ]

(** [E1007] body for a deadline-bearing request refused because the
    daemon's abandoned-domain budget is spent: too many earlier requests
    blew their deadlines and their runaway computations are still
    holding domain slots, so enforcing a new deadline is impossible and
    running without one would be a silent lie.  The context carries the
    live runaway count; the budget self-heals as runaways finish (the
    pool reaps them), so clients may retry later or resend without a
    deadline. *)
let deadline_unenforceable_body ~abandoned =
  error_body
    [
      Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_degraded
        ~context:[ ("abandoned_domains", string_of_int abandoned) ]
        "deadline enforcement unavailable: the daemon's abandoned-request \
         budget is spent; retry later or without a deadline";
    ]

(** [E1006] body for a request line past the daemon's length bound (the
    offending prefix has been drained, the connection stays usable). *)
let line_too_long_body ~limit =
  error_body
    [
      Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_line_too_long
        ~context:[ ("max_line_bytes", string_of_int limit) ]
        "request line exceeds the daemon's line-length bound";
    ]
