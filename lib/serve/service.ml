(** The compile service: request dispatch, the plan cache, and the
    shared worker pool.

    One {!t} lives for the whole daemon: it owns a persistent
    {!Pool.create}d domain pool (autotune searches and request batches
    run on it instead of re-spawning domains per request) and a
    {!Plan_cache.t} addressed by everything that determines an answer —
    operation, kernel/expression, format signature, per-tensor dataset
    fingerprints, chip configuration, and the options that shape the
    payload.  A repeated request is answered from the cache
    byte-identically with no recompilation; the [cached] bit in the
    response and the deterministic [plan_cache_*] counters make that
    observable to clients, tests, and CI.

    Every request is wrapped in a [serve.<op>] trace span and counted in
    the metrics registry: [serve_requests_total{op}] (deterministic),
    [serve_request_seconds{op}] latency histograms and the
    [serve_inflight_requests] gauge (volatile — wall-clock truth, never
    part of the deterministic snapshot).

    Handlers never raise: anything a handler throws becomes a
    stable-coded diagnostic in an [ok: false] response ([E1003] if no
    stage produced a better code). *)

module Json = Stardust_json.Json
module Diag = Stardust_diag.Diag
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics
module Flight = Stardust_obs.Flight
module F = Stardust_tensor.Format
module T = Stardust_tensor.Tensor
module Stats_cache = Stardust_tensor.Stats_cache
module Cin = Stardust_ir.Cin
module S = Stardust_schedule.Schedule
module C = Stardust_core.Compile
module K = Stardust_core.Kernels
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
module Sim = Stardust_capstan.Sim
module Resources = Stardust_capstan.Resources
module Pool = Stardust_explore.Pool
module Explore = Stardust_explore.Explore
module Eval = Stardust_explore.Eval
module P = Protocol

type t = {
  pool : Pool.t;
  cache : Plan_cache.t;
  request_timeout : float option;
      (** default per-request deadline in seconds; a request's own
          [deadline_ms] tightens (never loosens) it *)
  data_root : string option;
      (** sandbox for ["NAME=@path"] file data specs; [None] refuses
          them, so the daemon cannot be used as a file-read oracle *)
  ingest_budget : Stardust_ingest.Ingest.budget;
      (** nnz/byte ceilings applied to every file data spec *)
  flight : Flight.t;
      (** bounded ring of recent request summaries plus span trees of
          recent failures, served by [/debug/requests] and
          [/debug/trace] *)
  id_gen : int Atomic.t;
      (** mints [r-<n>] correlation ids for requests without one *)
  mutable stop : bool;
      (** a shutdown request was answered, or a stop signal arrived *)
}

let create ?workers ?plan_cache_capacity ?request_timeout ?cache_dir
    ?data_root ?(ingest_budget = Stardust_ingest.Ingest.no_budget)
    ?flight_capacity ?flight_failed_capacity () =
  {
    pool = Pool.create ?workers ();
    cache = Plan_cache.create ?capacity:plan_cache_capacity ?dir:cache_dir ();
    request_timeout =
      (match request_timeout with
      | Some s when s > 0.0 -> Some s
      | Some _ | None -> None);
    data_root;
    ingest_budget;
    flight =
      Flight.create ?capacity:flight_capacity
        ?failed_capacity:flight_failed_capacity ();
    id_gen = Atomic.make 0;
    stop = false;
  }

let stopping t = t.stop

let flight t = t.flight

(** A server-minted correlation id: [r-<n>], unique for the daemon's
    lifetime.  Distinguishable from client ids by convention only; the
    response marks nothing — clients that care supply their own. *)
let fresh_request_id t =
  Printf.sprintf "r-%d" (1 + Atomic.fetch_and_add t.id_gen 1)

(** Readiness, as [/readyz] reports it: accepting work now — not
    draining, and the worker pool has not been shut down.  Distinct from
    liveness ([/healthz]): a draining daemon is alive but not ready. *)
let ready t = (not t.stop) && Pool.is_alive t.pool

(** Ask the service to stop: the transports' loops check {!stopping}
    after each request/accept and drain.  Safe from a signal handler —
    it only flips a flag. *)
let request_stop t = t.stop <- true

let plan_cache t = t.cache

(** Plan-cache warm-start diagnostics (corrupt spill entries skipped);
    the CLI renders them as warnings on boot. *)
let boot_diags t = Plan_cache.boot_diags t.cache

let workers t = Pool.size t.pool

(** Graceful drain: joins the pool's worker domains.  Idempotent; the
    handle still answers requests afterwards (inline, single-domain). *)
let shutdown t = Pool.shutdown t.pool

(* ------------------------------------------------------------------ *)
(* Request metrics                                                     *)
(* ------------------------------------------------------------------ *)

let m_requests op =
  Metrics.counter ~help:"requests handled by the compile service"
    ~labels:[ ("op", op) ]
    "serve_requests_total"

let m_latency op =
  Metrics.histogram ~volatile:true
    ~help:"wall-clock seconds spent handling a request"
    ~labels:[ ("op", op) ]
    "serve_request_seconds"

let inflight = Atomic.make 0

let m_inflight () =
  Metrics.gauge ~volatile:true ~help:"requests currently being handled"
    "serve_inflight_requests"

(* Deadline expiries are wall-clock truth (whether a request blows its
   budget depends on machine load), so the counter is volatile. *)
let m_deadlines () =
  Metrics.counter ~volatile:true
    ~help:"requests abandoned past their deadline (E1005)"
    "serve_deadlines_total"

let m_degraded () =
  Metrics.counter ~volatile:true
    ~help:
      "deadline-bearing requests refused because the abandoned-domain \
       budget is spent (E1007)"
    "serve_degraded_total"

(* Flight-recorder occupancy tracks arrival order and failure timing —
   wall-clock truth — so both counters are volatile.  The deterministic
   view of the same data is [Flight.entries_json ~deterministic:true]. *)
let m_flight_recorded () =
  Metrics.counter ~volatile:true
    ~help:"requests recorded in the flight recorder"
    "serve_flight_recorded_total"

let m_flight_failed () =
  Metrics.counter ~volatile:true
    ~help:"failed requests whose span trees the flight recorder retained"
    "serve_flight_failed_total"

(* ------------------------------------------------------------------ *)
(* Spec resolution                                                     *)
(* ------------------------------------------------------------------ *)

(** A request's problem, resolved to tensors.  Kernel mode keeps the
    kernel spec and stage so compilation applies the stage's
    paper-specific schedule (same as [stardustc kernel]); expression
    mode compiles the heuristic schedule (same as [stardustc compile]). *)
type resolved = {
  rname : string;
  rstage : (K.spec * K.stage) option;
  rexpr : string;  (** expression text; ["-"] for data-only stats *)
  rformats : (string * F.t) list;
  rinputs : (string * T.t) list;
}

let resolve_spec ?data_root ?ingest_budget (r : P.request) :
    (resolved, Diag.t list) result =
  let inputs_of_specs ~formats specs =
    Workload.inputs_of_specs ?data_root ?budget:ingest_budget ~formats specs
  in
  let bad fmt = Fmt.kstr (fun m -> Error [ P.bad "%s" m ]) fmt in
  let sp = r.P.spec in
  try
    match (sp.P.kernel, sp.P.expr) with
    | Some _, Some _ -> bad "give \"kernel\" or \"expr\", not both"
    | Some name, None -> (
        match K.find name with
        | None -> bad "unknown kernel %S (op \"list\" is the CLI's)" name
        | Some spec ->
            let st = List.hd spec.K.stages in
            Ok
              {
                rname = String.lowercase_ascii spec.K.kname;
                rstage = Some (spec, st);
                rexpr = st.K.expr;
                rformats = st.K.formats;
                rinputs = Workload.stage_random_inputs st sp.P.scale;
              })
    | None, Some e ->
        let formats =
          List.map
            (fun (n, f) -> (n, Workload.format_of_string f))
            sp.P.formats
        in
        Ok
          {
            rname = "custom";
            rstage = None;
            rexpr = e;
            rformats = formats;
            rinputs = inputs_of_specs ~formats sp.P.data;
          }
    | None, None ->
        if r.P.op = P.Stats && sp.P.data <> [] then
          let formats =
            List.map
              (fun (n, f) -> (n, Workload.format_of_string f))
              sp.P.formats
          in
          Ok
            {
              rname = "custom";
              rstage = None;
              rexpr = "-";
              rformats = formats;
              rinputs = inputs_of_specs ~formats sp.P.data;
            }
        else bad "request needs a \"kernel\" or an \"expr\""
  with Failure msg -> Error [ P.bad "%s" msg ]

let config_of_request (r : P.request) =
  let a = Arch.default in
  let a = if r.P.pmus > 0 then { a with Arch.num_pmu = r.P.pmus } else a in
  let a = if r.P.pcus > 0 then { a with Arch.num_pcu = r.P.pcus } else a in
  let dram =
    match r.P.dram with
    | "ddr4" -> Dram.ddr4
    | "ideal" -> Dram.ideal
    | _ -> Dram.hbm2e
  in
  { Sim.arch = a; dram }

(** The plan-cache address of a request: the same fingerprint discipline
    as {!Eval.problem_key} — formats by short name, inputs by their
    sampled {!Stats_cache.fingerprint}, the chip by the full
    {!Sim.config_fingerprint} — plus the operation, the kernel name
    (kernel stages carry paper-specific schedules, so [spmv] and its
    bare expression are distinct plans), and the options that shape the
    payload.  Two requests with equal keys are answered by one
    compilation. *)
let request_key ~opts (r : P.request) (rs : resolved) config =
  let fmts =
    String.concat ","
      (List.map
         (fun (n, f) -> Fmt.str "%s:%s" n (F.short_name f))
         (List.sort compare rs.rformats))
  in
  let data =
    String.concat ","
      (List.map
         (fun (n, t) -> Fmt.str "%s:%s" n (Stats_cache.fingerprint t))
         (List.sort (fun (a, _) (b, _) -> compare a b) rs.rinputs))
  in
  Fmt.str "%s|%s|%s|%s|%s|%s|%s" (P.op_name r.P.op) rs.rname rs.rexpr fmts
    data
    (Sim.config_fingerprint config)
    opts

(* ------------------------------------------------------------------ *)
(* Result payloads                                                     *)
(* ------------------------------------------------------------------ *)

let num f = Json.Num f
let int_ n = Json.Num (float_of_int n)

let usage_json (u : Resources.usage) =
  Json.Obj
    [
      ("pcu", int_ u.Resources.pcu);
      ("pmu", int_ u.Resources.pmu);
      ("mc", int_ u.Resources.mc);
      ("shuffle", int_ u.Resources.shuffle);
      ("limiting", Json.Str u.Resources.limiting);
      ("feasible", Json.Bool u.Resources.feasible);
    ]

let report_json (r : Sim.report) =
  Json.Obj
    [
      ("cycles", num r.Sim.cycles);
      ("compute_cycles", num r.Sim.compute_cycles);
      ("dram_cycles", num r.Sim.dram_cycles);
      ("streamed_bytes", num r.Sim.streamed_bytes);
      ("random_accesses", num r.Sim.random_accesses);
      ("iterations", num r.Sim.iterations);
      ("scan_bits", num r.Sim.scan_bits);
      ("seconds", num r.Sim.seconds);
    ]

let compile_resolved (rs : resolved) : (C.compiled, Diag.t list) result =
  match rs.rstage with
  | Some (spec, st) -> K.compile_stage_result spec st ~inputs:rs.rinputs
  | None ->
      C.compile_string_result ~name:rs.rname ~formats:rs.rformats
        ~inputs:rs.rinputs rs.rexpr

let handle_compile (r : P.request) (rs : resolved) config =
  match compile_resolved rs with
  | Error ds -> P.error_body ds
  | Ok compiled ->
      let section name mk = if List.mem name r.P.emit then [ (name, mk ()) ] else [] in
      P.ok_body
        (Json.Obj
           (section "cin" (fun () ->
                Json.Str (Fmt.str "%a" Cin.pp (S.stmt compiled.C.schedule)))
           @ section "code" (fun () -> Json.Str (C.spatial_code compiled))
           @ section "resources" (fun () ->
                 usage_json (Resources.count config.Sim.arch compiled))))

let handle_estimate (rs : resolved) config =
  match compile_resolved rs with
  | Error ds -> P.error_body ds
  | Ok compiled ->
      let report = Sim.estimate ~config compiled in
      P.ok_body
        (Json.Obj
           [
             ("report", report_json report);
             ("resources", usage_json (Resources.count config.Sim.arch compiled));
           ])

let handle_autotune t ~strategy (r : P.request) (rs : resolved) config =
  let problem =
    Eval.problem_of_string ~name:rs.rname ~config ~formats:rs.rformats
      ~inputs:rs.rinputs rs.rexpr
  in
  let budget = if r.P.budget > 0 then Some r.P.budget else None in
  let result = Explore.run ~pool:t.pool ~strategy ?budget problem in
  P.ok_body (Json.parse (Explore.to_json result))

let handle_stats (rs : resolved) =
  let tensor_json (name, tensor) =
    let dims = Array.to_list (T.dims tensor) in
    let total =
      List.fold_left (fun acc d -> acc *. float_of_int d) 1.0 dims
    in
    let nnz = T.nnz tensor in
    Json.Obj
      [
        ("name", Json.Str name);
        ("dims", Json.Arr (List.map int_ dims));
        ("nnz", int_ nnz);
        ( "density",
          num (if total > 0.0 then float_of_int nnz /. total else 0.0) );
        ("fingerprint", Json.Str (Stats_cache.fingerprint tensor));
      ]
  in
  P.ok_body
    (Json.Obj [ ("tensors", Json.Arr (List.map tensor_json rs.rinputs)) ])

let stats_cache_json () =
  let c = Stats_cache.counters () in
  Json.Obj
    [
      ("hits", int_ c.Stats_cache.hits);
      ("misses", int_ c.Stats_cache.misses);
      ("evictions", int_ c.Stats_cache.evictions);
      ("entries", int_ (Stats_cache.size ()));
      ("capacity", int_ (Stats_cache.capacity ()));
    ]

let handle_metrics t (r : P.request) =
  P.ok_body
    (Json.Obj
       [
         ( "metrics",
           Json.parse
             (Metrics.snapshot_json ~deterministic:(not r.P.volatile) ()) );
         ("plan_cache", Plan_cache.counters_json (Plan_cache.counters t.cache));
         ("stats_cache", stats_cache_json ());
         ("workers", int_ (workers t));
       ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(** Compute one request's body.  Returns the body and, for cacheable
    operations, whether the plan cache answered it. *)
let dispatch t (r : P.request) : Json.t * bool option =
  let resolved_or k =
    match
      resolve_spec ?data_root:t.data_root ~ingest_budget:t.ingest_budget r
    with
    | Error ds -> (P.error_body ds, None)
    | Ok rs -> k rs
  in
  let via_cache ~opts rs compute =
    let config = config_of_request r in
    let key = request_key ~opts r rs config in
    let body, hit =
      Plan_cache.find_or_compute t.cache key (fun () -> compute config)
    in
    (body, Some hit)
  in
  match r.P.op with
  | P.Ping -> (P.ok_body (Json.Str "pong"), None)
  | P.Shutdown ->
      t.stop <- true;
      (P.ok_body (Json.Str "bye"), None)
  | P.Metrics -> (handle_metrics t r, None)
  | P.Compile ->
      resolved_or (fun rs ->
          via_cache ~opts:(String.concat "," r.P.emit) rs (fun config ->
              handle_compile r rs config))
  | P.Estimate ->
      resolved_or (fun rs ->
          via_cache ~opts:"" rs (fun config -> handle_estimate rs config))
  | P.Autotune -> (
      (* reject unknown strategies before the cache: E1008 bodies must
         never occupy plan-cache entries *)
      match
        Workload.strategy_of_string ~samples:r.P.samples ~seed:r.P.seed
          r.P.strategy
      with
      | Error msg ->
          ( P.error_body
              [
                Diag.error ~stage:Diag.Serve ~code:Diag.code_serve_strategy
                  "%s" msg;
              ],
            None )
      | Ok strategy ->
          resolved_or (fun rs ->
              via_cache
                ~opts:
                  (Fmt.str "%s/%d/%d/%d" r.P.strategy r.P.samples r.P.seed
                     r.P.budget)
                rs
                (fun config -> handle_autotune t ~strategy r rs config)))
  | P.Stats -> resolved_or (fun rs -> via_cache ~opts:"" rs (fun _ -> handle_stats rs))

(** The deadline a request runs under: the tighter of the daemon's
    [--request-timeout] and the request's own ["deadline_ms"], if either
    is set.  Ping/metrics/shutdown are exempt — they cannot hang (no
    compilation, no search), and exempting them keeps the
    deadline-runner's sub-domain spawn off the daemon's cheapest
    liveness path. *)
let effective_deadline t (r : P.request) : float option =
  match r.P.op with
  | P.Ping | P.Metrics | P.Shutdown -> None
  | P.Compile | P.Estimate | P.Autotune | P.Stats -> (
      let requested =
        if r.P.deadline_ms > 0 then Some (float_of_int r.P.deadline_ms /. 1000.0)
        else None
      in
      match (t.request_timeout, requested) with
      | None, None -> None
      | Some s, None | None, Some s -> Some s
      | Some a, Some b -> Some (Float.min a b))

(* ------------------------------------------------------------------ *)
(* Request correlation                                                  *)
(* ------------------------------------------------------------------ *)

(* Stamp the correlation id into the [context] of every diagnostic in an
   error body, so E1002/E1005/E1007 (and any stage's diagnostics) name
   the request that triggered them.  A JSON post-pass rather than
   threading the id through every handler: diagnostics are produced deep
   in stages that know nothing about the serve layer. *)
let stamp_diag rid = function
  | Json.Obj df ->
      let entry = ("request_id", Json.Str rid) in
      let df =
        if List.mem_assoc "context" df then
          List.map
            (function
              | "context", Json.Obj ctx -> ("context", Json.Obj (ctx @ [ entry ]))
              | kv -> kv)
            df
        else df @ [ ("context", Json.Obj [ entry ]) ]
      in
      Json.Obj df
  | j -> j

let stamp_request_id rid body =
  match body with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "error", Json.Obj efields ->
                 ( "error",
                   Json.Obj
                     (List.map
                        (function
                          | "diagnostics", Json.Arr ds ->
                              ( "diagnostics",
                                Json.Arr (List.map (stamp_diag rid) ds) )
                          | kv -> kv)
                        efields) )
             | kv -> kv)
           fields)
  | j -> j

(* (ok bit, diagnostic codes in order, deduplicated) of a response
   body — what the flight recorder summarizes. *)
let body_outcome body =
  match body with
  | Json.Obj fields ->
      let ok =
        match List.assoc_opt "ok" fields with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      let codes =
        match List.assoc_opt "error" fields with
        | Some (Json.Obj ef) -> (
            match List.assoc_opt "diagnostics" ef with
            | Some (Json.Arr ds) ->
                List.filter_map
                  (function
                    | Json.Obj df -> (
                        match List.assoc_opt "code" df with
                        | Some (Json.Str c) -> Some c
                        | _ -> None)
                    | _ -> None)
                  ds
            | _ -> [])
        | _ -> []
      in
      let codes =
        List.rev
          (List.fold_left
             (fun acc c -> if List.mem c acc then acc else c :: acc)
             [] codes)
      in
      (ok, codes)
  | _ -> (false, [])

let record_flight t ~request_id ~generated ~op ?cached ~body ~latency_s
    ~queue_wait_s ~spans () =
  let ok, codes = body_outcome body in
  Metrics.inc (m_flight_recorded ());
  if not ok then Metrics.inc (m_flight_failed ());
  Flight.record t.flight ~request_id ~generated ~op ?cached ~ok ~codes
    ~latency_s ~queue_wait_s
    ~spans:(if ok then ([], 0) else spans)
    ()

(** Envelope a transport-level error (E1001 unparseable line, E1006
    oversized line) with a minted correlation id, recording it in the
    flight recorder — the client never supplied a readable id, but the
    failure is still attributable afterwards. *)
let handle_line_error t body =
  let rid = fresh_request_id t in
  let body = stamp_request_id rid body in
  record_flight t ~request_id:rid ~generated:true ~op:"invalid" ~body
    ~latency_s:0.0 ~queue_wait_s:0.0 ~spans:([], 0) ();
  P.envelope ~id:Json.Null ~op:"invalid" ~request_id:rid body

(** Handle one request value end to end: correlate, validate, count,
    trace, time, dispatch, record, and envelope.  Never raises.
    [?submitted] is the batch submission time, for the flight recorder's
    queue-wait attribution of batch items. *)
let handle_request ?submitted t (j : Json.t) : Json.t =
  let t0 = Unix.gettimeofday () in
  let queue_wait_s =
    match submitted with Some s -> Float.max 0.0 (t0 -. s) | None -> 0.0
  in
  let rid, generated =
    match P.request_id_of j with
    | Some s -> (s, false)
    | None -> (fresh_request_id t, true)
  in
  match P.request_of_json j with
  | Error ds ->
      let body = stamp_request_id rid (P.error_body ds) in
      record_flight t ~request_id:rid ~generated ~op:"invalid" ~body
        ~latency_s:(Unix.gettimeofday () -. t0)
        ~queue_wait_s ~spans:([], 0) ();
      P.envelope ~id:(P.id_of j) ~op:"invalid" ~request_id:rid body
  | Ok r ->
      let opname = P.op_name r.P.op in
      Metrics.inc (m_requests opname);
      Metrics.set (m_inflight ()) (float_of_int (1 + Atomic.fetch_and_add inflight 1));
      let finish () =
        Metrics.observe (m_latency opname) (Unix.gettimeofday () -. t0);
        Metrics.set (m_inflight ())
          (float_of_int (Atomic.fetch_and_add inflight (-1) - 1))
      in
      Fun.protect ~finally:finish (fun () ->
          (* Every request runs under an ambient tracing context: its
             correlation id rides on every span recorded below (pool
             workers and deadline sub-domains included — Pool re-installs
             the context across Domain.spawn), and a bounded collector
             captures the request's own span tree for the flight
             recorder.  The context is installed around the [serve.<op>]
             span so the root span itself is captured too. *)
          let collector = Trace.new_collector () in
          let ctx =
            Some
              {
                Trace.ctx_args = [ ("request_id", rid) ];
                ctx_collector = Some collector;
              }
          in
          let body, cached =
            Trace.with_context ctx (fun () ->
                Trace.with_span ~cat:"serve"
                  ~args:[ ("op", opname) ]
                  ("serve." ^ opname)
                  (fun () ->
                    (* [compute] never raises: every failure mode below is a
                       structured body, which is what lets the deadline wrapper
                       treat any [Error] strictly as a blown budget. *)
                    let compute () =
                      try dispatch t r with
                      | Diag.Fail ds -> (P.error_body ds, None)
                      | Sim.Sim_error { kind; message } ->
                          let code =
                            match kind with
                            | Sim.Runtime -> Diag.code_sim_runtime
                            | Sim.Capacity -> Diag.code_sim_capacity
                            | Sim.Watchdog -> Diag.code_sim_watchdog
                            | Sim.Fault -> Diag.code_sim_fault
                          in
                          ( P.error_body
                              [ Diag.error ~stage:Diag.Simulate ~code "%s" message ],
                            None )
                      | e ->
                          (* capture here, before any further calls overwrite
                             it: with OCAMLRUNPARAM=b this puts the daemon-side
                             crash site in the client's diagnostic context *)
                          let bt = Printexc.get_raw_backtrace () in
                          let context =
                            ("exception", Printexc.to_string e)
                            ::
                            (if Printexc.backtrace_status () then
                               match
                                 String.trim (Printexc.raw_backtrace_to_string bt)
                               with
                               | "" -> []
                               | s -> [ ("backtrace", s) ]
                             else [])
                          in
                          ( P.error_body
                              [
                                Diag.error ~stage:Diag.Serve
                                  ~code:Diag.code_serve_internal ~context
                                  "request handler failed";
                              ],
                            None )
                    in
                    match effective_deadline t r with
                    | None -> compute ()
                    | Some seconds -> (
                        match Pool.with_deadline ~seconds compute with
                        | Ok v -> v
                        | Error (Pool.Deadline_expired s) ->
                            Metrics.inc (m_deadlines ());
                            (P.deadline_body ~seconds:s, None)
                        | Error (Pool.Deadline_unenforceable { abandoned }) ->
                            Metrics.inc (m_degraded ());
                            (P.deadline_unenforceable_body ~abandoned, None))))
          in
          let body = stamp_request_id rid body in
          (* record after the serve.<op> span has closed, so the flight
             entry's span snapshot includes the root span; the collector
             is mutex-guarded against an abandoned sub-domain that is
             still appending *)
          record_flight t ~request_id:rid ~generated ~op:opname ?cached ~body
            ~latency_s:(Unix.gettimeofday () -. t0)
            ~queue_wait_s
            ~spans:(Trace.collector_events collector)
            ();
          P.envelope ~id:r.P.id ~op:opname ?cached ~request_id:rid body)

(** Handle a batch (a JSON-array request line) on the worker pool:
    order-preserving, one response per request.  A nested pool use from
    inside a handler — an autotune in the batch — degrades to an inline
    run (see {!Pool.in_pooled_task}). *)
let handle_batch t (items : Json.t list) : Json.t list =
  let submitted = Unix.gettimeofday () in
  Array.to_list
    (Pool.map ~pool:t.pool
       (fun j -> handle_request ~submitted t j)
       (Array.of_list items))
