(** Minimal NDJSON client for the compile service: one connection, one
    request-response exchange per call.  Used by the test suite and the
    CI smoke session; it is deliberately tiny — any language that can
    write a JSON line to a Unix socket is a full client. *)

module Json = Stardust_json.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(** Send one raw request line and read one response line. *)
let rpc_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  input_line c.ic

(** Send one request value and parse the response. *)
let rpc c (j : Json.t) : Json.t = Json.parse (rpc_line c (Json.to_string j))

(* ------------------------------------------------------------------ *)
(* Failure-tolerant variants (chaos harness, soak clients)             *)
(* ------------------------------------------------------------------ *)

(** [connect_retry ?attempts ?delay path] keeps trying to connect —
    covering both a daemon still booting (ECONNREFUSED / ENOENT on the
    socket path) and one momentarily at its accept backlog. *)
let connect_retry ?(attempts = 50) ?(delay = 0.02) path =
  let rec go n =
    match connect path with
    | c -> Ok c
    | exception Unix.Unix_error (e, _, _) ->
        if n <= 1 then Error (Unix.error_message e)
        else begin
          Unix.sleepf delay;
          go (n - 1)
        end
  in
  go (max 1 attempts)

(** [try_rpc c j] is [rpc] that turns a dropped or shed connection into
    [Error] instead of an exception: [Error `Closed] when the daemon (or
    the wire) went away mid-exchange, [Error (`Bad_response msg)] when
    the answer line is not JSON. *)
let try_rpc c (j : Json.t) :
    (Json.t, [ `Closed | `Bad_response of string ]) result =
  match rpc_line c (Json.to_string j) with
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
      Error `Closed
  | line -> (
      match Json.parse line with
      | r -> Ok r
      | exception Json.Parse_error (msg, _) -> Error (`Bad_response msg))

(* ------------------------------------------------------------------ *)
(* Observability-plane (HTTP) helpers                                   *)
(* ------------------------------------------------------------------ *)

(** One HTTP/1.1 GET against the daemon's observability plane:
    [http_get "127.0.0.1:9464" "/metrics"] returns
    [Ok (status, body)] or [Error msg] on a connect/read failure or an
    unparseable response head.  Deliberately tiny, like the NDJSON
    client: connect, one request, read to EOF (the plane always answers
    [Connection: close]). *)
let http_get addr path : (int * string, string) result =
  let parse_hostport a =
    match String.rindex_opt a ':' with
    | Some i -> (
        let host = String.sub a 0 i
        and port = String.sub a (i + 1) (String.length a - i - 1) in
        match int_of_string_opt port with
        | Some p -> Ok ((if host = "" then "127.0.0.1" else host), p)
        | None -> Error (Printf.sprintf "bad port in %S" a))
    | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" a)
  in
  match parse_hostport addr with
  | Error e -> Error e
  | Ok (host, port) -> (
      match Unix.inet_addr_of_string host with
      | exception _ -> Error (Printf.sprintf "bad host %S" host)
      | ip -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
          match
            Fun.protect ~finally (fun () ->
                Unix.connect fd (Unix.ADDR_INET (ip, port));
                let req =
                  Printf.sprintf
                    "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
                    path host
                in
                ignore (Unix.write_substring fd req 0 (String.length req));
                let buf = Buffer.create 1024 in
                let chunk = Bytes.create 4096 in
                let rec drain () =
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | 0 -> ()
                  | n ->
                      Buffer.add_subbytes buf chunk 0 n;
                      drain ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
                in
                drain ();
                Buffer.contents buf)
          with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Unix.error_message e)
          | raw -> (
              let find sub =
                let n = String.length raw and m = String.length sub in
                let rec go i =
                  if i + m > n then None
                  else if String.sub raw i m = sub then Some i
                  else go (i + 1)
                in
                go 0
              in
              let sep, skip =
                match find "\r\n\r\n" with
                | Some i -> (i, 4)
                | None -> (
                    match find "\n\n" with
                    | Some i -> (i, 2)
                    | None -> (-1, 0))
              in
              if sep < 0 then Error "malformed HTTP response (no header end)"
              else
                let head = String.sub raw 0 sep in
                let body =
                  String.sub raw (sep + skip)
                    (String.length raw - sep - skip)
                in
                match String.split_on_char ' ' head with
                | _http :: code :: _ -> (
                    match int_of_string_opt code with
                    | Some status -> Ok (status, body)
                    | None -> Error "malformed HTTP status line")
                | _ -> Error "malformed HTTP status line")))

(** [scrape_metrics addr] fetches [/metrics] from the observability
    plane: [Ok body] iff the scrape returned 200. *)
let scrape_metrics addr : (string, string) result =
  match http_get addr "/metrics" with
  | Ok (200, body) -> Ok body
  | Ok (status, _) -> Error (Printf.sprintf "/metrics answered %d" status)
  | Error e -> Error e

(** [health addr] probes [/healthz] and [/readyz]:
    [Ok (healthy, ready)]. *)
let health addr : (bool * bool, string) result =
  match http_get addr "/healthz" with
  | Error e -> Error e
  | Ok (hstatus, _) -> (
      match http_get addr "/readyz" with
      | Error e -> Error e
      | Ok (rstatus, _) -> Ok (hstatus = 200, rstatus = 200))

(** The [error.code] of a response, if it is an error response. *)
let error_code (r : Json.t) : string option =
  match r with
  | Json.Obj fields -> (
      match List.assoc_opt "error" fields with
      | Some (Json.Obj err) -> (
          match List.assoc_opt "code" err with
          | Some (Json.Str c) -> Some c
          | _ -> None)
      | _ -> None)
  | _ -> None
