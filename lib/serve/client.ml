(** Minimal NDJSON client for the compile service: one connection, one
    request-response exchange per call.  Used by the test suite and the
    CI smoke session; it is deliberately tiny — any language that can
    write a JSON line to a Unix socket is a full client. *)

module Json = Stardust_json.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(** Send one raw request line and read one response line. *)
let rpc_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  input_line c.ic

(** Send one request value and parse the response. *)
let rpc c (j : Json.t) : Json.t = Json.parse (rpc_line c (Json.to_string j))

(* ------------------------------------------------------------------ *)
(* Failure-tolerant variants (chaos harness, soak clients)             *)
(* ------------------------------------------------------------------ *)

(** [connect_retry ?attempts ?delay path] keeps trying to connect —
    covering both a daemon still booting (ECONNREFUSED / ENOENT on the
    socket path) and one momentarily at its accept backlog. *)
let connect_retry ?(attempts = 50) ?(delay = 0.02) path =
  let rec go n =
    match connect path with
    | c -> Ok c
    | exception Unix.Unix_error (e, _, _) ->
        if n <= 1 then Error (Unix.error_message e)
        else begin
          Unix.sleepf delay;
          go (n - 1)
        end
  in
  go (max 1 attempts)

(** [try_rpc c j] is [rpc] that turns a dropped or shed connection into
    [Error] instead of an exception: [Error `Closed] when the daemon (or
    the wire) went away mid-exchange, [Error (`Bad_response msg)] when
    the answer line is not JSON. *)
let try_rpc c (j : Json.t) :
    (Json.t, [ `Closed | `Bad_response of string ]) result =
  match rpc_line c (Json.to_string j) with
  | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
      Error `Closed
  | line -> (
      match Json.parse line with
      | r -> Ok r
      | exception Json.Parse_error (msg, _) -> Error (`Bad_response msg))

(** The [error.code] of a response, if it is an error response. *)
let error_code (r : Json.t) : string option =
  match r with
  | Json.Obj fields -> (
      match List.assoc_opt "error" fields with
      | Some (Json.Obj err) -> (
          match List.assoc_opt "code" err with
          | Some (Json.Str c) -> Some c
          | _ -> None)
      | _ -> None)
  | _ -> None
