(** Minimal NDJSON client for the compile service: one connection, one
    request-response exchange per call.  Used by the test suite and the
    CI smoke session; it is deliberately tiny — any language that can
    write a JSON line to a Unix socket is a full client. *)

module Json = Stardust_json.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(** Send one raw request line and read one response line. *)
let rpc_line c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  input_line c.ic

(** Send one request value and parse the response. *)
let rpc c (j : Json.t) : Json.t = Json.parse (rpc_line c (Json.to_string j))
