(** Content-addressed plan cache: the compile service's memo of whole
    request results — compiled plans, simulation reports, autotune
    frontiers — keyed by a fingerprint of everything that determines the
    answer (expression, formats, per-tensor dataset fingerprints,
    schedule, chip configuration, and the request options that shape the
    payload).  The {!Stats_cache} below it memoises per-tensor
    statistics {e within} a compilation; this cache skips the
    compilation entirely: a hit returns the byte-identical result
    payload of the cold request without re-running any stage.

    {2 Single-flight fills}

    Fills are {e single-flight}: the first requester of a missing key
    inserts a pending marker and computes outside the lock; concurrent
    requesters of the same key park on a condition variable and are
    served the filled value when it lands (counted as hits — they never
    recompute).  Beyond avoiding duplicate work, single-flight makes the
    hit/miss counters a pure function of the request multiset — each
    distinct key costs exactly one miss no matter how clients interleave
    or how many domains serve them — which is why, unlike the racy
    {!Stats_cache} counters, these are registered as {e deterministic}
    metrics and appear in the snapshot the service's tests and CI diff
    across worker counts.

    {2 Bounds}

    Capacity is a per-entry LRU bound ({!set_capacity}): an insert past
    the bound sheds least-recently-used {e ready} entries (pending fills
    are never evicted — a waiter must always find its filler's result).
    Every eviction is counted.

    {2 Crash-safe persistence}

    With [?dir] set, every filled entry is also spilled to disk as a
    content-addressed JSON file ([plan_<hash16>.json] of the key, the
    same scheme as the fuzz corpus), written to a temp name and
    [rename]d into place so a crash mid-write never leaves a torn
    entry visible.  {!create} warm-starts from the directory:
    well-formed entries load as ready (a repeated request against a
    restarted daemon is answered bit-identically from disk, counted as
    a hit, with no recompilation), and a truncated or garbage file is
    skipped with a [W0104] diagnostic in {!boot_diags} — corruption is
    never a crash.  The directory mirrors the in-memory LRU: an evicted
    entry's spill file is removed with it, so disk use is bounded by
    the same capacity.  Spills happen at fill time, which is what makes
    the scheme crash-safe: there is no write-back queue to flush, so
    [kill -9] after a response loses nothing. *)

module Json = Stardust_json.Json
module Diag = Stardust_diag.Diag
module Metrics = Stardust_obs.Metrics

type slot =
  | Ready of { value : Json.t; mutable last_used : int }
  | Pending  (** a filler is computing; waiters park on [cond] *)

type t = {
  lock : Mutex.t;
  cond : Condition.t;  (** broadcast whenever a pending fill resolves *)
  table : (string, slot) Hashtbl.t;
  dir : string option;  (** spill directory; [None] = memory-only *)
  mutable boot_diags : Diag.t list;  (** warm-start skips, oldest first *)
  mutable capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_capacity = 512

(* Deterministic on purpose: see the module doc.  Shared by every cache
   instance (the registry is process-global); the service creates one
   cache per process, so instance and process counters coincide.
   Looked up per use (registration is idempotent) so the counters
   reappear after a [Metrics.reset] instead of going stale. *)
let m_hits () =
  Metrics.counter ~help:"plan-cache lookups served without recompiling"
    "plan_cache_hits_total"

let m_misses () =
  Metrics.counter ~help:"plan-cache lookups that compiled from scratch"
    "plan_cache_misses_total"

let m_evict () =
  Metrics.counter ~help:"plan-cache entries shed by the LRU bound"
    "plan_cache_evictions_total"

(* Disk-state metrics are wall-clock truth (they depend on what a
   previous process left behind), so they are volatile: never part of
   the deterministic snapshot. *)
let m_loaded () =
  Metrics.counter ~volatile:true
    ~help:"plan-cache entries warm-started from the spill directory"
    "plan_cache_loaded_total"

let m_corrupt () =
  Metrics.counter ~volatile:true
    ~help:"corrupt plan-cache spill entries skipped at warm start"
    "plan_cache_corrupt_total"

let m_spill_errors () =
  Metrics.counter ~volatile:true
    ~help:"plan-cache spill writes that failed (entry stays memory-only)"
    "plan_cache_spill_errors_total"

(* ------------------------------------------------------------------ *)
(* Spill files                                                         *)
(* ------------------------------------------------------------------ *)

let spill_version = 1

(* Tiny stable content hash (FNV-1a, 64-bit) — the same scheme the fuzz
   corpus uses for its file names: reproducible, never security. *)
let fnv1a64 (s : string) =
  let p = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) p)
    s;
  !h

let spill_filename key = Printf.sprintf "plan_%016Lx.json" (fnv1a64 key)
let spill_path dir key = Filename.concat dir (spill_filename key)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg
      (Printf.sprintf "Plan_cache: %s exists and is not a directory" dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic spill: write a temp file (unique per pid so two daemons on one
   directory never tear each other's writes) then rename into place.  A
   failed write is shed with a volatile counter, never an exception — a
   full disk degrades the daemon to memory-only caching. *)
let spill_entry dir key value =
  try
    ensure_dir dir;
    let path = spill_path dir key in
    let tmp =
      Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          (Json.to_string
             (Json.Obj
                [
                  ("version", Json.Num (float_of_int spill_version));
                  ("key", Json.Str key);
                  ("value", value);
                ]));
        output_string oc "\n");
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ | Invalid_argument _ ->
    Metrics.inc (m_spill_errors ())

let remove_spill dir key =
  try Sys.remove (spill_path dir key) with Sys_error _ -> ()

(* Corruption-tolerant load of one spill file: anything short of a
   well-formed (version, key, value) triple — torn JSON, a truncated
   rename victim, the wrong version, a hash-named file whose key went
   missing — is skipped with a W0104 diagnostic, never a crash. *)
let load_entry path : (string * Json.t, Diag.t) result =
  let corrupt fmt =
    Fmt.kstr
      (fun m ->
        Error
          (Diag.warning ~stage:Diag.Serve ~code:Diag.code_cache_corrupt
             ~context:[ ("file", path) ]
             "skipping corrupt plan-cache entry: %s" m))
      fmt
  in
  match Json.parse (read_file path) with
  | exception Json.Parse_error (msg, _) -> corrupt "not valid JSON: %s" msg
  | exception Sys_error msg -> corrupt "unreadable: %s" msg
  | j -> (
      match (Json.member "version" j, Json.member "key" j, Json.member "value" j) with
      | Some (Json.Num v), Some (Json.Str key), Some value
        when int_of_float v = spill_version ->
          Ok (key, value)
      | Some (Json.Num v), _, _ when int_of_float v <> spill_version ->
          corrupt "unsupported spill version %g" v
      | _ -> corrupt "missing version/key/value fields")

(* Caller holds [t.lock] (or has exclusive access, as in [create]).
   Count ready entries: pending fills are not evictable and do not count
   against the bound. *)
let ready_count_locked t =
  Hashtbl.fold
    (fun _ s acc -> match s with Ready _ -> acc + 1 | Pending -> acc)
    t.table 0

(* Caller holds [t.lock].  Shed LRU ready entries until within bound —
   spill files go with their entries, so the directory stays bounded
   too; returns how many were evicted. *)
let evict_lru_locked t =
  let evicted = ref 0 in
  let continue = ref (ready_count_locked t > t.capacity) in
  while !continue do
    let victim =
      Hashtbl.fold
        (fun k s acc ->
          match (s, acc) with
          | Pending, _ -> acc
          | Ready { last_used; _ }, Some (_, stamp) when stamp <= last_used ->
              acc
          | Ready { last_used; _ }, _ -> Some (k, last_used))
        t.table None
    in
    (match victim with
    | Some (k, _) ->
        Hashtbl.remove t.table k;
        Option.iter (fun d -> remove_spill d k) t.dir;
        t.evictions <- t.evictions + 1;
        incr evicted
    | None -> ());
    continue := victim <> None && ready_count_locked t > t.capacity
  done;
  !evicted

let create ?(capacity = default_capacity) ?dir () =
  let t =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      table = Hashtbl.create 64;
      dir;
      boot_diags = [];
      capacity = max 1 capacity;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  (match dir with
  | None -> ()
  | Some d when not (Sys.file_exists d) -> ()
  | Some d ->
      let files =
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 5
               && String.sub f 0 5 = "plan_"
               && Filename.check_suffix f ".json")
        |> List.sort compare
      in
      let diags = ref [] in
      List.iter
        (fun f ->
          match load_entry (Filename.concat d f) with
          | Ok (key, value) ->
              t.tick <- t.tick + 1;
              Hashtbl.replace t.table key
                (Ready { value; last_used = t.tick });
              Metrics.inc (m_loaded ())
          | Error diag ->
              diags := diag :: !diags;
              Metrics.inc (m_corrupt ()))
        files;
      t.boot_diags <- List.rev !diags;
      (* a directory larger than the bound trims to the most recently
         loaded entries (load order is the sorted file list, so the trim
         is deterministic); instance/metric eviction counters stay zero
         for warm-start trims — they count runtime shedding *)
      let trimmed = evict_lru_locked t in
      t.evictions <- t.evictions - trimmed);
  t

(** Warm-start diagnostics: one [W0104] per corrupt spill entry skipped
    while loading [?dir] (empty for a memory-only cache). *)
let boot_diags t = t.boot_diags

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** [find_or_compute t key compute] returns [(value, hit)].  On a miss
    the calling domain computes (outside the lock) and fills; concurrent
    callers of the same key wait for that fill and count as hits.  If the
    filler raises, the pending marker is withdrawn (waiters retry, one
    becoming the new filler) and the exception propagates. *)
let rec find_or_compute t key (compute : unit -> Json.t) : Json.t * bool =
  let decision =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some (Ready r) ->
            t.tick <- t.tick + 1;
            r.last_used <- t.tick;
            t.hits <- t.hits + 1;
            `Hit r.value
        | Some Pending ->
            (* park until the filler resolves (or withdraws) *)
            let rec wait () =
              match Hashtbl.find_opt t.table key with
              | Some Pending ->
                  Condition.wait t.cond t.lock;
                  wait ()
              | Some (Ready r) ->
                  t.tick <- t.tick + 1;
                  r.last_used <- t.tick;
                  t.hits <- t.hits + 1;
                  `Hit r.value
              | None -> `Retry (* the filler failed; contend again *)
            in
            wait ()
        | None ->
            Hashtbl.add t.table key Pending;
            t.misses <- t.misses + 1;
            `Fill)
  in
  match decision with
  | `Hit v ->
      Metrics.inc (m_hits ());
      (v, true)
  | `Retry -> find_or_compute t key compute
  | `Fill ->
      Metrics.inc (m_misses ());
      let value =
        try compute ()
        with e ->
          locked t (fun () ->
              Hashtbl.remove t.table key;
              Condition.broadcast t.cond);
          raise e
      in
      (* spill before publishing: once waiters (or a restarted daemon)
         can see the entry, its disk copy is already durable *)
      Option.iter (fun d -> spill_entry d key value) t.dir;
      let evicted =
        locked t (fun () ->
            t.tick <- t.tick + 1;
            Hashtbl.replace t.table key (Ready { value; last_used = t.tick });
            Condition.broadcast t.cond;
            evict_lru_locked t)
      in
      if evicted > 0 then
        Metrics.inc ~by:(float_of_int evicted) (m_evict ());
      (value, false)

(** Shrink or grow the LRU bound; shrinking evicts immediately. *)
let set_capacity t n =
  let evicted =
    locked t (fun () ->
        t.capacity <- max 1 n;
        evict_lru_locked t)
  in
  if evicted > 0 then
    Metrics.inc ~by:(float_of_int evicted) (m_evict ())

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let counters t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = ready_count_locked t;
        capacity = t.capacity;
      })

(** Drop every entry — spill files included — and zero the instance
    counters (the process-global Metrics counters keep accumulating;
    tests reset the registry). *)
let reset t =
  locked t (fun () ->
      (match t.dir with
      | Some d ->
          Hashtbl.iter
            (fun k s -> match s with Ready _ -> remove_spill d k | Pending -> ())
            t.table
      | None -> ());
      Hashtbl.reset t.table;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      Condition.broadcast t.cond)

let counters_json (c : counters) =
  Json.Obj
    [
      ("hits", Json.Num (float_of_int c.hits));
      ("misses", Json.Num (float_of_int c.misses));
      ("evictions", Json.Num (float_of_int c.evictions));
      ("entries", Json.Num (float_of_int c.entries));
      ("capacity", Json.Num (float_of_int c.capacity));
    ]
