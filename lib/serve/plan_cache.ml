(** Content-addressed plan cache: the compile service's memo of whole
    request results — compiled plans, simulation reports, autotune
    frontiers — keyed by a fingerprint of everything that determines the
    answer (expression, formats, per-tensor dataset fingerprints,
    schedule, chip configuration, and the request options that shape the
    payload).  The {!Stats_cache} below it memoises per-tensor
    statistics {e within} a compilation; this cache skips the
    compilation entirely: a hit returns the byte-identical result
    payload of the cold request without re-running any stage.

    {2 Single-flight fills}

    Fills are {e single-flight}: the first requester of a missing key
    inserts a pending marker and computes outside the lock; concurrent
    requesters of the same key park on a condition variable and are
    served the filled value when it lands (counted as hits — they never
    recompute).  Beyond avoiding duplicate work, single-flight makes the
    hit/miss counters a pure function of the request multiset — each
    distinct key costs exactly one miss no matter how clients interleave
    or how many domains serve them — which is why, unlike the racy
    {!Stats_cache} counters, these are registered as {e deterministic}
    metrics and appear in the snapshot the service's tests and CI diff
    across worker counts.

    {2 Bounds}

    Capacity is a per-entry LRU bound ({!set_capacity}): an insert past
    the bound sheds least-recently-used {e ready} entries (pending fills
    are never evicted — a waiter must always find its filler's result).
    Every eviction is counted. *)

module Json = Stardust_json.Json
module Metrics = Stardust_obs.Metrics

type slot =
  | Ready of { value : Json.t; mutable last_used : int }
  | Pending  (** a filler is computing; waiters park on [cond] *)

type t = {
  lock : Mutex.t;
  cond : Condition.t;  (** broadcast whenever a pending fill resolves *)
  table : (string, slot) Hashtbl.t;
  mutable capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_capacity = 512

(* Deterministic on purpose: see the module doc.  Shared by every cache
   instance (the registry is process-global); the service creates one
   cache per process, so instance and process counters coincide.
   Looked up per use (registration is idempotent) so the counters
   reappear after a [Metrics.reset] instead of going stale. *)
let m_hits () =
  Metrics.counter ~help:"plan-cache lookups served without recompiling"
    "plan_cache_hits_total"

let m_misses () =
  Metrics.counter ~help:"plan-cache lookups that compiled from scratch"
    "plan_cache_misses_total"

let m_evict () =
  Metrics.counter ~help:"plan-cache entries shed by the LRU bound"
    "plan_cache_evictions_total"

let create ?(capacity = default_capacity) () =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 64;
    capacity = max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Caller holds [t.lock].  Count ready entries (pending fills are not
   evictable and do not count against the bound). *)
let ready_count_locked t =
  Hashtbl.fold
    (fun _ s acc -> match s with Ready _ -> acc + 1 | Pending -> acc)
    t.table 0

(* Caller holds [t.lock].  Shed LRU ready entries until within bound;
   returns how many were evicted. *)
let evict_lru_locked t =
  let evicted = ref 0 in
  let continue = ref (ready_count_locked t > t.capacity) in
  while !continue do
    let victim =
      Hashtbl.fold
        (fun k s acc ->
          match (s, acc) with
          | Pending, _ -> acc
          | Ready { last_used; _ }, Some (_, stamp) when stamp <= last_used ->
              acc
          | Ready { last_used; _ }, _ -> Some (k, last_used))
        t.table None
    in
    (match victim with
    | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1;
        incr evicted
    | None -> ());
    continue := victim <> None && ready_count_locked t > t.capacity
  done;
  !evicted

(** [find_or_compute t key compute] returns [(value, hit)].  On a miss
    the calling domain computes (outside the lock) and fills; concurrent
    callers of the same key wait for that fill and count as hits.  If the
    filler raises, the pending marker is withdrawn (waiters retry, one
    becoming the new filler) and the exception propagates. *)
let rec find_or_compute t key (compute : unit -> Json.t) : Json.t * bool =
  let decision =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some (Ready r) ->
            t.tick <- t.tick + 1;
            r.last_used <- t.tick;
            t.hits <- t.hits + 1;
            `Hit r.value
        | Some Pending ->
            (* park until the filler resolves (or withdraws) *)
            let rec wait () =
              match Hashtbl.find_opt t.table key with
              | Some Pending ->
                  Condition.wait t.cond t.lock;
                  wait ()
              | Some (Ready r) ->
                  t.tick <- t.tick + 1;
                  r.last_used <- t.tick;
                  t.hits <- t.hits + 1;
                  `Hit r.value
              | None -> `Retry (* the filler failed; contend again *)
            in
            wait ()
        | None ->
            Hashtbl.add t.table key Pending;
            t.misses <- t.misses + 1;
            `Fill)
  in
  match decision with
  | `Hit v ->
      Metrics.inc (m_hits ());
      (v, true)
  | `Retry -> find_or_compute t key compute
  | `Fill ->
      Metrics.inc (m_misses ());
      let value =
        try compute ()
        with e ->
          locked t (fun () ->
              Hashtbl.remove t.table key;
              Condition.broadcast t.cond);
          raise e
      in
      let evicted =
        locked t (fun () ->
            t.tick <- t.tick + 1;
            Hashtbl.replace t.table key (Ready { value; last_used = t.tick });
            Condition.broadcast t.cond;
            evict_lru_locked t)
      in
      if evicted > 0 then
        Metrics.inc ~by:(float_of_int evicted) (m_evict ());
      (value, false)

(** Shrink or grow the LRU bound; shrinking evicts immediately. *)
let set_capacity t n =
  let evicted =
    locked t (fun () ->
        t.capacity <- max 1 n;
        evict_lru_locked t)
  in
  if evicted > 0 then
    Metrics.inc ~by:(float_of_int evicted) (m_evict ())

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let counters t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = ready_count_locked t;
        capacity = t.capacity;
      })

(** Drop every entry and zero the instance counters (the process-global
    Metrics counters keep accumulating; tests reset the registry). *)
let reset t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      Condition.broadcast t.cond)

let counters_json (c : counters) =
  Json.Obj
    [
      ("hits", Json.Num (float_of_int c.hits));
      ("misses", Json.Num (float_of_int c.misses));
      ("evictions", Json.Num (float_of_int c.evictions));
      ("entries", Json.Num (float_of_int c.entries));
      ("capacity", Json.Num (float_of_int c.capacity));
    ]
