(** The observability plane: a minimal, dependency-free HTTP/1.1 server
    giving scrapers and operators a read-only window into a running
    daemon.

    {v
    GET /metrics           Prometheus exposition text (Metrics.render_text)
    GET /healthz           200 while the process is up
    GET /readyz            200 while accepting work; 503 during drain
    GET /buildinfo         version, OCaml version, chip-config fingerprint
    GET /debug/requests    flight-recorder dump (JSON)
    GET /debug/trace?id=R  span tree of a recorded request (JSON)
    v}

    Design points, mirroring the NDJSON transport's discipline:

    - {b Bounded reads.}  The request line and headers are read into one
      bounded buffer ([max_request_bytes], default 8 KiB) under a socket
      receive timeout; a slow-loris writer costs one thread for at most
      that timeout, never unbounded memory.
    - {b Shedding.}  At most [max_connections] concurrent handlers; the
      excess gets an immediate [503] with [Retry-After] and is closed —
      the same answer-then-shed shape as the NDJSON path's E1004.
    - {b One request per connection} ([Connection: close]): the plane is
      for scrapes and spot checks, not request pipelining, and closing
      eagerly keeps the thread budget independent of client behaviour.
    - {b Independent lifecycle.}  The listener has its own stop flag, so
      it keeps answering [/readyz] (with 503) and [/metrics] {e while}
      the NDJSON side drains after SIGTERM; the CLI stops it last.

    Binding [PORT 0] picks an ephemeral port; {!bound_addr} reports the
    actual one so scripts and CI can find it (the CLI prints it as a
    machine-parsable [serve: http listening on HOST:PORT] line). *)

module Metrics = Stardust_obs.Metrics
module Flight = Stardust_obs.Flight
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram

let default_max_connections = 8
let default_max_request_bytes = 8192
let default_read_timeout = 5.0

let m_http_requests endpoint =
  Metrics.counter ~volatile:true
    ~help:"HTTP observability-plane requests served"
    ~labels:[ ("endpoint", endpoint) ]
    "serve_http_requests_total"

let m_http_shed () =
  Metrics.counter ~volatile:true
    ~help:"HTTP connections shed at the plane's connection bound"
    "serve_http_shed_total"

type t = {
  h_sock : Unix.file_descr;
  h_addr : string;  (** the address actually bound, [HOST:PORT] *)
  mutable h_thread : Thread.t option;
  h_stop : bool Atomic.t;
}

let bound_addr t = t.h_addr

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)
(* ------------------------------------------------------------------ *)

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | 0 -> ()
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let respond ?(extra_headers = []) fd ~status ~content_type body =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_of status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

(** Read the request head (request line + headers) into a bounded
    buffer: stops at the blank line, [Error] past [max_request_bytes]
    (431) or on a read error/timeout. *)
let read_head fd ~max_request_bytes =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec ends_with_blank () =
    let s = Buffer.contents buf in
    let n = String.length s in
    (* tolerate bare-LF clients *)
    (n >= 4 && String.sub s (n - 4) 4 = "\r\n\r\n")
    || (n >= 2 && String.sub s (n - 2) 2 = "\n\n")
  and go () =
    if ends_with_blank () then Ok (Buffer.contents buf)
    else if Buffer.length buf > max_request_bytes then Error 431
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error 400
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> Error 400
  in
  go ()

(** (method, path, query) of the request line; [Error 400] on anything
    that is not [METHOD /path[?query] HTTP/1.x]. *)
let parse_request_line head =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.trim (String.sub head 0 i)
    | None -> String.trim head
  in
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      let path, query =
        match String.index_opt target '?' with
        | Some i ->
            ( String.sub target 0 i,
              String.sub target (i + 1) (String.length target - i - 1) )
        | None -> (target, "")
      in
      Ok (meth, path, query)
  | _ -> Error 400

(* The only query the plane accepts is [id=...]; correlation ids are
   restricted to query-safe ASCII by the protocol, so the value is the
   raw remainder — no percent-decoding needed. *)
let query_id query =
  if String.length query > 3 && String.sub query 0 3 = "id=" then
    Some (String.sub query 3 (String.length query - 3))
  else None

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

let buildinfo_body ~version ~workers () =
  let fingerprint =
    Sim.config_fingerprint { Sim.arch = Arch.default; dram = Dram.hbm2e }
  in
  Printf.sprintf
    "{\"service\":\"stardustc\",\"version\":\"%s\",\"ocaml\":\"%s\",\"chip_config\":\"%s\",\"workers\":%d,\"pid\":%d}"
    version Sys.ocaml_version fingerprint workers (Unix.getpid ())

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let handle_endpoint ~service ~version fd meth path query =
  let endpoint_label =
    match path with
    | "/metrics" | "/healthz" | "/readyz" | "/buildinfo" | "/debug/requests"
    | "/debug/trace" ->
        path
    | _ -> "other"
  in
  Metrics.inc (m_http_requests endpoint_label);
  if meth <> "GET" then
    respond fd ~status:405 ~content_type:"text/plain"
      ~extra_headers:[ ("Allow", "GET") ]
      "only GET is served here\n"
  else
    match path with
    | "/metrics" ->
        respond fd ~status:200 ~content_type:prometheus_content_type
          (Metrics.render_text ())
    | "/healthz" -> respond fd ~status:200 ~content_type:"text/plain" "ok\n"
    | "/readyz" ->
        if Service.ready service then
          respond fd ~status:200 ~content_type:"text/plain" "ready\n"
        else
          respond fd ~status:503 ~content_type:"text/plain" "draining\n"
    | "/buildinfo" ->
        respond fd ~status:200 ~content_type:"application/json"
          (buildinfo_body ~version ~workers:(Service.workers service) ())
    | "/debug/requests" ->
        respond fd ~status:200 ~content_type:"application/json"
          (Flight.entries_json (Service.flight service))
    | "/debug/trace" -> (
        match query_id query with
        | None ->
            respond fd ~status:400 ~content_type:"text/plain"
              "expected /debug/trace?id=REQUEST_ID\n"
        | Some id -> (
            match Flight.trace_json (Service.flight service) id with
            | Some json ->
                respond fd ~status:200 ~content_type:"application/json" json
            | None ->
                respond fd ~status:404 ~content_type:"text/plain"
                  "request id not recorded\n"))
    | _ -> respond fd ~status:404 ~content_type:"text/plain" "not found\n"

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let handle_connection ~service ~version ~max_request_bytes conn =
  (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO default_read_timeout
   with Unix.Unix_error _ -> ());
  match read_head conn ~max_request_bytes with
  | Error status ->
      respond conn ~status ~content_type:"text/plain"
        (reason_of status ^ "\n")
  | Ok head -> (
      match parse_request_line head with
      | Error status ->
          respond conn ~status ~content_type:"text/plain"
            (reason_of status ^ "\n")
      | Ok (meth, path, query) ->
          handle_endpoint ~service ~version conn meth path query)

(** Parse [ADDR] as [HOST:PORT] (or bare [PORT], binding loopback).
    Numeric hosts only — the plane is for local scrapers and tunnels,
    and refusing DNS keeps startup deterministic. *)
let parse_addr addr =
  let host, port_s =
    match String.rindex_opt addr ':' with
    | Some i ->
        ( String.sub addr 0 i,
          String.sub addr (i + 1) (String.length addr - i - 1) )
    | None -> ("127.0.0.1", addr)
  in
  let host = if host = "" then "127.0.0.1" else host in
  match int_of_string_opt port_s with
  | Some port when port >= 0 && port <= 65535 -> (
      match Unix.inet_addr_of_string host with
      | ip -> Ok (ip, port)
      | exception _ -> Error (Printf.sprintf "bad HTTP host %S" host))
  | _ -> Error (Printf.sprintf "bad HTTP port %S" port_s)

(** Start the observability listener on [addr] ([HOST:PORT]; port [0]
    binds an ephemeral port).  Serves until {!stop}; never stops by
    itself — the NDJSON side's drain must stay observable. *)
let start ?(max_connections = default_max_connections)
    ?(max_request_bytes = default_max_request_bytes) ?(version = "dev")
    ~service addr : (t, string) result =
  match parse_addr addr with
  | Error e -> Error e
  | Ok (ip, port) -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      match Unix.bind sock (Unix.ADDR_INET (ip, port)) with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot bind HTTP address %s: %s" addr
               (Unix.error_message err))
      | () ->
          Unix.listen sock 16;
          let h_addr =
            match Unix.getsockname sock with
            | Unix.ADDR_INET (ip, port) ->
                Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
            | Unix.ADDR_UNIX p -> p
          in
          let t = { h_sock = sock; h_addr; h_thread = None; h_stop = Atomic.make false } in
          let active = Atomic.make 0 in
          let serve_one conn =
            Fun.protect
              ~finally:(fun () ->
                (try Unix.close conn with Unix.Unix_error _ -> ());
                ignore (Atomic.fetch_and_add active (-1)))
              (fun () ->
                try
                  handle_connection ~service ~version ~max_request_bytes conn
                with _ -> ())
          in
          let rec accept_loop () =
            if not (Atomic.get t.h_stop) then begin
              match Unix.select [ sock ] [] [] 0.1 with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              | [], _, _ -> accept_loop ()
              | _ -> (
                  match Unix.accept sock with
                  | exception Unix.Unix_error _ -> accept_loop ()
                  | conn, _ ->
                      if Atomic.get active >= max_connections then begin
                        Metrics.inc (m_http_shed ());
                        (try
                           Unix.set_nonblock conn;
                           respond conn ~status:503 ~content_type:"text/plain"
                             ~extra_headers:[ ("Retry-After", "1") ]
                             "observability plane at its connection bound\n"
                         with Unix.Unix_error _ -> ());
                        try Unix.close conn with Unix.Unix_error _ -> ()
                      end
                      else begin
                        ignore (Atomic.fetch_and_add active 1);
                        ignore (Thread.create serve_one conn)
                      end;
                      accept_loop ())
            end
          in
          t.h_thread <- Some (Thread.create accept_loop ());
          Ok t)

(** Stop accepting, close the listening socket, and join the accept
    thread.  In-flight handler threads finish their (single) response on
    their own.  Idempotent. *)
let stop t =
  Atomic.set t.h_stop true;
  (match t.h_thread with
  | Some th ->
      t.h_thread <- None;
      Thread.join th
  | None -> ());
  try Unix.close t.h_sock with Unix.Unix_error _ -> ()
