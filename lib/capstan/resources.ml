(** Capstan resource accounting (paper Table 5).

    Maps a compiled kernel onto the chip's physical budget: 200 PCUs, 200
    PMUs, 80 memory controllers, 16 shuffle networks.  The model mirrors
    how SARA places Spatial programs:

    - every parallel pattern occupies PCUs in each of its replicas (the
      product of enclosing parallelization factors), one PCU per six
      pipeline stages of arithmetic;
    - every on-chip memory occupies PMUs in each replica of its allocation
      site, one PMU per 16 x 4096 words (FIFOs and bit-vectors occupy one);
    - every DRAM transfer occupies one memory controller stream per
      replica, as does every sparse-DRAM (random access) array;
    - gathers/scatters that cross vector lanes occupy one shuffle-network
      port per outer-parallel replica (which is why shuffle-using kernels
      cannot outer-parallelize beyond 16 — section 8.3). *)

module Memory = Stardust_core.Memory
module Plan = Stardust_core.Plan
module Compile = Stardust_core.Compile
open Stardust_spatial.Spatial_ir

type usage = {
  pcu : int;
  pmu : int;
  mc : int;
  shuffle : int;
  outer_par : int;
  (* fractions of the chip *)
  pcu_frac : float;
  pmu_frac : float;
  mc_frac : float;
  shuffle_frac : float;
  limiting : string;  (** the resource closest to its budget *)
  feasible : bool;
      (** the raw (unclamped) demand fits every physical budget; the
          [pcu]/[pmu]/[mc]/[shuffle] counts above are clamped to the chip,
          so an infeasible kernel still reports 100% of its limiting
          resource rather than >100% *)
}

let rec exp_ops = function
  | Int _ | Flt _ | Var _ -> 0
  | Read (_, idx) -> 1 + List.fold_left (fun a e -> a + exp_ops e) 0 idx
  | Bin (_, a, b) -> 1 + exp_ops a + exp_ops b
  | Neg e -> 1 + exp_ops e
  | Mux (p, a, b) -> 1 + exp_ops p + exp_ops a + exp_ops b

let stmt_ops = function
  | Let (_, e) -> exp_ops e
  | Write { idx; value; _ } ->
      exp_ops value + Option.fold ~none:0 ~some:exp_ops idx
  | Enq (_, e) -> exp_ops e
  | Deq _ -> 1
  | _ -> 0

(** Arithmetic ops resident in a pattern body (excluding nested patterns,
    which get their own PCUs). *)
let body_ops body extra =
  List.fold_left (fun acc s -> acc + stmt_ops s) extra body

let count (arch : Arch.t) (c : Compile.compiled) =
  let plan = c.Compile.plan in
  let pcu = ref 0 and pmu = ref 0 and mc = ref 0 in
  let pcus_for ops = max 1 ((ops + arch.Arch.pcu_stages - 1) / arch.Arch.pcu_stages) in
  let rec go repl (s : stmt) =
    match s with
    | Alloc { kind = Sram_dense | Sram_sparse; size; _ } ->
        let words = match size with Int n -> n | _ -> 1 in
        pmu := !pmu + (repl * Arch.pmus_for arch words)
    | Alloc { kind = Fifo _ | Bit_vector | Reg; _ } ->
        (* FIFOs and bit-vectors occupy one PMU stream each; registers are
           within PCU pipelines. *)
        (match s with
        | Alloc { kind = Reg; _ } -> ()
        | _ -> pmu := !pmu + repl)
    | Alloc _ -> ()
    | Load_burst _ | Store_burst _ -> mc := !mc + repl
    | Foreach { par; body; _ } ->
        pcu := !pcu + (repl * pcus_for (body_ops body 0));
        List.iter (go (repl * par)) body
    | Reduce { par; body; expr; _ } ->
        (* the reduction tree occupies the pattern's PCU vector stages *)
        pcu := !pcu + (repl * pcus_for (body_ops body (exp_ops expr + 1)));
        List.iter (go (repl * par)) body
    | Foreach_scan { scan; body; _ } ->
        (* scanner + pattern body *)
        pcu := !pcu + (repl * (1 + pcus_for (body_ops body 0)));
        List.iter (go (repl * scan.scan_par)) body
    | Reduce_scan { scan; body; expr; _ } ->
        pcu := !pcu + (repl * (1 + pcus_for (body_ops body (exp_ops expr + 1))));
        List.iter (go (repl * scan.scan_par)) body
    | Gen_bitvector _ -> pcu := !pcu + repl
    | Let _ | Deq _ | Write _ | Enq _ | Comment _ -> ()
  in
  List.iter (go 1) c.Compile.program.accel;
  (* sparse DRAM arrays hold a random-access stream per replica *)
  List.iter
    (fun (a : alloc) ->
      if a.kind = Dram_sparse then mc := !mc + plan.Plan.outer_par)
    c.Compile.program.dram;
  (* Shuffle-network ports: gathers plus scan-result scatters, one port per
     outer replica each. *)
  let shuffle = ref 0 in
  List.iter
    (fun (_, bs) ->
      List.iter
        (fun (b : Memory.binding) ->
          if b.Memory.uses_shuffle then shuffle := !shuffle + plan.Plan.outer_par)
        bs)
    plan.Plan.bindings;
  List.iter
    (fun r ->
      let fmt = Stardust_schedule.Schedule.format_of plan.Plan.sched r in
      let module F = Stardust_tensor.Format in
      if not (List.mem r (plan.Plan.sched : Stardust_schedule.Schedule.t).Stardust_schedule.Schedule.temporaries)
      then
        List.iteri
          (fun l k ->
            if k = F.Compressed then
              match
                List.assoc_opt (Plan.level_var plan r l) plan.Plan.loops
              with
              | Some { Plan.plan = Stardust_core.Coiter.Scan_plan _; _ } ->
                  shuffle := !shuffle + plan.Plan.outer_par
              | _ -> ())
          fmt.F.levels)
    plan.Plan.results;
  let feasible =
    !pcu <= arch.Arch.num_pcu
    && !pmu <= arch.Arch.num_pmu
    && !mc <= arch.Arch.num_mc
    && !shuffle <= arch.Arch.num_shuffle
  in
  let mc = min !mc arch.Arch.num_mc in
  let shuffle = min !shuffle arch.Arch.num_shuffle in
  let pcu = min !pcu arch.Arch.num_pcu in
  let pmu = min !pmu arch.Arch.num_pmu in
  let frac a b = float_of_int a /. float_of_int b in
  let pcu_frac = frac pcu arch.Arch.num_pcu in
  let pmu_frac = frac pmu arch.Arch.num_pmu in
  let mc_frac = frac mc arch.Arch.num_mc in
  let shuffle_frac = frac shuffle arch.Arch.num_shuffle in
  let limiting =
    List.fold_left
      (fun (ln, lf) (n, f) -> if f > lf then (n, f) else (ln, lf))
      ("PCU", pcu_frac)
      [ ("PMU", pmu_frac); ("MC", mc_frac); ("Shuf", shuffle_frac) ]
    |> fst
  in
  {
    pcu;
    pmu;
    mc;
    shuffle;
    outer_par = plan.Plan.outer_par;
    pcu_frac;
    pmu_frac;
    mc_frac;
    shuffle_frac;
    limiting;
    feasible;
  }

let pp ppf u =
  Fmt.pf ppf "par=%d PCU=%d (%.0f%%) PMU=%d (%.0f%%) MC=%d (%.0f%%) Shuf=%d (%.0f%%) limit=%s%s"
    u.outer_par u.pcu (100. *. u.pcu_frac) u.pmu (100. *. u.pmu_frac) u.mc
    (100. *. u.mc_frac) u.shuffle (100. *. u.shuffle_frac) u.limiting
    (if u.feasible then "" else " OVER-BUDGET")
