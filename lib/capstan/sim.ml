(** The Capstan simulator.

    Two modes share one cost model:

    - {!execute} runs a compiled Spatial program {e functionally} — every
      pattern iteration is interpreted, FIFOs enforce enqueue/dequeue
      discipline, scans walk real bit-vectors — and tallies work as it
      goes.  Results are read back from the DRAM images so they can be
      checked against the reference evaluator.
    - {!estimate} computes the same tallies analytically from the loop trip
      annotations and dataset statistics, without touching data.  On any
      input both modes produce identical work tallies by construction
      (tested); [estimate] is what the benchmarks use at paper scale, where
      interpreting 10^10 scalar iterations is impossible.

    Time is a pipelined-dataflow model: every pattern charges its iteration
    count divided by the parallelism covering it (own factor x enclosing
    factors) plus a startup, de-rated by the on-chip network overhead; DRAM
    traffic is accumulated and converted to cycles by the {!Dram} envelope;
    the kernel takes the max of the compute and memory components (the
    decoupled access-execute roofline the paper's Figure 12 explores). *)

module Tensor = Stardust_tensor.Tensor
module Stats = Stardust_tensor.Stats
module Stats_cache = Stardust_tensor.Stats_cache
module Format = Stardust_tensor.Format
module Memory = Stardust_core.Memory
module Plan = Stardust_core.Plan
module Compile = Stardust_core.Compile
module Coiter = Stardust_core.Coiter
module Trace = Stardust_obs.Trace
module Metrics = Stardust_obs.Metrics
module Obs_profile = Stardust_obs.Profile
open Stardust_spatial.Spatial_ir

(** What went wrong, structurally: callers (the fallback driver, the
    autotuner) route on the kind without parsing messages.

    - [Runtime] — malformed program or estimator query: a compiler bug.
    - [Capacity] — a hard capacity limit was exceeded at execution time
      (on-chip overflow, FIFO under/overflow, out-of-bounds stream):
      recoverable by re-scheduling or falling back to the CPU baseline.
    - [Watchdog] — the cycle budget expired, the symptom of
      non-terminating (or corrupt-data-driven runaway) co-iteration.
    - [Fault] — an injected fault was mis-applied (bad injection spec). *)
type error_kind = Runtime | Capacity | Watchdog | Fault

let error_kind_name = function
  | Runtime -> "runtime"
  | Capacity -> "capacity"
  | Watchdog -> "watchdog"
  | Fault -> "fault"

exception Sim_error of { kind : error_kind; message : string }

let kind_name = function
  | Runtime -> "runtime"
  | Capacity -> "capacity"
  | Watchdog -> "watchdog"
  | Fault -> "fault"

let () =
  Printexc.register_printer (function
    | Sim_error { kind; message } ->
        Some (Printf.sprintf "Sim_error(%s): %s" (kind_name kind) message)
    | _ -> None)

let err_k kind fmt =
  Fmt.kstr
    (fun s ->
      (* cheap: only on the raise path, never in the interpreter hot loop *)
      Metrics.inc
        (Metrics.counter ~help:"structured simulator errors by kind"
           ~labels:[ ("kind", error_kind_name kind) ]
           "sim_errors_total");
      raise (Sim_error { kind; message = s }))
    fmt
let err fmt = err_k Runtime fmt
let cap fmt = err_k Capacity fmt

(** Deterministic fault injection: hand one of these to {!execute} to
    prove the stack degrades or reports instead of crashing.

    - [Dram_stall_storm] multiplies the memory-system component of the
      timing model by [factor] (a storm of row-buffer conflicts and
      refresh stalls) — the run still completes, slower.
    - [Corrupt_pos]/[Corrupt_crd] overwrite one word of a tensor's
      position/coordinate DRAM image after initialisation, the way a
      flaky DRAM channel would; downstream capacity guards must catch
      the damage and raise a structured error. *)
type fault =
  | Dram_stall_storm of { factor : float }
  | Corrupt_pos of { tensor : string; level : int; index : int; value : float }
  | Corrupt_crd of { tensor : string; level : int; index : int; value : float }

type config = { arch : Arch.t; dram : Dram.t }

let default_config = { arch = Arch.default; dram = Dram.hbm2e }
let ideal_config = { arch = Arch.ideal_network Arch.default; dram = Dram.ideal }

(** Full textual fingerprint of a machine configuration: every field of
    the architecture and memory models, floats in lossless hex.  Two
    configs fingerprint equally iff every modelled parameter is equal —
    unlike [Hashtbl.hash], which truncates and can collide. *)
let config_fingerprint (c : config) =
  let a = c.arch and d = c.dram in
  Printf.sprintf
    "pcu%d,pmu%d,mc%d,sh%d,ln%d,sl%d,st%d,bk%d,wb%d,hz%h,no%h,ii%h,lx%h,bv%h|%s,bw%h,lat%h,line%d,rp%h"
    a.Arch.num_pcu a.Arch.num_pmu a.Arch.num_mc a.Arch.num_shuffle
    a.Arch.lanes a.Arch.sparse_lanes a.Arch.pcu_stages a.Arch.pmu_banks
    a.Arch.pmu_words_per_bank a.Arch.clock_hz a.Arch.net_overhead
    a.Arch.launch_ii a.Arch.latency_exposure a.Arch.bv_words_per_cycle
    (Dram.show_kind d.Dram.kind)
    d.Dram.bandwidth_bytes_per_s d.Dram.latency_cycles d.Dram.line_bytes
    d.Dram.random_penalty

type report = {
  cycles : float;  (** total kernel cycles: max(compute, memory) *)
  compute_cycles : float;
  dram_cycles : float;
  streamed_bytes : float;
  random_accesses : float;
  iterations : float;  (** scalar pattern iterations across all loops *)
  scan_bits : float;  (** bit-vector positions scanned *)
  seconds : float;
}

type tally = {
  mutable compute : float;
  mutable bytes : float;
  mutable rand : float;
  mutable iters : float;
  mutable bits : float;
  mutable bursts : float;  (** DRAM burst issues (weighted by 1/parallelism) *)
}

let fresh_tally () =
  { compute = 0.; bytes = 0.; rand = 0.; iters = 0.; bits = 0.; bursts = 0. }

let finish ?(dram_stall = 1.0) cfg (t : tally) =
  let compute = t.compute *. cfg.arch.Arch.net_overhead in
  let dram =
    (Dram.transfer_cycles cfg.dram ~clock_hz:cfg.arch.Arch.clock_hz
       ~streamed_bytes:t.bytes ~random_accesses:t.rand
     +. cfg.dram.Dram.latency_cycles
     (* short bursts expose a fraction of the first-word latency that the
        decoupled access-execute prefetcher cannot hide *)
     +. (t.bursts *. cfg.dram.Dram.latency_cycles
         *. cfg.arch.Arch.latency_exposure))
    *. dram_stall
  in
  let cycles = Float.max compute dram in
  {
    cycles;
    compute_cycles = compute;
    dram_cycles = dram;
    streamed_bytes = t.bytes;
    random_accesses = t.rand;
    iterations = t.iters;
    scan_bits = t.bits;
    seconds = Arch.seconds_of_cycles cfg.arch cycles;
  }

(* ==================================================================== *)
(* Functional execution                                                  *)
(* ==================================================================== *)

type memv =
  | MArr of float array
  | MQueue of float Queue.t
  | MReg of float ref
  | MBits of bool array

type machine = {
  cfg : config;
  heap : (string, memv) Hashtbl.t;
  dram_sparse : (string, unit) Hashtbl.t;  (** names with random access *)
  tally : tally;
  watchdog : float;  (** scalar-step budget; infinity disables *)
  mutable steps : float;  (** scalar steps executed so far *)
}

(** Charge [n] scalar steps against the watchdog budget.  Interpreted
    loops are always finite, but corrupted position arrays or adversarial
    schedules can inflate trip counts by orders of magnitude — the
    watchdog turns that runaway into a structured diagnostic instead of an
    apparent hang. *)
let watchdog_tick m n =
  m.steps <- m.steps +. n;
  if m.steps > m.watchdog then
    err_k Watchdog
      "watchdog budget of %.3g scalar steps exhausted — non-terminating or \
       runaway co-iteration (corrupt position data can cause this)"
      m.watchdog

let word_bytes = 4.0

let find_mem m name =
  match Hashtbl.find_opt m.heap name with
  | Some v -> v
  | None -> err "memory %s not allocated" name

let as_arr m name =
  match find_mem m name with
  | MArr a -> a
  | _ -> err "%s is not an array memory" name

let as_queue m name =
  match find_mem m name with
  | MQueue q -> q
  | _ -> err "%s is not a FIFO" name

let as_reg m name =
  match find_mem m name with
  | MReg r -> r
  | _ -> err "%s is not a register" name

let as_bits m name =
  match find_mem m name with
  | MBits b -> b
  | _ -> err "%s is not a bit-vector" name

let iof f = int_of_float f

let rec eval m env e =
  match e with
  | Int n -> float_of_int n
  | Flt f -> f
  | Var v -> (
      match List.assoc_opt v env with
      | Some x -> x
      | None -> err "variable %s unbound at runtime" v)
  | Read (name, []) -> !(as_reg m name)
  | Read (name, [ ix ]) -> (
      let i = iof (eval m env ix) in
      if i < 0 then 0.0  (* predicated absent lane *)
      else
        match find_mem m name with
        | MArr a ->
            if i >= Array.length a then
              cap "%s: read out of bounds (%d >= %d)" name i (Array.length a)
            else begin
              if Hashtbl.mem m.dram_sparse name then m.tally.rand <- m.tally.rand +. 1.0;
              a.(i)
            end
        | _ -> err "%s: indexed read of non-array" name)
  | Read (name, _) -> err "%s: multi-index reads are not supported" name
  | Bin (op, a, b) -> (
      let x = eval m env a and y = eval m env b in
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
      | Min -> Float.min x y
      | Max -> Float.max x y)
  | Neg e -> -.eval m env e
  | Mux (p, a, b) -> if eval m env p >= 0.0 then eval m env a else eval m env b

let alloc m (a : alloc) size_val =
  let v =
    match a.kind with
    | Dram_dense | Dram_sparse | Sram_dense | Sram_sparse ->
        MArr (Array.make (max 1 size_val) 0.0)
    | Fifo _ -> MQueue (Queue.create ())
    | Reg -> MReg (ref 0.0)
    | Bit_vector -> MBits (Array.make (max 1 size_val) false)
  in
  Hashtbl.replace m.heap a.mem v;
  if a.kind = Dram_sparse then Hashtbl.replace m.dram_sparse a.mem ()

(** Ranks of set bits: [pos.(c)] is the ordinal of bit [c] among set bits,
    or [-1] when unset. *)
let bit_ranks bits =
  let n = Array.length bits in
  let ranks = Array.make n (-1) in
  let r = ref 0 in
  for c = 0 to n - 1 do
    if bits.(c) then begin
      ranks.(c) <- !r;
      incr r
    end
  done;
  ranks

let lanes_f (m : machine) = float_of_int m.cfg.arch.Arch.lanes

let is_sparse_trip = function
  | Trip_fiber _ | Trip_coiter _ -> true
  | Trip_const _ | Trip_dim _ | Trip_exp -> false

(** Effective parallelism of a pattern: sparse iteration is limited to the
    architecture's sparse vector width (1 on Plasticine). *)
let pattern_par (arch : Arch.t) ~sparse par =
  if sparse then min par arch.Arch.sparse_lanes else par

(** Pipeline occupancy of one pattern launch over [n] iterations at vector
    width [par]: a fiber shorter than the vector width still occupies one
    issue slot per lane group (short fibers underutilise the lanes — the
    mechanism behind Capstan's preference for >5% densities). *)
let launch_cost ~par n =
  if n <= 0.0 then 0.0 else Float.max n (float_of_int par) /. float_of_int par

let charge_pattern m ~iters ~par ~sparse ~ctx =
  let par = pattern_par m.cfg.arch ~sparse par in
  m.tally.iters <- m.tally.iters +. iters;
  m.tally.compute <-
    m.tally.compute
    +. (launch_cost ~par iters /. ctx)
    +. (m.cfg.arch.Arch.launch_ii /. ctx)

let charge_burst m ~elems ~ctx ~write:_ =
  m.tally.bytes <- m.tally.bytes +. (elems *. word_bytes);
  m.tally.bursts <- m.tally.bursts +. (1.0 /. ctx);
  m.tally.compute <- m.tally.compute +. (elems /. (lanes_f m *. ctx))

let rec exec m env ~ctx (s : stmt) : (string * float) list =
  match s with
  | Comment _ -> env
  | Alloc a ->
      alloc m a (iof (eval m env a.size));
      env
  | Let (x, e) -> (x, eval m env e) :: env
  | Deq (x, f) -> (
      let q = as_queue m f in
      match Queue.take_opt q with
      | Some v -> (x, v) :: env
      | None -> cap "FIFO %s underflow" f)
  | Load_burst { dst; src; lo; hi; _ } ->
      let a = as_arr m src in
      let lo = iof (eval m env lo) and hi = iof (eval m env hi) in
      if lo < 0 || hi > Array.length a then
        cap "load from %s out of bounds [%d, %d)" src lo hi;
      let n = max 0 (hi - lo) in
      (match find_mem m dst with
      | MArr d ->
          if n > Array.length d then
            cap "load into %s overflows its capacity (%d > %d)" dst n
              (Array.length d);
          Array.blit a lo d 0 n
      | MQueue q ->
          for k = lo to hi - 1 do
            Queue.add a.(k) q
          done
      | _ -> err "load into non-array %s" dst);
      charge_burst m ~elems:(float_of_int n) ~ctx ~write:false;
      env
  | Store_burst { dst; src; lo; len; _ } ->
      let d = as_arr m dst in
      let lo = iof (eval m env lo) and n = iof (eval m env len) in
      if lo < 0 || lo + n > Array.length d then
        cap "store to %s out of bounds [%d, %d)" dst lo (lo + n);
      (match find_mem m src with
      | MArr s ->
          if n > Array.length s then
            cap "store from %s reads past capacity" src;
          Array.blit s 0 d lo n
      | MQueue q ->
          for k = 0 to n - 1 do
            match Queue.take_opt q with
            | Some v -> d.(lo + k) <- v
            | None -> cap "FIFO %s underflow during store" src
          done
      | MReg r ->
          if n <> 1 then err "register store must have length 1";
          d.(lo) <- !r
      | MBits _ -> err "cannot store a bit-vector");
      charge_burst m ~elems:(float_of_int n) ~ctx ~write:true;
      env
  | Foreach { len; par; bind; body; trip; _ } ->
      let n = iof (eval m env len) in
      let sparse = is_sparse_trip trip in
      let par_eff = pattern_par m.cfg.arch ~sparse par in
      for k = 0 to n - 1 do
        watchdog_tick m 1.0;
        ignore (exec_body m ((bind, float_of_int k) :: env) ~ctx:(ctx *. float_of_int par_eff) body)
      done;
      charge_pattern m ~iters:(float_of_int n) ~par ~sparse ~ctx;
      env
  | Reduce { target; init; len; par; bind; body; expr; trip; _ } ->
      let n = iof (eval m env len) in
      let sparse = is_sparse_trip trip in
      let par_eff = pattern_par m.cfg.arch ~sparse par in
      let acc = ref (eval m env init) in
      for k = 0 to n - 1 do
        watchdog_tick m 1.0;
        let env' =
          exec_body m ((bind, float_of_int k) :: env)
            ~ctx:(ctx *. float_of_int par_eff) body
        in
        acc := !acc +. eval m env' expr
      done;
      let r = as_reg m target in
      r := !r +. !acc;
      charge_pattern m ~iters:(float_of_int n) ~par ~sparse ~ctx;
      env
  | Foreach_scan { scan; body; _ } ->
      scan_loop m env ~ctx scan (fun env' -> ignore (exec_body m env' ~ctx:(ctx *. float_of_int scan.scan_par) body));
      env
  | Reduce_scan { target; init; scan; body; expr; _ } ->
      let acc = ref (eval m env init) in
      scan_loop m env ~ctx scan (fun env' ->
          let env'' = exec_body m env' ~ctx:(ctx *. float_of_int scan.scan_par) body in
          acc := !acc +. eval m env'' expr);
      let r = as_reg m target in
      r := !r +. !acc;
      env
  | Write { mem; idx = None; value; accum } ->
      let r = as_reg m mem in
      let v = eval m env value in
      r := if accum then !r +. v else v;
      env
  | Write { mem; idx = Some ix; value; accum } ->
      let a = as_arr m mem in
      let i = iof (eval m env ix) in
      if i < 0 || i >= Array.length a then
        cap "%s: write out of bounds (%d)" mem i;
      let v = eval m env value in
      a.(i) <- (if accum then a.(i) +. v else v);
      env
  | Enq (f, e) ->
      Queue.add (eval m env e) (as_queue m f);
      env
  | Gen_bitvector { bv; crd_mem; count; _ } ->
      let bits = as_bits m bv in
      Array.fill bits 0 (Array.length bits) false;
      let n = iof (eval m env count) in
      let set c =
        let i = iof c in
        if i < 0 || i >= Array.length bits then
          cap
            "coordinate %d outside bit-vector %s (length %d) — corrupted \
             crd stream"
            i bv (Array.length bits)
        else bits.(i) <- true
      in
      (match find_mem m crd_mem with
      | MQueue q ->
          for _ = 1 to n do
            match Queue.take_opt q with
            | Some c -> set c
            | None -> cap "FIFO %s underflow feeding bit-vector %s" crd_mem bv
          done
      | MArr a ->
          if n < 0 || n > Array.length a then
            cap "bit-vector %s: %d coordinates from %s (length %d)" bv n
              crd_mem (Array.length a);
          for k = 0 to n - 1 do
            set a.(k)
          done
      | _ -> err "bit-vector source %s has no coordinates" crd_mem);
      m.tally.compute <- m.tally.compute +. (float_of_int n /. (lanes_f m *. ctx));
      env

and exec_body m env ~ctx body = List.fold_left (fun env s -> exec m env ~ctx s) env body

and scan_loop m env ~ctx (s : scan) f =
  let bvs = List.map (as_bits m) s.bvs in
  let len = iof (eval m env s.scan_len) in
  (match bvs with
  | [ b ] ->
      if Array.length b < len then cap "bit-vector shorter than scan length"
  | [ a; b ] ->
      if Array.length a < len || Array.length b < len then
        cap "bit-vector shorter than scan length"
  | _ -> err "scan over %d bit-vectors" (List.length bvs));
  let ranks = List.map bit_ranks bvs in
  let combined c =
    match (s.op, bvs) with
    | Scan_single, [ b ] -> b.(c)
    | Scan_and, [ a; b ] -> a.(c) && b.(c)
    | Scan_or, [ a; b ] -> a.(c) || b.(c)
    | _ -> err "malformed scan"
  in
  let out = ref 0 in
  for c = 0 to len - 1 do
    watchdog_tick m 1.0;
    if combined c then begin
      let pos_binds =
        List.map2 (fun name rk -> (name, float_of_int rk.(c))) s.bind_pos ranks
      in
      let out_bind =
        match s.bind_out with
        | Some o -> [ (o, float_of_int !out) ]
        | None -> []
      in
      let env' =
        ((s.bind_coord, float_of_int c) :: pos_binds) @ out_bind @ env
      in
      f env';
      incr out
    end
  done;
  m.tally.bits <- m.tally.bits +. float_of_int len;
  m.tally.compute <-
    m.tally.compute
    +. (float_of_int len
       /. (32.0 *. m.cfg.arch.Arch.bv_words_per_cycle *. ctx));
  charge_pattern m ~iters:(float_of_int !out) ~par:s.scan_par ~sparse:true ~ctx

(* -------------------------------------------------------------------- *)
(* DRAM initialisation and result extraction                             *)
(* -------------------------------------------------------------------- *)

let float_array_of_ints a = Array.map float_of_int a

let init_dram m (c : Compile.compiled) =
  (* Allocate every declared DRAM array zeroed, then overwrite the input
     tensors' images. *)
  List.iter (fun (a : alloc) ->
      let size = match a.size with Int n -> n | _ -> err "non-constant DRAM size" in
      alloc m a size)
    c.Compile.program.dram;
  List.iter
    (fun (name, x) ->
      let fmt = Tensor.format x in
      let n = Tensor.order x in
      let blit dst_name src =
        match Hashtbl.find_opt m.heap dst_name with
        | Some (MArr d) ->
            if Array.length src > Array.length d then
              cap "input %s larger than its DRAM declaration" dst_name;
            Array.blit src 0 d 0 (Array.length src)
        | Some _ -> err "DRAM %s has wrong kind" dst_name
        | None -> ()  (* sub-array not used by the kernel *)
      in
      for l = 0 to n - 1 do
        if Format.level_kind fmt l = Format.Compressed then begin
          blit (Memory.dram_name name (Memory.Pos l))
            (float_array_of_ints (Tensor.pos_array x l));
          blit (Memory.dram_name name (Memory.Crd l))
            (float_array_of_ints (Tensor.crd_array x l))
        end
      done;
      blit (Memory.dram_name name Memory.Vals) (Tensor.vals_array x))
    c.Compile.inputs

(** Read a result tensor back from the DRAM images.  Every count read from
    a position image is validated before it sizes an array: corrupted
    metadata becomes a structured capacity error, not an
    [Invalid_argument] crash. *)
let read_result m (c : Compile.compiled) name =
  let meta = Plan.meta c.Compile.plan name in
  let fmt = { meta.Plan.fmt with Format.region = Format.Off_chip } in
  let dims = Array.to_list meta.Plan.dims in
  let n = List.length dims in
  let arr aname =
    match Hashtbl.find_opt m.heap aname with
    | Some (MArr a) -> a
    | _ -> err "result array %s missing" aname
  in
  let parent = ref 1 in
  let levels =
    Array.init n (fun l ->
        let d = meta.Plan.dims.(Format.dim_of_level fmt l) in
        match Format.level_kind fmt l with
        | Format.Dense ->
            parent := !parent * d;
            Tensor.Dense_level { dim = d }
        | Format.Compressed ->
            let pos_img = arr (Memory.dram_name name (Memory.Pos l)) in
            if !parent + 1 > Array.length pos_img then
              cap "result %s level %d: position image too short (%d > %d)"
                name l (!parent + 1) (Array.length pos_img);
            let pos = Array.init (!parent + 1) (fun i -> iof pos_img.(i)) in
            let count = pos.(!parent) in
            let crd_img = arr (Memory.dram_name name (Memory.Crd l)) in
            if count < 0 || count > Array.length crd_img then
              cap
                "result %s level %d: corrupt position count %d (coordinate \
                 image holds %d)"
                name l count (Array.length crd_img);
            let crd = Array.init count (fun i -> iof crd_img.(i)) in
            parent := count;
            Tensor.Compressed_level { pos; crd })
  in
  let vals_img = arr (Memory.dram_name name Memory.Vals) in
  if !parent < 0 || !parent > Array.length vals_img then
    cap "result %s: corrupt value count %d (image holds %d)" name !parent
      (Array.length vals_img);
  let vals = Array.sub vals_img 0 !parent in
  match Tensor.of_arrays ~name ~format:fmt ~dims ~levels ~vals with
  | t -> t
  | exception Invalid_argument msg ->
      cap "result %s readback rejected: %s" name msg

(** Apply the deterministic fault list to the initialised DRAM images and
    return the DRAM stall factor the storm faults accumulate to. *)
let apply_faults m (faults : fault list) =
  let corrupt aname index value =
    match Hashtbl.find_opt m.heap aname with
    | Some (MArr a) ->
        if index < 0 || index >= Array.length a then
          err_k Fault "fault injection: %s has no word %d (length %d)" aname
            index (Array.length a)
        else a.(index) <- value
    | _ -> err_k Fault "fault injection: no DRAM image %s" aname
  in
  List.fold_left
    (fun stall f ->
      match f with
      | Dram_stall_storm { factor } -> stall *. Float.max 1.0 factor
      | Corrupt_pos { tensor; level; index; value } ->
          corrupt (Memory.dram_name tensor (Memory.Pos level)) index value;
          stall
      | Corrupt_crd { tensor; level; index; value } ->
          corrupt (Memory.dram_name tensor (Memory.Crd level)) index value;
          stall)
    1.0 faults

(** Default watchdog: generous for any kernel worth interpreting, small
    enough that runaway co-iteration surfaces in seconds. *)
let default_watchdog = 1e9

(** Functionally execute a compiled kernel; returns the result tensors and
    the timing report.

    [watchdog] bounds the scalar steps interpreted (default
    {!default_watchdog}); exceeding it raises [Sim_error] with kind
    [Watchdog].  [faults] deterministically injects DRAM stall storms and
    pos/crd corruption (see {!fault}); corrupted metadata surfaces as
    [Sim_error] with kind [Capacity], never as an unstructured crash. *)
let execute ?(config = default_config) ?(watchdog = default_watchdog)
    ?(faults = []) (c : Compile.compiled) =
  Trace.with_span ~cat:"simulate"
    ~args:[ ("kernel", c.Compile.name) ]
    ("execute " ^ c.Compile.name)
  @@ fun () ->
  Metrics.inc
    (Metrics.counter ~help:"functional simulator runs" "sim_executes_total");
  let m =
    {
      cfg = config;
      heap = Hashtbl.create 64;
      dram_sparse = Hashtbl.create 4;
      tally = fresh_tally ();
      watchdog;
      steps = 0.0;
    }
  in
  init_dram m c;
  let dram_stall = apply_faults m faults in
  let env =
    List.map (fun (k, v) -> (k, float_of_int v)) c.Compile.program.env
  in
  ignore (exec_body m env ~ctx:1.0 c.Compile.program.accel);
  let results =
    List.filter_map
      (fun r ->
        if List.mem r c.Compile.plan.Plan.results
           && Plan.meta c.Compile.plan r |> fun mt ->
              not (Format.is_on_chip mt.Plan.fmt)
        then Some (r, read_result m c r)
        else None)
      c.Compile.plan.Plan.results
  in
  (results, finish ~dram_stall config m.tally)

(** Run a raw Spatial program without a compilation plan: DRAM images are
    supplied directly and the final DRAM contents returned.  Used by tests
    to pin down the IR's execution semantics (predication, scans, FIFO
    discipline) independently of the compiler. *)
let execute_program ?(config = default_config)
    ?(watchdog = default_watchdog) (prog : program)
    ~(dram_init : (string * float array) list) =
  let m =
    {
      cfg = config;
      heap = Hashtbl.create 64;
      dram_sparse = Hashtbl.create 4;
      tally = fresh_tally ();
      watchdog;
      steps = 0.0;
    }
  in
  List.iter
    (fun (a : alloc) ->
      let size = match a.size with Int n -> n | _ -> err "non-constant DRAM size" in
      alloc m a size)
    prog.dram;
  List.iter
    (fun (name, src) ->
      match Hashtbl.find_opt m.heap name with
      | Some (MArr d) -> Array.blit src 0 d 0 (min (Array.length src) (Array.length d))
      | _ -> err "no DRAM array %s" name)
    dram_init;
  let env = List.map (fun (k, v) -> (k, float_of_int v)) prog.env in
  ignore (exec_body m env ~ctx:1.0 prog.accel);
  let dump =
    List.filter_map
      (fun (a : alloc) ->
        match Hashtbl.find_opt m.heap a.mem with
        | Some (MArr arr) -> Some (a.mem, Array.copy arr)
        | _ -> None)
      prog.dram
  in
  (dump, finish config m.tally)

(* ==================================================================== *)
(* Analytic estimation                                                   *)
(* ==================================================================== *)

(** Dataset statistics provider: co-iteration cardinalities are computed
    from the actual input tensors (exact counts).  The per-estimate [memo]
    maps cheap name-based keys to values so one estimate never fingerprints
    a tensor twice; the computations behind a memo miss go through the
    process-wide {!Stats_cache}, shared across every point a search
    evaluates. *)
type statsrc = {
  tensors : (string * Tensor.t) list;
  memo : (string, float) Hashtbl.t;
}

(** Number of distinct coordinate prefixes of length [depth+1] present in
    both ([union = false]) or either ([union = true]) tensor. *)
let prefix_coiter_count src ~union a b ~depth =
  let key = Printf.sprintf "%s|%s|%d|%b" a b depth union in
  match Hashtbl.find_opt src.memo key with
  | Some v -> v
  | None ->
      let tensor name =
        match List.assoc_opt name src.tensors with
        | None -> err "estimate: %s is not an input tensor" name
        | Some t -> t
      in
      let v =
        float_of_int
          (Stats_cache.prefix_coiter_count ~union (tensor a) (tensor b)
             ~depth)
      in
      Hashtbl.add src.memo key v;
      v

type est = {
  e_cfg : config;
  e_plan : Plan.t;
  e_src : statsrc;
  e_tally : tally;
  (* memory name -> (tensor, sub-array) for sizing transfers *)
  e_mems : (string, string * Memory.sub_array) Hashtbl.t;
}

let level_count e tensor level =
  (* For result levels driven by scans, the exact count is the co-iteration
     cardinality rather than the conservative bound. *)
  let meta = Plan.meta e.e_plan tensor in
  if meta.Plan.is_input then float_of_int meta.Plan.level_counts.(level)
  else
    let v = Plan.level_var e.e_plan tensor level in
    match List.assoc_opt v e.e_plan.Plan.loops with
    | Some { Plan.plan = Coiter.Scan_plan { op; a; b; _ }; _ } ->
        (* depth of the co-iterated input level *)
        prefix_coiter_count e.e_src ~union:(op = `Or) a.Coiter.tensor
          b.Coiter.tensor ~depth:a.Coiter.level
    | Some { Plan.plan = Coiter.Pos_plan { lead; _ }; _ } ->
        float_of_int
          (Plan.meta e.e_plan lead.Coiter.tensor).Plan.level_counts.(lead.Coiter.level)
    | _ -> float_of_int meta.Plan.level_counts.(level)

let trip_total e ~execs = function
  | Trip_const n -> execs *. float_of_int n
  | Trip_fiber { tensor; level } -> level_count e tensor level
  | Trip_coiter { union; tensors = [ (a, la); (b, _) ] } ->
      prefix_coiter_count e.e_src ~union a b ~depth:la
  | Trip_coiter _ -> err "estimate: malformed co-iteration trip"
  | Trip_dim { tensor; dim } ->
      execs *. float_of_int (Plan.meta e.e_plan tensor).Plan.dims.(dim)
  | Trip_exp -> err "estimate: loop without trip information"

(** Total pipeline-occupancy cycles of all launches of a loop (the exact
    sum the functional executor accumulates through {!launch_cost}). *)
let launch_total e ~execs ~par trip =
  let input name =
    match List.assoc_opt name e.e_src.tensors with
    | Some t -> t
    | None -> err "estimate: %s is not an input tensor" name
  in
  match trip with
  | Trip_const n -> execs *. launch_cost ~par (float_of_int n)
  | Trip_dim { tensor; dim } ->
      execs
      *. launch_cost ~par
           (float_of_int (Plan.meta e.e_plan tensor).Plan.dims.(dim))
  | Trip_fiber { tensor; level } ->
      let key = Printf.sprintf "flt|%s|%d|%d" tensor level par in
      (match Hashtbl.find_opt e.e_src.memo key with
      | Some v -> v
      | None ->
          let v = Stats_cache.fiber_launch_total ~par (input tensor) level in
          Hashtbl.add e.e_src.memo key v;
          v)
  | Trip_coiter { union; tensors = [ (a, la); (b, _) ] } ->
      let key = Printf.sprintf "clt|%s|%s|%d|%b|%d" a b la union par in
      (match Hashtbl.find_opt e.e_src.memo key with
      | Some v -> v
      | None ->
          let v =
            Stats_cache.coiter_launch_total ~union ~par (input a) (input b)
              ~depth:la
          in
          Hashtbl.add e.e_src.memo key v;
          v)
  | Trip_coiter _ -> err "estimate: malformed co-iteration trip"
  | Trip_exp -> err "estimate: loop without trip information"

(** Total elements a transfer of [mem] moves across the whole run, given it
    is issued [execs] times. *)
let transfer_total e mem ~execs =
  match Hashtbl.find_opt e.e_mems mem with
  | None -> err "estimate: unknown staged memory %s" mem
  | Some (tensor, arr) -> (
      let meta = Plan.meta e.e_plan tensor in
      let b = Plan.binding e.e_plan tensor arr in
      match (arr, b.Memory.transfer) with
      | _, Memory.Whole_array ->
          execs
          *. float_of_int
               (match arr with
               | Memory.Pos l ->
                   (if l = 0 then 1 else meta.Plan.level_counts.(l - 1)) + 1
               | Memory.Crd l -> meta.Plan.level_counts.(l)
               | Memory.Vals -> meta.Plan.num_vals)
      | Memory.Pos l, _ ->
          (* one slice per parent fiber: positions(l-1) entries + execs *)
          (if l = 0 then 1.0 else level_count e tensor (l - 1)) +. execs
      | Memory.Crd l, _ -> level_count e tensor l
      | Memory.Vals, _ when Format.order meta.Plan.fmt = 0 -> execs
      | Memory.Vals, _ ->
          let fmt = meta.Plan.fmt in
          let last = Format.order fmt - 1 in
          if Format.level_kind fmt last = Format.Compressed then
            level_count e tensor last
          else
            (* dense row per issue *)
            execs
            *. float_of_int meta.Plan.dims.(Format.dim_of_level fmt last))

let rec exp_dram_reads e acc = function
  | Int _ | Flt _ | Var _ -> acc
  | Read (mem, idx) ->
      let acc = List.fold_left (exp_dram_reads e) acc idx in
      if
        String.length mem > 5
        && String.sub mem (String.length mem - 5) 5 = "_dram"
        && idx <> []
      then acc +. 1.0
      else acc
  | Bin (_, a, b) -> exp_dram_reads e (exp_dram_reads e acc a) b
  | Neg x -> exp_dram_reads e acc x
  | Mux (p, a, b) ->
      exp_dram_reads e (exp_dram_reads e (exp_dram_reads e acc p) a) b

let stmt_exps = function
  | Let (_, x) -> [ x ]
  | Write { idx; value; _ } -> value :: Option.to_list idx
  | Enq (_, x) -> [ x ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Per-loop attribution                                                 *)
(* ------------------------------------------------------------------ *)

(** Raw per-statement charges, kept attached to the program structure
    instead of collapsed into the run {!tally}.  Mirrors the tally fields
    that enter the timing model; {!profile_of} converts the raw charges to
    attributed cycles after the roofline is known. *)
type prof = {
  p_label : string;
  p_kind : string;
  mutable p_iters : float;
  mutable p_compute : float;  (** occupancy charged here (pre net-overhead) *)
  mutable p_bytes : float;
  mutable p_rand : float;
  mutable p_bursts : float;
  mutable p_rev_children : prof list;  (** newest first *)
}

let fresh_prof label kind =
  {
    p_label = label;
    p_kind = kind;
    p_iters = 0.;
    p_compute = 0.;
    p_bytes = 0.;
    p_rand = 0.;
    p_bursts = 0.;
    p_rev_children = [];
  }

let prof_child parent label kind =
  (* re-entering the same statement (a loop body estimated once per
     enclosing trip class) reuses its node, so the tree mirrors the
     program, not the walk *)
  match
    List.find_opt
      (fun c -> c.p_label = label && c.p_kind = kind)
      parent.p_rev_children
  with
  | Some c -> c
  | None ->
      let c = fresh_prof label kind in
      parent.p_rev_children <- c :: parent.p_rev_children;
      c

let trip_kind = function
  | Trip_const _ -> "const"
  | Trip_dim _ -> "dense"
  | Trip_fiber _ -> "fiber"
  | Trip_coiter { union; _ } -> if union then "union" else "intersect"
  | Trip_exp -> "exp"

(** Human label detail for a loop's iteration source. *)
let trip_descr = function
  | Trip_const n -> string_of_int n
  | Trip_dim { tensor; dim } -> Printf.sprintf "%s:d%d" tensor dim
  | Trip_fiber { tensor; level } -> Printf.sprintf "%s.%d" tensor level
  | Trip_coiter { union; tensors } ->
      String.concat
        (if union then " | " else " & ")
        (List.map (fun (t, l) -> Printf.sprintf "%s.%d" t l) tensors)
  | Trip_exp -> "?"

let rec est_stmt e ~execs ~ctx ~prof (s : stmt) =
  (* random DRAM reads embedded in expressions *)
  let rand =
    List.fold_left (exp_dram_reads e) 0.0 (stmt_exps s) *. execs
  in
  if rand > 0.0 then begin
    e.e_tally.rand <- e.e_tally.rand +. rand;
    prof.p_rand <- prof.p_rand +. rand
  end;
  let lanes = float_of_int e.e_cfg.arch.Arch.lanes in
  let launch_ii = e.e_cfg.arch.Arch.launch_ii in
  match s with
  | Comment _ | Alloc _ | Let _ | Deq _ | Write _ | Enq _ -> ()
  | Load_burst { dst; _ } ->
      let elems = transfer_total e dst ~execs in
      if Sys.getenv_opt "STARDUST_DEBUG_XFER" <> None then
        Fmt.epr "xfer load %s execs=%.3e elems=%.3e@." dst execs elems;
      let p = prof_child prof ("load " ^ dst) "burst" in
      e.e_tally.bytes <- e.e_tally.bytes +. (elems *. word_bytes);
      e.e_tally.bursts <- e.e_tally.bursts +. (execs /. ctx);
      e.e_tally.compute <- e.e_tally.compute +. (elems /. (lanes *. ctx));
      p.p_bytes <- p.p_bytes +. (elems *. word_bytes);
      p.p_bursts <- p.p_bursts +. (execs /. ctx);
      p.p_compute <- p.p_compute +. (elems /. (lanes *. ctx))
  | Store_burst { src; _ } ->
      let elems = transfer_total e src ~execs in
      if Sys.getenv_opt "STARDUST_DEBUG_XFER" <> None then
        Fmt.epr "xfer store %s execs=%.3e elems=%.3e@." src execs elems;
      let p = prof_child prof ("store " ^ src) "burst" in
      e.e_tally.bytes <- e.e_tally.bytes +. (elems *. word_bytes);
      e.e_tally.bursts <- e.e_tally.bursts +. (execs /. ctx);
      e.e_tally.compute <- e.e_tally.compute +. (elems /. (lanes *. ctx));
      p.p_bytes <- p.p_bytes +. (elems *. word_bytes);
      p.p_bursts <- p.p_bursts +. (execs /. ctx);
      p.p_compute <- p.p_compute +. (elems /. (lanes *. ctx))
  | Gen_bitvector { bv; trip; _ } ->
      let n = trip_total e ~execs trip in
      let p = prof_child prof ("bitvector " ^ bv) "bitvector" in
      e.e_tally.compute <- e.e_tally.compute +. (n /. (lanes *. ctx));
      p.p_compute <- p.p_compute +. (n /. (lanes *. ctx))
  | Foreach { par; body; trip; bind; _ } | Reduce { par; body; trip; bind; _ }
    ->
      let iters = trip_total e ~execs trip in
      let par = pattern_par e.e_cfg.arch ~sparse:(is_sparse_trip trip) par in
      let kind_base =
        match s with Reduce _ -> "reduce" | _ -> "foreach"
      in
      let p =
        prof_child prof
          (Printf.sprintf "%s (%s)" bind (trip_descr trip))
          (kind_base ^ "/" ^ trip_kind trip)
      in
      let occ =
        (launch_total e ~execs ~par trip /. ctx)
        +. (launch_ii *. execs /. ctx)
      in
      e.e_tally.iters <- e.e_tally.iters +. iters;
      e.e_tally.compute <- e.e_tally.compute +. occ;
      p.p_iters <- p.p_iters +. iters;
      p.p_compute <- p.p_compute +. occ;
      (match s with
      | Reduce { expr; _ } ->
          let r = exp_dram_reads e 0.0 expr *. iters in
          e.e_tally.rand <- e.e_tally.rand +. r;
          p.p_rand <- p.p_rand +. r
      | _ -> ());
      List.iter
        (est_stmt e ~execs:iters ~ctx:(ctx *. float_of_int par) ~prof:p)
        body
  | Foreach_scan { scan; body; trip; _ } | Reduce_scan { scan; body; trip; _ }
    ->
      let iters = trip_total e ~execs trip in
      let par = pattern_par e.e_cfg.arch ~sparse:true scan.scan_par in
      let scan_len =
        match scan.scan_len with
        | Int n -> float_of_int n
        | _ -> err "estimate: non-constant scan length"
      in
      let kind_base =
        match s with Reduce_scan _ -> "reduce_scan" | _ -> "foreach_scan"
      in
      let p =
        prof_child prof
          (Printf.sprintf "%s (%s)" scan.bind_coord (trip_descr trip))
          (kind_base ^ "/" ^ trip_kind trip)
      in
      let occ =
        (launch_total e ~execs ~par trip /. ctx)
        +. (scan_len *. execs
           /. (32.0 *. e.e_cfg.arch.Arch.bv_words_per_cycle *. ctx))
        +. (launch_ii *. execs /. ctx)
      in
      e.e_tally.iters <- e.e_tally.iters +. iters;
      e.e_tally.bits <- e.e_tally.bits +. (scan_len *. execs);
      e.e_tally.compute <- e.e_tally.compute +. occ;
      p.p_iters <- p.p_iters +. iters;
      p.p_compute <- p.p_compute +. occ;
      (match s with
      | Reduce_scan { expr; _ } ->
          let r = exp_dram_reads e 0.0 expr *. iters in
          e.e_tally.rand <- e.e_tally.rand +. r;
          p.p_rand <- p.p_rand +. r
      | _ -> ());
      List.iter
        (est_stmt e ~execs:iters ~ctx:(ctx *. float_of_int par) ~prof:p)
        body

(** Convert the raw per-statement charges to an attributed cycle tree.

    Both cost components decompose exactly over the tree:
    compute cycles are linear in each node's occupancy
    ([p_compute x net_overhead]); DRAM cycles are linear in each node's
    streamed bytes, random accesses, and burst issues
    ([Dram.transfer_cycles] is linear in its two traffic arguments, and
    the burst term is [bursts x latency x exposure]).  The one constant
    term — the single exposed first-word latency — is attributed to the
    root.  A node's {e attributed} cycles take the component on the
    kernel's critical path (compute-bound vs memory-bound, decided by the
    finished report), so attributed self-cycles over the whole tree sum
    to [report.cycles] exactly. *)
let profile_of cfg (r : report) root =
  let compute_bound = r.compute_cycles >= r.dram_cycles in
  let rec conv ~is_root p =
    let compute = p.p_compute *. cfg.arch.Arch.net_overhead in
    let dram =
      Dram.transfer_cycles cfg.dram ~clock_hz:cfg.arch.Arch.clock_hz
        ~streamed_bytes:p.p_bytes ~random_accesses:p.p_rand
      +. (p.p_bursts *. cfg.dram.Dram.latency_cycles
         *. cfg.arch.Arch.latency_exposure)
      +. (if is_root then cfg.dram.Dram.latency_cycles else 0.0)
    in
    Obs_profile.make ~label:p.p_label ~kind:p.p_kind
      ~self_cycles:(if compute_bound then compute else dram)
      ~self_compute_cycles:compute ~self_dram_cycles:dram
      ~iterations:p.p_iters
      ~children:(List.rev_map (conv ~is_root:false) p.p_rev_children)
      ()
  in
  conv ~is_root:true root

type profiled = {
  preport : report;
  ptree : Obs_profile.node;
      (** attributed cycle tree; [Obs_profile.total ptree = preport.cycles] *)
}

(** {!estimate}, additionally keeping every per-statement charge attached
    to the loop nest as an attributed cycle tree. *)
let estimate_profiled ?(config = default_config) (c : Compile.compiled) =
  Trace.with_span ~cat:"simulate"
    ~args:[ ("kernel", c.Compile.name) ]
    ("estimate " ^ c.Compile.name)
    (fun () ->
      Metrics.inc
        (Metrics.counter ~help:"analytic cost estimates run"
           "sim_estimates_total");
      let mems = Hashtbl.create 32 in
      List.iter
        (fun (tensor, bs) ->
          List.iter
            (fun (b : Memory.binding) ->
              Hashtbl.replace mems
                (Memory.onchip_name tensor b.Memory.array)
                (tensor, b.Memory.array))
            bs)
        c.Compile.plan.Plan.bindings;
      let e =
        {
          e_cfg = config;
          e_plan = c.Compile.plan;
          e_src = { tensors = c.Compile.inputs; memo = Hashtbl.create 16 };
          e_tally = fresh_tally ();
          e_mems = mems;
        }
      in
      let root = fresh_prof c.Compile.name "kernel" in
      List.iter
        (est_stmt e ~execs:1.0 ~ctx:1.0 ~prof:root)
        c.Compile.program.accel;
      let preport = finish config e.e_tally in
      { preport; ptree = profile_of config preport root })

(** Analytically estimate a compiled kernel's report from its trip
    annotations and the input tensors' statistics. *)
let estimate ?config (c : Compile.compiled) =
  (estimate_profiled ?config c).preport

(** Admissible lower bound on {!estimate}'s [cycles], from dataset
    statistics alone — no compilation, no estimator walk.  Budgeted
    search strategies use it to rank candidates before spending a full
    evaluation ({!Stardust_explore.Eval.lower_bound} extracts the two
    statistics from the problem's tensors).

    The bound is the roofline under the model's own cost accounting:

    - {b compute}: every mandatory element (each stored entry of a
      compressed input streamed in full by [Load_burst]) costs at least
      [1 / (lanes * outer_par * inner_par)] cycles — the rate when every
      requested lane is busy, which the estimator's context accounting
      ([ctx <= outer_par * inner_par], effective pattern parallelism
      capped at the request) can only worsen.  Independently, the
      deepest fiber iteration must launch its fibers:
      [fiber_launch_total ~par:inner_par / outer_par] cycles, again with
      the uncapped requested parallelism (the simulator's effective
      launch total is >= this).  Both terms carry the network-overhead
      derate applied by [finish].
    - {b memory}: the mandatory elements' bytes must cross DRAM at least
      once as perfectly-streamed bursts (random gathers only cost more
      per byte), plus one first-word latency.

    [cycles = max(compute, memory)] in [finish], so the max of the two
    underestimates is a true lower bound.  Admissibility
    ([estimate_bound <= estimate]) is enforced by
    [STARDUST_CHECK_BOUND=1] in the evaluation layer and by an
    oracle-backed QCheck property.

    [streamed_elems] is the mandatory stored-entry count; [occupancy] is
    the largest last-level [fiber_launch_total ~par:inner_par] among the
    mandatory inputs (0 when a multiplicative co-iteration may shrink
    the walk below any single tensor's fiber total). *)
let estimate_bound ?(config = default_config) ~streamed_elems ~occupancy
    ~outer_par ~inner_par () =
  let arch = config.arch and dram = config.dram in
  let op = float_of_int (max 1 outer_par)
  and ip = float_of_int (max 1 inner_par) in
  let lanes = float_of_int arch.Arch.lanes in
  let compute =
    arch.Arch.net_overhead
    *. Float.max (streamed_elems /. (lanes *. op *. ip)) (occupancy /. op)
  in
  let memory =
    Dram.transfer_cycles dram ~clock_hz:arch.Arch.clock_hz
      ~streamed_bytes:(streamed_elems *. word_bytes) ~random_accesses:0.0
    +. dram.Dram.latency_cycles
  in
  Float.max compute memory
