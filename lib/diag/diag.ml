(** Structured compiler diagnostics.

    Every failure (and every recoverable degradation) in the Stardust stack
    is represented as a {!t}: a severity, the pipeline stage that produced
    it, a stable error code, a human message, an optional source span (the
    expression parser tracks character offsets), and free-form key/value
    context.  Diagnostics render two ways — caret-annotated text for
    terminals ({!render}) and JSON for tooling ({!to_json}) — and are
    accumulated by a {!Collector} so one compilation can report several
    problems instead of dying at the first.

    This library sits below every other Stardust library (it depends only
    on [fmt]) so that any stage can produce diagnostics without dependency
    cycles. *)

type severity = Error | Warning | Note

(** Pipeline provenance: which stage of the stack produced the
    diagnostic. *)
type stage =
  | Parse      (** index-notation parsing *)
  | Schedule   (** scheduling-command application *)
  | Plan       (** co-iteration analysis and memory binding *)
  | Lower      (** CIN → Spatial parallel-pattern lowering *)
  | Codegen    (** Spatial program validation / emission *)
  | Simulate   (** Capstan functional simulation or estimation *)
  | Io         (** tensor file input/output *)
  | Ingest     (** streaming dataset ingestion and out-of-core tiling *)
  | Driver     (** host orchestration: compile driver, pipeline, fallback *)
  | Oracle     (** differential-testing oracle: cross-backend fuzzing *)
  | Serve      (** compile service: request protocol and dispatch *)

(** Half-open character range [start, stop) into the source string. *)
type span = { start : int; stop : int }

type t = {
  severity : severity;
  stage : stage;
  code : string;  (** stable machine-readable code, e.g. ["E0301"] *)
  message : string;
  span : span option;
  context : (string * string) list;
      (** extra structured detail, e.g. [("kernel", "spmv")] *)
}

(* ------------------------------------------------------------------ *)
(* Stable error codes                                                  *)
(* ------------------------------------------------------------------ *)

(** Code registry.  Codes are stable across releases: never renumber,
    only append.

    - E01xx parse        — [E0101] syntax error
    - E02xx schedule     — [E0201] scheduling command failed
    - E03xx plan         — [E0301] planning failed
    - E04xx lower        — [E0401] lowering failed
    - E05xx codegen      — [E0501] invalid Spatial program
    - E06xx simulate     — [E0601] runtime fault, [E0602] capacity
                           overflow, [E0603] watchdog expired,
                           [E0604] injected fault surfaced
    - E02xx ingest       — streaming dataset ingestion starts at [E0210]
                           (the E020x block below E0210 belongs to the
                           schedule stage): [E0210] unreadable path,
                           [E0211] missing or truncated header,
                           [E0212] malformed or out-of-range entry,
                           [E0213] duplicate entry, [E0214] resource
                           budget exceeded, [E0215] file truncated before
                           the declared entry count
    - E07xx io           — [E0701] malformed tensor file
    - E08xx oracle       — [E0801] backends disagree on a fuzz case,
                           [E0802] a backend crashed on a fuzz case,
                           [E0803] a backend hung on a fuzz case (timed
                           out or tripped the simulator watchdog)
    - E09xx driver       — [E0901] unexpected exception, [E0902] stage
                           failed in a pipeline, [E0903] kernel infeasible
                           on the target chip, [E0904] internal invariant
                           violated (a bug in Stardust itself), [E0905] a
                           worker-pool task exceeded its deadline
    - E10xx serve        — [E1001] request line is not valid JSON,
                           [E1002] request JSON is malformed (unknown op,
                           missing or ill-typed field), [E1003] a request
                           handler died on an unhandled exception,
                           [E1004] the daemon is at its connection bound
                           and shed the request instead of queuing it,
                           [E1005] the request exceeded its deadline and
                           was abandoned, [E1006] the request line
                           exceeded the daemon's line-length bound,
                           [E1008] an autotune request named an unknown
                           search strategy
    - W01xx degradation  — [W0101] fell back to a retiled schedule,
                           [W0102] fell back to the CPU baseline,
                           [W0103] pipeline stage retried,
                           [W0104] a corrupt plan-cache spill entry was
                           skipped at warm start,
                           [W0105] degraded to out-of-core coordinate
                           tiling *)

let code_parse = "E0101"
let code_schedule = "E0201"
let code_plan = "E0301"
let code_lower = "E0401"
let code_codegen = "E0501"
let code_sim_runtime = "E0601"
let code_sim_capacity = "E0602"
let code_sim_watchdog = "E0603"
let code_sim_fault = "E0604"
let code_io = "E0701"
let code_ingest_unreadable = "E0210"
let code_ingest_header = "E0211"
let code_ingest_entry = "E0212"
let code_ingest_duplicate = "E0213"
let code_ingest_budget = "E0214"
let code_ingest_truncated = "E0215"
let code_oracle_mismatch = "E0801"
let code_oracle_crash = "E0802"
let code_oracle_hang = "E0803"
let code_unexpected = "E0901"
let code_pipeline_stage = "E0902"
let code_infeasible = "E0903"
let code_internal = "E0904"
let code_worker_timeout = "E0905"
let code_serve_parse = "E1001"
let code_serve_request = "E1002"
let code_serve_internal = "E1003"
let code_serve_overloaded = "E1004"
let code_serve_deadline = "E1005"
let code_serve_line_too_long = "E1006"
let code_serve_degraded = "E1007"
let code_serve_strategy = "E1008"
let code_fallback_retile = "W0101"
let code_fallback_cpu = "W0102"
let code_retry = "W0103"
let code_cache_corrupt = "W0104"
let code_fallback_tiled = "W0105"

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let make ?(severity = Error) ?span ?(context = []) ~stage ~code message =
  { severity; stage; code; message; span; context }

let error ?span ?context ~stage ~code fmt =
  Fmt.kstr (fun m -> make ~severity:Error ?span ?context ~stage ~code m) fmt

let warning ?span ?context ~stage ~code fmt =
  Fmt.kstr (fun m -> make ~severity:Warning ?span ?context ~stage ~code m) fmt

let note ?span ?context ~stage ~code fmt =
  Fmt.kstr (fun m -> make ~severity:Note ?span ?context ~stage ~code m) fmt

let is_error d = d.severity = Error

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let stage_name = function
  | Parse -> "parse"
  | Schedule -> "schedule"
  | Plan -> "plan"
  | Lower -> "lower"
  | Codegen -> "codegen"
  | Simulate -> "simulate"
  | Io -> "io"
  | Ingest -> "ingest"
  | Driver -> "driver"
  | Oracle -> "oracle"
  | Serve -> "serve"

(** One-line form: [error[E0301][plan] message (key=value, ...)]. *)
let pp ppf d =
  Fmt.pf ppf "%s[%s][%s] %s" (severity_name d.severity) d.code
    (stage_name d.stage) d.message;
  match d.context with
  | [] -> ()
  | ctx ->
      Fmt.pf ppf " (%a)"
        Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
        ctx

let to_string d = Fmt.str "%a" pp d

(** Caret-annotated rendering against the source text the span points
    into.  Multi-line sources are handled by locating the spanned line;
    spans that fall outside [src] degrade to the one-line form. *)
let render ?src ppf d =
  pp ppf d;
  match (d.span, src) with
  | Some { start; stop }, Some src
    when start >= 0 && start <= String.length src ->
      (* find the line containing [start] *)
      let line_start =
        match String.rindex_from_opt src (max 0 (start - 1)) '\n' with
        | Some i -> i + 1
        | None -> 0
      in
      let line_stop =
        match String.index_from_opt src line_start '\n' with
        | Some i -> i
        | None -> String.length src
      in
      let line = String.sub src line_start (line_stop - line_start) in
      let col = start - line_start in
      let width = max 1 (min stop (String.length src) - start) in
      let width = min width (max 1 (String.length line - col + 1)) in
      Fmt.pf ppf "@,  | %s@,  | %s%s" line (String.make col ' ')
        (String.make width '^')
  | _ -> ()

let render_string ?src d = Fmt.str "@[<v>%a@]" (render ?src) d

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"severity\":\"%s\",\"stage\":\"%s\",\"code\":\"%s\",\"message\":\"%s\""
       (severity_name d.severity) (stage_name d.stage) (json_escape d.code)
       (json_escape d.message));
  (match d.span with
  | Some { start; stop } ->
      Buffer.add_string buf
        (Printf.sprintf ",\"span\":{\"start\":%d,\"stop\":%d}" start stop)
  | None -> ());
  (match d.context with
  | [] -> ()
  | ctx ->
      Buffer.add_string buf ",\"context\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        ctx;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)
(* ------------------------------------------------------------------ *)

(** Accumulates diagnostics in emission order so one run can report many
    problems instead of stopping at the first. *)
module Collector = struct
  type diag = t

  type t = { mutable rev : diag list; mutable errors : int }

  let create () = { rev = []; errors = 0 }

  let add c d =
    c.rev <- d :: c.rev;
    if is_error d then c.errors <- c.errors + 1

  let add_all c ds = List.iter (add c) ds
  let has_errors c = c.errors > 0
  let error_count c = c.errors
  let to_list c = List.rev c.rev
  let is_empty c = c.rev = []
end

(** Carrier exception for code that must abort with diagnostics already in
    hand (the raising shims re-raise through this). *)
exception Fail of t list

let fail ds = raise (Fail ds)
