(* dbg — developer inspection tool for compiled kernels.

     dune exec bench/dbg.exe [KERNEL]         # loop/transfer structure
     STARDUST_DEBUG_XFER=1 dune exec bench/dbg.exe [KERNEL]
                                              # + per-transfer estimate trace

   Prints the compiled loop tree with trip annotations and DRAM transfers
   on the kernel's first benchmark dataset (default: TTV). *)

module K = Stardust_core.Kernels
module Sim = Stardust_capstan.Sim
open Stardust_spatial.Spatial_ir

let rec walk pre body =
  List.iter
    (fun s ->
      match s with
      | Load_burst { dst; src; _ } -> Fmt.pr "%sLOAD %s <- %s@." pre dst src
      | Store_burst { dst; src; _ } -> Fmt.pr "%sSTORE %s -> %s@." pre src dst
      | Foreach { bind; body; trip; par; _ } ->
          Fmt.pr "%sFOREACH %s par %d [%a]@." pre bind par pp_trip trip;
          walk (pre ^ "  ") body
      | Reduce { bind; body; trip; par; _ } ->
          Fmt.pr "%sREDUCE %s par %d [%a]@." pre bind par pp_trip trip;
          walk (pre ^ "  ") body
      | Foreach_scan { body; trip; scan; _ } ->
          Fmt.pr "%sSCAN %s [%a]@." pre
            (match scan.op with
            | Scan_single -> "single" | Scan_and -> "and" | Scan_or -> "or")
            pp_trip trip;
          walk (pre ^ "  ") body
      | Reduce_scan { body; trip; scan; _ } ->
          Fmt.pr "%sRSCAN %s [%a]@." pre
            (match scan.op with
            | Scan_single -> "single" | Scan_and -> "and" | Scan_or -> "or")
            pp_trip trip;
          walk (pre ^ "  ") body
      | _ -> ())
    body

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "TTV" in
  match K.find name with
  | None -> Fmt.epr "unknown kernel %s@." name
  | Some spec ->
      let inst = List.hd (Suite.instances spec) in
      let st = List.hd spec.K.stages in
      let inputs = Suite.stage_inputs st inst.Suite.inputs in
      let compiled = K.compile_stage spec st ~inputs in
      Fmt.pr "=== %s on %s: loop/transfer structure ===@." spec.K.kname
        inst.Suite.dname;
      walk "" compiled.Stardust_core.Compile.program.accel;
      let r = Sim.estimate compiled in
      Fmt.pr "@.estimate: cycles=%.3e compute=%.3e dram=%.3e bytes=%.3e iters=%.3e@."
        r.Sim.cycles r.Sim.compute_cycles r.Sim.dram_cycles r.Sim.streamed_bytes
        r.Sim.iterations
