(** Ablation benches for the design choices DESIGN.md calls out.

    Each ablation removes one architectural or compiler mechanism and
    reports the compiled kernels' simulated cycles with and without it:

    - {b sparse vector lanes}: Capstan's vectorized sparse iteration
      (16-wide scanners) vs Plasticine's scalar compressed iteration — the
      architectural delta the paper's Table 6 Plasticine row isolates;
    - {b bit-vector stream width}: the network serialization of packed
      bit-vector streams to the scanner (1 word/cycle) vs an ideal
      full-vector stream — where the ideal-network gains of Figure 12's
      companion rows come from on scan-heavy kernels;
    - {b gather staging}: on-chip sparse-SRAM staging of gathered arrays
      vs direct random DRAM access (forced by shrinking the SRAM budget);
    - {b scheduling}: the paper's workspace+Reduce schedule vs the
      unscheduled canonical loop nest, and vs the auto-scheduler. *)

module T = Stardust_tensor.Tensor
module F = Stardust_tensor.Format
module K = Stardust_core.Kernels
module C = Stardust_core.Compile
module Auto = Stardust_core.Autoschedule
module S = Stardust_schedule.Schedule
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
open Suite

let header title =
  Fmt.pr "@.%s@.%s@.%s@." (String.make 100 '=') title (String.make 100 '=')

let hbm arch = { Sim.arch; dram = Dram.hbm2e }

let first_compiled (spec : K.spec) =
  let r = List.hd (run_kernel spec) in
  List.hd r.compiled

(* ------------------------------------------------------------------ *)

let sparse_lanes () =
  header
    "Ablation: sparse vector lanes (Capstan scanners vs scalar compressed \
     iteration)";
  Fmt.pr "%-12s %14s %14s %14s %10s@." "Name" "lanes=1" "lanes=4" "lanes=16"
    "16/1 gain";
  Fmt.pr "%s@." (String.make 70 '-');
  List.iter
    (fun (spec : K.spec) ->
      let compiled = first_compiled spec in
      let cyc lanes =
        (Sim.estimate ~config:(hbm { Arch.default with Arch.sparse_lanes = lanes })
           compiled).Sim.compute_cycles
      in
      let c1 = cyc 1 and c4 = cyc 4 and c16 = cyc 16 in
      Fmt.pr "%-12s %14.0f %14.0f %14.0f %9.1fx@." spec.K.kname c1 c4 c16
        (c1 /. c16))
    K.all

let bv_stream () =
  header "Ablation: bit-vector stream width (scan-heavy kernels)";
  Fmt.pr "%-12s %14s %14s %14s@." "Name" "1 word/cyc" "4 words/cyc" "16 words/cyc";
  Fmt.pr "%s@." (String.make 60 '-');
  List.iter
    (fun name ->
      let spec = Option.get (K.find name) in
      let compiled = first_compiled spec in
      let cyc w =
        (Sim.estimate
           ~config:(hbm { Arch.default with Arch.bv_words_per_cycle = w })
           compiled).Sim.compute_cycles
      in
      Fmt.pr "%-12s %14.0f %14.0f %14.0f@." name (cyc 1.0) (cyc 4.0) (cyc 16.0))
    [ "Plus3"; "InnerProd"; "Plus2" ]

let gather_staging () =
  header "Ablation: on-chip gather staging vs direct sparse-DRAM access";
  Fmt.pr "%-12s %16s %16s %10s@." "Name" "staged (SRAM)" "direct (DRAM)" "gain";
  Fmt.pr "%s@." (String.make 60 '-');
  List.iter
    (fun name ->
      let spec = Option.get (K.find name) in
      let inst = List.hd (instances spec) in
      let st = List.hd spec.K.stages in
      let inputs = stage_inputs st inst.inputs in
      let staged = K.compile_stage spec st ~inputs in
      (* a 16-word budget forces every gathered array off-chip *)
      let direct = K.compile_stage ~sram_budget:16 spec st ~inputs in
      let cyc c = (Sim.estimate c).Sim.cycles in
      Fmt.pr "%-12s %16.0f %16.0f %9.1fx@." name (cyc staged) (cyc direct)
        (cyc direct /. cyc staged))
    [ "SpMV"; "MatTransMul"; "Residual"; "TTV" ]

let scheduling () =
  header "Ablation: scheduled (workspace + Reduce) vs unscheduled vs auto";
  let spec = K.spmv in
  let inst = List.hd (instances spec) in
  let st = List.hd spec.K.stages in
  let inputs = stage_inputs st inst.inputs in
  let scheduled = K.compile_stage spec st ~inputs in
  let unscheduled =
    (* the canonical loop nest with only parallelization factors set *)
    let a = Stardust_ir.Parser.parse_assign st.K.expr in
    let sched = S.of_assign ~formats:st.K.formats a in
    let sched = S.set_environment sched "innerPar" 16 in
    let sched = S.set_environment sched "outerPar" 16 in
    C.compile ~name:"spmv_unscheduled" sched ~inputs
  in
  let auto =
    Auto.compile ~name:"spmv_auto" ~formats:st.K.formats ~inputs st.K.expr
  in
  List.iter
    (fun (name, c) ->
      let r = Sim.estimate c in
      Fmt.pr "%-28s %12.0f cycles  %4d LoC@." name r.Sim.cycles (C.spatial_loc c))
    [ ("paper schedule (Fig. 5)", scheduled);
      ("unscheduled canonical nest", unscheduled);
      ("auto-scheduled", auto) ];
  Fmt.pr "@.(the auto-scheduler reproduces the paper schedule from the@.";
  Fmt.pr " algorithm + formats alone — the 10 -> 6 input-LoC claim of 8.3)@."

let run () =
  sparse_lanes ();
  bv_stream ();
  gather_staging ();
  scheduling ()
