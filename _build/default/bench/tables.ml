(** Printers that regenerate every table and figure of the paper's
    evaluation (section 8) from the models in this repository. *)

module T = Stardust_tensor.Tensor
module F = Stardust_tensor.Format
module K = Stardust_core.Kernels
module C = Stardust_core.Compile
module Sim = Stardust_capstan.Sim
module Arch = Stardust_capstan.Arch
module Dram = Stardust_capstan.Dram
module Resources = Stardust_capstan.Resources
open Suite

let line () = Fmt.pr "%s@." (String.make 100 '-')

let header title =
  Fmt.pr "@.%s@." (String.make 100 '=');
  Fmt.pr "%s@." title;
  Fmt.pr "%s@." (String.make 100 '=')

(* -------------------------------------------------------------------- *)
(* Table 3: expressions and lines of code                                *)
(* -------------------------------------------------------------------- *)

let table3 () =
  header "Table 3: kernels, input LoC vs generated Spatial LoC";
  Fmt.pr "%-12s %-40s %8s %8s@." "Name" "Expression" "Input" "Spatial";
  line ();
  List.iter
    (fun (spec : K.spec) ->
      (* LoC is data-independent; compile on the first dataset instance. *)
      let runs = run_kernel spec in
      let r = List.hd runs in
      let input_loc =
        List.fold_left (fun a c -> a + C.input_loc c) 0 r.compiled
        (* the tensor formats of a multi-stage kernel are declared once *)
        - ((List.length r.compiled - 1) * 1)
      in
      let spatial_loc =
        List.fold_left (fun a c -> a + C.spatial_loc c) 0 r.compiled
      in
      Fmt.pr "%-12s %-40s %8d %8d@." spec.K.kname spec.K.paper_expr input_loc
        spatial_loc)
    K.all

(* -------------------------------------------------------------------- *)
(* Table 4: datasets                                                     *)
(* -------------------------------------------------------------------- *)

let table4 () =
  header "Table 4: evaluation datasets (synthetic, matching published shape)";
  Fmt.pr "%-12s %-18s %-22s %12s %12s@." "App" "Name" "Dimensions" "nnz" "Density";
  line ();
  List.iter
    (fun (spec : K.spec) ->
      List.iter
        (fun (inst : instance) ->
          let main = snd (List.hd inst.inputs) in
          let dims =
            String.concat "x"
              (List.map string_of_int (Array.to_list (T.dims main)))
          in
          Fmt.pr "%-12s %-18s %-22s %12d %12.2e@." spec.K.kname inst.dname dims
            (T.nnz main) (T.density main))
        (instances spec))
    K.all

(* -------------------------------------------------------------------- *)
(* Table 5: Capstan resources                                            *)
(* -------------------------------------------------------------------- *)

let table5 () =
  header "Table 5: Capstan resources required by the compiled kernels";
  Fmt.pr "%-12s %4s  %-12s %-12s %-12s %-12s %-6s@." "Name" "Par" "PCU" "PMU"
    "MC" "Shuf" "Limit";
  line ();
  List.iter
    (fun (spec : K.spec) ->
      let r = List.hd (run_kernel spec) in
      (* For multi-stage kernels, report the stage with the larger use. *)
      let u =
        List.fold_left
          (fun best c ->
            let u = Resources.count Arch.default c in
            match best with
            | Some b when b.Resources.pcu >= u.Resources.pcu -> Some b
            | _ -> Some u)
          None r.compiled
        |> Option.get
      in
      let cell n f = Printf.sprintf "%d (%.0f%%)" n (100. *. f) in
      Fmt.pr "%-12s %4d  %-12s %-12s %-12s %-12s %-6s@." spec.K.kname
        u.Resources.outer_par
        (cell u.Resources.pcu u.Resources.pcu_frac)
        (cell u.Resources.pmu u.Resources.pmu_frac)
        (cell u.Resources.mc u.Resources.mc_frac)
        (cell u.Resources.shuffle u.Resources.shuffle_frac)
        u.Resources.limiting)
    K.all

(* -------------------------------------------------------------------- *)
(* Table 6: normalized runtimes                                          *)
(* -------------------------------------------------------------------- *)

(** Handwritten SpMV variants (section 8.3): the hand-optimised Capstan
    kernel duplicates the input vector instead of using the shuffle
    network, allowing outer-parallelization to 32; the Plasticine kernel
    additionally lacks vectorized sparse iteration. *)
let handwritten_spmv_seconds ~plasticine () =
  let spec = { K.spmv with K.outer_par = 32 } in
  let inst = List.hd (instances K.spmv) in
  let st = List.hd spec.K.stages in
  let compiled = K.compile_stage spec st ~inputs:inst.inputs in
  let arch = if plasticine then Arch.plasticine else Arch.default in
  (Sim.estimate ~config:{ Sim.arch; dram = Dram.hbm2e } compiled).Sim.seconds

let table6 ?(paper = true) () =
  header
    "Table 6: runtimes (geomean across datasets) normalized to compiled \
     Capstan (HBM2E)";
  let all_runs = List.map (fun spec -> (spec, run_kernel spec)) K.all in
  let norm (runs : run list) platform =
    kernel_gmeans runs platform /. kernel_gmeans runs Capstan_hbm2e
  in
  Fmt.pr "%-28s %8s " "Platform (Memory)" "Compiled";
  List.iter (fun (s, _) -> Fmt.pr "%10s " s.K.kname) all_runs;
  Fmt.pr "%10s@." "gmean";
  line ();
  (* Handwritten rows (SpMV only). *)
  let spmv_hbm = kernel_gmeans (List.assq K.spmv (List.map (fun (s, r) -> (s, r)) all_runs)) Capstan_hbm2e in
  let hand_row name seconds =
    Fmt.pr "%-28s %8s " name "No";
    List.iter
      (fun (s, _) ->
        if s.K.kname = "SpMV" then Fmt.pr "%10.2f " (seconds /. spmv_hbm)
        else Fmt.pr "%10s " "-")
      all_runs;
    Fmt.pr "%10.2f@." (seconds /. spmv_hbm)
  in
  hand_row "Capstan (HBM2E)" (handwritten_spmv_seconds ~plasticine:false ());
  List.iter
    (fun platform ->
      Fmt.pr "%-28s %8s " (platform_name platform) "Yes";
      let vals =
        List.map (fun (_, runs) -> norm runs platform) all_runs
      in
      List.iter (fun v -> Fmt.pr "%10.2f " v) vals;
      Fmt.pr "%10.2f@." (gmean vals))
    [ Capstan_ideal; Capstan_hbm2e; Capstan_ddr4 ];
  hand_row "Plasticine (HBM2E)" (handwritten_spmv_seconds ~plasticine:true ());
  List.iter
    (fun platform ->
      Fmt.pr "%-28s %8s " (platform_name platform) "Yes";
      let vals = List.map (fun (_, runs) -> norm runs platform) all_runs in
      List.iter (fun v -> Fmt.pr "%10.2f " v) vals;
      Fmt.pr "%10.2f@." (gmean vals))
    [ Gpu_v100; Cpu128 ];
  if paper then begin
    Fmt.pr "@.Paper reference rows (for shape comparison):@.";
    Fmt.pr "  Capstan(Ideal) 0.52 gmean | Capstan(DDR4) 7.09 | GPU 41.31 | CPU 138.07@.";
    Fmt.pr "  Handwritten SpMV: Capstan 0.65, Plasticine 8.72@."
  end

(* -------------------------------------------------------------------- *)
(* Figure 12: memory bandwidth sweep                                     *)
(* -------------------------------------------------------------------- *)

let fig12 () =
  header "Figure 12: impact of memory bandwidth on performance";
  let bandwidths =
    [ ("DDR4 (68GB/s)", `Dram Dram.ddr4);
      ("200 GB/s", `Bw 200.0e9);
      ("400 GB/s", `Bw 400.0e9);
      ("800 GB/s", `Bw 800.0e9);
      ("HBM2E (1800GB/s)", `Dram Dram.hbm2e);
      ("Ideal", `Ideal) ]
  in
  Fmt.pr "%-12s " "Name";
  List.iter (fun (n, _) -> Fmt.pr "%18s " n) bandwidths;
  Fmt.pr "@.";
  line ();
  List.iter
    (fun (spec : K.spec) ->
      let runs = run_kernel spec in
      Fmt.pr "%-12s " spec.K.kname;
      let time config =
        gmean
          (List.map
             (fun (r : run) ->
               List.fold_left
                 (fun acc c -> acc +. (Sim.estimate ~config c).Sim.seconds)
                 0.0 r.compiled)
             runs)
      in
      let base = time Sim.default_config in
      List.iter
        (fun (_, b) ->
          let config =
            match b with
            | `Dram d -> { Sim.arch = Arch.default; dram = d }
            | `Bw bw ->
                { Sim.arch = Arch.default;
                  dram = Dram.with_bandwidth Dram.hbm2e bw }
            | `Ideal -> Sim.ideal_config
          in
          Fmt.pr "%18.2f " (time config /. base))
        bandwidths;
      Fmt.pr "@.")
    K.all;
  Fmt.pr "@.(values are runtime normalized to HBM2E; >1 is slower)@."

(* -------------------------------------------------------------------- *)
(* Figure 13: per-kernel speedups across platforms                      *)
(* -------------------------------------------------------------------- *)

let fig13 () =
  header
    "Figure 13: generated kernel performance across platforms, normalized \
     to Capstan (HBM2E) = 1";
  Fmt.pr "%-12s %-18s %12s %12s %12s@." "Name" "Dataset" "Capstan" "GPU(x)"
    "CPU(x)";
  line ();
  List.iter
    (fun (spec : K.spec) ->
      List.iter
        (fun (r : run) ->
          let cap = List.assoc Capstan_hbm2e r.seconds in
          Fmt.pr "%-12s %-18s %12.1f %12.1f %12.1f@." spec.K.kname r.instance
            1.0
            (List.assoc Gpu_v100 r.seconds /. cap)
            (List.assoc Cpu128 r.seconds /. cap))
        (run_kernel spec))
    K.all

(* -------------------------------------------------------------------- *)
(* Case study: SpMV (section 8.3)                                        *)
(* -------------------------------------------------------------------- *)

let case_spmv () =
  header "Case study: SpMV — compiled vs handwritten (section 8.3)";
  let runs = run_kernel K.spmv in
  let compiled_s = kernel_gmeans runs Capstan_hbm2e in
  let hand_s = handwritten_spmv_seconds ~plasticine:false () in
  let plast_s = handwritten_spmv_seconds ~plasticine:true () in
  let c = List.hd (List.hd runs).compiled in
  Fmt.pr "Input LoC (formats + algorithm + schedule + output): %d@."
    (C.input_loc c);
  Fmt.pr "Generated Spatial LoC:                               %d@."
    (C.spatial_loc c);
  Fmt.pr "Handwritten Spatial LoC (paper):                     52@.";
  Fmt.pr "@.";
  Fmt.pr "Compiled Capstan (HBM2E, gmean):    %.3e s  (1.00x)@." compiled_s;
  Fmt.pr "Handwritten Capstan (vector dup.):  %.3e s  (%.2fx; paper: 0.65x)@."
    hand_s (hand_s /. compiled_s);
  Fmt.pr "Handwritten Plasticine:             %.3e s  (%.2fx; paper: 8.72x)@."
    plast_s (plast_s /. compiled_s);
  Fmt.pr "@.The compiled kernel gathers the input vector through the shuffle@.";
  Fmt.pr "network (outer-parallel limit 16); the handwritten kernel duplicates@.";
  Fmt.pr "the vector and outer-parallelizes to 32.@."

(* -------------------------------------------------------------------- *)
(* Generated code listing                                                *)
(* -------------------------------------------------------------------- *)

let listing name =
  match K.find name with
  | None -> Fmt.pr "unknown kernel %s@." name
  | Some spec ->
      let r = List.hd (run_kernel spec) in
      List.iter
        (fun c ->
          Fmt.pr "%s@.@." (C.spatial_code c))
        r.compiled

(* -------------------------------------------------------------------- *)
(* Long-tail kernels (beyond the paper's suite)                          *)
(* -------------------------------------------------------------------- *)

(** Kernels the paper never evaluated, compiled through the same pipeline —
    the "long tail of sparse functions" its introduction motivates. *)
let longtail () =
  header "Long-tail kernels (not in the paper): compiled, placed, simulated";
  Fmt.pr "%-10s %-38s %8s %10s %28s@." "Name" "Expression" "Spatial" "cycles"
    "resources (PCU/PMU/MC/Shuf)";
  line ();
  let module KX = Stardust_core.Kernels_extra in
  let module D = Stardust_workloads.Datasets in
  List.iter
    (fun (spec : K.spec) ->
      let st = List.hd spec.K.stages in
      let inputs =
        match spec.K.kname with
        | "SpMM" ->
            [ ("B",
               D.random_matrix ~seed:51 ~name:"B" ~format:(F.csr ()) ~rows:512
                 ~cols:512 ~density:0.02 ());
              ("C",
               D.dense_matrix ~name:"C" ~format:(F.rm ()) ~rows:512 ~cols:32 ()) ]
        | "SvAdd" | "SvAxpy" | "SvDot" ->
            [ ("a",
               D.small_random ~seed:52 ~name:"a" ~format:(F.sv ())
                 ~dims:[ 8192 ] ~density:0.05 ());
              ("b",
               D.small_random ~seed:53 ~name:"b" ~format:(F.sv ())
                 ~dims:[ 8192 ] ~density:0.05 ()) ]
        | "Hadamard" | "SpAdd" ->
            [ ("B",
               D.random_matrix ~seed:54 ~name:"B" ~format:(F.csr ()) ~rows:512
                 ~cols:512 ~density:0.02 ());
              ("C",
               D.random_matrix ~seed:55 ~name:"C" ~format:(F.csr ()) ~rows:512
                 ~cols:512 ~density:0.02 ()) ]
        | "RowSums" ->
            [ ("A",
               D.random_matrix ~seed:56 ~name:"A" ~format:(F.csr ()) ~rows:512
                 ~cols:512 ~density:0.02 ());
              ("o",
               Stardust_tensor.Tensor.of_entries ~name:"o" ~format:(F.dv ())
                 ~dims:[ 512 ]
                 (List.init 512 (fun i -> ([ i ], 1.0)))) ]
        | k -> failwith ("no longtail inputs for " ^ k)
      in
      let compiled = K.compile_stage spec st ~inputs in
      let r = Sim.estimate compiled in
      let u = Resources.count Arch.default compiled in
      Fmt.pr "%-10s %-38s %8d %10.0f %9d/%d/%d/%d@." spec.K.kname
        spec.K.paper_expr (C.spatial_loc compiled) r.Sim.cycles u.Resources.pcu
        u.Resources.pmu u.Resources.mc u.Resources.shuffle)
    KX.all
