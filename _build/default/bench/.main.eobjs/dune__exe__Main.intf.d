bench/main.mli:
