bench/dbg.mli:
