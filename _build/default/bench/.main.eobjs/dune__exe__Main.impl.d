bench/main.ml: Ablations Array Fmt List Micro Sys Tables
