bench/ablations.ml: Fmt List Option Stardust_capstan Stardust_core Stardust_ir Stardust_schedule Stardust_tensor String Suite
