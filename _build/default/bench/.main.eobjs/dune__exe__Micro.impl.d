bench/micro.ml: Analyze Bechamel Benchmark Fmt Hashtbl List Measure Option Printf Staged Stardust_core Stardust_ir Stardust_spatial Stardust_tensor Stardust_workloads String Test Time Toolkit
