bench/tables.ml: Array Fmt List Option Printf Stardust_capstan Stardust_core Stardust_tensor Stardust_workloads String Suite
