bench/dbg.ml: Array Fmt List Stardust_capstan Stardust_core Stardust_spatial Suite Sys
